"""Fig. 4 — accuracy and loss for the CNN on MNIST-O, three schemes.

Paper result: FMore converges fastest (50% speed-up to 95% accuracy vs
RandFL); FixFL trails.  We regenerate the two series at bench scale on the
synthetic MNIST-O task and check the ordering and a positive speed-up.
"""

from .common import run_once
from .figcurves import run_accuracy_loss_figure


def test_fig04_mnist_o(benchmark):
    per_scheme = run_once(
        benchmark,
        lambda: run_accuracy_loss_figure(
            dataset="mnist_o",
            fig_name="fig04_mnist_o",
            target_accuracy=0.80,
            paper_speedup_pct=50.0,
            paper_target_note="paper: to 95% accuracy",
        ),
    )
    final_fmore = sum(h.final_accuracy for h in per_scheme["FMore"]) / len(
        per_scheme["FMore"]
    )
    final_fix = sum(h.final_accuracy for h in per_scheme["FixFL"]) / len(
        per_scheme["FixFL"]
    )
    # The paper's qualitative claim: the auction beats fixed selection.
    assert final_fmore > final_fix - 0.02
