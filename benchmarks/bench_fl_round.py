"""Within-round local-training pool: serial vs thread vs process timings.

``FederatedTrainer`` can fan the winners' local trainings out over an
in-round executor pool (``Scenario.execution.local_training``); the
per-winner derived RNG streams make the pool choice bitwise-invisible.
This bench tracks both halves of that contract as numbers:

* **fl round** — one full FL round of the paper CNN (``mnist_o``) at
  K = 4 and K = 8 winners under each in-round pool (serial / thread /
  process), reusing the winners' datasets across pools so the timings
  are apples-to-apples.
* **identity gate** — every pool's final weights must hash identically
  to the serial reference at the same K (*asserted*, like the
  coordinator bench's manifest gate).
* **speedup gate** — the best parallel pool must beat serial by
  >= 1.5x at K = 8 — enforced only when the machine has more than one
  CPU (the artifact records ``cpus``; a single-core runner cannot
  physically speed anything up, so there the gate is informational).

The stable ``fl:serial_k*`` timings join ``bench_compare.py``'s >20%
perf-trajectory gate through the ``BENCH_fl_round.json`` CI artifact;
the parallel rows feed the absolute ``fl:*`` gates instead (thread and
process seconds swing with runner load).

Run standalone (writes ``BENCH_fl_round.json`` for the CI artifact)::

    PYTHONPATH=src python benchmarks/bench_fl_round.py --quick

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_fl_round.py -q
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_fl_round.json"

#: Winner counts per round: the paper's K and the doubled stress point.
K_SMALL = 4
K_LARGE = 8
#: Best parallel pool must beat serial by this factor at K = K_LARGE
#: (enforced only on multi-CPU machines).
MIN_PARALLEL_SPEEDUP = 1.5
POOLS = ("serial", "thread", "process")

N_CLASSES = 10


def _federation(k: int, quick: bool):
    """Clients + a fresh trainer factory for one K-winner federation.

    Quick mode keeps the smoke-test scale (CI runs this on every
    commit); full mode grows the per-client datasets and epochs so the
    per-winner work dominates pool overheads (fork + pickling for the
    process pool, dispatch for the thread pool) and the speedup gate
    measures the fan-out, not the plumbing.
    """
    from repro.api.executor import EXECUTORS
    from repro.fl.client import FLClient
    from repro.fl.models import build_model
    from repro.fl.partition import ClientData
    from repro.fl.selection import SelectionResult, SelectionStrategy
    from repro.fl.server import FedAvgServer
    from repro.fl.trainer import FederatedTrainer
    from repro.sim.rng import rng_from

    per_client = 64 if quick else 256
    epochs = 1 if quick else 2
    side = 8 if quick else 12

    class FixedSelection(SelectionStrategy):
        name = "bench-fixed"

        def select(self, round_index, rng):
            return SelectionResult(
                winner_ids=list(range(k)),
                declared_samples={w: per_client for w in range(k)},
            )

    data_rng = np.random.default_rng(2020)
    clients = [
        FLClient(
            ClientData(
                i,
                data_rng.random((per_client, side, side, 1)),
                data_rng.integers(0, N_CLASSES, per_client),
                N_CLASSES,
            ),
            batch_size=16,
            local_epochs=epochs,
        )
        for i in range(k)
    ]
    test_x = data_rng.random((32, side, side, 1))
    test_y = data_rng.integers(0, N_CLASSES, 32)

    def make_trainer(pool: str):
        executor = None
        if pool == "serial":
            executor = EXECUTORS.create("serial")
        else:
            executor = EXECUTORS.create(pool, max_workers=k)
        model = build_model(
            "mnist_o", (side, side, 1), N_CLASSES, rng_from(0, "bench-fl-model"),
            width=0.25,
        )
        return FederatedTrainer(
            FedAvgServer(model),
            clients,
            FixedSelection(),
            test_x,
            test_y,
            rng_from(0, "bench-fl-train"),
            local_executor=executor,
        )

    return make_trainer


def _weights_digest(trainer) -> str:
    h = hashlib.sha256()
    for w in trainer.server.model.get_weights():
        h.update(w.tobytes())
    return h.hexdigest()


def time_fl_round(k: int, quick: bool, repeats: int = 3) -> dict:
    """One FL round at ``k`` winners under each pool (best of ``repeats``).

    Each repeat builds a fresh trainer (so every pool starts from the
    identical global model and round-stream position) but times only the
    round itself; the first run of each pool is a discarded warm-up
    (thread/process pool spin-up, BLAS first-touch).
    """
    rows: dict[str, dict] = {}
    for pool in POOLS:
        make_trainer = _federation(k, quick)
        digest = None
        times = []
        for rep in range(repeats + 1):  # +1 discarded warm-up
            trainer = make_trainer(pool)
            t0 = time.perf_counter()
            trainer.run_round(1)
            elapsed = time.perf_counter() - t0
            if rep > 0:
                times.append(elapsed)
            digest = _weights_digest(trainer)
        rows[pool] = {
            "k": k,
            "executor": pool,
            "seconds": min(times),
            "weights_sha256": digest,
        }
    serial = rows["serial"]
    for pool in POOLS[1:]:
        rows[pool]["matches_serial"] = (
            rows[pool]["weights_sha256"] == serial["weights_sha256"]
        )
        rows[pool]["speedup"] = serial["seconds"] / rows[pool]["seconds"]
    return rows


def gate_failures(data: dict) -> list[str]:
    """The ``fl:*`` gate verdicts over one artifact's pool timings.

    Identity is absolute: a parallel pool that lands different weights
    than serial is wrong on any machine.  The >= 1.5x speedup bound at
    K = 8 only applies when the recording machine had more than one CPU
    (``cpus`` in the artifact) — a single core cannot speed anything up.
    """
    failures: list[str] = []
    fl = data.get("fl_round", {})
    for k_label, rows in sorted(fl.items()):
        for pool in POOLS[1:]:
            row = rows.get(pool, {})
            if row.get("matches_serial") is False:
                failures.append(
                    f"fl:{pool}_{k_label}: weights diverged from serial"
                )
    cpus = data.get("cpus")
    rows = fl.get(f"k{K_LARGE}", {})
    speedups = [
        rows[pool]["speedup"]
        for pool in POOLS[1:]
        if "speedup" in rows.get(pool, {})
    ]
    if isinstance(cpus, int) and cpus > 1 and speedups:
        best = max(speedups)
        if best < MIN_PARALLEL_SPEEDUP:
            failures.append(
                f"fl:k{K_LARGE}: best parallel speedup {best:.2f}x < "
                f"{MIN_PARALLEL_SPEEDUP}x serial on a {cpus}-CPU machine"
            )
    return failures


def run(quick: bool = True, out_path: Path | None = None) -> dict:
    repeats = 2 if quick else 4
    payload = {
        "bench": "fl_round",
        "quick": quick,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "fl_round": {
            f"k{k}": time_fl_round(k, quick=quick, repeats=repeats)
            for k in (K_SMALL, K_LARGE)
        },
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_fl_round_pools_bitwise_identical():
    """Acceptance: thread and process pools land serial's exact weights."""
    rows = time_fl_round(K_SMALL, quick=True, repeats=1)
    for pool in POOLS[1:]:
        assert rows[pool]["matches_serial"], (
            f"{pool} pool weights diverged from serial at K={K_SMALL}"
        )


def test_fl_round_parallel_speedup_on_multicore():
    """Acceptance: best parallel pool >= 1.5x serial at K = 8 (multi-CPU)."""
    import pytest

    cpus = os.cpu_count() or 1
    if cpus <= 1:
        pytest.skip("single-CPU machine: a pool cannot beat serial here")
    rows = time_fl_round(K_LARGE, quick=True, repeats=2)
    best = max(rows[pool]["speedup"] for pool in POOLS[1:])
    assert best >= MIN_PARALLEL_SPEEDUP, (
        f"best parallel speedup {best:.2f}x < {MIN_PARALLEL_SPEEDUP}x "
        f"serial at K={K_LARGE} on a {cpus}-CPU machine"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke settings")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="artifact path (JSON)"
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick, out_path=args.out)
    print(json.dumps(payload, indent=2))
    failures = gate_failures(payload)
    if failures:
        print("\nFAILED fl-round gates:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
