"""Micro-benchmarks backing the lightweightness claim (Section III-A).

The paper argues FMore adds negligible per-round cost: each node computes
its equilibrium bid in linear time (Euler's method) and the aggregator only
scores and sorts N bids.  These benches measure the actual costs:

* pricing one equilibrium bid (table lookup after the one-off build),
* pricing a whole population at once (``bid_batch`` vs the per-bid loop —
  the vectorised path ``FMoreMechanism.run_round`` now uses),
* a full winner-determination round at N = 1000 bids,
* one complete mechanism round (ask -> collect -> determine) at N = 500.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.auction import MultiDimensionalProcurementAuction
from repro.core.bids import Bid
from repro.core.mechanism import FMoreMechanism
from repro.core.scoring import MultiplicativeScore


@pytest.fixture(scope="module")
def bids_1000(bench_solver):
    rng = np.random.default_rng(0)
    thetas = bench_solver.model.distribution.sample(rng, 1000)
    return [
        Bid(i, *bench_solver.bid(float(t))) for i, t in enumerate(np.asarray(thetas))
    ]


def test_micro_equilibrium_bid(benchmark, bench_solver):
    """One node's bid computation (Algorithm 1 lines 6-7)."""
    result = benchmark(lambda: bench_solver.bid(0.37))
    quality, payment = result
    assert payment > 0


def test_micro_solver_build(benchmark):
    """The one-off strategy-table build each node performs per game."""
    from repro.core.costs import LinearCost
    from repro.core.equilibrium import EquilibriumSolver
    from repro.core.valuation import PrivateValueModel, UniformTheta

    def build():
        return EquilibriumSolver(
            MultiplicativeScore(2, 25.0),
            LinearCost([4.0, 2.0]),
            PrivateValueModel(UniformTheta(0.1, 1.0), 100, 20),
            [[0.01, 5.0], [0.05, 1.0]],
            grid_size=129,
        )

    solver = benchmark(build)
    assert solver.margin(0.5) >= 0.0


def test_micro_bid_batch_100(benchmark, bench_solver):
    """Batch-pricing 100 capacity-capped bids must beat the loop >= 5x."""
    rng = np.random.default_rng(3)
    thetas = np.asarray(bench_solver.model.distribution.sample(rng, 100))
    caps = np.column_stack(
        [rng.uniform(0.5, 5.0, 100), rng.uniform(0.2, 1.0, 100)]
    )

    def loop():
        return [
            bench_solver.bid_with_capacity(float(t), c)
            for t, c in zip(thetas, caps)
        ]

    def batch():
        return bench_solver.bid_batch(thetas, caps)

    # Correctness first: identical bids either way.
    qualities, payments = batch()
    for i, (q, p) in enumerate(loop()):
        np.testing.assert_array_equal(qualities[i], q)
        assert payments[i] == p

    def best_of(fn, repeats=7, number=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(number):
                fn()
            best = min(best, (time.perf_counter() - start) / number)
        return best

    t_loop = best_of(loop)
    t_batch = best_of(batch)
    speedup = t_loop / t_batch
    benchmark.extra_info["loop_ms"] = t_loop * 1e3
    benchmark.extra_info["speedup"] = speedup
    benchmark(batch)
    assert speedup >= 5.0, f"bid_batch speedup {speedup:.1f}x < 5x"


def test_micro_winner_determination_1000(benchmark, bench_solver, bids_1000):
    """Score + sort + select at N=1000 (the aggregator's round cost)."""
    auction = MultiDimensionalProcurementAuction(bench_solver.quality_rule, 20)
    rng = np.random.default_rng(1)
    out = benchmark(lambda: auction.run(bids_1000, rng))
    assert len(out.winners) == 20


def test_micro_mechanism_round_500(benchmark, bench_solver):
    """A full protocol round with 500 bidding agents."""

    class QuickAgent:
        def __init__(self, node_id, theta, solver):
            self.node_id = node_id
            self._theta = theta
            self._solver = solver

        def make_bid(self, round_index, rng):
            q, p = self._solver.bid(self._theta)
            return Bid(self.node_id, q, p)

    rng = np.random.default_rng(2)
    thetas = bench_solver.model.distribution.sample(rng, 500)
    agents = [
        QuickAgent(i, float(t), bench_solver) for i, t in enumerate(np.asarray(thetas))
    ]
    auction = MultiDimensionalProcurementAuction(bench_solver.quality_rule, 20)
    mechanism = FMoreMechanism(auction)
    record = benchmark(lambda: mechanism.run_round(agents, 1, rng))
    assert record.accounting.n_bids == 500


def test_micro_strategic_round_500(benchmark, bench_solver):
    """A mixed-population round (20% markup bidders) vs the truthful path.

    The strategic partition still prices every (policy, solver) group
    through one ``bid_batch`` call, so attaching policies to a fifth of
    the population must not fall off the vectorised cliff: the full
    round — partition, shade, winner determination, feedback dispatch —
    is asserted to stay within 3x of the all-truthful round.
    """
    from repro.mec.node import EdgeNode
    from repro.mec.resources import ResourceProfile
    from repro.strategic.policies import FixedMarkupBidding

    def build_agents():
        rng = np.random.default_rng(4)
        thetas = np.asarray(bench_solver.model.distribution.sample(rng, 500))
        return [
            EdgeNode(i, float(t), bench_solver, ResourceProfile(3000, 0.9))
            for i, t in enumerate(thetas)
        ]

    auction = MultiDimensionalProcurementAuction(bench_solver.quality_rule, 20)
    truthful = FMoreMechanism(auction)
    strategic = FMoreMechanism(
        auction,
        bid_policies={i: FixedMarkupBidding(markup=0.1) for i in range(100)},
        bidding_rng=np.random.default_rng(0),
    )
    agents = build_agents()

    def best_of(mechanism, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            rng = np.random.default_rng(2)
            start = time.perf_counter()
            mechanism.run_round(agents, 1, rng)
            best = min(best, time.perf_counter() - start)
        return best

    t_truthful = best_of(truthful)
    t_strategic = best_of(strategic)
    overhead = t_strategic / t_truthful
    benchmark.extra_info["truthful_ms"] = t_truthful * 1e3
    benchmark.extra_info["overhead"] = overhead
    record = benchmark(
        lambda: strategic.run_round(agents, 1, np.random.default_rng(2))
    )
    assert record.accounting.n_bids == 500
    assert overhead <= 3.0, f"strategic round overhead {overhead:.2f}x > 3x"
