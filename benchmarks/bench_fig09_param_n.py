"""Fig. 9 — the impact of the population size N.

9a (paper): rounds needed to reach target accuracies for N=50 vs N=100 —
more nodes give the auction better candidates, cutting rounds by ~28% at
84% accuracy.  Bench scale compares N=15 vs N=30 at fixed K.

9b (paper): average winner payment p falls and winner score rises as N
grows from 50 to 200 (more competition benefits the aggregator) — Theorem 2
in action.  Regenerated exactly at the paper's N values via Monte-Carlo
over equilibrium bids.
"""

from __future__ import annotations

from repro.analysis import payment_score_sweep_n
from repro.api import Scenario, run_scheme
from repro.sim import preset
from repro.sim.reporting import paper_vs_measured, series_table
from repro.sim.rng import rng_from

from .common import emit, run_once

N_VALUES_PAPER = (50, 80, 110, 140, 170, 200)
TARGETS = (0.5, 0.6, 0.7, 0.8)
SEED = 1


def _run(bench_solver):
    # --- 9a: training speed for a small vs large population -------------
    rows_9a = {}
    for n_clients in (15, 30):
        cfg = preset("bench", "mnist_o").with_(n_clients=n_clients, k_winners=6)
        history = run_scheme(Scenario.from_config(cfg), "FMore", SEED)
        rows_9a[f"N={n_clients}"] = [history.rounds_to(t) for t in TARGETS]

    table_9a = series_table(
        "fig09a: rounds to reach target accuracy (FMore, bench scale)",
        "target_accuracy",
        [f"{t:.0%}" for t in TARGETS],
        rows_9a,
    )

    # --- 9b: payment and score vs N at the paper's population sizes -----
    sweep = payment_score_sweep_n(
        bench_solver, N_VALUES_PAPER, rng_from(SEED, "fig09b"), n_draws=120
    )
    table_9b = series_table(
        "fig09b: winner payment p and score vs N (K=20, equilibrium Monte-Carlo)",
        "N",
        [n for n, _ in sweep],
        {
            "payment": [round(ws.mean_payment, 3) for _, ws in sweep],
            "score": [round(ws.mean_score, 3) for _, ws in sweep],
        },
    )

    payments = [ws.mean_payment for _, ws in sweep]
    scores = [ws.mean_score for _, ws in sweep]
    rounds_small = rows_9a["N=15"]
    rounds_large = rows_9a["N=30"]
    reductions = [
        (s, l) for s, l in zip(rounds_small, rounds_large) if s is not None and l is not None
    ]
    measured_reduction = (
        100.0 * sum(s - l for s, l in reductions) / max(sum(s for s, _ in reductions), 1)
        if reductions
        else None
    )
    block = paper_vs_measured(
        [
            (
                "round reduction, small N -> large N",
                "28% (N=50 -> N=100 at 84%)",
                None if measured_reduction is None else f"{measured_reduction:.0f}%",
            ),
            ("payment p monotone in N", "decreasing", "decreasing" if payments[0] > payments[-1] else "NOT decreasing"),
            ("winner score monotone in N", "increasing", "increasing" if scores[-1] > scores[0] else "NOT increasing"),
        ],
        title="fig09 paper vs measured",
    )
    emit("fig09_param_n", "\n\n".join([table_9a, table_9b, block]))
    return payments, scores


def test_fig09_param_n(benchmark, bench_solver):
    payments, scores = run_once(benchmark, lambda: _run(bench_solver))
    assert payments[0] > payments[-1]   # Fig 9b / Theorem 2 direction
    assert scores[-1] > scores[0]
