"""Shared driver for the accuracy/loss-per-round figures (Figs 4-7).

Each of the four dataset figures plots accuracy and loss versus training
round for FMore, RandFL and FixFL.  This driver runs the three schemes on
the shared federation for each bench seed, averages the curves, prints the
two series tables and the paper-vs-measured block, and returns the
histories for additional assertions.
"""

from __future__ import annotations

from repro.analysis import headline_metrics
from repro.api import FMoreEngine, Scenario
from repro.fl.metrics import round_reduction
from repro.sim import preset
from repro.sim.reporting import paper_vs_measured, series_table

from .common import BENCH_SEEDS, emit, fmt_curve, mean_series

SCHEMES = ("FMore", "RandFL", "FixFL")


def run_accuracy_loss_figure(
    dataset: str,
    fig_name: str,
    target_accuracy: float,
    paper_speedup_pct: float,
    paper_target_note: str,
):
    """Run one Fig 4-7 experiment and emit its report."""
    cfg = preset("bench", dataset)
    scenario = Scenario.from_config(cfg, schemes=SCHEMES, seeds=tuple(BENCH_SEEDS))
    per_scheme = FMoreEngine().run(scenario).histories

    rounds = list(range(1, cfg.n_rounds + 1))
    acc = {s: fmt_curve(mean_series(h, "accuracies")) for s, h in per_scheme.items()}
    loss = {s: fmt_curve(mean_series(h, "losses")) for s, h in per_scheme.items()}

    # Rounds-to-target on the seed-averaged curves (the paper's speed metric).
    def rounds_to(series):
        for i, a in enumerate(series):
            if a >= target_accuracy:
                return i + 1
        return None

    r_fmore = rounds_to(acc["FMore"])
    r_rand = rounds_to(acc["RandFL"])
    measured_speedup = round_reduction(r_rand, r_fmore)

    last = {s: acc[s][-1] for s in SCHEMES}
    text = "\n\n".join(
        [
            series_table(
                f"{fig_name}: accuracy per round ({dataset}, bench scale, "
                f"{len(BENCH_SEEDS)} seeds)",
                "round",
                rounds,
                acc,
            ),
            series_table(f"{fig_name}: loss per round", "round", rounds, loss),
            paper_vs_measured(
                [
                    (
                        f"training speed-up vs RandFL ({paper_target_note})",
                        f"{paper_speedup_pct}%",
                        None if measured_speedup is None else f"{measured_speedup:.0f}%",
                    ),
                    (
                        f"rounds to {target_accuracy:.0%} (RandFL -> FMore)",
                        "see figure",
                        f"{r_rand} -> {r_fmore}",
                    ),
                    (
                        "final-round ordering",
                        "FMore > RandFL > FixFL",
                        " > ".join(
                            sorted(last, key=lambda s: -last[s])
                        ),
                    ),
                    ("final accuracy FMore", "task-specific", last["FMore"]),
                    ("final accuracy RandFL", "task-specific", last["RandFL"]),
                    ("final accuracy FixFL", "task-specific", last["FixFL"]),
                ],
                title=f"{fig_name} paper vs measured",
            ),
        ]
    )
    emit(fig_name, text)
    return per_scheme
