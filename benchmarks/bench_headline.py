"""Headline numbers of the paper's abstract and Section V.

* Simulations: FMore cuts training rounds by 51.3% on average and improves
  model accuracy by 28% for the LSTM task.
* Real-world: accuracy +44.9%, training time -38.4%.

This bench recomputes all four dataset comparisons (one seed, bench scale)
plus the cluster run, and prints the aggregate table.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import headline_metrics
from repro.api import FMoreEngine, Scenario
from repro.sim import preset
from repro.sim.cluster_experiment import ClusterConfig, run_cluster_comparison
from repro.sim.reporting import paper_vs_measured

from .common import emit, run_once

SEED = 1
# Mid-curve targets on our synthetic tasks' accuracy scales.
TARGETS = {"mnist_o": 0.8, "mnist_f": 0.5, "cifar10": 0.35, "hpnews": 0.3}


def _run():
    reductions = []
    lstm_improvement = None
    for dataset, target in TARGETS.items():
        cfg = preset("bench", dataset)
        scenario = Scenario.from_config(cfg, schemes=("FMore", "RandFL"), seeds=(SEED,))
        results = FMoreEngine().run(scenario).comparison()
        metrics = headline_metrics(results, target_accuracy=target)
        if metrics.round_reduction_pct is not None:
            reductions.append(metrics.round_reduction_pct)
        if dataset == "hpnews":
            lstm_improvement = metrics.accuracy_improvement_pct

    cluster_cfg = ClusterConfig(
        n_nodes=31, k_winners=8, n_rounds=12, size_range=(150, 900),
        test_per_class=25, model_width=0.18,
    )
    cluster = run_cluster_comparison(cluster_cfg, ("FMore", "RandFL"), seed=SEED)
    cluster_metrics = headline_metrics(cluster, target_accuracy=0.25)
    # The paper's 38.4% is the reduction of *total* 20-round wall clock;
    # time-to-target can be undefined at bench scale, so report the total.
    total_time_reduction = 100.0 * (
        cluster["RandFL"].cumulative_seconds[-1] - cluster["FMore"].cumulative_seconds[-1]
    ) / cluster["RandFL"].cumulative_seconds[-1]

    mean_reduction = float(np.mean(reductions)) if reductions else None
    rows = [
        (
            "avg training-round reduction (4 tasks)",
            "51.3%",
            None if mean_reduction is None else f"{mean_reduction:.1f}%",
        ),
        (
            "LSTM accuracy improvement vs RandFL",
            "+28%",
            None if lstm_improvement is None else f"{lstm_improvement:+.1f}%",
        ),
        (
            "cluster accuracy improvement",
            "+44.9%",
            f"{cluster_metrics.accuracy_improvement_pct:+.1f}%",
        ),
        (
            "cluster total-time reduction",
            "38.4%",
            f"{total_time_reduction:.1f}%",
        ),
    ]
    emit("headline", paper_vs_measured(rows, title="headline paper vs measured"))
    return mean_reduction, lstm_improvement


def test_headline_numbers(benchmark):
    mean_reduction, lstm_improvement = run_once(benchmark, _run)
    # The paper's directional claims: FMore trains in fewer rounds and the
    # LSTM task benefits most in final accuracy.
    assert mean_reduction is None or mean_reduction > 0.0
    assert lstm_improvement is None or lstm_improvement > 0.0
