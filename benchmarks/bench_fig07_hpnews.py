"""Fig. 7 — accuracy and loss for the LSTM on HPNews, three schemes.

Paper result: at round 20 FMore reaches 60.4% while FixFL manages 40.6%;
the text task needs data diversity most, so the auction's selection of
diverse nodes dominates (68% speed-up to 46% accuracy).
"""

from .common import run_once
from .figcurves import run_accuracy_loss_figure


def test_fig07_hpnews(benchmark):
    per_scheme = run_once(
        benchmark,
        lambda: run_accuracy_loss_figure(
            dataset="hpnews",
            fig_name="fig07_hpnews",
            target_accuracy=0.30,
            paper_speedup_pct=68.0,
            paper_target_note="paper: to 46% accuracy",
        ),
    )
    final_fmore = sum(h.final_accuracy for h in per_scheme["FMore"]) / len(
        per_scheme["FMore"]
    )
    final_fix = sum(h.final_accuracy for h in per_scheme["FixFL"]) / len(
        per_scheme["FixFL"]
    )
    assert final_fmore > final_fix
