"""Shared helpers for the figure-regeneration benchmarks.

Every ``bench_figXX`` module regenerates one figure of the paper's
evaluation at ``bench`` scale: it runs the experiment once inside
pytest-benchmark (so the harness reports its cost), prints the same series
the paper plots, and appends a paper-vs-measured block.  All output is also
written to ``results/<name>.txt`` so the series survive pytest's output
capture; EXPERIMENTS.md indexes those files.

Scale note: the synthetic datasets reproduce the paper's *relative*
behaviour (scheme ordering, speed-ups, monotonicities), not its absolute
accuracies; each bench therefore reports rounds-to-target at targets picked
on our tasks' accuracy scale, next to the paper's own numbers.
"""

from __future__ import annotations

import os
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "results"

# Seeds averaged by the heavy FL benches.  The paper averages five runs;
# default to two here for bench-time sanity, override with REPRO_BENCH_SEEDS.
BENCH_SEEDS = tuple(
    int(s) for s in os.environ.get("REPRO_BENCH_SEEDS", "1,2").split(",")
)


def emit(name: str, text: str) -> None:
    """Print a report block and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    print(banner + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def mean_series(histories, attr: str):
    """Seed-averaged per-round series from a list of TrainingHistory."""
    import numpy as np

    data = np.stack([np.asarray(getattr(h, attr), dtype=float) for h in histories])
    return data.mean(axis=0)


def fmt_curve(values, digits: int = 3):
    return [round(float(v), digits) for v in values]
