"""Two-tier auction latency: million-bidder rounds through the shards.

The flat ``FMoreMechanism.run_round`` walks every agent in Python — fine
at the paper's N~100, hopeless at MEC scale.  The hierarchical variant
(:mod:`repro.core.hierarchy`) prices the whole sharded population through
grouped ``bid_batch`` calls and ranks each cluster with an O(n_c)
argpartition, so one two-tier round stays within seconds at N=10^5-10^6.
This bench tracks that claim as numbers:

* **hier round** — one complete two-tier round (availability/type draws,
  equilibrium pricing, per-cluster winner determination, head auction,
  payments) at N = 10^4 / 10^5 / 10^6 (quick mode: 10^4 and 10^5).
* **flat round** — the flat single-auction protocol round at N = 10^4,
  the baseline the tentpole speedup gate compares against.
* **speedup gate** — hierarchical must beat flat by >= 5x at N = 10^4
  (*asserted*, like the grid-build and bid-batch gates).

The ``hier:<n>`` round timings join ``bench_compare.py``'s >20%
perf-trajectory gate through the ``BENCH_hier_round.json`` CI artifact.

Run standalone (writes ``BENCH_hier_round.json`` for the CI artifact)::

    PYTHONPATH=src python benchmarks/bench_hierarchical.py --quick

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_hierarchical.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_hier_round.json"

K_WINNERS = 20
MIN_SPEEDUP = 5.0
#: Mean bidders per edge cluster; C = N / this.
CLUSTER_SIZE = 100


def _scenario(n: int):
    """The bench game at population ``n``, sharded into N/100 clusters."""
    from repro.api import Scenario

    count = max(2, n // CLUSTER_SIZE)
    return Scenario.from_preset(
        "bench",
        "mnist_o",
        schemes=("FMore",),
        name=f"bench-hier-{n}",
        variant="hierarchical",
        n_clients=n,
        k_winners=K_WINNERS,
        clusters={
            "count": count,
            "k_clusters": min(10, count),
            "k_local": 2,
            "size_dist": "lognormal",
        },
    )


def _best_of(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _hier_mechanism(n: int):
    """A ready-to-run :class:`HierarchicalMechanism` at population ``n``.

    Model-free, like the flat ``round`` gate in ``bench_grid_build.py``:
    the sharded population and the mechanism are built exactly as the
    engine builds them, but no FL clients or datasets exist — the timing
    is the auction hot path alone.
    """
    from repro.api import build_solver
    from repro.api.engine import SAMPLES_PER_QUALITY_UNIT
    from repro.core.auction import MultiDimensionalProcurementAuction
    from repro.core.hierarchy import HierarchicalMechanism, build_population
    from repro.core.registry import THETA_DISTRIBUTIONS, WINNER_SELECTIONS
    from repro.sim.rng import rng_from

    scenario = _scenario(n)
    solver = build_solver(scenario)
    distribution = THETA_DISTRIBUTIONS.create(scenario.theta)
    thetas = distribution.sample(rng_from(0, f"theta-{scenario.name}"), n)
    population = build_population(
        n,
        np.asarray(thetas),
        scenario.size_range,
        scenario.clusters,
        rng_from(0, f"hier-pop-{scenario.name}"),
        rng_from(
            scenario.clusters["assignment_seed"],
            f"hier-clusters-{scenario.name}",
        ),
        category_floor=0.05,
        availability_min_fraction=scenario.availability_min_fraction,
        theta_jitter=scenario.theta_jitter,
        theta_support=(distribution.lo, distribution.hi),
        samples_per_quality_unit=SAMPLES_PER_QUALITY_UNIT,
    )
    auction = MultiDimensionalProcurementAuction(
        solver.quality_rule,
        scenario.clusters["k_clusters"],
        selection=WINNER_SELECTIONS.create("top_k"),
        ranking="top_k",
    )
    return scenario, HierarchicalMechanism(
        auction, population, solver, k_local=scenario.clusters["k_local"]
    )


def time_hier_round(n: int, repeats: int = 3) -> dict:
    """One full two-tier round at population ``n`` (best of ``repeats``).

    The mechanism is reused across repeats so the per-cluster-size solver
    clones stay warm (the steady state of a multi-round run); its history
    is cleared per call, and a fresh seeded RNG makes every repeat draw
    identically.
    """
    from repro.sim.rng import rng_from

    scenario, mechanism = _hier_mechanism(n)

    def one_round():
        mechanism.history.clear()
        mechanism.run_round((), 1, rng_from(0, "bench-hier-round"))

    one_round()  # warm the solver clones and the score tables
    seconds = _best_of(one_round, repeats)
    record = mechanism.history[-1]
    return {
        "n": n,
        "clusters": scenario.clusters["count"],
        "k_clusters": scenario.clusters["k_clusters"],
        "k_local": scenario.clusters["k_local"],
        "n_winners": len(record.outcome.winners),
        "seconds": seconds,
    }


def time_flat_round(n: int, repeats: int = 3) -> dict:
    """The flat single-auction protocol round at population ``n``.

    Solver-backed :class:`~repro.mec.node.EdgeNode` agents through
    ``FMoreMechanism.run_round`` — the exact baseline the hierarchical
    variant replaces, with the same type prior and resource laws.
    """
    from repro.api import build_solver
    from repro.core.auction import MultiDimensionalProcurementAuction
    from repro.core.mechanism import FMoreMechanism
    from repro.core.registry import THETA_DISTRIBUTIONS
    from repro.mec.node import EdgeNode
    from repro.mec.resources import ResourceProfile, UniformAvailabilityDynamics
    from repro.sim.rng import rng_from

    scenario = _scenario(n)
    solver = build_solver(scenario)
    distribution = THETA_DISTRIBUTIONS.create(scenario.theta)
    thetas = np.asarray(
        distribution.sample(rng_from(0, f"theta-{scenario.name}"), n)
    )
    lo, hi = scenario.size_range
    data_rng = rng_from(0, "bench-hier-flat-data")
    sizes = np.round(np.exp(data_rng.uniform(np.log(lo), np.log(hi), n)))
    cats = data_rng.uniform(0.05, 1.0, n)
    agents = [
        EdgeNode(
            node_id=i,
            theta=float(t),
            solver=solver,
            profile=ResourceProfile(int(sizes[i]), float(cats[i])),
            dynamics=UniformAvailabilityDynamics(
                scenario.availability_min_fraction
            ),
            theta_jitter=scenario.theta_jitter,
        )
        for i, t in enumerate(thetas)
    ]
    auction = MultiDimensionalProcurementAuction(solver.quality_rule, K_WINNERS)

    def one_round():
        FMoreMechanism(auction).run_round(
            agents, 1, rng_from(0, "bench-hier-round")
        )

    one_round()
    seconds = _best_of(one_round, repeats)
    return {"n": n, "k_winners": K_WINNERS, "seconds": seconds}


def run(quick: bool = True, out_path: Path | None = None) -> dict:
    repeats = 3 if quick else 5
    sizes = [10_000, 100_000] if quick else [10_000, 100_000, 1_000_000]
    hier = {str(n): time_hier_round(n, repeats=repeats) for n in sizes}
    flat = time_flat_round(10_000, repeats=repeats)
    speedup = flat["seconds"] / hier["10000"]["seconds"]
    payload = {
        "bench": "hier_round",
        "quick": quick,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "hier_round": hier,
        "flat_round": flat,
        "speedup_n1e4": speedup,
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_hier_round_beats_flat_5x_at_1e4():
    """Acceptance: the two-tier round >= 5x over flat at N=10^4."""
    hier = time_hier_round(10_000, repeats=3)
    flat = time_flat_round(10_000, repeats=3)
    speedup = flat["seconds"] / hier["seconds"]
    assert hier["n_winners"] > 0
    assert speedup >= MIN_SPEEDUP, (
        f"hierarchical speedup {speedup:.1f}x < {MIN_SPEEDUP}x (flat "
        f"{flat['seconds']:.3f}s vs hier {hier['seconds']:.3f}s at N=10^4)"
    )


def test_hier_round_completes_1e5_within_seconds():
    """Acceptance: one full two-tier round at N=10^5 in seconds, not minutes."""
    row = time_hier_round(100_000, repeats=1)
    assert row["n_winners"] > 0
    assert row["seconds"] < 10.0, f"N=10^5 round took {row['seconds']:.1f}s"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke settings")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="artifact path (JSON)"
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick, out_path=args.out)
    print(json.dumps(payload, indent=2))
    if payload["speedup_n1e4"] < MIN_SPEEDUP:
        print(
            f"FAILED: hierarchical speedup {payload['speedup_n1e4']:.1f}x "
            f"< {MIN_SPEEDUP}x at N=10^4",
            file=sys.stderr,
        )
        return 1
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
