"""Streaming-session overhead micro-bench: events must be (nearly) free.

``FMoreEngine.run`` is a consumer of the streaming session surface, so
draining ``engine.session(...)`` by hand and calling ``engine.run(...)``
execute the same per-round code; the only streaming extra is one
:class:`~repro.api.RoundEvent` construction per round.  This bench pins
that claim: manual event-by-event streaming must add **< 5%** wall-clock
over the batch call (plus a small absolute epsilon so sub-second timings
don't flake on noisy CI machines).

Run standalone (writes ``BENCH_session_stream.json``)::

    PYTHONPATH=src python benchmarks/bench_session_stream.py --quick

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_session_stream.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_session_stream.json"

MAX_OVERHEAD = 0.05          # streaming may cost at most 5% over run()
ABS_EPSILON_SECONDS = 0.05   # timer-noise allowance for tiny workloads


def _scenario(quick: bool):
    from repro.api import Scenario

    return Scenario.from_preset(
        "smoke",
        "mnist_o",
        schemes=("FMore",),
        seeds=(0,),
        n_rounds=2 if quick else 5,
        grid_size=33,
    )


def time_stream_vs_batch(quick: bool = True, repeats: int = 5) -> dict:
    """Best-of-``repeats`` wall-clock for batch run vs manual streaming."""
    from repro.api import FMoreEngine, Scenario  # noqa: F401

    scenario = _scenario(quick)
    engine = FMoreEngine()
    engine.run(scenario)  # warm the solver cache for both measurements

    def batch() -> None:
        engine.run(scenario)

    def stream() -> None:
        for scheme in scenario.schemes:
            for seed in scenario.seeds:
                for _event in engine.session(scenario, scheme, seed):
                    pass

    def best_of(fn) -> float:
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    batch_s = best_of(batch)
    stream_s = best_of(stream)
    overhead = stream_s / batch_s - 1.0
    return {
        "rounds": scenario.n_rounds,
        "repeats": repeats,
        "batch_seconds": batch_s,
        "stream_seconds": stream_s,
        "overhead": overhead,
        "max_overhead": MAX_OVERHEAD,
        "abs_epsilon_seconds": ABS_EPSILON_SECONDS,
        "within_bound": stream_s <= batch_s * (1.0 + MAX_OVERHEAD) + ABS_EPSILON_SECONDS,
    }


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_streaming_overhead_under_5_percent():
    row = time_stream_vs_batch(quick=True, repeats=5)
    assert row["within_bound"], (
        f"streaming {row['stream_seconds']:.4f}s vs batch "
        f"{row['batch_seconds']:.4f}s = {row['overhead']:+.1%} overhead "
        f"(bound {MAX_OVERHEAD:.0%} + {ABS_EPSILON_SECONDS}s)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke settings")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="artifact path (JSON)"
    )
    args = parser.parse_args(argv)
    row = time_stream_vs_batch(quick=args.quick, repeats=5 if args.quick else 9)
    payload = {"bench": "session_stream", "quick": args.quick, "stream": row}
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if not row["within_bound"]:
        print(
            f"FAILED: streaming overhead {row['overhead']:+.1%} exceeds bound",
            file=sys.stderr,
        )
        return 1
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
