"""Execution-layer benchmark: grid build, bid batching, round loop, sweeps.

Four timings feed the performance trajectory of the execution layer (the
first three are *gated* by ``bench_compare.py`` — a >20% regression
against the previous CI artifact fails the build; the sweep section is
informational):

* **grid build** — ``optimize_quality_batch`` versus the per-point
  ``optimize_quality`` loop at the paper's ``grid_size=257``, for each
  closed-form family (additive scoring with linear/quadratic/power costs).
  The batch pass must be bitwise-identical and at least 5x faster — that
  bound is *asserted*, not just reported.
* **bid batch** — ``EquilibriumSolver.bid_batch`` pricing a whole
  population's capacity-capped bids in one call, versus the per-agent
  ``bid_with_capacity`` loop, at the paper's population (N=100, K=20).
* **round** — one full auction round (bid ask, batched bid collection,
  winner determination, payments) through ``FMoreMechanism.run_round``
  with solver-backed agents.  Pure NumPy — the steadiest end-to-end
  protocol timing we can gate.
* **sweep** — one tiny multi-seed scenario run through each registered
  executor (serial/thread/process/distributed — the latter against a
  throwaway store, timing the full coordinator + spawned-worker path),
  recording wall-clock seconds and verifying the histories agree.

Run standalone (writes ``BENCH_grid_build.json`` for the CI artifact)::

    PYTHONPATH=src python benchmarks/bench_grid_build.py --quick

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_grid_build.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_grid_build.json"

GRID_SIZE = 257
MIN_SPEEDUP = 5.0


def _families():
    from repro.core.costs import LinearCost, PowerCost, QuadraticCost
    from repro.core.scoring import AdditiveScore

    rule = AdditiveScore([0.4, 0.3, 0.3])
    return [
        ("linear", rule, LinearCost([0.25, 0.25, 0.5])),
        ("quadratic", rule, QuadraticCost([0.25, 0.25, 0.5])),
        ("power", rule, PowerCost([0.25, 0.25, 0.5], [1.0, 1.5, 2.5])),
    ]


def time_grid_build(repeats: int = 5) -> dict:
    """Loop-vs-batch timings per closed-form family (best of ``repeats``)."""
    from repro.core.equilibrium import optimize_quality, optimize_quality_batch

    bounds = np.asarray([[0.0, 1.0]] * 3, dtype=float)
    thetas = np.linspace(0.1, 1.0, GRID_SIZE)
    out: dict[str, dict] = {}
    for name, rule, cost in _families():
        batch = optimize_quality_batch(rule, cost, thetas, bounds)
        loop = np.stack(
            [optimize_quality(rule, cost, float(t), bounds) for t in thetas]
        )
        bitwise_equal = bool((batch == loop).all())

        def best_of(fn):
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        loop_s = best_of(
            lambda: [optimize_quality(rule, cost, float(t), bounds) for t in thetas]
        )
        batch_s = best_of(lambda: optimize_quality_batch(rule, cost, thetas, bounds))
        out[name] = {
            "grid_size": GRID_SIZE,
            "loop_seconds": loop_s,
            "batch_seconds": batch_s,
            "speedup": loop_s / batch_s,
            "bitwise_equal": bitwise_equal,
        }
    return out


def _best_of(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _population(n_agents: int):
    """A deterministic (thetas, capacities) population of the paper's game."""
    from repro.api import Scenario, build_solver
    from repro.sim.rng import rng_from

    solver = build_solver(
        Scenario.from_preset("bench", "mnist_o"), n_clients=100, k_winners=20
    )
    rng = rng_from(0, "bench-bid-batch")
    thetas = rng.uniform(0.1, 1.0, n_agents)
    capacities = np.column_stack(
        [rng.uniform(0.2, 5.0, n_agents), rng.uniform(0.05, 1.0, n_agents)]
    )
    return solver, thetas, capacities


def time_bid_batch(repeats: int = 5, n_agents: int = 100) -> dict:
    """Vectorised population pricing vs the per-agent loop (best of N).

    ``batch_seconds`` is the gated trajectory number; the loop timing is
    recorded so the artifact also tracks the speedup.
    """
    solver, thetas, capacities = _population(n_agents)
    solver.bid_batch(thetas, capacities, with_costs=True)  # warm the tables

    def loop():
        for theta, cap in zip(thetas, capacities):
            solver.bid_with_capacity(float(theta), cap)

    loop_s = _best_of(loop, repeats)
    batch_s = _best_of(
        lambda: solver.bid_batch(thetas, capacities, with_costs=True), repeats
    )
    return {
        "n_agents": n_agents,
        "loop_seconds": loop_s,
        "batch_seconds": batch_s,
        "speedup": loop_s / batch_s,
    }


def time_round(repeats: int = 5, n_agents: int = 100) -> dict:
    """One full protocol round (steps 1-3 of Algorithm 1), best of N.

    Model-free: solver-backed agents bid through the batched collection
    path and the auction determines winners/payments, so the timing
    tracks the whole per-round auction hot path without FL training
    noise.
    """
    from repro.core.auction import MultiDimensionalProcurementAuction
    from repro.core.mechanism import FMoreMechanism
    from repro.mec.node import EdgeNode
    from repro.mec.resources import ResourceProfile, UniformAvailabilityDynamics
    from repro.sim.rng import rng_from

    solver, thetas, _ = _population(n_agents)
    data_rng = rng_from(0, "bench-round-data")
    agents = [
        EdgeNode(
            node_id=i,
            theta=float(t),
            solver=solver,
            profile=ResourceProfile(
                data_size=int(data_rng.integers(200, 5000)),
                category_proportion=float(data_rng.uniform(0.05, 1.0)),
            ),
            dynamics=UniformAvailabilityDynamics(0.35),
            theta_jitter=0.2,
        )
        for i, t in enumerate(thetas)
    ]
    auction = MultiDimensionalProcurementAuction(solver.quality_rule, 20)

    def one_round():
        # Fresh mechanism + fresh rng per call: identical draws every
        # repeat, and the mechanism history never grows across timings.
        FMoreMechanism(auction).run_round(agents, 1, rng_from(0, "bench-round"))

    one_round()  # warm any lazy state
    seconds = _best_of(one_round, repeats)
    return {"n_agents": n_agents, "k_winners": 20, "seconds": seconds}


def time_sweeps(quick: bool = True) -> dict:
    """Wall-clock of one multi-seed plan per executor (identical results)."""
    from repro.api import EXECUTORS, FMoreEngine, Scenario

    scenario = Scenario.from_preset(
        "smoke",
        "mnist_o",
        schemes=("FMore", "RandFL"),
        seeds=(0, 1) if quick else (0, 1, 2, 3),
        n_rounds=1 if quick else 3,
    )
    out: dict[str, dict] = {}
    reference = None
    # Serial first: it is the bitwise reference the others must match.
    names = ["serial"] + [n for n in EXECUTORS.names() if n != "serial"]
    for name in names:
        execution: dict = {"executor": name, "max_workers": 2}
        run_kwargs: dict = {}
        tmp_store = None
        if name in ("distributed", "service"):
            # The store-coordinated executors schedule through a store;
            # give each a throwaway one so the timing covers the whole
            # enqueue -> spawn workers -> manifests path (for "service"
            # that includes starting the embedded coordinator).
            execution["poll_interval"] = 0.1
            tmp_store = tempfile.TemporaryDirectory(prefix=f"bench-{name}-store-")
            run_kwargs["store"] = tmp_store.name
        plan = scenario.with_(execution=execution)
        try:
            t0 = time.perf_counter()
            result = FMoreEngine().run(plan, **run_kwargs)
            seconds = time.perf_counter() - t0
        finally:
            if tmp_store is not None:
                tmp_store.cleanup()
        flat = {
            scheme: [record for h in hists for record in h.records]
            for scheme, hists in result.histories.items()
        }
        if reference is None:
            reference = flat
        out[name] = {
            "seconds": seconds,
            "cells": len(plan.schemes) * len(plan.seeds),
            "matches_serial": flat == reference,
        }
    return out


def run(quick: bool = True, out_path: Path | None = None) -> dict:
    repeats = 3 if quick else 7
    grid = time_grid_build(repeats=repeats)
    bid_batch = time_bid_batch(repeats=repeats)
    round_timing = time_round(repeats=repeats)
    sweep = time_sweeps(quick=quick)
    payload = {
        "bench": "grid_build",
        "quick": quick,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "grid_build": grid,
        "bid_batch": bid_batch,
        "round": round_timing,
        "sweep": sweep,
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_grid_build_batch_5x_and_bitwise():
    """Acceptance: >=5x at grid_size=257 and bitwise-equal, every family."""
    grid = time_grid_build(repeats=3)
    for name, row in grid.items():
        assert row["bitwise_equal"], f"{name}: batch differs from loop"
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{name}: {row['speedup']:.1f}x < {MIN_SPEEDUP}x "
            f"(loop {row['loop_seconds']:.4f}s vs batch {row['batch_seconds']:.4f}s)"
        )


def test_sweep_executors_agree():
    sweep = time_sweeps(quick=True)
    assert set(sweep) >= {"serial", "thread", "process", "distributed"}
    for name, row in sweep.items():
        assert row["matches_serial"], f"{name} diverged from serial"


def test_bid_batch_section_tracks_speedup():
    """The gated bid-batch timing exists and the batch path stays >=5x."""
    row = time_bid_batch(repeats=3)
    assert row["batch_seconds"] > 0
    assert row["speedup"] >= MIN_SPEEDUP, (
        f"bid_batch {row['speedup']:.1f}x < {MIN_SPEEDUP}x (loop "
        f"{row['loop_seconds']:.4f}s vs batch {row['batch_seconds']:.4f}s)"
    )


def test_round_section_measures_full_protocol_round():
    row = time_round(repeats=3)
    assert row["seconds"] > 0
    assert row["n_agents"] == 100 and row["k_winners"] == 20


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke settings")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="artifact path (JSON)"
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick, out_path=args.out)
    print(json.dumps(payload, indent=2))
    failures = []
    for name, row in payload["grid_build"].items():
        if not row["bitwise_equal"] or row["speedup"] < MIN_SPEEDUP:
            failures.append(name)
    if payload["bid_batch"]["speedup"] < MIN_SPEEDUP:
        failures.append("bid_batch")
    for name, row in payload["sweep"].items():
        if not row["matches_serial"]:
            failures.append(f"sweep:{name}")
    if failures:
        print(f"FAILED: {failures}", file=sys.stderr)
        return 1
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
