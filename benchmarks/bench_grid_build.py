"""Execution-layer benchmark: vectorised grid build + sweep executors.

Two timings seed the performance trajectory of the unified execution
layer:

* **grid build** — ``optimize_quality_batch`` versus the per-point
  ``optimize_quality`` loop at the paper's ``grid_size=257``, for each
  closed-form family (additive scoring with linear/quadratic/power costs).
  The batch pass must be bitwise-identical and at least 5x faster — that
  bound is *asserted*, not just reported.
* **sweep** — one tiny multi-seed scenario run through each registered
  executor (serial/thread/process), recording wall-clock seconds and
  verifying the histories agree.

Run standalone (writes ``BENCH_grid_build.json`` for the CI artifact)::

    PYTHONPATH=src python benchmarks/bench_grid_build.py --quick

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_grid_build.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_grid_build.json"

GRID_SIZE = 257
MIN_SPEEDUP = 5.0


def _families():
    from repro.core.costs import LinearCost, PowerCost, QuadraticCost
    from repro.core.scoring import AdditiveScore

    rule = AdditiveScore([0.4, 0.3, 0.3])
    return [
        ("linear", rule, LinearCost([0.25, 0.25, 0.5])),
        ("quadratic", rule, QuadraticCost([0.25, 0.25, 0.5])),
        ("power", rule, PowerCost([0.25, 0.25, 0.5], [1.0, 1.5, 2.5])),
    ]


def time_grid_build(repeats: int = 5) -> dict:
    """Loop-vs-batch timings per closed-form family (best of ``repeats``)."""
    from repro.core.equilibrium import optimize_quality, optimize_quality_batch

    bounds = np.asarray([[0.0, 1.0]] * 3, dtype=float)
    thetas = np.linspace(0.1, 1.0, GRID_SIZE)
    out: dict[str, dict] = {}
    for name, rule, cost in _families():
        batch = optimize_quality_batch(rule, cost, thetas, bounds)
        loop = np.stack(
            [optimize_quality(rule, cost, float(t), bounds) for t in thetas]
        )
        bitwise_equal = bool((batch == loop).all())

        def best_of(fn):
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        loop_s = best_of(
            lambda: [optimize_quality(rule, cost, float(t), bounds) for t in thetas]
        )
        batch_s = best_of(lambda: optimize_quality_batch(rule, cost, thetas, bounds))
        out[name] = {
            "grid_size": GRID_SIZE,
            "loop_seconds": loop_s,
            "batch_seconds": batch_s,
            "speedup": loop_s / batch_s,
            "bitwise_equal": bitwise_equal,
        }
    return out


def time_sweeps(quick: bool = True) -> dict:
    """Wall-clock of one multi-seed plan per executor (identical results)."""
    from repro.api import EXECUTORS, FMoreEngine, Scenario

    scenario = Scenario.from_preset(
        "smoke",
        "mnist_o",
        schemes=("FMore", "RandFL"),
        seeds=(0, 1) if quick else (0, 1, 2, 3),
        n_rounds=1 if quick else 3,
    )
    out: dict[str, dict] = {}
    reference = None
    # Serial first: it is the bitwise reference the others must match.
    names = ["serial"] + [n for n in EXECUTORS.names() if n != "serial"]
    for name in names:
        plan = scenario.with_(execution={"executor": name, "max_workers": 2})
        t0 = time.perf_counter()
        result = FMoreEngine().run(plan)
        seconds = time.perf_counter() - t0
        flat = {
            scheme: [record for h in hists for record in h.records]
            for scheme, hists in result.histories.items()
        }
        if reference is None:
            reference = flat
        out[name] = {
            "seconds": seconds,
            "cells": len(plan.schemes) * len(plan.seeds),
            "matches_serial": flat == reference,
        }
    return out


def run(quick: bool = True, out_path: Path | None = None) -> dict:
    grid = time_grid_build(repeats=3 if quick else 7)
    sweep = time_sweeps(quick=quick)
    payload = {
        "bench": "grid_build",
        "quick": quick,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "grid_build": grid,
        "sweep": sweep,
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_grid_build_batch_5x_and_bitwise():
    """Acceptance: >=5x at grid_size=257 and bitwise-equal, every family."""
    grid = time_grid_build(repeats=3)
    for name, row in grid.items():
        assert row["bitwise_equal"], f"{name}: batch differs from loop"
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{name}: {row['speedup']:.1f}x < {MIN_SPEEDUP}x "
            f"(loop {row['loop_seconds']:.4f}s vs batch {row['batch_seconds']:.4f}s)"
        )


def test_sweep_executors_agree():
    sweep = time_sweeps(quick=True)
    assert set(sweep) >= {"serial", "thread", "process"}
    for name, row in sweep.items():
        assert row["matches_serial"], f"{name} diverged from serial"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke settings")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="artifact path (JSON)"
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick, out_path=args.out)
    print(json.dumps(payload, indent=2))
    failures = []
    for name, row in payload["grid_build"].items():
        if not row["bitwise_equal"] or row["speedup"] < MIN_SPEEDUP:
            failures.append(name)
    for name, row in payload["sweep"].items():
        if not row["matches_serial"]:
            failures.append(f"sweep:{name}")
    if failures:
        print(f"FAILED: {failures}", file=sys.stderr)
        return 1
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
