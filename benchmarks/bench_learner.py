"""Learned-bidder training throughput: episodes and steps per second.

Each registered ``BID_LEARNERS`` entry (``q_table``, ``pg_mlp``) is
trained from scratch over the reference smoke cell and timed end to end
(env resets, acting, the learning updates — everything
``python -m repro train-bidder`` pays per episode).  The engine is
shared across repeats, so the timed number is the *warm* per-episode
cost, excluding the one-time solver-table build; best-of-``REPEATS``
is reported, the usual defence against runner noise.

The ``learn:*`` rows feed ``bench_compare.py``'s regression gate
(±20 % on seconds).  The bench also re-asserts the subsystem's core
promise while it is here: two identically-seeded training runs produce
bitwise-equal learner weights.

Run standalone (writes ``BENCH_learner.json`` for the CI artifact)::

    PYTHONPATH=src python benchmarks/bench_learner.py --quick

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_learner.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_learner.json"

#: Timing repeats per learner (best-of is reported).
REPEATS = 2

LEARNERS = ("q_table", "pg_mlp")


def _scenario(quick: bool):
    from repro.api import Scenario

    return Scenario.from_preset(
        "smoke",
        "mnist_o",
        schemes=("FMore",),
        seeds=(0,),
        n_clients=10,
        k_winners=3,
        n_rounds=2 if quick else 3,
        test_per_class=8,
        size_range=(60, 240),
        grid_size=17,
        model_width=0.12,
        batch_size=16,
    )


def time_learners(quick: bool = True) -> dict:
    """Best-of-``REPEATS`` training wall-clock per ``BID_LEARNERS`` entry."""
    from repro.api import FMoreEngine
    from repro.strategic.learn import BidLearnerTrainer

    scenario = _scenario(quick)
    episodes = 6 if quick else 30
    engine = FMoreEngine()
    # Warm the solver cache once so every timed repeat is comparable.
    BidLearnerTrainer(scenario, "q_table", engine=engine).train(1)
    out: dict[str, dict] = {}
    for name in LEARNERS:
        best = float("inf")
        steps = 0
        weights: list[np.ndarray] | None = None
        for _ in range(REPEATS):
            trainer = BidLearnerTrainer(scenario, name, engine=engine)
            t0 = time.perf_counter()
            curve = trainer.train(episodes)
            elapsed = time.perf_counter() - t0
            best = min(best, elapsed)
            steps = sum(int(row["steps"]) for row in curve)
            if weights is None:
                weights = trainer.learner.weights()
            else:
                deterministic = all(
                    np.array_equal(a, b)
                    for a, b in zip(weights, trainer.learner.weights())
                )
                if not deterministic:
                    raise AssertionError(
                        f"{name}: identically-seeded training runs diverged"
                    )
        out[name] = {
            "seconds": best,
            "episodes": episodes,
            "steps": steps,
            "steps_per_sec": steps / best if best > 0 else float("inf"),
        }
    return out


def run(quick: bool = True, out_path: Path | None = None) -> dict:
    payload = {
        "bench": "learner",
        "quick": quick,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "learn": time_learners(quick=quick),
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_training_throughput_is_positive_and_deterministic():
    """Acceptance: both learners train deterministically at nonzero rate."""
    learn = time_learners(quick=True)
    assert set(learn) == set(LEARNERS)
    for name, row in learn.items():
        assert row["steps"] > 0, name
        assert row["steps_per_sec"] > 0, name


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke settings")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="artifact path (JSON)"
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick, out_path=args.out)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
