"""Ablation bench for the paper-motivated extensions.

Quantifies the three mechanisms the paper mentions but does not evaluate:

* **Budget-constrained aggregation** (future work, Section VII): winner
  count and aggregator utility as the per-round purse shrinks, for the
  score-order and value-per-cost admission policies.
* **Blacklist enforcement** (Sections II-A/III-A): rounds until systematic
  under-deliverers are expelled, under different strike policies.
* **Per-node psi** (open question, Section VII): top-rank concentration of
  a decaying psi-of-rank profile vs uniform psi.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    AdditiveScore,
    Bid,
    Blacklist,
    BudgetedAuction,
    DeliveryReport,
    MultiDimensionalProcurementAuction,
    PerNodePsiSelection,
    PsiSelection,
    audit_round,
)
from repro.sim.reporting import ascii_table

from .common import emit, run_once


def _equilibrium_bids(solver, rng, n):
    thetas = solver.model.distribution.sample(rng, n)
    return [Bid(i, *solver.bid(float(t))) for i, t in enumerate(np.asarray(thetas))]


def _run(bench_solver):
    rng = np.random.default_rng(0)
    rule = bench_solver.quality_rule
    k = 20

    # --- budget ablation -------------------------------------------------
    bids = _equilibrium_bids(bench_solver, rng, 100)
    base = MultiDimensionalProcurementAuction(rule, k)
    unconstrained = base.run(list(bids), np.random.default_rng(1))
    budgets = [0.25, 0.5, 1.0, 2.0]
    budget_rows = []
    for frac in budgets:
        purse = frac * unconstrained.total_payment
        for mode in ("score_order", "value_per_cost"):
            out = BudgetedAuction(base, purse, mode=mode).run(
                list(bids), np.random.default_rng(1)
            )
            budget_rows.append(
                (
                    f"{frac:.2f}x",
                    mode,
                    len(out.winners),
                    round(out.total_payment, 3),
                    round(out.aggregator_profit(rule), 3),
                )
            )
    table_budget = ascii_table(
        ["budget (x unconstrained spend)", "mode", "winners", "spent", "aggregator profit"],
        budget_rows,
        title="extension 1: budget-constrained winner selection (N=100, K=20)",
    )

    # --- blacklist ablation ----------------------------------------------
    blacklist_rows = []
    for strikes in (1, 2, 3):
        bl = Blacklist(strikes_to_ban=strikes, tolerance=0.05)
        cheaters = set(range(0, 10))  # nodes 0-9 systematically deliver 50%
        rounds_to_clean = None
        for round_index in range(1, 31):
            agents_bids = [
                b for b in _equilibrium_bids(bench_solver, np.random.default_rng(round_index), 40)
                if not bl.is_banned(b.node_id)
            ]
            out = MultiDimensionalProcurementAuction(rule, 8).run(
                agents_bids, np.random.default_rng(round_index)
            )
            reports = {}
            for w in out.winners:
                factor = 0.5 if w.node_id in cheaters else 1.0
                reports[w.node_id] = DeliveryReport(w.node_id, w.quality * factor)
            audit_round(out, reports, bl, round_index)
            if cheaters <= bl.banned and rounds_to_clean is None:
                rounds_to_clean = round_index
                break
        blacklist_rows.append(
            (strikes, len(bl.banned), rounds_to_clean, len(bl.violations))
        )
    table_blacklist = ascii_table(
        ["strikes to ban", "banned nodes", "rounds to expel all cheaters", "violations filed"],
        blacklist_rows,
        title="extension 2: blacklist enforcement (10 under-deliverers of 40)",
    )

    # --- per-node psi ablation --------------------------------------------
    policies = {
        "uniform psi=0.6": PsiSelection(0.6),
        "decaying 0.95-0.03*rank": PerNodePsiSelection(
            lambda rank: max(0.95 - 0.03 * rank, 0.1)
        ),
        "floor-heavy 0.5 flat + hot top5": PerNodePsiSelection(
            lambda rank: 0.9 if rank < 5 else 0.5
        ),
    }
    psi_rows = []
    for name, policy in policies.items():
        top10 = 0
        trials = 400
        for seed in range(trials):
            chosen = policy.select(40, 8, np.random.default_rng(seed))
            top10 += sum(1 for pos in chosen if pos < 10)
        psi_rows.append((name, round(top10 / trials, 2)))
    table_psi = ascii_table(
        ["policy", "mean winners from top-10 (of 8 slots)"],
        psi_rows,
        title="extension 3: per-node psi profiles (N=40, K=8)",
    )

    emit("extensions", "\n\n".join([table_budget, table_blacklist, table_psi]))
    return budget_rows, blacklist_rows, psi_rows


def test_extensions(benchmark, bench_solver):
    budget_rows, blacklist_rows, psi_rows = run_once(benchmark, lambda: _run(bench_solver))
    # Tighter budgets never buy more winners.
    by_mode = {}
    for frac, mode, winners, _, _ in budget_rows:
        by_mode.setdefault(mode, []).append(winners)
    for counts in by_mode.values():
        assert all(b >= a for a, b in zip(counts, counts[1:]))
    # Zero-tolerance bans fastest.
    assert blacklist_rows[0][2] is not None
    # The decaying profile concentrates selection at the top vs uniform.
    assert psi_rows[1][1] > psi_rows[0][1]
