"""Fig. 12 — "real-world" CIFAR-10 accuracy and loss on the 32-node cluster.

Paper result (Section V-C): after 20 rounds on the 31-node testbed FMore
reaches 59.9% CIFAR-10 accuracy, a 44.9% relative improvement over RandFL,
whose curve also shows accuracy jitter.  Regenerated on the
:class:`~repro.mec.cluster.SimulatedCluster` substrate.
"""

from __future__ import annotations

from repro.fl.metrics import accuracy_improvement
from repro.sim.cluster_experiment import ClusterConfig, run_cluster_comparison
from repro.sim.reporting import paper_vs_measured, series_table

from .common import emit, fmt_curve, run_once

SEED = 1

CLUSTER_CFG = ClusterConfig(
    n_nodes=31,
    k_winners=8,
    n_rounds=15,
    size_range=(150, 900),
    test_per_class=30,
    model_width=0.18,
)


def _run():
    results = run_cluster_comparison(CLUSTER_CFG, ("FMore", "RandFL"), seed=SEED)
    rounds = list(range(1, CLUSTER_CFG.n_rounds + 1))
    acc = {s: fmt_curve(h.accuracies) for s, h in results.items()}
    loss = {s: fmt_curve(h.losses) for s, h in results.items()}
    improvement = accuracy_improvement(
        results["RandFL"].final_accuracy, results["FMore"].final_accuracy
    )
    text = "\n\n".join(
        [
            series_table(
                "fig12: cluster CIFAR-10 accuracy per round (31 nodes, K=8)",
                "round",
                rounds,
                acc,
            ),
            series_table("fig12: cluster CIFAR-10 loss per round", "round", rounds, loss),
            paper_vs_measured(
                [
                    ("FMore final accuracy", "59.9% (20 rounds)", acc["FMore"][-1]),
                    (
                        "relative accuracy improvement vs RandFL",
                        "+44.9%",
                        f"{improvement:+.1f}%",
                    ),
                ],
                title="fig12 paper vs measured",
            ),
        ]
    )
    emit("fig12_cluster_accuracy", text)
    return results


def test_fig12_cluster_accuracy(benchmark):
    results = run_once(benchmark, _run)
    assert results["FMore"].final_accuracy >= results["RandFL"].final_accuracy - 0.03
