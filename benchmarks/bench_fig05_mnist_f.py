"""Fig. 5 — accuracy and loss for the CNN on MNIST-F (Fashion), three schemes.

Paper result: a 42% speed-up to 84% accuracy.  Note Fig. 5's curves
*converge* by round 20 — the Fashion advantage is reaching mid-curve
accuracy earlier, not a higher asymptote — so the assertion checks
rounds-to-target on the seed-averaged curves.
"""

import numpy as np

from .common import mean_series, run_once
from .figcurves import run_accuracy_loss_figure

SPEED_TARGET = 0.40  # mid-curve on our synthetic Fashion task


def _rounds_to(series, target):
    for i, a in enumerate(series):
        if a >= target:
            return i + 1
    return len(series) + 1  # never reached: worst rank


def test_fig05_mnist_f(benchmark):
    per_scheme = run_once(
        benchmark,
        lambda: run_accuracy_loss_figure(
            dataset="mnist_f",
            fig_name="fig05_mnist_f",
            target_accuracy=SPEED_TARGET,
            paper_speedup_pct=42.0,
            paper_target_note="paper: to 84% accuracy",
        ),
    )
    acc_fmore = mean_series(per_scheme["FMore"], "accuracies")
    acc_rand = mean_series(per_scheme["RandFL"], "accuracies")
    # The paper's Fashion claim is speed: FMore reaches the mid-curve
    # target no later than RandFL.
    assert _rounds_to(acc_fmore, SPEED_TARGET) <= _rounds_to(acc_rand, SPEED_TARGET)
