"""Fig. 6 — accuracy and loss for the CNN on CIFAR-10, three schemes.

Paper result: the accuracy gap between FMore and the baselines is largest
on this challenging task (45% speed-up to 50% accuracy); FixFL plateaus
well below the others.
"""

from .common import run_once
from .figcurves import run_accuracy_loss_figure


def test_fig06_cifar10(benchmark):
    per_scheme = run_once(
        benchmark,
        lambda: run_accuracy_loss_figure(
            dataset="cifar10",
            fig_name="fig06_cifar10",
            target_accuracy=0.35,
            paper_speedup_pct=45.0,
            paper_target_note="paper: to 50% accuracy",
        ),
    )
    final_fmore = sum(h.final_accuracy for h in per_scheme["FMore"]) / len(
        per_scheme["FMore"]
    )
    final_fix = sum(h.final_accuracy for h in per_scheme["FixFL"]) / len(
        per_scheme["FixFL"]
    )
    assert final_fmore > final_fix
