"""Fig. 8 — distribution of the scores of selected nodes, per scheme.

The paper plots, for the CIFAR CNN (8a) and the HPNews LSTM (8b), the
distribution of equilibrium scores: of the whole population ("Total") and
of the nodes each scheme selects.  FMore's winners concentrate in the top
bins; RandFL samples the population distribution; FixFL repeats one draw.

RandFL and FixFL never collect bids, so their hypothetical scores are
recorded with :class:`~repro.analysis.ScoreTrackingSelection`.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ScoreTrackingSelection, score_histogram
from repro.core.auction import MultiDimensionalProcurementAuction
from repro.fl.selection import FixedSelection, RandomSelection
from repro.api import Scenario, build_agents, build_federation, build_solver, run_scheme
from repro.sim import preset
from repro.sim.reporting import series_table
from repro.sim.rng import rng_from

from .common import emit, run_once

DATASET = "cifar10"
SEED = 1
BINS = 8


def _run():
    cfg = Scenario.from_config(preset("bench", DATASET).with_(n_rounds=8))
    federation = build_federation(cfg, SEED)
    solver = build_solver(cfg)

    # FMore: scores come straight from the auction outcomes.
    h_fmore = run_scheme(cfg, "FMore", SEED, federation=federation, solver=solver)
    fmore_scores = [s for r in h_fmore.records for s in r.scores.values()]
    total_scores = [s for r in h_fmore.records for s in r.all_scores]

    # RandFL / FixFL: wrap with the tracking decorator.
    tracked_scores = {}
    for scheme, base_cls in (("RandFL", RandomSelection), ("FixFL", FixedSelection)):
        agents = build_agents(cfg, federation, solver)
        auction = MultiDimensionalProcurementAuction(solver.quality_rule, cfg.k_winners)
        client_ids = [c.client_id for c in federation.clients_data]
        if base_cls is RandomSelection:
            base = RandomSelection(client_ids, cfg.k_winners)
        else:
            base = FixedSelection(client_ids, cfg.k_winners, rng_from(SEED, "fig08-fix"))
        tracker = ScoreTrackingSelection(base, agents, auction)
        rng = rng_from(SEED, f"fig08-{scheme}")
        for t in range(1, cfg.n_rounds + 1):
            tracker.select(t, rng)
        tracked_scores[scheme] = [
            s for round_scores in tracker.tracked_scores for s in round_scores.values()
        ]

    lo = min(total_scores)
    hi = max(total_scores)
    edges, total_hist = score_histogram(total_scores, BINS, (lo, hi))
    _, fmore_hist = score_histogram(fmore_scores, BINS, (lo, hi))
    _, rand_hist = score_histogram(tracked_scores["RandFL"], BINS, (lo, hi))
    _, fix_hist = score_histogram(tracked_scores["FixFL"], BINS, (lo, hi))

    centers = [round(float(0.5 * (edges[i] + edges[i + 1])), 2) for i in range(BINS)]
    table = series_table(
        f"fig08: score distribution of selected nodes ({DATASET}, proportion %)",
        "score_bin",
        centers,
        {
            "Total": [round(v, 1) for v in total_hist],
            "FMore": [round(v, 1) for v in fmore_hist],
            "RandFL": [round(v, 1) for v in rand_hist],
            "FixFL": [round(v, 1) for v in fix_hist],
        },
    )

    # Mass in the top half of the score range, per scheme.
    def top_mass(hist):
        return float(np.sum(hist[BINS // 2 :]))

    summary = (
        f"\ntop-half-of-range mass: Total={top_mass(total_hist):.0f}% "
        f"FMore={top_mass(fmore_hist):.0f}% RandFL={top_mass(rand_hist):.0f}% "
        f"FixFL={top_mass(fix_hist):.0f}%"
        "\npaper: FMore selects only high-score nodes; RandFL mirrors Total."
    )
    emit("fig08_score_dist", table + summary)
    return {
        "total": total_hist,
        "fmore": fmore_hist,
        "rand": rand_hist,
        "fix": fix_hist,
    }


def test_fig08_score_distribution(benchmark):
    hists = run_once(benchmark, _run)
    n_bins = len(hists["total"])
    top = slice(n_bins // 2, n_bins)
    # FMore's winners live strictly higher in the score distribution.
    assert hists["fmore"][top].sum() >= hists["rand"][top].sum() - 1e-9
