"""Fig. 13 — "real-world" training time on the cluster: per round and to
target accuracy.

Paper result: 20 rounds of CIFAR-10 cost 1119.3 s under FMore — a 38.4%
reduction vs RandFL — and reaching 50% accuracy takes FMore 8 rounds
(427.7 s) vs RandFL's 17 (1552.7 s).  The auction's preference for
high-compute / high-bandwidth nodes shortens every synchronous round, and
needing fewer rounds compounds the saving.
"""

from __future__ import annotations

from repro.fl.metrics import speedup_percent, time_to_accuracy
from repro.sim.cluster_experiment import ClusterConfig, run_cluster_comparison
from repro.sim.reporting import paper_vs_measured, series_table

from .common import emit, fmt_curve, run_once

SEED = 2

CLUSTER_CFG = ClusterConfig(
    n_nodes=31,
    k_winners=8,
    n_rounds=15,
    size_range=(150, 900),
    test_per_class=30,
    model_width=0.18,
)
TARGETS = (0.2, 0.25, 0.3)


def _run():
    results = run_cluster_comparison(CLUSTER_CFG, ("FMore", "RandFL"), seed=SEED)
    rounds = list(range(1, CLUSTER_CFG.n_rounds + 1))
    cum = {s: fmt_curve(h.cumulative_seconds, 1) for s, h in results.items()}

    tta = {
        s: [
            time_to_accuracy(h.accuracies, h.cumulative_seconds, t)
            for t in TARGETS
        ]
        for s, h in results.items()
    }
    total_reduction = speedup_percent(
        results["RandFL"].cumulative_seconds[-1],
        results["FMore"].cumulative_seconds[-1],
    )
    text = "\n\n".join(
        [
            series_table(
                "fig13: cumulative training time per round (simulated seconds)",
                "round",
                rounds,
                cum,
            ),
            series_table(
                "fig13: time to reach target accuracy (simulated seconds)",
                "target_accuracy",
                [f"{t:.0%}" for t in TARGETS],
                {s: [None if v is None else round(v, 1) for v in vals] for s, vals in tta.items()},
            ),
            paper_vs_measured(
                [
                    (
                        "total training-time reduction vs RandFL",
                        "38.4% (1119.3s vs ~1817s)",
                        None if total_reduction is None else f"{total_reduction:.1f}%",
                    ),
                    (
                        "time to mid-curve accuracy (RandFL vs FMore)",
                        "1552.7s vs 427.7s (at 50%)",
                        f"{tta['RandFL'][-1]} vs {tta['FMore'][-1]} (at {TARGETS[-1]:.0%})",
                    ),
                ],
                title="fig13 paper vs measured",
            ),
        ]
    )
    emit("fig13_cluster_time", text)
    return results, total_reduction


def test_fig13_cluster_time(benchmark):
    results, total_reduction = run_once(benchmark, _run)
    # FMore rounds must not be slower overall: the auction prices compute
    # and bandwidth, so its winner set is at least as fast as random picks.
    assert total_reduction is not None and total_reduction > -10.0
