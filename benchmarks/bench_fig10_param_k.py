"""Fig. 10 — the impact of the winner count K.

10a (paper): larger K feeds the global model more data per round — to
reach 86% accuracy, K=5 needs 20 rounds while K=25 needs 15; returns
diminish beyond K~30.  Bench scale compares K=2 vs K=10.

10b (paper): winner payment rises with K (Theorem 3: less competition per
slot) while the marginal winner's score falls — regenerated exactly at the
paper's K values (5..35) with N=100.
"""

from __future__ import annotations

from repro.analysis import payment_score_sweep_k
from repro.api import Scenario, run_scheme
from repro.sim import preset
from repro.sim.reporting import paper_vs_measured, series_table
from repro.sim.rng import rng_from

from .common import emit, run_once

K_VALUES_PAPER = (5, 10, 15, 20, 25, 30, 35)
TARGETS = (0.5, 0.6, 0.7, 0.8)
SEED = 1


def _run(bench_solver):
    # --- 10a: training speed for small vs large K -----------------------
    rows_10a = {}
    for k in (2, 10):
        cfg = preset("bench", "mnist_o").with_(k_winners=k)
        history = run_scheme(Scenario.from_config(cfg), "FMore", SEED)
        rows_10a[f"K={k}"] = [history.rounds_to(t) for t in TARGETS]

    table_10a = series_table(
        "fig10a: rounds to reach target accuracy (FMore, bench scale)",
        "target_accuracy",
        [f"{t:.0%}" for t in TARGETS],
        rows_10a,
    )

    # --- 10b: payment and score vs K ------------------------------------
    sweep = payment_score_sweep_k(
        bench_solver, K_VALUES_PAPER, rng_from(SEED, "fig10b"), n_draws=120
    )
    table_10b = series_table(
        "fig10b: winner payment p and score vs K (N=100, equilibrium Monte-Carlo)",
        "K",
        [k for k, _ in sweep],
        {
            "payment": [round(ws.mean_payment, 3) for _, ws in sweep],
            "score": [round(ws.mean_score, 3) for _, ws in sweep],
        },
    )

    payments = [ws.mean_payment for _, ws in sweep]
    scores = [ws.mean_score for _, ws in sweep]
    block = paper_vs_measured(
        [
            ("payment p monotone in K", "increasing (Thm 3)", "increasing" if payments[-1] > payments[0] else "NOT increasing"),
            ("winner score monotone in K", "decreasing", "decreasing" if scores[0] > scores[-1] else "NOT decreasing"),
            (
                "rounds to top target, K small vs large",
                "20 (K=5) vs 15 (K=25) at 86%",
                f"{rows_10a['K=2'][-1]} (K=2) vs {rows_10a['K=10'][-1]} (K=10)",
            ),
        ],
        title="fig10 paper vs measured",
    )
    emit("fig10_param_k", "\n\n".join([table_10a, table_10b, block]))
    return payments, scores


def test_fig10_param_k(benchmark, bench_solver):
    payments, scores = run_once(benchmark, lambda: _run(bench_solver))
    assert payments[-1] > payments[0]   # Fig 10b / Theorem 3 direction
    assert scores[0] > scores[-1]
