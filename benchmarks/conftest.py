"""Benchmark fixtures: cached federations/solvers shared across benches."""

from __future__ import annotations

import pytest

from repro.sim import build_solver, preset


@pytest.fixture(scope="session")
def bench_solver():
    """The simulation-game solver at paper population size (N=100, K=20)."""
    cfg = preset("bench", "mnist_o")
    return build_solver(cfg, n_clients=100, k_winners=20)
