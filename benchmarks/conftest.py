"""Benchmark fixtures: cached federations/solvers shared across benches."""

from __future__ import annotations

import pytest

from repro.api import Scenario, build_solver


@pytest.fixture(scope="session")
def bench_solver():
    """The simulation-game solver at paper population size (N=100, K=20)."""
    scenario = Scenario.from_preset("bench", "mnist_o")
    return build_solver(scenario, n_clients=100, k_winners=20)
