"""Ablations over the equilibrium machinery's design choices.

DESIGN.md calls out three choices the paper leaves implicit; each gets a
quantified comparison here:

1. **Winning kernel** — the paper's Eq. 9 omits the binomial coefficients
   of the exact order statistic.  How different are the induced payments?
2. **Payment backend** — Euler (the paper's choice) vs RK4 vs direct
   quadrature: accuracy against the K=1 closed form.
3. **Payment rule** — first-score vs second-score revenue for the same
   equilibrium bid profile.
"""

from __future__ import annotations

import numpy as np

from repro.core.auction import MultiDimensionalProcurementAuction
from repro.core.bids import Bid
from repro.core.costs import QuadraticCost
from repro.core.equilibrium import EquilibriumSolver
from repro.core.scoring import AdditiveScore
from repro.core.valuation import PrivateValueModel, UniformTheta
from repro.sim.reporting import ascii_table, series_table

from .common import emit, run_once

THETAS = (0.15, 0.3, 0.5, 0.7, 0.9)


def _build(win_model: str, n=100, k=20, grid=257):
    rule = AdditiveScore([0.5, 0.5])
    cost = QuadraticCost([1.0, 1.0])
    model = PrivateValueModel(UniformTheta(0.1, 1.0), n_nodes=n, k_winners=k)
    return EquilibriumSolver(
        rule, cost, model, [[0, 10], [0, 1]], win_model=win_model, grid_size=grid
    )


def _run():
    # --- 1. paper vs exact winning kernel --------------------------------
    paper_solver = _build("paper")
    exact_solver = _build("exact")
    kernel_rows = []
    for theta in THETAS:
        p_paper = paper_solver.payment(theta)
        p_exact = exact_solver.payment(theta)
        rel = 100.0 * (p_exact - p_paper) / max(p_paper, 1e-12)
        kernel_rows.append((theta, round(p_paper, 4), round(p_exact, 4), f"{rel:+.1f}%"))
    table_kernel = ascii_table(
        ["theta", "payment (Eq.9 kernel)", "payment (exact kernel)", "delta"],
        kernel_rows,
        title="ablation 1: winning-kernel choice (N=100, K=20)",
    )

    # --- 2. payment backend accuracy vs the K=1 closed form --------------
    k1 = _build("paper", n=10, k=1, grid=513)
    backend_rows = []
    for method in ("euler", "rk4", "quadrature"):
        errs = []
        for theta in THETAS:
            ref = k1.payment_che_closed_form(theta)
            errs.append(abs(k1.payment(theta, method=method) - ref) / max(ref, 1e-12))
        backend_rows.append((method, f"{100 * max(errs):.4f}%"))
    table_backend = ascii_table(
        ["backend", "max relative error vs Che closed form"],
        backend_rows,
        title="ablation 2: payment ODE backend (K=1, N=10)",
    )

    # --- 3. first-score vs second-score revenue --------------------------
    rng = np.random.default_rng(0)
    solver = _build("paper", n=30, k=6, grid=129)
    first = MultiDimensionalProcurementAuction(solver.quality_rule, 6)
    second = MultiDimensionalProcurementAuction(
        solver.quality_rule, 6, payment_rule="second_score"
    )
    ratios = []
    for _ in range(40):
        thetas = solver.model.distribution.sample(rng, 30)
        bids = [Bid(i, *solver.bid(float(t))) for i, t in enumerate(np.asarray(thetas))]
        out1 = first.run(list(bids), np.random.default_rng(1))
        out2 = second.run(list(bids), np.random.default_rng(1))
        if out1.total_payment > 0:
            ratios.append(out2.total_payment / out1.total_payment)
    table_rules = ascii_table(
        ["metric", "value"],
        [
            ("mean second/first total-payment ratio", round(float(np.mean(ratios)), 3)),
            ("max ratio", round(float(np.max(ratios)), 3)),
        ],
        title="ablation 3: payment rule (equilibrium bid profile, N=30, K=6)",
    )
    emit(
        "ablation_equilibrium",
        "\n\n".join([table_kernel, table_backend, table_rules]),
    )
    return kernel_rows, backend_rows, ratios


def test_ablation_equilibrium(benchmark):
    kernel_rows, backend_rows, ratios = run_once(benchmark, _run)
    # Second-score auctions never pay less than first-score on the same bids.
    assert min(ratios) >= 1.0 - 1e-9
    # All backends stay within 1% of the closed form.
    for _, err in backend_rows:
        assert float(err.rstrip("%")) < 1.0
