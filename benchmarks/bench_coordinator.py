"""Coordination-tier benchmark: serial vs distributed vs service sweeps.

One 4-cell reference sweep (smoke preset, ``FMore``/``RandFL`` x seeds
0,1) is timed through the three coordination tiers:

* **serial** — the in-process reference (and the byte-identity anchor).
  Timed twice: a cold first run and a warm ``force=True`` re-run on the
  same engine, so the gated number excludes one-time solver-table
  builds, symmetrically with the warm service tier.
* **distributed** — the filesystem-polling executor with 2 spawned
  workers against a throwaway store (cold by construction: the polling
  tier has no warm fleet to reuse).
* **service** — the event-driven coordinator
  (:mod:`repro.api.coordinator`): a cold pass that pays for the embedded
  coordinator thread plus 2 worker spawns, then a warm ``force=True``
  re-sweep pushed to the *same* fleet — the number the service tier
  exists to optimise, and the gated one.

The gate (asserted here and by ``bench_compare.py``'s ``coord:*``
checks): the warm service sweep stays under ``2x`` the warm serial
sweep, and both non-serial tiers land byte-identical manifests.

Run standalone (writes ``BENCH_coordinator.json`` for the CI artifact)::

    PYTHONPATH=src python benchmarks/bench_coordinator.py --quick

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_coordinator.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_coordinator.json"

#: The warm service sweep must stay under this multiple of warm serial.
MAX_SERVICE_OVERHEAD = 2.0
#: Absolute slack on the 2x bound: the quick-mode serial sweep is
#: sub-second, so a relative band alone would flake on runner noise
#: (same rationale as ``bench_compare.DEFAULT_ABS_EPSILON_SECONDS``).
ABS_EPSILON_SECONDS = 0.25


def _scenario(quick: bool):
    from repro.api import Scenario

    return Scenario.from_preset(
        "smoke",
        "mnist_o",
        schemes=("FMore", "RandFL"),
        seeds=(0, 1),
        n_rounds=1 if quick else 3,
    )


def _cells(scenario) -> list[tuple[str, int]]:
    return [(s, d) for d in scenario.seeds for s in scenario.schemes]


def _manifest_bytes(root: Path) -> dict[str, bytes]:
    runs = Path(root) / "runs"
    return {
        str(p.relative_to(runs)): p.read_bytes()
        for p in sorted(runs.rglob("*.json"))
    }


def time_coordination_tiers(quick: bool = True) -> dict:
    """Wall-clock of the reference sweep per tier (+ overhead vs serial)."""
    from repro.api import ExperimentStore, FMoreEngine, ServiceExecutor

    scenario = _scenario(quick)
    cells = _cells(scenario)
    out: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="bench-coord-") as tmp:
        tmp = Path(tmp)
        # -- serial: the byte reference; warm re-run is the gated anchor.
        engine = FMoreEngine()
        t0 = time.perf_counter()
        engine.run(scenario, store=tmp / "serial")
        serial_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        engine.run(scenario, store=tmp / "serial", force=True)
        serial_s = time.perf_counter() - t0
        reference = _manifest_bytes(tmp / "serial")
        out["serial"] = {"seconds": serial_s, "cold_seconds": serial_cold}

        # -- distributed: filesystem polling, 2 spawned workers, cold.
        plan = scenario.with_(
            execution={
                "executor": "distributed",
                "max_workers": 2,
                "poll_interval": 0.1,
            }
        )
        t0 = time.perf_counter()
        FMoreEngine().run(plan, store=tmp / "distributed")
        dist_s = time.perf_counter() - t0
        out["distributed"] = {
            "seconds": dist_s,
            "overhead": dist_s / serial_s,
            "matches_serial": _manifest_bytes(tmp / "distributed") == reference,
        }

        # -- service: embedded coordinator + 2 warm workers on one
        # executor instance; the warm force re-sweep reuses the fleet.
        store = ExperimentStore(tmp / "service")
        executor = ServiceExecutor(max_workers=2, poll_interval=0.1)
        try:
            t0 = time.perf_counter()
            executor.execute_plan(scenario, cells, store)
            service_cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            executor.execute_plan(scenario, cells, store, force=True)
            service_warm = time.perf_counter() - t0
        finally:
            executor.close()
        out["service_cold"] = {
            "seconds": service_cold,
            "overhead": service_cold / serial_s,
        }
        out["service_warm"] = {
            "seconds": service_warm,
            "overhead": service_warm / serial_s,
            "matches_serial": _manifest_bytes(tmp / "service") == reference,
        }
    return out


def gate_failures(coordinator: dict) -> list[str]:
    """The ``coord:*`` gate verdicts over one artifact's tier timings."""
    failures: list[str] = []
    for name in ("distributed", "service_warm"):
        row = coordinator.get(name, {})
        if row.get("matches_serial") is False:
            failures.append(f"coord:{name}: manifests diverged from serial")
    warm = coordinator.get("service_warm", {})
    serial = coordinator.get("serial", {})
    if "seconds" in warm and "seconds" in serial:
        bound = serial["seconds"] * MAX_SERVICE_OVERHEAD + ABS_EPSILON_SECONDS
        if warm["seconds"] > bound:
            failures.append(
                f"coord:service_warm: {warm['seconds']:.3f}s > "
                f"{MAX_SERVICE_OVERHEAD:.0f}x serial "
                f"({serial['seconds']:.3f}s) + {ABS_EPSILON_SECONDS}s slack"
            )
    return failures


def run(quick: bool = True, out_path: Path | None = None) -> dict:
    payload = {
        "bench": "coordinator",
        "quick": quick,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cells": 4,
        "coordinator": time_coordination_tiers(quick=quick),
    }
    if out_path is not None:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_service_tier_under_2x_serial_and_bitwise():
    """Acceptance: warm service sweep <2x warm serial, byte-identical."""
    coordinator = time_coordination_tiers(quick=True)
    assert coordinator["service_warm"]["matches_serial"]
    assert coordinator["distributed"]["matches_serial"]
    failures = gate_failures(coordinator)
    assert not failures, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke settings")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="artifact path (JSON)"
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick, out_path=args.out)
    print(json.dumps(payload, indent=2))
    failures = gate_failures(payload["coordinator"])
    if failures:
        print(f"FAILED: {failures}", file=sys.stderr)
        return 1
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
