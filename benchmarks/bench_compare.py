"""Perf-trajectory gate: compare two ``BENCH_grid_build.json`` artifacts.

The ``bench-smoke`` CI job uploads the grid-build timings of every commit;
this script turns that stream of artifacts into a *tracked trajectory* by
comparing the current run against the previous one and failing on a
regression beyond the allowed band.

Only the vectorised ``batch_seconds`` per closed-form family is gated —
it is the hot path the execution layer optimises and the stablest timing
in the artifact (the sweep section trains neural nets and is reported but
not gated).  A missing/corrupt previous artifact is not an error: the
first run of a branch has nothing to compare against.

Usage::

    python benchmarks/bench_compare.py PREVIOUS.json CURRENT.json \
        [--max-regression 0.20]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_MAX_REGRESSION = 0.20
# Millisecond-scale timings swing wildly across hosted runners; below this
# absolute slack a relative band alone would flake on machine noise.
DEFAULT_ABS_EPSILON_SECONDS = 0.01


def load(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"note: cannot read {path}: {exc}")
        return None


def compare(
    previous: dict,
    current: dict,
    max_regression: float,
    abs_epsilon: float = DEFAULT_ABS_EPSILON_SECONDS,
) -> list[str]:
    """Human-readable comparison rows; returns the list of failures.

    A family regresses when it exceeds the relative band *and* the
    absolute slack: ``cur > prev * (1 + max_regression) + abs_epsilon``.
    The epsilon keeps millisecond-scale timings from flaking on runner
    noise (the bench itself already takes best-of-N per artifact).
    """
    failures: list[str] = []
    prev_grid = previous.get("grid_build", {})
    cur_grid = current.get("grid_build", {})
    print(f"{'family':<12} {'previous':>10} {'current':>10} {'ratio':>7}  verdict")
    for family in sorted(cur_grid):
        cur_s = float(cur_grid[family]["batch_seconds"])
        prev_row = prev_grid.get(family)
        if prev_row is None:
            print(f"{family:<12} {'-':>10} {cur_s:>10.4f} {'-':>7}  new family")
            continue
        prev_s = float(prev_row["batch_seconds"])
        ratio = cur_s / prev_s if prev_s > 0 else float("inf")
        regressed = cur_s > prev_s * (1.0 + max_regression) + abs_epsilon
        verdict = "REGRESSED" if regressed else "ok"
        print(f"{family:<12} {prev_s:>10.4f} {cur_s:>10.4f} {ratio:>7.2f}  {verdict}")
        if regressed:
            failures.append(
                f"{family}: batch build {prev_s:.4f}s -> {cur_s:.4f}s "
                f"({ratio:.2f}x > {1 + max_regression:.2f}x allowed "
                f"+ {abs_epsilon}s slack)"
            )
    # Sweep timings: reported for the trajectory, never gated (they train
    # models and swing with CI machine load).
    for name, row in sorted(current.get("sweep", {}).items()):
        prev_row = previous.get("sweep", {}).get(name, {})
        prev_s = prev_row.get("seconds")
        prev_txt = f"{prev_s:.3f}s" if isinstance(prev_s, (int, float)) else "-"
        print(f"sweep:{name:<11} {prev_txt:>9} -> {row['seconds']:.3f}s (informational)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous", type=Path, help="previous BENCH_grid_build.json")
    parser.add_argument("current", type=Path, help="current BENCH_grid_build.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="allowed fractional slowdown of grid-build batch_seconds "
        f"(default {DEFAULT_MAX_REGRESSION:.0%})",
    )
    parser.add_argument(
        "--abs-epsilon",
        type=float,
        default=DEFAULT_ABS_EPSILON_SECONDS,
        help="absolute slack in seconds added to the relative band "
        f"(default {DEFAULT_ABS_EPSILON_SECONDS}s; deflakes ms-scale timings)",
    )
    args = parser.parse_args(argv)
    if args.max_regression < 0:
        parser.error("--max-regression must be >= 0")
    if args.abs_epsilon < 0:
        parser.error("--abs-epsilon must be >= 0")

    current = load(args.current)
    if current is None:
        print("FAILED: current benchmark artifact is unreadable", file=sys.stderr)
        return 1
    previous = load(args.previous)
    if previous is None:
        print("no previous artifact; trajectory starts at this commit")
        return 0

    failures = compare(
        previous, current, args.max_regression, abs_epsilon=args.abs_epsilon
    )
    if failures:
        print("\nFAILED perf trajectory:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nperf trajectory ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
