"""Perf-trajectory gate: compare two benchmark JSON artifacts.

The ``bench-smoke`` CI job uploads the execution-layer timings of every
commit (``BENCH_grid_build.json`` and ``BENCH_hier_round.json``); this
script turns that stream of artifacts into a *tracked trajectory* by
comparing the current run against the previous one and failing on a
regression beyond the allowed band.

The gated sections are the pure-NumPy hot paths, the stablest timings in
each artifact:

* ``grid_build.<family>.batch_seconds`` — the vectorised strategy-table
  build per closed-form family,
* ``bid_batch.batch_seconds`` — whole-population bid pricing,
* ``round.seconds`` — one full auction round through the mechanism,
* ``hier_round.<n>.seconds`` — one full two-tier hierarchical round per
  population size (``bench_hierarchical.py``),
* ``learn.<name>.seconds`` — a fixed-episode learned-bidder training run
  per ``BID_LEARNERS`` entry (``bench_learner.py``),
* ``fl_round.<k>.serial.seconds`` — one serial FL round of the paper CNN
  per winner count (``bench_fl_round.py``).

Artifacts with a ``coordinator`` section (``bench_coordinator.py``) get
the ``coord:*`` gates: the warm service sweep must stay under 2x warm
serial, and every non-serial tier must have landed byte-identical
manifests.  These are *absolute* bounds on the current artifact (the
tiers train models, so their raw seconds are too noisy for the relative
trajectory band); the per-tier overheads are still printed against the
previous artifact so the trajectory stays visible.

Artifacts with an ``fl_round`` section (``bench_fl_round.py``) get the
``fl:*`` gates by the same split: the serial rows join the relative
trajectory band (they are single-threaded NumPy, stable), while the
thread/process rows carry absolute bounds — weights byte-identical to
serial always, and the best parallel pool >= 1.5x serial at K = 8 when
the recording machine had more than one CPU.

The sweep section trains neural nets and the flat-round baseline of the
hierarchical bench walks agents in Python — both are reported but not
gated.  A missing/corrupt previous artifact is not an error: the first
run of a branch has nothing to compare against, and a newly-added gate
starts its own trajectory.

Usage::

    python benchmarks/bench_compare.py PREVIOUS.json CURRENT.json \
        [--max-regression 0.20]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_MAX_REGRESSION = 0.20
# Millisecond-scale timings swing wildly across hosted runners; below this
# absolute slack a relative band alone would flake on machine noise.
DEFAULT_ABS_EPSILON_SECONDS = 0.01


def load(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"note: cannot read {path}: {exc}")
        return None


def _gated_timings(data: dict) -> dict[str, float]:
    """The gated ``label -> seconds`` entries present in an artifact.

    Labels are stable across commits so old and new artifacts align:
    ``grid:<family>`` per closed-form family, plus ``bid_batch`` and
    ``round``, plus ``hier:<n>`` per population size of the hierarchical
    bench and ``learn:<name>`` per trained ``BID_LEARNERS`` entry
    (absent in pre-extension artifacts — tolerated, each gate starts its
    own trajectory).
    """
    out: dict[str, float] = {}
    for family, row in sorted(data.get("grid_build", {}).items()):
        out[f"grid:{family}"] = float(row["batch_seconds"])
    if "bid_batch" in data:
        out["bid_batch"] = float(data["bid_batch"]["batch_seconds"])
    if "round" in data:
        out["round"] = float(data["round"]["seconds"])
    for n, row in sorted(
        data.get("hier_round", {}).items(), key=lambda kv: int(kv[0])
    ):
        out[f"hier:{n}"] = float(row["seconds"])
    for name, row in sorted(data.get("learn", {}).items()):
        out[f"learn:{name}"] = float(row["seconds"])
    for k_label, rows in sorted(data.get("fl_round", {}).items()):
        serial = rows.get("serial", {})
        if "seconds" in serial:
            out[f"fl:serial_{k_label}"] = float(serial["seconds"])
    return out


def compare(
    previous: dict,
    current: dict,
    max_regression: float,
    abs_epsilon: float = DEFAULT_ABS_EPSILON_SECONDS,
) -> list[str]:
    """Human-readable comparison rows; returns the list of failures.

    A gated timing regresses when it exceeds the relative band *and* the
    absolute slack: ``cur > prev * (1 + max_regression) + abs_epsilon``.
    The epsilon keeps millisecond-scale timings from flaking on runner
    noise (the bench itself already takes best-of-N per artifact).
    """
    failures: list[str] = []
    prev_gated = _gated_timings(previous)
    cur_gated = _gated_timings(current)
    print(f"{'timing':<16} {'previous':>10} {'current':>10} {'ratio':>7}  verdict")
    for label, cur_s in cur_gated.items():
        prev_s = prev_gated.get(label)
        if prev_s is None:
            print(f"{label:<16} {'-':>10} {cur_s:>10.4f} {'-':>7}  new gate")
            continue
        ratio = cur_s / prev_s if prev_s > 0 else float("inf")
        regressed = cur_s > prev_s * (1.0 + max_regression) + abs_epsilon
        verdict = "REGRESSED" if regressed else "ok"
        print(f"{label:<16} {prev_s:>10.4f} {cur_s:>10.4f} {ratio:>7.2f}  {verdict}")
        if regressed:
            failures.append(
                f"{label}: {prev_s:.4f}s -> {cur_s:.4f}s "
                f"({ratio:.2f}x > {1 + max_regression:.2f}x allowed "
                f"+ {abs_epsilon}s slack)"
            )
    # Sweep timings: reported for the trajectory, never gated (they train
    # models and swing with CI machine load).
    for name, row in sorted(current.get("sweep", {}).items()):
        prev_row = previous.get("sweep", {}).get(name, {})
        prev_s = prev_row.get("seconds")
        prev_txt = f"{prev_s:.3f}s" if isinstance(prev_s, (int, float)) else "-"
        print(f"sweep:{name:<11} {prev_txt:>9} -> {row['seconds']:.3f}s (informational)")
    # Coordination tiers (bench_coordinator.py): overhead-vs-serial per
    # tier, with the absolute coord:* bounds checked on the current run.
    coord = current.get("coordinator", {})
    prev_coord = previous.get("coordinator", {})
    for name, row in sorted(coord.items()):
        if not isinstance(row, dict) or "overhead" not in row:
            continue
        prev = prev_coord.get(name, {}).get("overhead")
        prev_txt = f"{prev:.2f}x" if isinstance(prev, (int, float)) else "-"
        print(
            f"coord:{name:<13} {prev_txt:>8} -> {row['overhead']:.2f}x serial "
            f"({row['seconds']:.3f}s)"
        )
    if coord:
        from bench_coordinator import gate_failures

        failures.extend(gate_failures(coord))
    # Within-round local-training pools (bench_fl_round.py): parallel
    # rows are printed as speedup-vs-serial, with the absolute fl:*
    # bounds (bitwise identity; >=1.5x at K=8 on multi-CPU machines)
    # checked on the current artifact.
    fl = current.get("fl_round", {})
    prev_fl = previous.get("fl_round", {})
    for k_label, rows in sorted(fl.items()):
        for pool, row in sorted(rows.items()):
            if "speedup" not in row:
                continue
            prev = prev_fl.get(k_label, {}).get(pool, {}).get("speedup")
            prev_txt = f"{prev:.2f}x" if isinstance(prev, (int, float)) else "-"
            print(
                f"fl:{pool}_{k_label:<7} {prev_txt:>8} -> {row['speedup']:.2f}x "
                f"serial ({row['seconds']:.3f}s)"
            )
    if fl:
        from bench_fl_round import gate_failures as fl_gate_failures

        failures.extend(fl_gate_failures(current))
    # The hierarchical bench's flat baseline walks agents in Python —
    # reported so the speedup stays visible, never gated.
    flat = current.get("flat_round")
    if flat is not None:
        prev_s = previous.get("flat_round", {}).get("seconds")
        prev_txt = f"{prev_s:.3f}s" if isinstance(prev_s, (int, float)) else "-"
        print(
            f"flat_round:{flat['n']:<6} {prev_txt:>9} -> "
            f"{flat['seconds']:.3f}s (informational)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous", type=Path, help="previous BENCH_grid_build.json")
    parser.add_argument("current", type=Path, help="current BENCH_grid_build.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="allowed fractional slowdown of grid-build batch_seconds "
        f"(default {DEFAULT_MAX_REGRESSION:.0%})",
    )
    parser.add_argument(
        "--abs-epsilon",
        type=float,
        default=DEFAULT_ABS_EPSILON_SECONDS,
        help="absolute slack in seconds added to the relative band "
        f"(default {DEFAULT_ABS_EPSILON_SECONDS}s; deflakes ms-scale timings)",
    )
    args = parser.parse_args(argv)
    if args.max_regression < 0:
        parser.error("--max-regression must be >= 0")
    if args.abs_epsilon < 0:
        parser.error("--abs-epsilon must be >= 0")

    current = load(args.current)
    if current is None:
        print("FAILED: current benchmark artifact is unreadable", file=sys.stderr)
        return 1
    previous = load(args.previous)
    if previous is None:
        print("no previous artifact; trajectory starts at this commit")
        return 0

    failures = compare(
        previous, current, args.max_regression, abs_epsilon=args.abs_epsilon
    )
    if failures:
        print("\nFAILED perf trajectory:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nperf trajectory ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
