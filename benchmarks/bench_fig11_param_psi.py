"""Fig. 11 — the impact of the admission probability psi (psi-FMore).

11a (paper): small psi trades training speed for data diversity — psi=0.3
reaches 85% accuracy far later than psi=0.9 (round ~30 vs ~11) but helps in
small-data regimes.  Bench scale: FMore runs with psi in {0.3, 0.9} on a
deliberately small-data federation.

11b (paper): how many selected nodes rank within the top 10/20/30 scores
as psi sweeps 0.3..0.9 — with psi=0.8, ~two thirds of the selected nodes
come from the top 30.  Regenerated auction-only (no training needed):
bidding agents answer each round and PsiSelection admits down the list.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import selection_rank_proportions
from repro.core.auction import MultiDimensionalProcurementAuction
from repro.core.mechanism import FMoreMechanism
from repro.core.psi import PsiSelection
from repro.fl.trainer import RoundRecord, TrainingHistory
from repro.api import Scenario, build_agents, build_federation, build_solver, run_scheme
from repro.sim import preset
from repro.sim.reporting import paper_vs_measured, series_table
from repro.sim.rng import rng_from

from .common import emit, run_once

PSI_SWEEP = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
TARGETS = (0.4, 0.5, 0.6, 0.7)
SEED = 1
RANK_CUTOFFS = (10, 20, 30)


def _auction_only_rank_counts(cfg, federation, solver, psi: float, n_rounds: int = 20):
    """Run the auction (no FL) for n_rounds and compute Fig-11b counts."""
    agents = build_agents(cfg, federation, solver)
    auction = MultiDimensionalProcurementAuction(
        solver.quality_rule, cfg.k_winners, selection=PsiSelection(psi)
    )
    mechanism = FMoreMechanism(auction)
    rng = rng_from(SEED, f"fig11b-{psi}")
    history = TrainingHistory(f"psi={psi}")
    for t in range(1, n_rounds + 1):
        record = mechanism.run_round(agents, t, rng)
        positions = {
            sb.node_id: pos for pos, sb in enumerate(record.outcome.scored_bids)
        }
        history.records.append(
            RoundRecord(
                t, 0.0, 0.0, record.outcome.winner_ids, 0.0,
                winner_ranks={
                    wid: positions[wid] for wid in record.outcome.winner_ids
                },
            )
        )
    return selection_rank_proportions(history, RANK_CUTOFFS)


def _run():
    # --- 11a: training speed, psi=0.3 vs psi=0.9 ------------------------
    # Standard data sizes: here high psi (top-score selection) converges
    # faster, as in the paper's Fig 11a.  (In *small-data* regimes the
    # diversity bought by low psi compensates — Section III-C — which the
    # integration tests exercise separately.)
    base = Scenario.from_config(preset("bench", "mnist_o")).with_(n_rounds=14)
    rows_11a = {}
    final_acc = {}
    for psi in (0.3, 0.9):
        cfg = base.with_(psi=psi, grid_size=129)
        history = run_scheme(cfg, "PsiFMore", SEED)
        rows_11a[f"psi={psi}"] = [history.rounds_to(t) for t in TARGETS]
        final_acc[psi] = history.final_accuracy
    table_11a = series_table(
        "fig11a: rounds to reach target accuracy (psi-FMore, bench scale)",
        "target_accuracy",
        [f"{t:.0%}" for t in TARGETS],
        rows_11a,
    )

    # --- 11b: selected-node ranks vs psi (auction-only, 20-winner game) --
    cfg_b = Scenario.from_config(preset("bench", "mnist_o")).with_(
        n_clients=100, k_winners=20, grid_size=129
    )
    federation = build_federation(cfg_b, SEED)
    solver = build_solver(cfg_b)
    columns = {f"top{c}": [] for c in RANK_CUTOFFS}
    for psi in PSI_SWEEP:
        props = _auction_only_rank_counts(cfg_b, federation, solver, psi)
        for c in RANK_CUTOFFS:
            columns[f"top{c}"].append(round(props[c], 1))
    table_11b = series_table(
        "fig11b: mean number of selected nodes within top-R scores vs psi "
        "(N=100, K=20)",
        "psi",
        list(PSI_SWEEP),
        columns,
    )

    top30_at_08 = columns["top30"][PSI_SWEEP.index(0.8)]
    block = paper_vs_measured(
        [
            (
                "share of selected nodes in top-30 at psi=0.8",
                "~66.6%",
                f"{100.0 * top30_at_08 / cfg_b.k_winners:.0f}%",
            ),
            (
                "top-R membership monotone in psi",
                "increasing",
                "increasing"
                if columns["top30"][-1] >= columns["top30"][0]
                else "NOT increasing",
            ),
            (
                "small psi slows training",
                "85% at ~round 30 (psi=0.3) vs ~11 (psi=0.9)",
                f"rounds-to-{TARGETS[-1]:.0%}: {rows_11a['psi=0.3'][-1]} vs {rows_11a['psi=0.9'][-1]}",
            ),
        ],
        title="fig11 paper vs measured",
    )
    emit("fig11_param_psi", "\n\n".join([table_11a, table_11b, block]))
    return columns


def test_fig11_param_psi(benchmark):
    columns = run_once(benchmark, _run)
    top30 = columns["top30"]
    # Higher psi concentrates selection in the top of the ranking.
    assert top30[-1] >= top30[0]
