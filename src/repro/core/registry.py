"""String-keyed component registries for the auction building blocks.

The paper's protocol (Algorithm 1) is a template: any scoring rule ``s``,
cost family ``c``, type prior ``F``, winner-selection policy and payment
rule plug into the same six-step round.  This module gives every pluggable
family a :class:`Registry` — a string-keyed factory table with decorator
registration — so experiments can be described *declaratively* (a dict of
``{"name": ..., **params}`` specs, JSON-serialisable) instead of by
hardwired constructor calls.

Usage::

    from repro.core.registry import COST_MODELS

    cost = COST_MODELS.create({"name": "linear", "betas": [4.0, 2.0]})

    @COST_MODELS.register("my_cost")
    class MyCost(CostModel):
        ...

Each family registers its members in its defining module (``scoring.py``,
``costs.py``, ``valuation.py``, ``psi.py``, ``auction.py``,
``odesolvers.py``), so importing :mod:`repro.core` populates every table.
The registries back :class:`repro.api.Scenario` specs and the
:class:`repro.api.FMoreEngine` assembly path.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "Registry",
    "SCORING_RULES",
    "COST_MODELS",
    "THETA_DISTRIBUTIONS",
    "WINNER_SELECTIONS",
    "PAYMENT_RULES",
    "MARGIN_METHODS",
    "EXECUTORS",
    "ROUND_POLICIES",
    "BID_POLICIES",
    "BID_LEARNERS",
    "NN_BACKENDS",
]


class Registry:
    """A string-keyed table of component factories.

    Parameters
    ----------
    kind:
        Human-readable family name used in error messages
        (e.g. ``"scoring rule"``).

    Entries are callables: classes (instantiated by :meth:`create`) or
    plain functions (fetched by :meth:`get` for function-valued families
    such as the margin backends).
    """

    def __init__(self, kind: str):
        self.kind = str(kind)
        self._factories: dict[str, Callable[..., Any]] = {}

    # -- registration ---------------------------------------------------
    def register(self, name: str, factory: Callable[..., Any] | None = None):
        """Register ``factory`` under ``name``; usable as a decorator.

        Re-registering an existing name raises — stable names are the
        point of the registry (scenario files depend on them).
        """

        def _add(target: Callable[..., Any]) -> Callable[..., Any]:
            if not name or not isinstance(name, str):
                raise ValueError(f"{self.kind} name must be a non-empty string")
            if name in self._factories:
                raise ValueError(f"{self.kind} {name!r} is already registered")
            if not callable(target):
                raise TypeError(f"{self.kind} {name!r} must be callable")
            self._factories[name] = target
            return target

        if factory is not None:
            return _add(factory)
        return _add

    # -- lookup ---------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """All registered names, sorted (stable for docs and errors)."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def get(self, name: str) -> Callable[..., Any]:
        """The raw registered factory/function for ``name``."""
        try:
            return self._factories[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; choose from {list(self.names())}"
            ) from None

    # -- construction ---------------------------------------------------
    def create(self, spec: str | Mapping[str, Any], **overrides: Any) -> Any:
        """Instantiate a component from a declarative spec.

        ``spec`` is either a bare name (default parameters) or a mapping
        ``{"name": <registered name>, **params}``; keyword ``overrides``
        win over spec params.  This is the inverse of writing the spec
        dict by hand — ``create({"name": "linear", "betas": [4, 2]})``
        returns a ``LinearCost`` with those betas.
        """
        if isinstance(spec, str):
            name, params = spec, {}
        elif isinstance(spec, Mapping):
            params = {str(k): v for k, v in spec.items()}
            name = params.pop("name", None)
            if not isinstance(name, str):
                raise ValueError(
                    f"{self.kind} spec needs a 'name' key; got {dict(spec)!r}"
                )
        else:
            raise TypeError(
                f"{self.kind} spec must be a name or a mapping, got {type(spec).__name__}"
            )
        params.update(overrides)
        factory = self.get(name)
        try:
            return factory(**params)
        except TypeError as exc:
            raise TypeError(
                f"bad parameters for {self.kind} {name!r}: {exc}"
            ) from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry(kind={self.kind!r}, names={list(self.names())})"


# The pluggable families of the FMore protocol.  Members self-register in
# their defining modules; see the module docstring.
SCORING_RULES = Registry("scoring rule")
COST_MODELS = Registry("cost model")
THETA_DISTRIBUTIONS = Registry("theta distribution")
WINNER_SELECTIONS = Registry("winner selection")
PAYMENT_RULES = Registry("payment rule")
MARGIN_METHODS = Registry("margin backend")
# Sweep executors (members live in repro.api.executor: serial/thread/process).
EXECUTORS = Registry("executor")
# Per-round protocol policies (members live in repro.core.policies:
# selection/guidance/audit_blacklist/churn), driven as a pipeline of stage
# hooks by FMoreMechanism.run_round and addressed by Scenario.policies.
ROUND_POLICIES = Registry("round policy")
# Strategic bidding policies (members live in repro.strategic.policies:
# truthful/fixed_markup/random_jitter/regret_matching/adaptive_heuristic),
# assigned to population fractions by Scenario.bidding and driven by
# FMoreMechanism's per-round bid collection.
BID_POLICIES = Registry("bid policy")
# Trainable strategic bidders (members live in repro.strategic.learn:
# q_table/pg_mlp), driven by BidLearnerTrainer over AuctionEnv episodes and
# deployed through the "learned" BID_POLICIES entry once trained.
BID_LEARNERS = Registry("bid learner")
# Array backends for the neural-network substrate's hot kernels (members
# live in repro.fl.nn.backends: numpy is the bitwise reference; numba is
# optional and auto-skipped when the dependency is absent).  Selected
# process-wide via repro.fl.nn.backends.set_backend / the CLI --nn-backend.
NN_BACKENDS = Registry("nn backend")
