"""The multi-dimensional procurement auction with K winners.

This is the aggregator side of FMore's first three steps: it owns the
scoring rule announced in the *bid ask*, evaluates the sealed bids collected
in *bid collection*, and performs *winner determination* — sorting scores in
descending order, resolving ties with a coin flip, selecting winners via a
pluggable :class:`~repro.core.psi.WinnerSelection` policy (top-K by default,
psi-FMore optionally), and charging payments under the first-score or
second-score rule (Section III-A(3); the paper uses first-score).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .bids import AuctionWinner, Bid, ScoredBid
from .psi import TopKSelection, WinnerSelection
from .registry import PAYMENT_RULES as PAYMENT_RULE_REGISTRY
from .scoring import QuasiLinearScoringRule, ScoringRule

__all__ = [
    "AuctionOutcome",
    "MultiDimensionalProcurementAuction",
    "PAYMENT_RULES",
    "descending_order",
    "first_score_payment",
    "second_score_payment",
    "top_k_order",
]


def descending_order(scores: np.ndarray, tiebreak: np.ndarray) -> np.ndarray:
    """Indices sorting ``scores`` descending, ties by ascending ``tiebreak``.

    ``np.lexsort`` keys are (secondary, primary); both it and Python's
    ``sorted`` are stable on the composite key ``(-score, tiebreak)``, so
    this is bitwise-identical to the historical
    ``sorted(range(n), key=lambda i: (-scores[i], tiebreak[i]))`` ranking
    while staying entirely in NumPy.
    """
    return np.lexsort((tiebreak, -scores))


def top_k_order(scores: np.ndarray, tiebreak: np.ndarray, k: int) -> np.ndarray:
    """The first ``k`` indices of :func:`descending_order`, without a full sort.

    ``np.argpartition`` finds the k-th largest score in O(n); boundary
    ties are resolved exactly as the full sort would — every index with a
    strictly greater score is in, and the remaining slots go to the tied
    indices with the smallest tie-break keys.  Only the selected ``k``
    indices are then ordered.  Equivalence against the full-sort path is
    pinned bitwise in tests (continuous tie-break keys make exact
    (score, tiebreak) collisions a measure-zero event).
    """
    scores = np.asarray(scores)
    n = scores.shape[0]
    if k >= n:
        return descending_order(scores, tiebreak)
    boundary = scores[np.argpartition(-scores, k - 1)[k - 1]]
    definite = np.flatnonzero(scores > boundary)
    tied = np.flatnonzero(scores == boundary)
    need = k - definite.size
    if need < tied.size:
        tied = tied[np.argpartition(tiebreak[tied], need - 1)[:need]]
    chosen = np.concatenate([definite, tied])
    return chosen[np.lexsort((tiebreak[chosen], -scores[chosen]))]


@PAYMENT_RULE_REGISTRY.register("first_score")
def first_score_payment(
    scored: list[ScoredBid],
    positions: list[int],
    scoring: QuasiLinearScoringRule,
) -> list[float]:
    """Pay-as-bid: each winner is charged exactly what it asked (paper default)."""
    return [float(scored[pos].bid.payment) for pos in positions]


@PAYMENT_RULE_REGISTRY.register("second_score")
def second_score_payment(
    scored: list[ScoredBid],
    positions: list[int],
    scoring: QuasiLinearScoringRule,
) -> list[float]:
    """Each winner is paid the amount making its score equal the best
    rejected score, ``p_i = s(q_i) - S_(K+1)``, floored at its ask (reserve
    score 0 when nothing was rejected)."""
    rejected = [sb.score for i, sb in enumerate(scored) if i not in set(positions)]
    reference = float(max(rejected)) if rejected else 0.0
    charges: list[float] = []
    for pos in positions:
        sb = scored[pos]
        s_value = scoring.score(sb.bid.quality, 0.0)
        charges.append(float(max(s_value - reference, sb.bid.payment)))
    return charges


# Legacy tuple view of the registered rule names (kept as a stable export;
# third-party rules registered at runtime are accepted by the auction too).
PAYMENT_RULES = ("first_score", "second_score")


@dataclass
class AuctionOutcome:
    """Result of one auction round.

    ``scored_bids`` holds every submitted bid in descending score order
    (post tie-break); ``winners`` the selected subset with charged payments.
    Under the auction's ``ranking="top_k"`` fast path ``scored_bids`` is
    truncated to the K selected bids (same order as the full sort's head).
    """

    winners: list[AuctionWinner]
    scored_bids: list[ScoredBid]
    k_requested: int
    payment_rule: str

    @property
    def winner_ids(self) -> list[int]:
        return [w.node_id for w in self.winners]

    @property
    def total_payment(self) -> float:
        """What the aggregator disburses this round."""
        return float(sum(w.charged_payment for w in self.winners))

    @property
    def scores(self) -> np.ndarray:
        """All scores in descending order."""
        return np.asarray([sb.score for sb in self.scored_bids])

    def aggregator_profit(self, utility: ScoringRule) -> float:
        """Eq. 6: ``V = sum_{i in W} U(q_i) - p_i`` for a utility ``U``."""
        total = 0.0
        for w in self.winners:
            total += utility.value(w.quality) - w.charged_payment
        return float(total)


class MultiDimensionalProcurementAuction:
    """First/second-score sealed-bid procurement auction with K winners.

    Parameters
    ----------
    scoring:
        Either a bare :class:`ScoringRule` (used as ``s`` with
        ``S = s(q) - p``) or a :class:`QuasiLinearScoringRule` wrapper (which
        can min-max normalise qualities, as in the walk-through example).
    k_winners:
        The number of winners ``K`` sought each round.
    payment_rule:
        ``"first_score"`` — winners are paid what they asked (paper default).
        ``"second_score"`` — each winner is paid the amount that makes its
        score equal to the best rejected score, i.e.
        ``p_i = s(q_i) - S_(K+1)``; with no rejected bid a reserve score of
        zero applies.
    selection:
        Winner-selection policy over the sorted list (default: top-K).
    ranking:
        ``"full"`` (default) ranks every bid — the total descending order
        feeds ``AuctionOutcome.scored_bids`` and downstream manifests.
        ``"top_k"`` ranks only the K winners via ``np.argpartition``
        whenever that is safe (plain top-K selection, first-score
        payments, K < N) and falls back to the full sort otherwise; the
        outcome's ``scored_bids`` then holds just the K selected bids.
    """

    def __init__(
        self,
        scoring: ScoringRule | QuasiLinearScoringRule,
        k_winners: int,
        payment_rule: str = "first_score",
        selection: WinnerSelection | None = None,
        ranking: str = "full",
    ):
        if isinstance(scoring, ScoringRule):
            scoring = QuasiLinearScoringRule(scoring)
        self.scoring = scoring
        if k_winners < 1:
            raise ValueError("k_winners must be >= 1")
        self.k_winners = int(k_winners)
        if payment_rule not in PAYMENT_RULE_REGISTRY:
            raise ValueError(
                f"unknown payment rule {payment_rule!r}; choose from "
                f"{list(PAYMENT_RULE_REGISTRY.names())}"
            )
        self.payment_rule = payment_rule
        self._charge_policy = PAYMENT_RULE_REGISTRY.get(payment_rule)
        self.selection = selection if selection is not None else TopKSelection()
        if ranking not in ("full", "top_k"):
            raise ValueError("ranking must be 'full' or 'top_k'")
        self.ranking = ranking

    def score_bid(self, bid: Bid) -> float:
        """Evaluate ``S(q_i, p_i)`` for one bid."""
        return float(self.scoring.score(bid.quality, bid.payment))

    def run(
        self,
        bids: list[Bid],
        rng: np.random.Generator,
        selection: WinnerSelection | None = None,
    ) -> AuctionOutcome:
        """Run winner determination over the collected ``bids``.

        Bids are scored, sorted in descending order with ties resolved "by
        the flip of a coin" (a uniform random tie-break key), the selection
        policy picks winners, and the payment rule fixes transfers.  A
        per-round ``selection`` override (from the round-policy pipeline)
        replaces the auction's configured policy for this call only.
        """
        if not bids:
            return AuctionOutcome([], [], self.k_requested_for(0), self.payment_rule)
        m = bids[0].n_dimensions
        for b in bids:
            if b.n_dimensions != m:
                raise ValueError("all bids must share the same dimensionality")
        seen: set[int] = set()
        for b in bids:
            if b.node_id in seen:
                raise ValueError(f"duplicate bid from node {b.node_id}")
            seen.add(b.node_id)

        scores = np.asarray([self.score_bid(b) for b in bids])
        tiebreak = rng.random(len(bids))
        policy = selection if selection is not None else self.selection
        # Partial ranking is only equivalent when nothing downstream needs
        # the bids beyond rank K: plain top-K admission (psi policies walk
        # the whole order) and pay-as-bid (second score prices off the
        # best *rejected* bid).
        partial = (
            self.ranking == "top_k"
            and type(policy) is TopKSelection
            and self.payment_rule == "first_score"
            and self.k_winners < len(bids)
        )
        if partial:
            order = top_k_order(scores, tiebreak, self.k_winners)
        else:
            order = descending_order(scores, tiebreak)
        scored = [ScoredBid(bids[i], float(scores[i])) for i in order]

        positions = policy.select(len(scored), self.k_winners, rng)
        winners = self._charge(scored, positions)
        return AuctionOutcome(winners, scored, self.k_winners, self.payment_rule)

    def k_requested_for(self, n_bids: int) -> int:
        return min(self.k_winners, n_bids)

    def _charge(self, scored: list[ScoredBid], positions: list[int]) -> list[AuctionWinner]:
        charges = self._charge_policy(scored, positions, self.scoring)
        winners: list[AuctionWinner] = []
        for rank, (pos, charged) in enumerate(zip(positions, charges)):
            sb = scored[pos]
            winners.append(
                AuctionWinner(
                    node_id=sb.node_id,
                    quality=sb.bid.quality,
                    asked_payment=float(sb.bid.payment),
                    charged_payment=float(charged),
                    score=sb.score,
                    rank=rank,
                )
            )
        return winners
