"""Private cost models ``c(q, theta)`` for edge nodes.

Each edge node carries a private cost parameter ``theta`` (its type) and a
cost function ``c(q1, ..., qm, theta)`` increasing in every quality
dimension.  The paper (Section III-A, "Bid Collection") imposes the
single-crossing conditions

    c_qq >= 0,   c_q_theta > 0,   c_qq_theta >= 0,

i.e. marginal cost rises with the type parameter, which is what makes the
scoring auction's equilibrium well behaved (Che 1993).

Three families are implemented:

* :class:`LinearCost`     ``c = theta * sum_i beta_i * q_i``
  (the form Proposition 4 assumes),
* :class:`QuadraticCost`  ``c = theta * sum_i beta_i * q_i**2``,
* :class:`PowerCost`      ``c = theta * sum_i beta_i * q_i**gamma_i``
  with ``gamma_i >= 1`` generalising both.

All expose the partial derivatives the equilibrium machinery needs:
``gradient_q`` for the quality optimisation and ``d_theta`` (that is,
``c_theta``) for Che's closed-form payment integrand.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .registry import COST_MODELS

__all__ = [
    "CostModel",
    "LinearCost",
    "QuadraticCost",
    "PowerCost",
    "SingleCrossingReport",
    "check_single_crossing",
]


class CostModel(ABC):
    """Abstract cost ``c(q, theta)`` with the derivatives used by solvers."""

    def __init__(self, betas: Sequence[float]):
        self.betas = np.asarray(betas, dtype=float)
        if self.betas.ndim != 1 or self.betas.size == 0:
            raise ValueError("betas must be a non-empty 1-D sequence")
        if np.any(self.betas < 0):
            raise ValueError("betas must be non-negative")

    @property
    def n_dimensions(self) -> int:
        return int(self.betas.size)

    def _check(self, quality: np.ndarray) -> np.ndarray:
        q = np.asarray(quality, dtype=float)
        if q.shape[-1] != self.n_dimensions:
            raise ValueError(
                f"quality has {q.shape[-1]} dimensions, cost expects "
                f"{self.n_dimensions}"
            )
        return q

    @abstractmethod
    def cost(self, quality: np.ndarray, theta: float) -> float:
        """Return ``c(q, theta)``."""

    @abstractmethod
    def gradient_q(self, quality: np.ndarray, theta: float) -> np.ndarray:
        """Return ``dc/dq`` at ``(q, theta)``."""

    @abstractmethod
    def d_theta(self, quality: np.ndarray, theta: float) -> float:
        """Return ``c_theta(q, theta)`` — the payment-integrand derivative."""

    def cost_batch(self, qualities: np.ndarray, theta: float) -> np.ndarray:
        q = self._check(qualities)
        if q.ndim == 1:
            return np.asarray([self.cost(q, theta)])
        return np.asarray([self.cost(row, theta) for row in q])

    def cost_rows(self, qualities: np.ndarray, thetas: np.ndarray) -> np.ndarray:
        """``c(q_i, theta_i)`` for paired rows — the batch-bidding hot path.

        Generic fallback loops over rows; the concrete families override
        with fully vectorised NumPy expressions so a whole population's
        bids price in one call (see ``EquilibriumSolver.bid_batch``).
        """
        q = np.atleast_2d(self._check(qualities))
        t = np.asarray(thetas, dtype=float)
        if t.shape != (q.shape[0],):
            raise ValueError("thetas must have one entry per quality row")
        return np.asarray([self.cost(row, float(th)) for row, th in zip(q, t)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(betas={self.betas.tolist()})"


@COST_MODELS.register("linear")
class LinearCost(CostModel):
    """Additive linear cost ``c(q, theta) = theta * sum_i beta_i q_i``.

    Satisfies the single-crossing conditions with equality in ``c_qq``
    (``c_qq = 0``), which the paper's weak inequalities allow.
    """

    def cost(self, quality: np.ndarray, theta: float) -> float:
        q = self._check(quality)
        return float(theta * np.dot(self.betas, q))

    def gradient_q(self, quality: np.ndarray, theta: float) -> np.ndarray:
        self._check(quality)
        return theta * self.betas

    def d_theta(self, quality: np.ndarray, theta: float) -> float:
        q = self._check(quality)
        return float(np.dot(self.betas, q))

    def cost_batch(self, qualities: np.ndarray, theta: float) -> np.ndarray:
        q = self._check(qualities)
        return theta * (q @ self.betas)

    def cost_rows(self, qualities: np.ndarray, thetas: np.ndarray) -> np.ndarray:
        q = np.atleast_2d(self._check(qualities))
        t = np.asarray(thetas, dtype=float)
        return t * (q @ self.betas)


@COST_MODELS.register("quadratic")
class QuadraticCost(CostModel):
    """Strictly convex cost ``c(q, theta) = theta * sum_i beta_i q_i**2``.

    The strict convexity yields interior equilibrium qualities for additive
    scoring rules, which is convenient for exercising Che's Theorem 1 in
    closed form: ``q_j* = alpha_j / (2 theta beta_j)``.
    """

    def cost(self, quality: np.ndarray, theta: float) -> float:
        q = self._check(quality)
        return float(theta * np.dot(self.betas, q * q))

    def gradient_q(self, quality: np.ndarray, theta: float) -> np.ndarray:
        q = self._check(quality)
        return 2.0 * theta * self.betas * q

    def d_theta(self, quality: np.ndarray, theta: float) -> float:
        q = self._check(quality)
        return float(np.dot(self.betas, q * q))

    def cost_batch(self, qualities: np.ndarray, theta: float) -> np.ndarray:
        q = self._check(qualities)
        return theta * ((q * q) @ self.betas)

    def cost_rows(self, qualities: np.ndarray, thetas: np.ndarray) -> np.ndarray:
        q = np.atleast_2d(self._check(qualities))
        t = np.asarray(thetas, dtype=float)
        return t * ((q * q) @ self.betas)


@COST_MODELS.register("power")
class PowerCost(CostModel):
    """Power cost ``c(q, theta) = theta * sum_i beta_i q_i**gamma_i``.

    ``gamma_i >= 1`` keeps ``c_qq >= 0``; ``gamma = 1`` reduces to
    :class:`LinearCost` and ``gamma = 2`` to :class:`QuadraticCost`.
    """

    def __init__(self, betas: Sequence[float], gammas: Sequence[float] | float = 2.0):
        super().__init__(betas)
        gam = np.asarray(gammas, dtype=float)
        if gam.ndim == 0:
            gam = np.full(self.n_dimensions, float(gam))
        if gam.shape != (self.n_dimensions,):
            raise ValueError("gammas must be scalar or match betas")
        if np.any(gam < 1.0):
            raise ValueError("gammas must be >= 1 for convexity (c_qq >= 0)")
        self.gammas = gam

    def cost(self, quality: np.ndarray, theta: float) -> float:
        q = self._check(quality)
        if np.any(q < 0):
            raise ValueError("power cost requires non-negative quality")
        return float(theta * np.dot(self.betas, np.power(q, self.gammas)))

    def gradient_q(self, quality: np.ndarray, theta: float) -> np.ndarray:
        q = self._check(quality)
        safe = np.maximum(q, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            grad = theta * self.betas * self.gammas * np.power(safe, self.gammas - 1.0)
        return np.where(np.isfinite(grad), grad, 0.0)

    def d_theta(self, quality: np.ndarray, theta: float) -> float:
        q = self._check(quality)
        return float(np.dot(self.betas, np.power(np.maximum(q, 0.0), self.gammas)))

    def cost_batch(self, qualities: np.ndarray, theta: float) -> np.ndarray:
        q = self._check(qualities)
        return theta * (np.power(np.maximum(q, 0.0), self.gammas) @ self.betas)

    def cost_rows(self, qualities: np.ndarray, thetas: np.ndarray) -> np.ndarray:
        q = np.atleast_2d(self._check(qualities))
        t = np.asarray(thetas, dtype=float)
        return t * (np.power(np.maximum(q, 0.0), self.gammas) @ self.betas)


@dataclass(frozen=True)
class SingleCrossingReport:
    """Numerical verdict on the paper's single-crossing conditions."""

    convex_in_q: bool          # c_qq >= 0 everywhere sampled
    increasing_marginal: bool  # c_q_theta > 0 everywhere sampled
    convexity_increasing: bool  # c_qq_theta >= 0 everywhere sampled

    @property
    def satisfied(self) -> bool:
        return self.convex_in_q and self.increasing_marginal and self.convexity_increasing


def check_single_crossing(
    cost: CostModel,
    quality_grid: np.ndarray,
    theta_grid: Sequence[float],
    eps: float = 1e-3,
    tol: float = 1e-6,
) -> SingleCrossingReport:
    """Numerically verify ``c_qq >= 0``, ``c_q_theta > 0``, ``c_qq_theta >= 0``.

    ``quality_grid`` is an ``(n, m)`` array of sample points (strictly
    positive to avoid boundary kinks of power costs).  Central finite
    differences approximate the mixed partials dimension by dimension; the
    step ``eps`` is deliberately coarse because second differences amplify
    rounding noise by ``1/eps^2``.
    """
    q_grid = np.atleast_2d(np.asarray(quality_grid, dtype=float))
    thetas = np.asarray(theta_grid, dtype=float)
    convex = True
    increasing = True
    convexity_increasing = True
    for theta in thetas:
        dtheta = max(eps, eps * abs(theta))
        for q in q_grid:
            for j in range(cost.n_dimensions):
                dq = max(eps, eps * abs(q[j]))
                q_hi, q_lo = q.copy(), q.copy()
                q_hi[j] += dq
                q_lo[j] = max(q_lo[j] - dq, 0.0)
                span = q_hi[j] - q_lo[j]
                # c_qq via second difference.
                c_qq = (
                    cost.cost(q_hi, theta)
                    - 2.0 * cost.cost(q, theta)
                    + cost.cost(q_lo, theta)
                ) / (span / 2.0) ** 2
                if c_qq < -tol:
                    convex = False
                # c_q at theta +/- dtheta via central difference in q.
                cq_hi = (cost.cost(q_hi, theta + dtheta) - cost.cost(q_lo, theta + dtheta)) / span
                cq_lo = (cost.cost(q_hi, theta - dtheta) - cost.cost(q_lo, theta - dtheta)) / span
                c_q_theta = (cq_hi - cq_lo) / (2.0 * dtheta)
                if c_q_theta <= tol:
                    increasing = False
                # c_qq at theta +/- dtheta.
                cqq_hi = (
                    cost.cost(q_hi, theta + dtheta)
                    - 2.0 * cost.cost(q, theta + dtheta)
                    + cost.cost(q_lo, theta + dtheta)
                ) / (span / 2.0) ** 2
                cqq_lo = (
                    cost.cost(q_hi, theta - dtheta)
                    - 2.0 * cost.cost(q, theta - dtheta)
                    + cost.cost(q_lo, theta - dtheta)
                ) / (span / 2.0) ** 2
                if (cqq_hi - cqq_lo) / (2.0 * dtheta) < -tol:
                    convexity_increasing = False
    return SingleCrossingReport(convex, increasing, convexity_increasing)
