"""The round-policy pipeline: per-round protocol behaviors as components.

FMore's protocol is defined round-by-round, and everything the aggregator
*does* in a round beyond the baseline six steps — relaxing top-K selection
(psi-FMore, Section III-C), steering the procured resource mix via the
scoring exponents (Proposition 4), auditing deliveries and blacklisting
defectors (Sections II-A/III-A), coping with nodes joining and leaving —
is a *policy*.  This module turns each of those behaviors into a
registry-registered :class:`RoundPolicy` with four stage hooks that
:meth:`repro.core.mechanism.FMoreMechanism.run_round` drives in order:

``on_round_start``
    Before the bid ask; bind to the mechanism, advance internal state.
``filter_agents``
    Who receives the bid ask (blacklist enforcement, churn).
``select_winners``
    Override the winner-selection rule for this round (rank schedules).
``after_aggregate``
    After winner determination; audit deliveries, retune guidance.

Policies are stateful per run (strike counters, active sets, alpha
trajectories) and record every externally-visible decision as a
:class:`PolicyAction`, which rides on the round record and surfaces in the
streaming session events of :mod:`repro.api.engine`.  Randomness comes
from a dedicated policy stream (``RoundContext.rng``) so the default
pipeline — no policies — consumes nothing and stays bitwise-identical to
the historical protocol.

Declaratively, a :class:`repro.api.Scenario` addresses the pipeline
through its ``policies`` spec::

    {
      "selection": {"name": "per_node_psi", "schedule": "geometric",
                    "psi0": 0.9, "decay": 0.95},
      "guidance": {"target_mix": [2.0, 1.0], "every": 5},
      "audit_blacklist": {"defect_fraction": 0.2, "shortfall": 0.5},
      "churn": {"departure_prob": 0.1, "arrival_prob": 0.5}
    }
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from .blacklist import Blacklist, audit_round, simulate_deliveries
from .guidance import alphas_for_target_mix, observed_procurement_mix, retuned_alphas
from .registry import ROUND_POLICIES, WINNER_SELECTIONS
from .scoring import (
    AdditiveScore,
    CobbDouglasScore,
    PerfectComplementaryScore,
    normalize_weights,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .mechanism import FMoreMechanism, MechanismRound
    from .psi import WinnerSelection

__all__ = [
    "PolicyAction",
    "RoundContext",
    "RoundPolicy",
    "SelectionPolicy",
    "GuidancePolicy",
    "AuditBlacklistPolicy",
    "ChurnPolicy",
    "PIPELINE_STAGES",
    "alphas_applicable",
    "build_policy_pipeline",
]

#: Stage order of the pipeline: membership first (churn, enforcement),
#: then aggregator steering (guidance), then the selection override.
PIPELINE_STAGES = ("churn", "audit_blacklist", "guidance", "selection")


@dataclass(frozen=True)
class PolicyAction:
    """One externally-visible policy decision (ban, alpha update, ...).

    ``payload`` is plain JSON-ish data (lists/dicts/numbers) so actions
    serialise with the round events they ride on.
    """

    kind: str
    round_index: int
    payload: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain JSON-able form (payloads are JSON-ish by contract)."""
        return {
            "kind": self.kind,
            "round_index": int(self.round_index),
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicyAction":
        return cls(
            kind=str(data["kind"]),
            round_index=int(data["round_index"]),
            payload=dict(data.get("payload", {})),
        )


@dataclass
class RoundContext:
    """What a policy may see and touch during one round.

    ``rng`` is the *policy* stream — separate from the training stream, so
    policies that draw (churn, defector sampling) never perturb bids,
    tie-breaks or local training, and scenarios without policies consume
    nothing from it.  ``agents`` is the full (unfiltered) population of
    the round — policies that sample *membership-independent* subsets
    (defector draws) use it so their choice cannot depend on what earlier
    pipeline stages filtered.
    """

    round_index: int
    rng: np.random.Generator
    mechanism: "FMoreMechanism"
    agents: Sequence = ()
    actions: list[PolicyAction] = field(default_factory=list)

    def record(self, kind: str, **payload: Any) -> PolicyAction:
        """File an action for this round (returned for convenience)."""
        action = PolicyAction(kind=kind, round_index=self.round_index, payload=payload)
        self.actions.append(action)
        return action


class RoundPolicy:
    """Base policy: every stage hook is a no-op.

    Subclasses override only the stages they participate in; the pipeline
    calls all four hooks on every policy each round, in
    :data:`PIPELINE_STAGES` order.

    Policies are stateful per run; the :meth:`state_dict` /
    :meth:`load_state` pair makes that state durable so a checkpointed
    session (see :mod:`repro.api.store`) resumes with identical policy
    behavior.  A stateless policy inherits the empty-dict default; a
    stateful one must round-trip *all* externally-observable state —
    resumed runs are pinned bitwise-identical to uninterrupted ones.
    """

    def on_round_start(self, ctx: RoundContext) -> None:
        """Called before the bid ask is broadcast."""

    def filter_agents(self, agents: Sequence, ctx: RoundContext) -> Sequence:
        """Return the agents that receive this round's bid ask."""
        return agents

    def select_winners(self, ctx: RoundContext) -> "WinnerSelection | None":
        """A :class:`WinnerSelection` overriding the auction's, or ``None``."""
        return None

    def after_aggregate(self, ctx: RoundContext, record: "MechanismRound") -> None:
        """Called once the round's outcome is determined."""

    def state_dict(self) -> dict:
        """JSON-able snapshot of the policy's mutable state (default: none)."""
        return {}

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Install a :meth:`state_dict` snapshot into a fresh policy."""
        if state:
            raise ValueError(
                f"{type(self).__name__} carries no state; got keys "
                f"{sorted(state)}"
            )


@ROUND_POLICIES.register("selection")
class SelectionPolicy(RoundPolicy):
    """Scenario-addressable winner-selection override.

    The spec *is* a :data:`~repro.core.registry.WINNER_SELECTIONS` spec:
    ``{"name": "top_k"}``, ``{"name": "psi", "psi": 0.8}`` or the
    rank-scheduled ``{"name": "per_node_psi", "schedule": "geometric",
    "psi0": 0.9, "decay": 0.95}``.  It replaces the scheme's default rule
    every round.
    """

    def __init__(self, name: str = "top_k", **params: Any):
        self.spec = {"name": str(name), **params}
        self.rule = WINNER_SELECTIONS.create(self.spec)

    def select_winners(self, ctx: RoundContext) -> "WinnerSelection":
        return self.rule


def alphas_applicable(rule) -> bool:
    """Whether guidance can actually steer ``rule``.

    Only rules whose value function reads ``weights`` are retunable
    (:class:`AdditiveScore`, :class:`CobbDouglasScore`,
    :class:`PerfectComplementaryScore`);
    :class:`~repro.core.scoring.MultiplicativeScore` carries a ``weights``
    array it ignores, so applying guidance to it would be a silent no-op —
    :class:`repro.api.Scenario` rejects that combination at validation.
    """
    return isinstance(
        rule, (AdditiveScore, CobbDouglasScore, PerfectComplementaryScore)
    )


def _apply_alphas(rule, alphas: np.ndarray) -> bool:
    """Install new exponents/weights on a weight-interpreting rule."""
    if alphas_applicable(rule) and rule.weights.shape == (len(alphas),):
        rule.weights = np.asarray(alphas, dtype=float)
        return True
    return False


@ROUND_POLICIES.register("guidance")
class GuidancePolicy(RoundPolicy):
    """Alpha retuning toward a target quality mix (Proposition 4, closed loop).

    Every ``every`` rounds the policy compares the mean quality vector it
    actually procured against ``target_mix`` and retunes the scoring
    exponents with a multiplicative controller step
    (:func:`~repro.core.guidance.retuned_alphas`); the initial exponents
    come from the proposition's exact inverse map given the ``betas``
    cost-coefficient estimates (uniform when not supplied).  Each update is
    recorded as an ``alpha_update`` action; when the aggregator's rule
    interprets weights (additive / Cobb-Douglas) the new exponents are
    installed on a *private copy* of the scoring rule, so the shared
    equilibrium solver of other runs is never perturbed.
    """

    def __init__(
        self,
        target_mix: Sequence[float],
        every: int = 5,
        betas: Sequence[float] | None = None,
        gain: float = 0.5,
        apply: bool = True,
    ):
        self.target_mix = np.asarray([float(v) for v in target_mix], dtype=float)
        if self.target_mix.ndim != 1 or self.target_mix.size == 0:
            raise ValueError("target_mix must be a non-empty 1-D sequence")
        if np.any(self.target_mix <= 0):
            raise ValueError("target_mix entries must be strictly positive")
        self.every = int(every)
        if self.every < 1:
            raise ValueError(f"every must be >= 1; got {every!r}")
        if betas is None:
            self.betas = np.full(self.target_mix.size, 1.0 / self.target_mix.size)
        else:
            self.betas = normalize_weights([float(b) for b in betas])
            if self.betas.size != self.target_mix.size:
                raise ValueError("betas must match target_mix dimensionality")
        if not (0.0 <= float(gain) <= 1.0):
            raise ValueError(f"gain must lie in [0, 1]; got {gain!r}")
        self.gain = float(gain)
        self.apply = bool(apply)
        self.alphas = alphas_for_target_mix(self.target_mix, self.betas)
        self._window: list[np.ndarray] = []
        self._bound = False

    def on_round_start(self, ctx: RoundContext) -> None:
        if not self._bound:
            auction = ctx.mechanism.auction
            rule = auction.scoring.quality_rule
            if rule.n_dimensions != self.target_mix.size:
                raise ValueError(
                    f"guidance target_mix has {self.target_mix.size} dimensions "
                    f"but the scoring rule scores {rule.n_dimensions}"
                )
            # Privatise the aggregator's scoring before any retune: the
            # quality rule inside is shared with the cached equilibrium
            # solver, and guidance must never mutate common knowledge.
            auction.scoring = copy.deepcopy(auction.scoring)
            if self.apply:
                _apply_alphas(auction.scoring.quality_rule, self.alphas)
            self._bound = True

    def after_aggregate(self, ctx: RoundContext, record: "MechanismRound") -> None:
        self._window.extend(
            np.asarray(w.quality, dtype=float) for w in record.outcome.winners
        )
        if ctx.round_index % self.every != 0 or not self._window:
            return
        observed = observed_procurement_mix(self._window)
        self.alphas = retuned_alphas(
            self.alphas, self.target_mix, observed, gain=self.gain
        )
        applied = self.apply and _apply_alphas(
            ctx.mechanism.auction.scoring.quality_rule, self.alphas
        )
        ctx.record(
            "alpha_update",
            alphas=[float(a) for a in self.alphas],
            observed_mix=[float(v) for v in observed],
            target_mix=[float(v) for v in self.target_mix],
            applied=bool(applied),
        )
        self._window = []

    def state_dict(self) -> dict:
        return {
            "alphas": [float(a) for a in self.alphas],
            "window": [[float(v) for v in w] for w in self._window],
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        state = dict(state)
        alphas = np.asarray(state.pop("alphas"), dtype=float)
        if alphas.shape != self.target_mix.shape:
            raise ValueError(
                f"guidance state has {alphas.size} alphas but target_mix "
                f"has {self.target_mix.size} dimensions"
            )
        window = [np.asarray(w, dtype=float) for w in state.pop("window")]
        if state:
            raise ValueError(f"unknown guidance state keys {sorted(state)}")
        self.alphas = alphas
        self._window = window
        # Force a re-bind: the fresh session's auction still shares its
        # scoring with the cached equilibrium solver, so the next
        # on_round_start must privatise a copy and install the restored
        # alphas on it — exactly the weights the uninterrupted run had.
        self._bound = False


@ROUND_POLICIES.register("audit_blacklist")
class AuditBlacklistPolicy(RoundPolicy):
    """Delivery auditing with strike-based bans (the paper's enforcement).

    Winners' declared qualities are audited against delivery reports each
    round; the simulation models defection explicitly — either a fixed
    ``defectors`` id list or a seeded ``defect_fraction`` of the population
    under-delivers every contract by ``shortfall``.  Violations accumulate
    strikes in a :class:`~repro.core.blacklist.Blacklist`; banned nodes
    stop receiving bid asks.  ``violation`` and ``ban`` actions record the
    robustness story round by round.
    """

    def __init__(
        self,
        strikes_to_ban: int = 2,
        tolerance: float = 0.05,
        shortfall: float = 0.5,
        defectors: Sequence[int] | None = None,
        defect_fraction: float | None = None,
    ):
        self.blacklist = Blacklist(
            strikes_to_ban=int(strikes_to_ban), tolerance=float(tolerance)
        )
        if not (0.0 < float(shortfall) <= 1.0):
            raise ValueError(f"shortfall must lie in (0, 1]; got {shortfall!r}")
        self.shortfall = float(shortfall)
        if defectors is not None and defect_fraction is not None:
            raise ValueError("give either defectors or defect_fraction, not both")
        if defect_fraction is not None and not (0.0 <= float(defect_fraction) <= 1.0):
            raise ValueError(
                f"defect_fraction must lie in [0, 1]; got {defect_fraction!r}"
            )
        self.defect_fraction = None if defect_fraction is None else float(defect_fraction)
        self._defectors: frozenset[int] | None = (
            None if defectors is None else frozenset(int(d) for d in defectors)
        )
        if self._defectors is None and self.defect_fraction is None:
            self._defectors = frozenset()

    @property
    def defectors(self) -> frozenset[int] | None:
        """The defecting node ids (``None`` until the seeded draw happens)."""
        return self._defectors

    def filter_agents(self, agents: Sequence, ctx: RoundContext) -> list:
        if self._defectors is None:
            # Draw from the full population (ctx.agents), not from
            # whatever earlier stages (churn) left in `agents`: the
            # defecting subset is a property of the nodes, not of who
            # happened to be present in round 1.
            population = ctx.agents if len(ctx.agents) else agents
            ids = sorted(int(a.node_id) for a in population)
            k = int(round(self.defect_fraction * len(ids)))
            drawn = ctx.rng.choice(ids, size=k, replace=False) if k else []
            self._defectors = frozenset(int(i) for i in drawn)
            if self._defectors:
                ctx.record("defectors_drawn", node_ids=sorted(self._defectors))
        return self.blacklist.filter_agents(agents)

    def after_aggregate(self, ctx: RoundContext, record: "MechanismRound") -> None:
        reports = simulate_deliveries(record.outcome, self._defectors, self.shortfall)
        banned_before = self.blacklist.banned
        violations = audit_round(
            record.outcome, reports, self.blacklist, ctx.round_index
        )
        for v in violations:
            ctx.record(
                "violation",
                node_id=int(v.node_id),
                shortfall=float(v.shortfall),
                strikes=self.blacklist.strikes(v.node_id),
            )
        for node_id in sorted(self.blacklist.banned - banned_before):
            ctx.record("ban", node_id=int(node_id))

    def state_dict(self) -> dict:
        return {
            # None = the seeded defect_fraction draw has not happened yet.
            "defectors": (
                None if self._defectors is None else sorted(self._defectors)
            ),
            "blacklist": self.blacklist.state_dict(),
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        state = dict(state)
        defectors = state.pop("defectors")
        blacklist_state = state.pop("blacklist")
        if state:
            raise ValueError(f"unknown audit state keys {sorted(state)}")
        self._defectors = (
            None if defectors is None else frozenset(int(d) for d in defectors)
        )
        self.blacklist.load_state(blacklist_state)


@ROUND_POLICIES.register("churn")
class ChurnPolicy(RoundPolicy):
    """Seeded node arrival/departure between rounds.

    Each round every present node departs with probability
    ``departure_prob`` and every absent node returns with probability
    ``arrival_prob`` (draws from the policy stream, in sorted node-id
    order, so the trajectory is a pure function of the policy seed).  The
    active set never drops below ``min_active``.  ``depart``/``arrive``
    actions record the membership trajectory.
    """

    def __init__(
        self,
        departure_prob: float = 0.1,
        arrival_prob: float = 0.5,
        min_active: int = 1,
    ):
        for name, p in (("departure_prob", departure_prob), ("arrival_prob", arrival_prob)):
            if not (0.0 <= float(p) <= 1.0):
                raise ValueError(f"{name} must lie in [0, 1]; got {p!r}")
        self.departure_prob = float(departure_prob)
        self.arrival_prob = float(arrival_prob)
        self.min_active = int(min_active)
        if self.min_active < 1:
            raise ValueError(f"min_active must be >= 1; got {min_active!r}")
        self._population: list[int] | None = None
        self._active: set[int] | None = None

    def filter_agents(self, agents: Sequence, ctx: RoundContext) -> list:
        if self._population is None:
            self._population = sorted(int(a.node_id) for a in agents)
            self._active = set(self._population)
        departures: list[int] = []
        arrivals: list[int] = []
        # One draw per population member per round, in sorted-id order:
        # the membership trajectory depends only on the policy stream.
        for node_id in self._population:
            u = ctx.rng.random()
            if node_id in self._active:
                if u < self.departure_prob:
                    departures.append(node_id)
            elif u < self.arrival_prob:
                arrivals.append(node_id)
        for node_id in arrivals:
            self._active.add(node_id)
        departed: list[int] = []
        for node_id in departures:
            if len(self._active) > self.min_active:
                self._active.remove(node_id)
                departed.append(node_id)
        # Record only *effective* membership changes — departure draws
        # blocked by the min_active floor are not churn.
        if departed or arrivals:
            ctx.record(
                "churn",
                departed=departed,
                arrived=arrivals,
                n_active=len(self._active),
            )
        return [a for a in agents if int(a.node_id) in self._active]

    @property
    def active_ids(self) -> frozenset[int]:
        """Currently-present node ids (empty before the first round)."""
        return frozenset(self._active or ())

    def state_dict(self) -> dict:
        return {
            # None = the population has not been observed yet (round 0).
            "population": self._population,
            "active": None if self._active is None else sorted(self._active),
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        state = dict(state)
        population = state.pop("population")
        active = state.pop("active")
        if state:
            raise ValueError(f"unknown churn state keys {sorted(state)}")
        self._population = (
            None if population is None else [int(n) for n in population]
        )
        self._active = None if active is None else {int(n) for n in active}


def build_policy_pipeline(specs: Mapping[str, Any]) -> list[RoundPolicy]:
    """Instantiate a pipeline from a ``{stage: params}`` mapping.

    Keys are the registered stage names (:data:`PIPELINE_STAGES`); values
    are the stage's constructor parameters (for ``selection``, a
    WINNER_SELECTIONS spec).  ``None`` values mean "stage disabled" — that
    is how per-scheme Scenario overrides remove a base policy.  The
    returned list is ordered by :data:`PIPELINE_STAGES` regardless of
    mapping order, so pipelines are deterministic.
    """
    unknown = sorted(set(specs) - set(PIPELINE_STAGES))
    if unknown:
        raise ValueError(
            f"unknown round-policy stages {unknown}; "
            f"choose from {list(PIPELINE_STAGES)}"
        )
    pipeline: list[RoundPolicy] = []
    for stage in PIPELINE_STAGES:
        spec = specs.get(stage)
        if spec is None:
            continue
        if not isinstance(spec, Mapping):
            raise TypeError(
                f"round-policy stage {stage!r} needs a parameter mapping "
                f"(or null to disable it); got {type(spec).__name__}"
            )
        pipeline.append(ROUND_POLICIES.create(stage, **dict(spec)))
    return pipeline
