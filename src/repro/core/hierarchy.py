"""Two-tier sharded auctions: FMore at MEC population scale.

The flat mechanism collects one bid per node and ranks all N of them —
fine at the paper's N~100, hopeless at N=10^5-10^6.  This module shards
the population into C edge clusters and runs the auction in two tiers,
the shape of hierarchical incentive mechanisms for MEC federated
learning (see PAPERS.md):

* **local tier** — every cluster runs the ordinary FMore winner
  determination over its own slice: members bid at the equilibrium of
  the *cluster* game ``(s, c, F, n_c, k_local)`` (the population solver
  cloned per distinct cluster size via
  :meth:`~repro.core.equilibrium.EquilibriumSolver.with_population`, so
  the strategy tables are built once), scores come from one vectorised
  ``score_batch`` call, and the per-cluster top-``k_local`` ranking uses
  :func:`~repro.core.auction.top_k_order` — O(n_c) argpartition instead
  of a full sort;
* **top tier** — each non-empty cluster's head aggregates its local
  winners into one synthetic bid (summed score, summed quality vector,
  summed asking payment) and the heads compete in a conventional auction
  for the ``k_clusters`` slots of the global round (top-K or psi
  admission, the auction's configured selection policy).

Every RNG draw happens up front in the caller's thread, so the
per-cluster winner determination is *pure array math* — it fans out
through any in-process :class:`~repro.api.executor.Executor` (serial /
thread / process) and the result is bitwise-identical regardless of
which pool ran it.

The population itself is a struct-of-arrays (:class:`ShardedPopulation`)
— no per-node Python objects exist until the final winners are
materialised — which is what keeps one round at N=10^6 within seconds
(see ``benchmarks/bench_hierarchical.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from .auction import MultiDimensionalProcurementAuction, top_k_order
from .auction import AuctionOutcome, descending_order
from .bids import AuctionWinner, Bid, ScoredBid
from .equilibrium import EquilibriumSolver
from .mechanism import (
    BID_ASK_BYTES_PER_NODE,
    FLOAT_BYTES,
    FMoreMechanism,
    MechanismRound,
    RoundAccounting,
)
from .policies import PolicyAction

__all__ = [
    "ShardedPopulation",
    "HierarchicalMechanism",
    "assign_clusters",
    "build_population",
]


def assign_clusters(
    n_nodes: int,
    count: int,
    size_dist: str,
    rng: np.random.Generator,
) -> np.ndarray:
    """Seeded cluster membership for ``n_nodes`` bidders.

    ``"uniform"`` spreads nodes evenly in expectation; ``"lognormal"``
    draws per-cluster weights from a log-normal so a few mega-clusters
    coexist with many small ones (the realistic MEC shape).  The draw
    consumes only the given ``rng`` — the engine derives it from the
    spec's ``assignment_seed``, *not* the run seed, so the partition is
    an experiment constant shared by every cell and every executor.
    """
    if size_dist == "lognormal":
        weights = rng.lognormal(0.0, 1.0, int(count))
        weights = weights / weights.sum()
    elif size_dist == "uniform":
        weights = np.full(int(count), 1.0 / int(count))
    else:
        raise ValueError(f"unknown size_dist {size_dist!r}")
    return rng.choice(int(count), size=int(n_nodes), p=weights)


@dataclass
class ShardedPopulation:
    """The bidder population as aligned arrays, sharded into clusters.

    One entry per node; no :class:`~repro.mec.node.EdgeNode` objects are
    built.  ``thetas`` already carries the per-cluster skew and stays
    inside the type prior's support; ``data_sizes`` is in raw samples
    (divide by ``samples_per_quality_unit`` for the q1 quality unit).
    """

    node_ids: np.ndarray
    thetas: np.ndarray
    data_sizes: np.ndarray
    category_proportions: np.ndarray
    cluster_ids: np.ndarray
    cluster_count: int
    availability_min_fraction: float
    theta_jitter: float
    samples_per_quality_unit: float = 1000.0

    def __post_init__(self) -> None:
        n = len(self.node_ids)
        for name in ("thetas", "data_sizes", "category_proportions", "cluster_ids"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} must align with node_ids (length {n})")
        order = np.argsort(self.cluster_ids, kind="stable")
        bounds = np.searchsorted(
            self.cluster_ids[order], np.arange(self.cluster_count + 1)
        )
        self._members = [
            order[bounds[c] : bounds[c + 1]] for c in range(self.cluster_count)
        ]

    @property
    def n_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def members(self) -> list[np.ndarray]:
        """Per-cluster member indices (into the population arrays)."""
        return self._members

    @property
    def cluster_sizes(self) -> np.ndarray:
        return np.asarray([m.size for m in self._members])


def build_population(
    n_nodes: int,
    thetas: np.ndarray,
    size_range: tuple[int, int],
    clusters_spec: Mapping[str, Any],
    pop_rng: np.random.Generator,
    assign_rng: np.random.Generator,
    *,
    category_floor: float,
    availability_min_fraction: float,
    theta_jitter: float,
    theta_support: tuple[float, float],
    samples_per_quality_unit: float = 1000.0,
) -> ShardedPopulation:
    """Materialise a sharded population from a canonical ``clusters`` spec.

    The resource draws mirror the flat simulator's *laws* in vectorised
    form — log-uniform data sizes over ``size_range``, category
    proportions in ``[category_floor, 1]`` — then the per-cluster skews
    are applied: ``theta_skew`` shifts each cluster's types by a common
    normal offset (clipped back into the prior support, where the
    cluster-game solvers are defined) and ``capacity_skew`` scales each
    cluster's data holdings by a common log-normal factor (clipped back
    into ``size_range``).  Cluster membership draws from ``assign_rng``
    only, so the partition depends on ``assignment_seed`` alone.
    """
    n = int(n_nodes)
    lo, hi = float(size_range[0]), float(size_range[1])
    data_sizes = np.round(np.exp(pop_rng.uniform(np.log(lo), np.log(hi), n)))
    cats = pop_rng.uniform(min(category_floor, 1.0), 1.0, n)
    count = int(clusters_spec["count"])
    cluster_ids = assign_clusters(
        n, count, str(clusters_spec["size_dist"]), assign_rng
    )
    # Per-cluster skews are drawn unconditionally so the pop stream's
    # position never depends on whether a skew happens to be zero.
    theta_offsets = pop_rng.normal(0.0, 1.0, count)
    capacity_factors = pop_rng.normal(0.0, 1.0, count)
    t_lo, t_hi = float(theta_support[0]), float(theta_support[1])
    thetas = np.asarray(thetas, dtype=float)
    theta_skew = float(clusters_spec["theta_skew"])
    if theta_skew > 0.0:
        thetas = np.clip(thetas + theta_skew * theta_offsets[cluster_ids], t_lo, t_hi)
    else:
        thetas = np.clip(thetas, t_lo, t_hi)
    capacity_skew = float(clusters_spec["capacity_skew"])
    if capacity_skew > 0.0:
        factors = np.exp(capacity_skew * capacity_factors)
        data_sizes = np.clip(np.round(data_sizes * factors[cluster_ids]), lo, hi)
    return ShardedPopulation(
        node_ids=np.arange(n, dtype=np.int64),
        thetas=thetas,
        data_sizes=data_sizes,
        category_proportions=cats,
        cluster_ids=cluster_ids,
        cluster_count=count,
        availability_min_fraction=float(availability_min_fraction),
        theta_jitter=float(theta_jitter),
        samples_per_quality_unit=float(samples_per_quality_unit),
    )


def _local_winners_chunk(
    payload: list[tuple[int, np.ndarray, np.ndarray, np.ndarray, int]],
) -> list[tuple[int, np.ndarray]]:
    """Winner determination for a chunk of clusters — pure array math.

    Each item is ``(cluster_id, member_idx, scores, tiebreak, k_local)``
    with the score/tiebreak slices pre-gathered by the caller, so the
    payload is plain ndarrays: picklable for the process pool, and free
    of RNG state so every executor returns bitwise-identical winners.
    Returns ``(cluster_id, winning member_idx in rank order)`` per item.
    """
    out: list[tuple[int, np.ndarray]] = []
    for cid, idx, scores, tiebreak, k in payload:
        order = top_k_order(scores, tiebreak, int(k))
        out.append((cid, idx[order]))
    return out


class HierarchicalMechanism(FMoreMechanism):
    """The two-tier protocol over a :class:`ShardedPopulation`.

    Subclasses :class:`~repro.core.mechanism.FMoreMechanism` so the
    engine's checkpoint/resume path (which captures policy and bidding
    state from the mechanism) works unchanged — a hierarchical round
    keeps all of its state in the training RNG stream, so snapshotting
    between rounds restores bitwise.

    Parameters
    ----------
    auction:
        The *top-tier* auction: its ``k_winners`` is the number of
        clusters admitted per round and its selection policy (top-K or
        psi) arbitrates among cluster heads.  Member scoring uses its
        quasi-linear scoring rule.
    population:
        The sharded bidder population (shared across rounds; per-round
        dynamics are drawn fresh from the training RNG).
    solver:
        The population-level equilibrium solver; per-cluster games are
        :meth:`~repro.core.equilibrium.EquilibriumSolver.with_population`
        clones keyed by ``(cluster size, k_local)`` — one per *distinct*
        size, cached across rounds.
    k_local:
        Winners each cluster's local auction forwards to its head.
    executor:
        An in-process executor mapping the per-cluster winner
        determination over cluster chunks (``None`` = inline serial).
        RNG draws never cross this boundary, so serial / thread /
        process all produce identical rounds.
    """

    def __init__(
        self,
        auction: MultiDimensionalProcurementAuction,
        population: ShardedPopulation,
        solver: EquilibriumSolver,
        k_local: int,
        executor=None,
    ):
        super().__init__(auction)
        self.population = population
        self.solver = solver
        self.k_local = int(k_local)
        if self.k_local < 1:
            raise ValueError("k_local must be >= 1")
        self.executor = executor
        self._clones: dict[tuple[int, int], EquilibriumSolver] = {}

    def _cluster_solver(self, size: int) -> EquilibriumSolver:
        key = (int(size), min(self.k_local, int(size)))
        clone = self._clones.get(key)
        if clone is None:
            clone = self.solver.with_population(key[0], key[1])
            self._clones[key] = clone
        return clone

    def run_round(
        self,
        agents: Sequence,
        round_index: int,
        rng: np.random.Generator,
    ) -> MechanismRound:
        """One two-tier round; ``agents`` is ignored (the population bids).

        All randomness — availability fractions, per-round theta
        re-estimates, member and head tie-break keys, the head-tier
        admission draw — is consumed here from ``rng`` in a fixed order;
        the executor fan-out below is deterministic array work.
        """
        pop = self.population
        n = pop.n_nodes
        dist = self.solver.model.distribution
        # -- per-round dynamics (vectorised, fixed draw order) -----------
        fracs = rng.uniform(pop.availability_min_fraction, 1.0, n)
        if pop.theta_jitter > 0.0:
            width = (dist.hi - dist.lo) * pop.theta_jitter
            thetas = np.clip(
                pop.thetas + rng.uniform(-width, width, n), dist.lo, dist.hi
            )
        else:
            thetas = pop.thetas
        member_tiebreak = rng.random(n)
        head_tiebreak = rng.random(pop.cluster_count)

        # -- equilibrium pricing: one bid_batch per distinct cluster size --
        caps = np.column_stack(
            [
                np.floor(pop.data_sizes * fracs) / pop.samples_per_quality_unit,
                pop.category_proportions,
            ]
        )
        m = self.auction.scoring.quality_rule.n_dimensions
        qualities = np.empty((n, m))
        payments = np.empty(n)
        eligible = np.zeros(n, dtype=bool)
        by_size: dict[int, list[np.ndarray]] = {}
        for members in pop.members:
            if members.size:
                by_size.setdefault(int(members.size), []).append(members)
        for size, groups in by_size.items():
            idx = np.concatenate(groups)
            clone = self._cluster_solver(size)
            q, p, costs = clone.bid_batch(thetas[idx], caps[idx], with_costs=True)
            qualities[idx] = q
            payments[idx] = p
            eligible[idx] = (p - costs) >= -1e-12
        scores = self.auction.scoring.score_batch(qualities, payments)

        # -- local tier: per-cluster winner determination (fanned out) ----
        tasks = []
        for cid, members in enumerate(pop.members):
            live = members[eligible[members]]
            if live.size:
                tasks.append(
                    (
                        cid,
                        live,
                        scores[live],
                        member_tiebreak[live],
                        min(self.k_local, live.size),
                    )
                )
        if self.executor is None or len(tasks) <= 1:
            chunk_results = [_local_winners_chunk(tasks)]
        else:
            workers = self.executor.worker_count(len(tasks))
            chunks = [tasks[i::workers] for i in range(workers) if tasks[i::workers]]
            chunk_results = self.executor.map(_local_winners_chunk, chunks)
        local_winners = dict(
            pair for chunk in chunk_results for pair in chunk
        )

        # -- top tier: cluster heads compete for k_clusters slots ----------
        head_cids = sorted(local_winners)
        head_scores = np.asarray(
            [float(scores[local_winners[cid]].sum()) for cid in head_cids]
        )
        head_order = descending_order(
            head_scores, head_tiebreak[np.asarray(head_cids, dtype=int)]
        )
        scored_heads: list[ScoredBid] = []
        for pos in head_order:
            cid = head_cids[int(pos)]
            win_idx = local_winners[cid]
            head_bid = Bid(
                node_id=-(cid + 1),  # synthetic: never collides with nodes
                quality=qualities[win_idx].sum(axis=0),
                payment=float(payments[win_idx].sum()),
            )
            scored_heads.append(ScoredBid(head_bid, float(head_scores[int(pos)])))
        positions = self.auction.selection.select(
            len(scored_heads), self.auction.k_winners, rng
        )

        # -- materialise the global winner set (pay-as-bid) ----------------
        winners: list[AuctionWinner] = []
        selected_cids: list[int] = []
        for pos in positions:
            cid = -(scored_heads[pos].node_id) - 1
            selected_cids.append(int(cid))
            for i in local_winners[int(cid)]:
                winners.append(
                    AuctionWinner(
                        node_id=int(pop.node_ids[i]),
                        quality=qualities[i].copy(),
                        asked_payment=float(payments[i]),
                        charged_payment=float(payments[i]),
                        score=float(scores[i]),
                        rank=len(winners),
                    )
                )
        outcome = AuctionOutcome(
            winners, scored_heads, self.auction.k_winners, self.auction.payment_rule
        )

        # -- accounting + the per-tier action record -----------------------
        n_bids = int(eligible.sum())
        accounting = RoundAccounting(
            n_asked=n,
            n_bids=n_bids,
            downlink_bytes=BID_ASK_BYTES_PER_NODE * n,
            uplink_bytes=FLOAT_BYTES * (m + 1) * n_bids,
            comparisons=int(
                sum(
                    np.ceil(t[1].size * np.log2(t[1].size)) if t[1].size > 1 else 0
                    for t in tasks
                )
                + (
                    np.ceil(len(scored_heads) * np.log2(len(scored_heads)))
                    if len(scored_heads) > 1
                    else 0
                )
            ),
        )
        sizes = pop.cluster_sizes
        action = PolicyAction(
            kind="cluster_round",
            round_index=round_index,
            payload={
                "clusters": int(pop.cluster_count),
                "bidding_clusters": len(head_cids),
                "selected": selected_cids,
                "k_local": self.k_local,
                "n_local_winners": len(winners),
                "head_payment": float(sum(w.charged_payment for w in winners)),
                "mean_cluster_size": float(sizes.mean()) if sizes.size else 0.0,
            },
        )
        record = MechanismRound(
            round_index, outcome, accounting, abstained=[], actions=[action]
        )
        self.history.append(record)
        return record
