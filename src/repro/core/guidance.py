"""Aggregator guidance: steering the procured resource mix (Proposition 4).

With the general Cobb-Douglas utility ``s(q) = prod_i q_i**alpha_i``
(``sum alpha_i = 1``) and the additive cost ``c(q) = theta * sum_i beta_i
q_i`` (``sum beta_i = 1``), expected-utility maximisation under the budget
constraint ``theta * sum beta_i q_i = c0`` yields

    q*_i / q*_j = (alpha_i / alpha_j) * (beta_j / beta_i),

so the aggregator can dial the exponents ``alpha`` to procure any desired
proportion of resources "from a macro view" (paper Appendix C).  This module
provides the forward map (alphas -> optimal mix), the inverse map (desired
mix -> alphas) and a numerically-checked Lagrangian solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize

from .scoring import normalize_weights

__all__ = [
    "GuidanceResult",
    "optimal_quality_mix",
    "quality_ratio",
    "alphas_for_target_mix",
    "solve_mix_numerically",
    "observed_procurement_mix",
    "retuned_alphas",
]


@dataclass(frozen=True)
class GuidanceResult:
    """Optimal procurement mix for a Cobb-Douglas aggregator."""

    quality: np.ndarray
    alphas: np.ndarray
    betas: np.ndarray
    theta: float
    budget: float

    @property
    def ratios(self) -> np.ndarray:
        """Pairwise matrix ``R[i, j] = q*_i / q*_j``."""
        q = self.quality
        return q[:, None] / q[None, :]

    @property
    def spend_shares(self) -> np.ndarray:
        """Budget share of each dimension, ``theta*beta_i*q_i / c0``.

        For Cobb-Douglas utilities the share equals ``alpha_i`` — the classic
        expenditure-share property, asserted in tests.
        """
        return self.theta * self.betas * self.quality / self.budget


def optimal_quality_mix(
    alphas: Sequence[float],
    beta_estimates: Sequence[float],
    theta: float,
    budget: float,
) -> GuidanceResult:
    """Closed-form Lagrangian optimum of Proposition 4.

    Maximising ``prod q_i**alpha_i`` subject to ``theta * sum beta_i q_i =
    c0`` gives ``q*_i = alpha_i * c0 / (theta * beta_i * sum_j alpha_j)``.
    ``alphas``/``betas`` are normalised to sum to one on entry, matching the
    proposition's assumptions.
    """
    alpha = normalize_weights(alphas)
    beta = normalize_weights(beta_estimates)
    if np.any(alpha <= 0) or np.any(beta <= 0):
        raise ValueError("Proposition 4 requires strictly positive alphas and betas")
    if theta <= 0:
        raise ValueError("theta must be positive")
    if budget <= 0:
        raise ValueError("budget must be positive")
    quality = alpha * budget / (theta * beta)
    return GuidanceResult(quality=quality, alphas=alpha, betas=beta, theta=float(theta), budget=float(budget))


def quality_ratio(
    alpha_i: float, alpha_j: float, beta_i: float, beta_j: float
) -> float:
    """Proposition 4's headline ratio ``q*_i/q*_j = (a_i/a_j)(b_j/b_i)``."""
    if min(alpha_i, alpha_j, beta_i, beta_j) <= 0:
        raise ValueError("all coefficients must be positive")
    return (alpha_i / alpha_j) * (beta_j / beta_i)


def alphas_for_target_mix(
    target_quality: Sequence[float], beta_estimates: Sequence[float]
) -> np.ndarray:
    """Inverse problem: exponents ``alpha`` that make ``target_quality`` optimal.

    From ``q*_i proportional to alpha_i / beta_i`` it follows that
    ``alpha_i proportional to q_i * beta_i``; the result is normalised to sum
    to one.  This is the knob the paper says the aggregator can "adjust ...
    to get different proportion of resources".
    """
    target = np.asarray(target_quality, dtype=float)
    beta = normalize_weights(beta_estimates)
    if np.any(target <= 0):
        raise ValueError("target quality must be strictly positive")
    return normalize_weights(target * beta)


def observed_procurement_mix(winner_qualities: Sequence[np.ndarray]) -> np.ndarray:
    """The mean quality vector actually procured over a window of rounds.

    This is the feedback signal of a guidance experiment: the aggregator
    compares what it *got* against the mix it *wants* before retuning the
    exponents alpha (see :func:`retuned_alphas`).
    """
    rows = [np.asarray(q, dtype=float) for q in winner_qualities]
    if not rows:
        raise ValueError("need at least one winner quality vector")
    return np.mean(np.stack(rows), axis=0)


def retuned_alphas(
    alphas: Sequence[float],
    target_mix: Sequence[float],
    observed_mix: Sequence[float],
    gain: float = 0.5,
) -> np.ndarray:
    """One multiplicative-controller step of alpha retuning.

    Proposition 4's inverse map (:func:`alphas_for_target_mix`) is exact
    only when bidders sit at the Cobb-Douglas optimum; live populations
    (capacity caps, IR abstentions, psi randomness) procure a different
    mix.  This closed-loop step nudges the exponents by the per-dimension
    ratio of normalised target to observed mix raised to ``gain``:
    dimensions under-procured relative to target get heavier exponents.
    ``gain=0`` is a no-op; ``gain=1`` applies the full correction.
    """
    if not (0.0 <= gain <= 1.0):
        raise ValueError(f"gain must lie in [0, 1]; got {gain!r}")
    alpha = normalize_weights(alphas)
    target = normalize_weights(target_mix)
    observed = np.maximum(
        normalize_weights(np.maximum(np.asarray(observed_mix, dtype=float), 0.0)),
        1e-9,
    )
    correction = (target / observed) ** float(gain)
    return normalize_weights(np.maximum(alpha * correction, 1e-9))


def solve_mix_numerically(
    alphas: Sequence[float],
    beta_estimates: Sequence[float],
    theta: float,
    budget: float,
) -> np.ndarray:
    """Numerical verification of :func:`optimal_quality_mix`.

    Solves the same constrained program with SLSQP (maximising the log of the
    Cobb-Douglas utility for numerical stability).  Used by tests to confirm
    the closed form; exposed publicly because it also handles alphas that do
    not sum to one.
    """
    alpha = np.asarray(alphas, dtype=float)
    beta = np.asarray(beta_estimates, dtype=float)
    if np.any(alpha <= 0) or np.any(beta <= 0):
        raise ValueError("alphas and betas must be strictly positive")
    m = alpha.size

    def negative_log_utility(q: np.ndarray) -> float:
        return -float(np.dot(alpha, np.log(np.maximum(q, 1e-300))))

    constraint = {
        "type": "eq",
        "fun": lambda q: theta * float(np.dot(beta, q)) - budget,
    }
    x0 = np.full(m, budget / (theta * float(np.sum(beta)) * m))
    res = optimize.minimize(
        negative_log_utility,
        x0,
        method="SLSQP",
        bounds=[(1e-9, None)] * m,
        constraints=[constraint],
    )
    if not res.success:
        raise RuntimeError(f"mix optimisation failed: {res.message}")
    return np.asarray(res.x, dtype=float)
