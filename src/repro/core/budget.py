"""Budget-constrained winner selection (the paper's stated future work).

Section VII: "the budget constraint of the aggregator is not considered,
which is left for future work."  This module provides the natural
extension: walk the score-sorted bids and admit winners while the
cumulative payment stays within a per-round budget ``c0`` (and at most K
winners), plus a greedy knapsack variant that ranks by score-per-payment.

Both plug into :class:`~repro.core.auction.MultiDimensionalProcurementAuction`
as selection policies; the selection sees payments through the bids
recorded at scoring time, so it composes with first-score payments (the
paper's default, where charged == asked).
"""

from __future__ import annotations

import numpy as np

from .auction import AuctionOutcome, MultiDimensionalProcurementAuction
from .bids import Bid

__all__ = ["BudgetedAuction"]


class BudgetedAuction:
    """A procurement auction whose winner set respects a payment budget.

    Not a :class:`WinnerSelection` (those only see positions); this wrapper
    re-implements the winner walk with payment visibility.

    Parameters
    ----------
    auction:
        The underlying auction (supplies scoring and tie-breaking).
    budget:
        Maximum total payment per round.
    mode:
        ``"score_order"`` — admit in score order, skipping bids that do not
        fit the remaining budget (the paper's K-winner rule with a purse);
        ``"value_per_cost"`` — greedy knapsack by ``score / payment``,
        better aggregator utility per unit spend when the purse binds.
    """

    def __init__(
        self,
        auction: MultiDimensionalProcurementAuction,
        budget: float,
        mode: str = "score_order",
    ):
        if budget <= 0:
            raise ValueError("budget must be positive")
        if mode not in ("score_order", "value_per_cost"):
            raise ValueError("mode must be 'score_order' or 'value_per_cost'")
        if auction.payment_rule != "first_score":
            raise ValueError(
                "budgeted selection requires first-score payments "
                "(charged == asked is known at selection time)"
            )
        self.auction = auction
        self.budget = float(budget)
        self.mode = mode

    def run(self, bids: list[Bid], rng: np.random.Generator) -> AuctionOutcome:
        base = self.auction.run(bids, rng)
        if not base.scored_bids:
            return base
        order = list(range(len(base.scored_bids)))
        if self.mode == "value_per_cost":
            def ratio(pos: int) -> float:
                sb = base.scored_bids[pos]
                payment = max(sb.bid.payment, 1e-12)
                return sb.score / payment

            order.sort(key=lambda pos: -ratio(pos))

        chosen: list[int] = []
        spent = 0.0
        for pos in order:
            if len(chosen) >= self.auction.k_winners:
                break
            sb = base.scored_bids[pos]
            if sb.score < 0:
                continue  # IR of the aggregator: never buy negative scores
            if spent + sb.bid.payment <= self.budget + 1e-12:
                chosen.append(pos)
                spent += sb.bid.payment
        chosen.sort()  # keep rank order stable for charging
        winners = self.auction._charge(base.scored_bids, chosen)
        return AuctionOutcome(
            winners, base.scored_bids, self.auction.k_winners, self.auction.payment_rule
        )
