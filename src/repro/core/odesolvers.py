"""Numerical backends for the equilibrium payment computation.

Paper Theorem 1 gives the equilibrium payment as

    ps(theta) = c(qs, theta) + m(u),    m(u) = (1/g(u)) * Int_0^u g(x) dx,

where ``u = s(qs(theta)) - c(qs(theta), theta)`` is the node's maximum
attainable score and ``g`` its winning-probability kernel.  The paper solves
the equivalent first-order linear ODE (Eq. 12)

    b'(u) + phi(u) b(u) = u phi(u),      phi = g'/g,  b(0) = 0,

with Euler's method and notes Runge-Kutta as an alternative.  Working with
the *margin* ``m(u) = u - b(u)`` is numerically nicer because the initial
condition is simply ``m = 0`` at the bottom of the support and the ODE
becomes

    m'(u) = 1 - m(u) * phi(u).

This module provides three interchangeable backends:

* :func:`quadrature_margin` — direct cumulative trapezoid of ``Int g`` (the
  reference implementation; exact up to quadrature error),
* :func:`euler_margin` — forward Euler on the margin ODE (what the paper's
  Algorithm 1 line 7 prescribes),
* :func:`rk4_margin` — classic fourth-order Runge-Kutta on the same ODE.

All three take a shared increasing grid of scores ``u_grid`` with the kernel
``g`` evaluated on it, and return the margin on that grid.  ``g`` may be
zero on a prefix of the grid (scores no type can beat); the margin is zero
there by convention.
"""

from __future__ import annotations

import numpy as np

from .registry import MARGIN_METHODS

__all__ = [
    "quadrature_margin",
    "euler_margin",
    "rk4_margin",
    "MARGIN_BACKENDS",
]


def _validate(u_grid: np.ndarray, g_values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    u = np.asarray(u_grid, dtype=float)
    g = np.asarray(g_values, dtype=float)
    if u.ndim != 1 or u.size < 2:
        raise ValueError("u_grid must be 1-D with at least two points")
    if g.shape != u.shape:
        raise ValueError("g_values must match u_grid in shape")
    if np.any(np.diff(u) <= 0):
        raise ValueError("u_grid must be strictly increasing")
    if np.any(g < -1e-12):
        raise ValueError("g must be non-negative")
    return u, np.maximum(g, 0.0)


def quadrature_margin(u_grid: np.ndarray, g_values: np.ndarray) -> np.ndarray:
    """Margin via cumulative trapezoidal quadrature of ``Int g / g(u)``."""
    u, g = _validate(u_grid, g_values)
    du = np.diff(u)
    cumulative = np.concatenate(
        [[0.0], np.cumsum(0.5 * (g[1:] + g[:-1]) * du)]
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        margin = np.where(g > 0.0, cumulative / np.where(g > 0.0, g, 1.0), 0.0)
    return margin


def euler_margin(u_grid: np.ndarray, g_values: np.ndarray) -> np.ndarray:
    """Margin via forward Euler on ``m' = 1 - m * g'/g`` (paper's method).

    ``phi = g'/g`` is evaluated with one-sided differences of ``log g`` on
    the grid, matching the discretisation the paper's Eq. 13-14 imply.
    """
    u, g = _validate(u_grid, g_values)
    n = u.size
    margin = np.zeros(n)
    for i in range(1, n):
        h = u[i] - u[i - 1]
        if g[i - 1] <= 0.0 or g[i] <= 0.0:
            # Below the competitive support: nobody wins with such a score,
            # profit margin pinned at zero.
            margin[i] = 0.0
            continue
        phi = (np.log(g[i]) - np.log(g[i - 1])) / h
        margin[i] = margin[i - 1] + h * (1.0 - margin[i - 1] * phi)
        if margin[i] < 0.0:
            margin[i] = 0.0
    return margin


def rk4_margin(u_grid: np.ndarray, g_values: np.ndarray) -> np.ndarray:
    """Margin via classic RK4 on ``m' = 1 - m * phi(u)``.

    ``phi`` between grid points is obtained by linear interpolation of
    ``log g``, which keeps the scheme self-contained on the same grid the
    other backends use.
    """
    u, g = _validate(u_grid, g_values)
    n = u.size
    log_g = np.where(g > 0.0, np.log(np.where(g > 0.0, g, 1.0)), -np.inf)

    def phi_at(x: float, lo: int, hi: int) -> float:
        if not np.isfinite(log_g[lo]) or not np.isfinite(log_g[hi]):
            return 0.0
        h = u[hi] - u[lo]
        return (log_g[hi] - log_g[lo]) / h

    margin = np.zeros(n)
    for i in range(1, n):
        if g[i - 1] <= 0.0 or g[i] <= 0.0:
            margin[i] = 0.0
            continue
        h = u[i] - u[i - 1]
        phi = phi_at(u[i - 1], i - 1, i)

        def f(m: float) -> float:
            return 1.0 - m * phi

        m0 = margin[i - 1]
        k1 = f(m0)
        k2 = f(m0 + 0.5 * h * k1)
        k3 = f(m0 + 0.5 * h * k2)
        k4 = f(m0 + h * k3)
        margin[i] = m0 + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        if margin[i] < 0.0:
            margin[i] = 0.0
    return margin


MARGIN_BACKENDS = {
    "quadrature": quadrature_margin,
    "euler": euler_margin,
    "rk4": rk4_margin,
}

# Same three backends under the registry surface used by repro.api specs.
for _name, _fn in MARGIN_BACKENDS.items():
    MARGIN_METHODS.register(_name, _fn)
del _name, _fn
