"""The FMore contribution: multi-dimensional procurement auction with K winners.

Public surface of the auction-theory layer.  Typical usage::

    from repro.core import (
        AdditiveScore, QuadraticCost, UniformTheta, PrivateValueModel,
        EquilibriumSolver, MultiDimensionalProcurementAuction, Bid,
    )

    rule = AdditiveScore([0.5, 0.5])
    cost = QuadraticCost([1.0, 1.0])
    model = PrivateValueModel(UniformTheta(0.1, 1.0), n_nodes=100, k_winners=20)
    solver = EquilibriumSolver(rule, cost, model, [[0, 10], [0, 1]])
    quality, payment = solver.bid(theta=0.4)
"""

from .auction import AuctionOutcome, MultiDimensionalProcurementAuction, PAYMENT_RULES
from .bids import AuctionWinner, Bid, ScoredBid
from .blacklist import (
    Blacklist,
    DeliveryReport,
    Violation,
    audit_round,
    simulate_deliveries,
)
from .budget import BudgetedAuction
from .costs import (
    CostModel,
    LinearCost,
    PowerCost,
    QuadraticCost,
    SingleCrossingReport,
    check_single_crossing,
)
from .equilibrium import (
    EquilibriumSolver,
    optimize_quality,
    optimize_quality_batch,
    win_kernel,
)
from .guidance import (
    GuidanceResult,
    alphas_for_target_mix,
    observed_procurement_mix,
    optimal_quality_mix,
    quality_ratio,
    retuned_alphas,
    solve_mix_numerically,
)
from .mechanism import FMoreMechanism, MechanismRound, RoundAccounting
from .policies import (
    AuditBlacklistPolicy,
    ChurnPolicy,
    GuidancePolicy,
    PIPELINE_STAGES,
    PolicyAction,
    RoundContext,
    RoundPolicy,
    SelectionPolicy,
    build_policy_pipeline,
)
from .odesolvers import MARGIN_BACKENDS, euler_margin, quadrature_margin, rk4_margin
from .properties import (
    ICViolation,
    check_incentive_compatibility,
    is_individually_rational,
    max_social_surplus,
    pareto_gap,
    profit_of_payment_deviation,
    realized_social_surplus,
    social_surplus,
)
from .registry import (
    COST_MODELS,
    MARGIN_METHODS,
    ROUND_POLICIES,
    SCORING_RULES,
    THETA_DISTRIBUTIONS,
    WINNER_SELECTIONS,
    Registry,
)
from .psi import (
    PerNodePsiSelection,
    PsiSelection,
    RankPsiSchedule,
    TopKSelection,
    WinnerSelection,
    negative_binomial_fill_probability,
    paper_fill_probability,
)
from .scoring import (
    AdditiveScore,
    CobbDouglasScore,
    MultiplicativeScore,
    PerfectComplementaryScore,
    QuasiLinearScoringRule,
    ScoringRule,
    normalize_weights,
)
from .valuation import (
    PrivateValueModel,
    ScaledBetaTheta,
    ThetaDistribution,
    TruncatedNormalTheta,
    UniformTheta,
)

__all__ = [
    # registries (the payment-rule registry lives at repro.core.registry)
    "Registry",
    "SCORING_RULES",
    "COST_MODELS",
    "THETA_DISTRIBUTIONS",
    "WINNER_SELECTIONS",
    "MARGIN_METHODS",
    "ROUND_POLICIES",
    # scoring
    "ScoringRule",
    "AdditiveScore",
    "PerfectComplementaryScore",
    "CobbDouglasScore",
    "MultiplicativeScore",
    "QuasiLinearScoringRule",
    "normalize_weights",
    # costs
    "CostModel",
    "LinearCost",
    "QuadraticCost",
    "PowerCost",
    "SingleCrossingReport",
    "check_single_crossing",
    # valuation
    "ThetaDistribution",
    "UniformTheta",
    "TruncatedNormalTheta",
    "ScaledBetaTheta",
    "PrivateValueModel",
    # equilibrium
    "EquilibriumSolver",
    "optimize_quality",
    "optimize_quality_batch",
    "win_kernel",
    "MARGIN_BACKENDS",
    "euler_margin",
    "rk4_margin",
    "quadrature_margin",
    # auction
    "Bid",
    "ScoredBid",
    "AuctionWinner",
    "AuctionOutcome",
    "MultiDimensionalProcurementAuction",
    "PAYMENT_RULES",
    # selection
    "WinnerSelection",
    "TopKSelection",
    "PsiSelection",
    "PerNodePsiSelection",
    "RankPsiSchedule",
    "paper_fill_probability",
    "negative_binomial_fill_probability",
    # enforcement and budget extensions
    "Blacklist",
    "DeliveryReport",
    "Violation",
    "audit_round",
    "simulate_deliveries",
    "BudgetedAuction",
    # guidance
    "GuidanceResult",
    "optimal_quality_mix",
    "quality_ratio",
    "alphas_for_target_mix",
    "solve_mix_numerically",
    "observed_procurement_mix",
    "retuned_alphas",
    # properties
    "is_individually_rational",
    "profit_of_payment_deviation",
    "ICViolation",
    "check_incentive_compatibility",
    "social_surplus",
    "max_social_surplus",
    "pareto_gap",
    "realized_social_surplus",
    # mechanism
    "FMoreMechanism",
    "MechanismRound",
    "RoundAccounting",
    # round-policy pipeline
    "RoundPolicy",
    "RoundContext",
    "PolicyAction",
    "SelectionPolicy",
    "GuidancePolicy",
    "AuditBlacklistPolicy",
    "ChurnPolicy",
    "PIPELINE_STAGES",
    "build_policy_pipeline",
]
