"""Scoring rules for the multi-dimensional procurement auction.

The aggregator announces a quasi-linear scoring rule

    S(q_1, ..., q_m, p) = s(q_1, ..., q_m) - p

(paper Eq. 4), where ``q`` is the quality vector a node offers and ``p`` is
the payment it asks.  The quality part ``s`` encodes how the aggregator
values combinations of resources.  The paper names three classic families
(Section III-A):

* perfect substitution   ``s(q) = sum_i alpha_i q_i``
* perfect complementary  ``s(q) = min_i alpha_i q_i``
* generalised Cobb-Douglas ``s(q) = prod_i q_i ** alpha_i``

and the simulations additionally use the multiplicative rule
``s(q1, q2) = alpha * q1 * q2`` (Section V-A).  All of these are provided
here behind a single :class:`ScoringRule` interface.

Gradients are exposed because the Nash-equilibrium quality choice
(Che's Theorem 1) maximises ``s(q) - c(q, theta)``; solvers want first-order
information whenever the rule is differentiable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from .registry import SCORING_RULES

__all__ = [
    "ScoringRule",
    "AdditiveScore",
    "PerfectComplementaryScore",
    "CobbDouglasScore",
    "MultiplicativeScore",
    "QuasiLinearScoringRule",
    "normalize_weights",
]


def normalize_weights(weights: Sequence[float]) -> np.ndarray:
    """Return ``weights`` rescaled to sum to one.

    The paper notes the constraint ``sum(alpha_i) = 1`` "may be added but is
    not imperative"; this helper makes opting in explicit.
    """
    arr = np.asarray(weights, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    total = arr.sum()
    if total <= 0:
        raise ValueError("weights must have a positive sum")
    return arr / total


class ScoringRule(ABC):
    """Valuation ``s(q)`` of a quality vector ``q`` of ``m`` resources."""

    def __init__(self, weights: Sequence[float]):
        self.weights = np.asarray(weights, dtype=float)
        if self.weights.ndim != 1 or self.weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        if np.any(self.weights < 0):
            raise ValueError("weights must be non-negative")

    @property
    def n_dimensions(self) -> int:
        """Number of resource dimensions ``m``."""
        return int(self.weights.size)

    def _check(self, quality: np.ndarray) -> np.ndarray:
        q = np.asarray(quality, dtype=float)
        if q.shape[-1] != self.n_dimensions:
            raise ValueError(
                f"quality has {q.shape[-1]} dimensions, rule expects "
                f"{self.n_dimensions}"
            )
        return q

    @abstractmethod
    def value(self, quality: np.ndarray) -> float:
        """Return ``s(q)`` for a single quality vector."""

    @abstractmethod
    def gradient(self, quality: np.ndarray) -> np.ndarray:
        """Return ``ds/dq`` at ``q`` (sub-gradient where non-smooth)."""

    def value_batch(self, qualities: np.ndarray) -> np.ndarray:
        """Return ``s(q)`` for each row of an ``(n, m)`` array."""
        q = self._check(qualities)
        if q.ndim == 1:
            return np.asarray([self.value(q)])
        return np.asarray([self.value(row) for row in q])

    def score(self, quality: np.ndarray, payment: float) -> float:
        """Quasi-linear score ``S(q, p) = s(q) - p`` (paper Eq. 4)."""
        return self.value(quality) - float(payment)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(weights={self.weights.tolist()})"


@SCORING_RULES.register("additive")
class AdditiveScore(ScoringRule):
    """Perfect-substitution rule ``s(q) = sum_i alpha_i q_i``.

    The paper recommends this for interchangeable resources such as GPU and
    CPU cycles, and uses it in the real-world deployment
    (``S = 0.4 q1 + 0.3 q2 + 0.3 q3 - p``, Section V-A).
    """

    def value(self, quality: np.ndarray) -> float:
        q = self._check(quality)
        return float(np.dot(self.weights, q))

    def gradient(self, quality: np.ndarray) -> np.ndarray:
        self._check(quality)
        return self.weights.copy()

    def value_batch(self, qualities: np.ndarray) -> np.ndarray:
        q = self._check(qualities)
        return q @ self.weights


@SCORING_RULES.register("perfect_complementary")
class PerfectComplementaryScore(ScoringRule):
    """Leontief rule ``s(q) = min_i alpha_i q_i``.

    Appropriate when resources are only useful together — e.g. bandwidth and
    compute, where surplus of one cannot compensate for lack of the other
    (paper Section III-A and the walk-through example of Section III-B).
    """

    def value(self, quality: np.ndarray) -> float:
        q = self._check(quality)
        return float(np.min(self.weights * q))

    def gradient(self, quality: np.ndarray) -> np.ndarray:
        q = self._check(quality)
        scaled = self.weights * q
        grad = np.zeros_like(self.weights)
        idx = int(np.argmin(scaled))
        grad[idx] = self.weights[idx]
        return grad

    def value_batch(self, qualities: np.ndarray) -> np.ndarray:
        q = self._check(qualities)
        return np.min(q * self.weights, axis=-1)


@SCORING_RULES.register("cobb_douglas")
class CobbDouglasScore(ScoringRule):
    """Generalised Cobb-Douglas rule ``s(q) = scale * prod_i q_i**alpha_i``.

    This is the utility family Proposition 4 analyses; the aggregator tunes
    the exponents ``alpha`` to steer the resource mix it procures
    (``q*_i / q*_j = (alpha_i / alpha_j) * (beta_j / beta_i)``).
    """

    def __init__(self, weights: Sequence[float], scale: float = 1.0):
        super().__init__(weights)
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)

    def value(self, quality: np.ndarray) -> float:
        q = self._check(quality)
        if np.any(q < 0):
            raise ValueError("Cobb-Douglas requires non-negative quality")
        # 0**0 is defined as 1 here so zero-weight dimensions are neutral.
        with np.errstate(divide="ignore"):
            terms = np.where(
                self.weights == 0.0, 1.0, np.power(np.maximum(q, 0.0), self.weights)
            )
        return float(self.scale * np.prod(terms))

    def gradient(self, quality: np.ndarray) -> np.ndarray:
        q = self._check(quality)
        val = self.value(q)
        grad = np.zeros_like(self.weights)
        for j in range(self.n_dimensions):
            if self.weights[j] == 0.0:
                continue
            if q[j] > 0:
                grad[j] = val * self.weights[j] / q[j]
            else:
                # One-sided derivative blows up at 0 for alpha < 1; report a
                # large finite slope so optimisers move off the boundary.
                grad[j] = np.inf
        return grad

    def value_batch(self, qualities: np.ndarray) -> np.ndarray:
        q = self._check(qualities)
        with np.errstate(divide="ignore"):
            terms = np.where(
                self.weights == 0.0, 1.0, np.power(np.maximum(q, 0.0), self.weights)
            )
        return self.scale * np.prod(terms, axis=-1)


@SCORING_RULES.register("multiplicative")
class MultiplicativeScore(ScoringRule):
    """Simulation rule ``s(q) = scale * prod_i q_i`` (paper Section V-A).

    The paper's simulator scores bids with ``S(q1, q2, p) = alpha*q1*q2 - p``
    where ``q1`` is the data size, ``q2`` the proportion of data categories,
    and ``alpha = 25``.  This is a Cobb-Douglas rule with unit exponents but
    is kept separate because its gradient is exact at the boundary.
    """

    def __init__(self, n_dimensions: int = 2, scale: float = 25.0):
        super().__init__(np.ones(n_dimensions))
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)

    def value(self, quality: np.ndarray) -> float:
        q = self._check(quality)
        return float(self.scale * np.prod(q))

    def gradient(self, quality: np.ndarray) -> np.ndarray:
        q = self._check(quality)
        grad = np.empty_like(q)
        for j in range(q.size):
            rest = np.prod(np.delete(q, j))
            grad[j] = self.scale * rest
        return grad

    def value_batch(self, qualities: np.ndarray) -> np.ndarray:
        q = self._check(qualities)
        return self.scale * np.prod(q, axis=-1)


class QuasiLinearScoringRule:
    """Convenience wrapper bundling ``s`` with the quasi-linear form of Eq. 4.

    Instances are broadcast by the aggregator in the *bid ask* step.  The
    wrapper also supports min-max normalisation of quality dimensions, which
    the walk-through example of Section III-B applies before scoring.
    """

    def __init__(
        self,
        quality_rule: ScoringRule,
        lower: Sequence[float] | None = None,
        upper: Sequence[float] | None = None,
    ):
        self.quality_rule = quality_rule
        m = quality_rule.n_dimensions
        self.lower = None if lower is None else np.asarray(lower, dtype=float)
        self.upper = None if upper is None else np.asarray(upper, dtype=float)
        if (self.lower is None) != (self.upper is None):
            raise ValueError("provide both lower and upper bounds or neither")
        if self.lower is not None:
            if self.lower.shape != (m,) or self.upper.shape != (m,):
                raise ValueError("bounds must match the rule dimensionality")
            if np.any(self.upper <= self.lower):
                raise ValueError("upper bounds must exceed lower bounds")

    @property
    def normalizes(self) -> bool:
        return self.lower is not None

    def normalize(self, quality: np.ndarray) -> np.ndarray:
        """Min-max normalise a quality vector into ``[0, 1]`` per dimension."""
        q = np.asarray(quality, dtype=float)
        if not self.normalizes:
            return q
        return (q - self.lower) / (self.upper - self.lower)

    def score(self, quality: np.ndarray, payment: float) -> float:
        """Return ``S(q, p) = s(normalise(q)) - p``."""
        return self.quality_rule.value(self.normalize(quality)) - float(payment)

    def score_batch(self, qualities: np.ndarray, payments: np.ndarray) -> np.ndarray:
        q = np.asarray(qualities, dtype=float)
        if self.normalizes:
            q = (q - self.lower) / (self.upper - self.lower)
        return self.quality_rule.value_batch(q) - np.asarray(payments, dtype=float)
