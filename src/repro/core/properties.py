"""Mechanism-property checkers: IR, IC, Pareto efficiency, social surplus.

The paper proves (Section IV):

* **Theorem 4** — when the aggregator's utility ``U`` equals the additive
  quality score ``s``, FMore is Pareto efficient: the winner set maximises
  the social surplus ``sum_{i in W} [s(q_i) - c(q_i, theta_i)]``.
* **Theorem 5** — FMore is incentive compatible: declaring a *lower* quality
  than the equilibrium one (while keeping the asked payment) strictly
  lowers the submitted score, hence the winning probability.

These are verified numerically here; the test suite and the property-based
hypothesis suites drive the checkers across environments, and the
integration benches report the realised social surplus of simulated rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from .auction import AuctionOutcome
from .costs import CostModel
from .equilibrium import EquilibriumSolver, optimize_quality
from .scoring import ScoringRule

__all__ = [
    "is_individually_rational",
    "profit_of_payment_deviation",
    "ICViolation",
    "check_incentive_compatibility",
    "social_surplus",
    "max_social_surplus",
    "pareto_gap",
    "realized_social_surplus",
]


def is_individually_rational(payment: float, cost_value: float, tol: float = 1e-9) -> bool:
    """IR constraint of Eq. 5: profit ``p - c`` must be non-negative."""
    return payment - cost_value >= -tol


def profit_of_payment_deviation(
    solver: EquilibriumSolver, theta: float, payment: float
) -> float:
    """Expected profit of bidding ``(qs(theta), payment)`` for any payment.

    The submitted score becomes ``s(qs) - payment``; the deviation wins with
    probability ``g(score)`` read off the equilibrium score distribution.
    At the equilibrium payment this equals
    :meth:`EquilibriumSolver.expected_profit`; the hypothesis suite uses it
    to confirm no profitable unilateral payment deviation exists (the Nash
    property of Definition 1).
    """
    q = solver.optimal_quality(theta)
    own_cost = solver.cost.cost(q, theta)
    submitted_score = solver.quality_rule.value(q) - payment
    win = solver.win_probability_at_score(submitted_score, model="exact")
    return float((payment - own_cost) * win)


@dataclass(frozen=True)
class ICViolation:
    """A counterexample to incentive compatibility, if one is found."""

    theta: float
    truthful_score: float
    deviant_quality: np.ndarray
    deviant_score: float


def check_incentive_compatibility(
    solver: EquilibriumSolver,
    theta: float,
    rng: np.random.Generator,
    n_trials: int = 32,
) -> ICViolation | None:
    """Theorem 5: under-declaring quality never increases the score.

    Samples ``n_trials`` deviant declarations ``q_hat`` with at least one
    coordinate strictly below the equilibrium quality (holding the asked
    payment fixed) and checks each scores no better than the truthful bid.
    Returns the first violation found, or ``None``.
    """
    q_star, p_star = solver.bid(theta)
    truthful_score = solver.quality_rule.value(q_star) - p_star
    lo = solver.quality_bounds[:, 0]
    for _ in range(n_trials):
        shrink = rng.uniform(0.0, 1.0, size=q_star.size)
        # Force at least one strictly-lower coordinate.
        j = rng.integers(q_star.size)
        shrink[j] = min(shrink[j], 0.9)
        q_hat = lo + shrink * (q_star - lo)
        deviant_score = solver.quality_rule.value(q_hat) - p_star
        if deviant_score > truthful_score + 1e-9:
            return ICViolation(theta, truthful_score, q_hat, deviant_score)
    return None


def social_surplus(
    qualities: Sequence[np.ndarray],
    thetas: Sequence[float],
    rule: ScoringRule,
    cost: CostModel,
) -> float:
    """``SS = sum_i s(q_i) - c(q_i, theta_i)`` over a winner set (Thm 4)."""
    total = 0.0
    for q, theta in zip(qualities, thetas):
        total += rule.value(np.asarray(q, dtype=float)) - cost.cost(q, float(theta))
    return float(total)


def max_social_surplus(
    thetas: Sequence[float],
    rule: ScoringRule,
    cost: CostModel,
    bounds: np.ndarray,
    k_winners: int,
) -> float:
    """Maximum achievable surplus: each type at ``qs(theta)``, best K types.

    Because ``u0(theta) = s(qs) - c(qs, theta)`` is decreasing in ``theta``,
    the optimum picks the K lowest types — exactly what score-sorting does
    at equilibrium, which is the content of Theorem 4.
    """
    thetas_arr = np.asarray(thetas, dtype=float)
    per_type = np.empty(thetas_arr.size)
    for i, theta in enumerate(thetas_arr):
        q = optimize_quality(rule, cost, float(theta), bounds)
        per_type[i] = rule.value(q) - cost.cost(q, float(theta))
    best = np.sort(per_type)[::-1][: min(k_winners, per_type.size)]
    # Only non-negative contributions: a rational planner excludes nodes
    # whose best surplus is negative (they would not participate, IR).
    return float(np.sum(np.maximum(best, 0.0)))


def pareto_gap(
    outcome_qualities: Sequence[np.ndarray],
    outcome_thetas: Sequence[float],
    all_thetas: Sequence[float],
    rule: ScoringRule,
    cost: CostModel,
    bounds: np.ndarray,
    k_winners: int,
) -> float:
    """Optimal surplus minus realised surplus (zero iff Pareto efficient)."""
    achieved = social_surplus(outcome_qualities, outcome_thetas, rule, cost)
    optimal = max_social_surplus(all_thetas, rule, cost, bounds, k_winners)
    return float(optimal - achieved)


def realized_social_surplus(
    outcome: AuctionOutcome,
    thetas_by_node: dict[int, float],
    rule: ScoringRule,
    cost: CostModel,
) -> float:
    """Surplus realised by an :class:`AuctionOutcome` given true types."""
    qualities = [w.quality for w in outcome.winners]
    thetas = [thetas_by_node[w.node_id] for w in outcome.winners]
    return social_surplus(qualities, thetas, rule, cost)
