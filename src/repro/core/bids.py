"""Bid datatypes exchanged between edge nodes and the aggregator.

A bid is the pair ``(q, p)`` a node submits in the *bid collection* step:
the multi-dimensional quality vector it commits to provide and the payment
it expects in return.  Bids are sealed — only the aggregator sees them
(Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Bid", "ScoredBid", "AuctionWinner"]


@dataclass(frozen=True)
class Bid:
    """A sealed bid ``(q_i, p_i)`` from node ``node_id``."""

    node_id: int
    quality: np.ndarray
    payment: float

    def __post_init__(self) -> None:
        q = np.asarray(self.quality, dtype=float)
        if q.ndim != 1 or q.size == 0:
            raise ValueError("quality must be a non-empty 1-D vector")
        if np.any(~np.isfinite(q)):
            raise ValueError("quality must be finite")
        if not np.isfinite(self.payment):
            raise ValueError("payment must be finite")
        object.__setattr__(self, "quality", q)

    @property
    def n_dimensions(self) -> int:
        return int(self.quality.size)


@dataclass(frozen=True)
class ScoredBid:
    """A bid together with the aggregator's score ``S(q, p)``."""

    bid: Bid
    score: float

    @property
    def node_id(self) -> int:
        return self.bid.node_id


@dataclass(frozen=True)
class AuctionWinner:
    """One winner of a round: what it provides and what it is paid.

    ``asked_payment`` is the ``p`` in the sealed bid; ``charged_payment`` is
    what the payment rule actually awards (identical under first-score, the
    score-matching transfer under second-score).
    """

    node_id: int
    quality: np.ndarray = field(repr=False)
    asked_payment: float
    charged_payment: float
    score: float
    rank: int
