"""FMoreMechanism: the per-round six-step protocol with cost accounting.

Algorithm 1 of the paper wraps each federated-learning round with three
auction steps (bid ask, bid collection, winner determination) before the
familiar three learning steps (task assignment, local training, global
aggregation).  This module implements the protocol layer: it talks to
*bidding agents* (anything with a ``make_bid`` method — see
:class:`repro.mec.node.EdgeNode`), runs the auction and keeps byte/operation
accounting that backs the paper's lightweightness claim (Section III-A: the
extra exchange is "a few bytes" per node and total communication is linear
in N).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Protocol, Sequence

import numpy as np

from .auction import AuctionOutcome, MultiDimensionalProcurementAuction
from .bids import Bid
from .policies import PolicyAction, RoundContext, RoundPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..strategic.policies import BidPolicy

__all__ = ["BiddingAgent", "RoundAccounting", "MechanismRound", "FMoreMechanism"]

# Wire-size constants for the accounting model (bytes).  A bid ask carries
# the scoring-rule coefficients and simple requirements; a bid carries m
# float64 qualities plus one float64 payment; node ids ride in headers.
BID_ASK_BYTES_PER_NODE = 64
FLOAT_BYTES = 8

_BATCH_SAFE_CACHE: dict[type, bool] = {}


def _batch_safe(cls: type) -> bool:
    """Whether ``cls`` may be priced through the batched fast path.

    The fast path replays ``make_bid``'s contract (``bid_inputs`` + solver
    batch pricing + IR check), so it is only valid when the most-derived
    ``make_bid`` is the one paired with a ``bid_inputs`` in the same class
    — a subclass that overrides ``make_bid`` alone (custom shading, extra
    abstention rules) must go through its own override, not be silently
    bypassed.  A class defining *both* methods asserts the pair is
    consistent, like :class:`repro.mec.node.EdgeNode` does.
    """
    cached = _BATCH_SAFE_CACHE.get(cls)
    if cached is None:
        cached = False
        for klass in cls.__mro__:
            if "make_bid" in vars(klass):
                cached = "bid_inputs" in vars(klass)
                break
        _BATCH_SAFE_CACHE[cls] = cached
    return cached


class BiddingAgent(Protocol):
    """Anything that can answer a bid ask.

    ``make_bid`` may return ``None`` to abstain (e.g. the node's IR
    constraint fails or it has no spare resources this round).

    Agents that additionally expose ``bid_inputs(round_index, rng) ->
    (theta, capacity)`` together with a ``solver`` carrying ``bid_batch``
    (see :class:`repro.mec.node.EdgeNode`) are priced in one vectorised
    solver call per round instead of one Python round-trip per agent;
    ``make_bid`` remains the semantic reference for both paths.  The fast
    path engages only when the most-derived ``make_bid`` is defined by the
    same class as a ``bid_inputs`` (see ``_batch_safe``) — overriding
    ``make_bid`` alone opts a subclass back into the per-agent loop.
    """

    node_id: int

    def make_bid(self, round_index: int, rng: np.random.Generator) -> Bid | None:
        ...


@dataclass
class RoundAccounting:
    """Communication/computation bookkeeping for one auction round."""

    n_asked: int = 0
    n_bids: int = 0
    downlink_bytes: int = 0     # aggregator -> nodes (bid ask)
    uplink_bytes: int = 0       # nodes -> aggregator (sealed bids)
    comparisons: int = 0        # sorting work at the aggregator

    @property
    def total_bytes(self) -> int:
        return self.downlink_bytes + self.uplink_bytes


@dataclass
class MechanismRound:
    """Everything the mechanism produced in one round."""

    round_index: int
    outcome: AuctionOutcome
    accounting: RoundAccounting
    abstained: list[int] = field(default_factory=list)
    actions: list[PolicyAction] = field(default_factory=list)


class FMoreMechanism:
    """Drives steps 1-3 of Algorithm 1 for a population of bidding agents.

    The learning steps (4-6) belong to :mod:`repro.fl`; the federated
    trainer calls :meth:`run_round` to obtain the winner set, then trains.

    Parameters
    ----------
    auction:
        The winner-determination machinery (scoring, selection, payment).
    policies:
        An ordered :class:`~repro.core.policies.RoundPolicy` pipeline whose
        stage hooks wrap every round: ``on_round_start`` before the bid
        ask, ``filter_agents`` on the asked population, ``select_winners``
        as a per-round selection override, ``after_aggregate`` once the
        outcome is known.  Empty (the default) reproduces the historical
        protocol exactly — no hooks run, no policy randomness is consumed.
    policy_rng:
        The dedicated policy randomness stream (kept apart from the
        training stream so policy draws never perturb bids or tie-breaks).
        Defaults to a fixed-seed generator when policies are present.
    bid_policies:
        ``node_id -> BidPolicy`` for the *strategic* (non-truthful) slice
        of the population (see :mod:`repro.strategic.policies`).  Nodes
        absent from the mapping bid truthfully through the historical
        batched path; empty (the default) reproduces it exactly —
        bitwise, with no extra bookkeeping and no ``bid_payoff`` actions.
    bidding_rng:
        The strategic policies' randomness stream (the engine derives it
        from the ``bidding-{scheme}`` named stream).  Separate from both
        the training and the round-policy streams, and consumed only by
        policies that draw.  Defaults to a fixed-seed generator when a
        strategic slice is present.
    """

    def __init__(
        self,
        auction: MultiDimensionalProcurementAuction,
        policies: Sequence[RoundPolicy] = (),
        policy_rng: np.random.Generator | None = None,
        bid_policies: "Mapping[int, BidPolicy] | None" = None,
        bidding_rng: np.random.Generator | None = None,
    ):
        self.auction = auction
        self.policies = list(policies)
        if policy_rng is None and self.policies:
            policy_rng = np.random.default_rng(0)
        self.policy_rng = policy_rng
        self.bid_policies: dict[int, "BidPolicy"] = dict(bid_policies or {})
        if bidding_rng is None and self.bid_policies:
            bidding_rng = np.random.default_rng(0)
        self.bidding_rng = bidding_rng
        self.history: list[MechanismRound] = []
        # Per-round strategic bookkeeping (populated by _collect_bids only
        # when a strategic slice exists): (policy, [(node_id, cost,
        # submitted)]) per group in deterministic agent order, plus the
        # truthful remainder's entries under a None policy.
        self._strategic_round: list[tuple["BidPolicy | None", list[tuple[int, float, bool]]]] = []

    @property
    def bid_policy_seq(self) -> list["BidPolicy"]:
        """The distinct strategic policies, in first-node order.

        Deterministic (dicts preserve insertion order, and the engine
        assigns nodes in mix order), so checkpoint ``bid_policy_states``
        align positionally across save and restore.
        """
        return list(dict.fromkeys(self.bid_policies.values()))

    def attach_bid_policy(self, node_id: int, policy: "BidPolicy") -> None:
        """Route one node through ``policy`` (the gym's injection point)."""
        self.bid_policies[int(node_id)] = policy
        if self.bidding_rng is None:
            self.bidding_rng = np.random.default_rng(0)

    def run_round(
        self,
        agents: Sequence[BiddingAgent],
        round_index: int,
        rng: np.random.Generator,
    ) -> MechanismRound:
        """Broadcast the bid ask, collect sealed bids, determine winners.

        With policies installed the round runs as a pipeline: policies
        first see the round start, then filter the asked population, may
        override the winner-selection rule, and finally observe the
        outcome (auditing, guidance).  Without policies the body reduces
        to the classic three auction steps.
        """
        ctx: RoundContext | None = None
        selection = None
        asked: Sequence[BiddingAgent] = agents
        if self.policies:
            ctx = RoundContext(
                round_index=round_index,
                rng=self.policy_rng,
                mechanism=self,
                agents=list(agents),
            )
            for policy in self.policies:
                policy.on_round_start(ctx)
            for policy in self.policies:
                asked = policy.filter_agents(asked, ctx)
            asked = list(asked)
            for policy in self.policies:
                override = policy.select_winners(ctx)
                if override is not None:
                    selection = override

        accounting = RoundAccounting()
        accounting.n_asked = len(asked)
        accounting.downlink_bytes = BID_ASK_BYTES_PER_NODE * len(asked)

        bids: list[Bid] = []
        abstained: list[int] = []
        for bid, node_id in self._collect_bids(asked, round_index, rng):
            if bid is None:
                abstained.append(node_id)
                continue
            bids.append(bid)
            accounting.uplink_bytes += FLOAT_BYTES * (bid.n_dimensions + 1)
        accounting.n_bids = len(bids)

        # Pass the override only when one exists: duck-typed auctions
        # (e.g. BudgetedAuction) that predate the pipeline keep working
        # as long as no selection policy targets them.
        if selection is not None:
            outcome = self.auction.run(bids, rng, selection=selection)
        else:
            outcome = self.auction.run(bids, rng)
        n = max(len(bids), 1)
        # Comparison count of an O(n log n) sort — the aggregator's only
        # auction-side computation besides N score evaluations.
        accounting.comparisons = int(np.ceil(n * np.log2(n))) if n > 1 else 0

        record = MechanismRound(
            round_index,
            outcome,
            accounting,
            abstained,
            actions=ctx.actions if ctx is not None else [],
        )
        if self.bid_policies:
            self._dispatch_bid_feedback(record)
        if ctx is not None:
            for policy in self.policies:
                policy.after_aggregate(ctx, record)
        self.history.append(record)
        return record

    def _collect_bids(
        self,
        agents: Sequence[BiddingAgent],
        round_index: int,
        rng: np.random.Generator,
    ) -> list[tuple[Bid | None, int]]:
        """Sealed bids in agent order, batching solver-backed agents.

        RNG draws happen in a single pass over the agents (identical
        stream to calling ``make_bid`` per agent); the solver maths — the
        expensive part — is deferred and executed as one
        ``EquilibriumSolver.bid_batch`` call per distinct solver.

        With a strategic slice (``bid_policies``), agents are partitioned
        per policy: truthful nodes keep the historical per-solver batch
        exactly, while each policy group is equilibrium-priced the same
        way and then handed to :meth:`~repro.strategic.policies.BidPolicy.shade`
        — still one batch call per (policy, solver) pair.  The training
        RNG stream is consumed in the identical order either way.
        """
        entries: list[tuple[BiddingAgent, float, np.ndarray] | tuple[BiddingAgent, Bid | None]] = []
        groups: dict[int, tuple[object, list[int]]] = {}
        policy_groups: dict[tuple[int, int], tuple[object, object, list[int]]] = {}
        has_strategic = bool(self.bid_policies)
        self._strategic_round = []
        for i, agent in enumerate(agents):
            solver = getattr(agent, "solver", None)
            if _batch_safe(type(agent)) and hasattr(solver, "bid_batch"):
                theta, capacity = agent.bid_inputs(round_index, rng)
                entries.append((agent, float(theta), np.asarray(capacity, dtype=float)))
                policy = (
                    self.bid_policies.get(agent.node_id) if has_strategic else None
                )
                if policy is None:
                    groups.setdefault(id(solver), (solver, []))[1].append(i)
                else:
                    policy_groups.setdefault(
                        (id(policy), id(solver)), (policy, solver, [])
                    )[2].append(i)
            else:
                entries.append((agent, agent.make_bid(round_index, rng)))

        resolved: dict[int, Bid | None] = {}
        truthful_info: list[tuple[int, float, bool]] = []
        for solver, idxs in groups.values():
            thetas = np.asarray([entries[i][1] for i in idxs], dtype=float)
            caps = np.vstack([entries[i][2] for i in idxs])
            qualities, payments, costs = solver.bid_batch(thetas, caps, with_costs=True)
            margins = payments - costs
            for j, i in enumerate(idxs):
                agent = entries[i][0]
                min_margin = float(getattr(agent, "min_margin", 0.0))
                if margins[j] < min_margin - 1e-12:
                    resolved[i] = None
                else:
                    resolved[i] = Bid(agent.node_id, qualities[j].copy(), float(payments[j]))
                if has_strategic:
                    truthful_info.append(
                        (agent.node_id, float(costs[j]), resolved[i] is not None)
                    )

        for policy, solver, idxs in policy_groups.values():
            from ..strategic.policies import BidBatch

            thetas = np.asarray([entries[i][1] for i in idxs], dtype=float)
            caps = np.vstack([entries[i][2] for i in idxs])
            qualities, payments, costs = solver.bid_batch(thetas, caps, with_costs=True)
            batch = BidBatch(
                round_index=round_index,
                node_ids=[entries[i][0].node_id for i in idxs],
                thetas=thetas,
                capacities=caps,
                qualities=qualities,
                payments=payments,
                costs=costs,
                bounds=np.asarray(solver.quality_bounds, dtype=float),
            )
            shaded_q, shaded_p = policy.shade(batch, self.bidding_rng)
            if shaded_q is qualities:
                shaded_costs = costs
            else:
                shaded_costs = np.asarray(
                    [
                        solver.cost.cost(shaded_q[j], thetas[j])
                        for j in range(len(idxs))
                    ],
                    dtype=float,
                )
            enforce_ir = bool(getattr(policy, "enforce_ir", True))
            group_info: list[tuple[int, float, bool]] = []
            for j, i in enumerate(idxs):
                agent = entries[i][0]
                min_margin = float(getattr(agent, "min_margin", 0.0))
                margin = float(shaded_p[j]) - float(shaded_costs[j])
                if enforce_ir and margin < min_margin - 1e-12:
                    resolved[i] = None
                else:
                    resolved[i] = Bid(
                        agent.node_id,
                        np.asarray(shaded_q[j], dtype=float).copy(),
                        float(shaded_p[j]),
                    )
                group_info.append(
                    (agent.node_id, float(shaded_costs[j]), resolved[i] is not None)
                )
            self._strategic_round.append((policy, group_info))

        if has_strategic:
            self._strategic_round.append((None, truthful_info))

        out: list[tuple[Bid | None, int]] = []
        for i, entry in enumerate(entries):
            bid = resolved[i] if i in resolved else entry[1]
            out.append((bid, entry[0].node_id))
        return out

    def _dispatch_bid_feedback(self, record: MechanismRound) -> None:
        """Feed the round's outcome back to the strategic policies.

        Builds one :class:`~repro.strategic.policies.RoundFeedback` per
        policy group (win/loss, charged payments, counterfactual
        threshold = the minimum winning score) and files a single
        ``bid_payoff`` action aggregating every group's realized payoff —
        the truthful remainder included, so the IC comparison rides on
        the round record into manifests and the metrics frame.
        """
        from ..strategic.policies import RoundFeedback

        outcome = record.outcome
        charged = {w.node_id: float(w.charged_payment) for w in outcome.winners}
        threshold = (
            min(float(w.score) for w in outcome.winners)
            if outcome.winners
            else None
        )
        submitted_info = {
            sb.bid.node_id: (float(sb.score), float(sb.bid.payment))
            for sb in outcome.scored_bids
        }
        groups: dict[str, dict[str, float]] = {}
        for policy, info in self._strategic_round:
            if not info:
                continue
            node_ids = [node_id for node_id, _, _ in info]
            costs = np.asarray([cost for _, cost, _ in info], dtype=float)
            submitted = np.asarray(
                [node_id in submitted_info for node_id, _, ok in info], dtype=bool
            )
            costs = np.where(submitted, costs, 0.0)
            won = np.asarray([n in charged for n in node_ids], dtype=bool)
            payments = np.asarray([charged.get(n, 0.0) for n in node_ids])
            bid_payments = np.asarray(
                [submitted_info.get(n, (0.0, 0.0))[1] for n in node_ids]
            )
            values = np.asarray(
                [
                    submitted_info[n][0] + submitted_info[n][1]
                    if n in submitted_info
                    else 0.0
                    for n in node_ids
                ]
            )
            feedback = RoundFeedback(
                round_index=record.round_index,
                node_ids=node_ids,
                submitted=submitted,
                won=won,
                payments=payments,
                costs=costs,
                values=values,
                bid_payments=bid_payments,
                threshold=threshold,
            )
            if policy is not None:
                policy.observe(feedback, self.bidding_rng)
            payoffs = feedback.payoffs
            winner_payoffs = payoffs[won]
            label = "truthful" if policy is None else policy.label
            groups[label] = {
                "n": int(len(node_ids)),
                "bids": int(submitted.sum()),
                "winners": int(won.sum()),
                "paid": float(payments.sum()),
                "cost": float(costs[won].sum()),
                "payoff": float(payoffs.sum()),
                "min_payoff": float(winner_payoffs.min()) if won.any() else 0.0,
            }
        self._strategic_round = []
        record.actions.append(
            PolicyAction(
                kind="bid_payoff",
                round_index=record.round_index,
                payload={"threshold": threshold, "groups": groups},
            )
        )

    # ------------------------------------------------------------------
    # Aggregate accounting over all rounds (lightweightness evidence)
    # ------------------------------------------------------------------
    @property
    def total_auction_bytes(self) -> int:
        return sum(r.accounting.total_bytes for r in self.history)

    @property
    def total_payments(self) -> float:
        return float(sum(r.outcome.total_payment for r in self.history))

    def overhead_relative_to_model(self, model_bytes: int) -> float:
        """Auction bytes as a fraction of model-parameter traffic.

        The paper argues the bid exchange is negligible next to shipping
        model parameters; with per-round traffic ``K`` downloads + ``K``
        uploads of ``model_bytes`` this returns the measured ratio.

        Degenerate histories are handled consistently: with no model
        traffic at all (no rounds, no winners ever, or ``model_bytes=0``)
        the ratio is 0.0 when no auction bytes moved either, and
        ``float("inf")`` when the auction *did* move bytes against zero
        model traffic.
        """
        if not self.history:
            return 0.0
        k = max(
            (len(r.outcome.winners) for r in self.history), default=0
        )
        model_traffic = 2 * k * model_bytes * len(self.history)
        if model_traffic <= 0:
            return 0.0 if self.total_auction_bytes == 0 else float("inf")
        return self.total_auction_bytes / model_traffic
