"""Winner-selection policies, including the psi-FMore extension.

FMore's winner determination adds the K top-score nodes to the winner set.
psi-FMore (Section III-C) relaxes this: walking the bids in descending score
order, each node is admitted with probability ``psi`` until K winners are
found; FMore is the special case ``psi = 1``.  Small ``psi`` degrades
towards uniform random selection (RandFL), trading training speed for data
diversity — Section V-B(4) quantifies the trade-off and our Fig-11 bench
reproduces it.

The module also provides the fill probability
``Pr(psi) = sum_{i=0}^{N-K} C(i+K, i) (1-psi)^i psi^K`` from the paper and
the exact negative-binomial variant ``C(i+K-1, i)`` (the probability the
K-th acceptance happens within N Bernoulli trials); the paper's binomial
index appears to be off by one, and tests compare both against Monte Carlo.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np
from scipy.special import comb

from .registry import WINNER_SELECTIONS

__all__ = [
    "WinnerSelection",
    "TopKSelection",
    "PsiSelection",
    "PerNodePsiSelection",
    "RankPsiSchedule",
    "RANK_SCHEDULE_NAMES",
    "paper_fill_probability",
    "negative_binomial_fill_probability",
]


class WinnerSelection(ABC):
    """Policy choosing which positions of the score-sorted list win."""

    @abstractmethod
    def select(self, n_bids: int, k_winners: int, rng: np.random.Generator) -> list[int]:
        """Return winning *positions* (indices into the sorted-desc order)."""


@WINNER_SELECTIONS.register("top_k")
class TopKSelection(WinnerSelection):
    """Deterministic FMore rule: the best K scores win."""

    def select(self, n_bids: int, k_winners: int, rng: np.random.Generator) -> list[int]:
        return list(range(min(k_winners, n_bids)))


@WINNER_SELECTIONS.register("psi")
class PsiSelection(WinnerSelection):
    """psi-FMore: admit each node in score order with probability ``psi``.

    If a full pass over the candidates yields fewer than K winners, further
    passes are made over the not-yet-admitted nodes (still in score order)
    so that exactly ``min(K, n)`` winners are always produced; this is the
    natural completion of the paper's "until K nodes are chosen".
    """

    def __init__(self, psi: float):
        if not (0.0 < psi <= 1.0):
            raise ValueError("psi must lie in (0, 1]")
        self.psi = float(psi)

    def select(self, n_bids: int, k_winners: int, rng: np.random.Generator) -> list[int]:
        target = min(k_winners, n_bids)
        chosen: list[int] = []
        remaining = list(range(n_bids))
        while len(chosen) < target:
            next_remaining: list[int] = []
            for pos in remaining:
                if len(chosen) < target and rng.random() < self.psi:
                    chosen.append(pos)
                else:
                    next_remaining.append(pos)
            remaining = next_remaining
            if not remaining:
                break
        return chosen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PsiSelection(psi={self.psi})"


#: Declarative rank-schedule families accepted by :class:`RankPsiSchedule`.
RANK_SCHEDULE_NAMES = ("constant", "geometric", "linear")


@dataclass(frozen=True)
class RankPsiSchedule:
    """A declarative ``rank -> psi`` map (JSON-expressible, picklable).

    Families (``rank`` is the 0-based position in the score-sorted list):

    * ``constant``  — ``psi0`` for every rank,
    * ``geometric`` — ``psi0 * decay**rank`` (the paper-style "favour the
      top" schedule),
    * ``linear``    — ``psi0 - slope * rank``.

    Values are floored at ``floor`` so every candidate keeps a diversity
    floor; :class:`PerNodePsiSelection` additionally clips to 1.
    """

    schedule: str = "geometric"
    psi0: float = 0.9
    decay: float = 0.95
    slope: float = 0.02
    floor: float = 0.01

    def __post_init__(self) -> None:
        if self.schedule not in RANK_SCHEDULE_NAMES:
            raise ValueError(
                f"unknown rank schedule {self.schedule!r}; "
                f"choose from {RANK_SCHEDULE_NAMES}"
            )
        if not (0.0 < self.psi0 <= 1.0):
            raise ValueError(f"psi0 must lie in (0, 1]; got {self.psi0!r}")
        if not (0.0 < self.decay <= 1.0):
            raise ValueError(f"decay must lie in (0, 1]; got {self.decay!r}")
        if self.slope < 0.0:
            raise ValueError(f"slope must be >= 0; got {self.slope!r}")
        if not (0.0 < self.floor <= 1.0):
            raise ValueError(f"floor must lie in (0, 1]; got {self.floor!r}")

    def __call__(self, rank: int) -> float:
        if self.schedule == "constant":
            value = self.psi0
        elif self.schedule == "geometric":
            value = self.psi0 * self.decay ** rank
        else:  # linear
            value = self.psi0 - self.slope * rank
        return max(float(value), self.floor)


@WINNER_SELECTIONS.register("per_node_psi")
class PerNodePsiSelection(WinnerSelection):
    """psi-FMore with rank-dependent admission probabilities.

    The paper closes with the open question "whether the probability psi
    should be identical or distinct for each node remains to be studied".
    This policy explores it: admission probability is a function of the
    candidate's *rank* in the sorted list (position 0 = best score), e.g.
    ``lambda rank: max(0.9 - 0.02 * rank, 0.2)`` favours the top while
    keeping a diversity floor.  As with :class:`PsiSelection`, repeated
    passes over the not-yet-admitted candidates guarantee K winners.

    Instead of a callable, a declarative schedule may be named —
    ``PerNodePsiSelection(schedule="geometric", psi0=0.9, decay=0.95)`` —
    which is what the ``per_node_psi`` registry spec and Scenario policy
    specs use (see :class:`RankPsiSchedule` for the families).
    """

    def __init__(
        self,
        psi_of_rank=None,
        floor: float = 0.01,
        schedule: str | None = None,
        psi0: float = 0.9,
        decay: float = 0.95,
        slope: float = 0.02,
    ):
        if not (0.0 < floor <= 1.0):
            raise ValueError(
                f"floor must lie in (0, 1]; got {floor!r} "
                "(it is the minimum admission probability of any rank)"
            )
        if (psi_of_rank is None) == (schedule is None):
            raise TypeError(
                "provide exactly one of psi_of_rank (a callable rank -> "
                "probability) or schedule (one of "
                f"{RANK_SCHEDULE_NAMES}, with psi0/decay/slope parameters)"
            )
        if schedule is not None:
            psi_of_rank = RankPsiSchedule(
                schedule=schedule, psi0=psi0, decay=decay, slope=slope, floor=floor
            )
        if not callable(psi_of_rank):
            raise TypeError("psi_of_rank must be callable(rank) -> probability")
        self.psi_of_rank = psi_of_rank
        self.floor = float(floor)

    def probability(self, rank: int) -> float:
        """The (clipped) admission probability used for a given rank.

        Finite values outside ``[floor, 1]`` are clamped into the interval;
        a non-finite ``psi_of_rank`` output raises (it would silently
        poison the selection loop otherwise).
        """
        p = float(self.psi_of_rank(rank))
        if not np.isfinite(p):
            raise ValueError(
                f"psi_of_rank({rank}) returned {p!r}; admission "
                "probabilities must be finite (they are clamped into "
                f"[{self.floor}, 1.0])"
            )
        return float(min(max(p, self.floor), 1.0))

    def select(self, n_bids: int, k_winners: int, rng: np.random.Generator) -> list[int]:
        target = min(k_winners, n_bids)
        chosen: list[int] = []
        remaining = list(range(n_bids))
        while len(chosen) < target and remaining:
            next_remaining: list[int] = []
            for pos in remaining:
                if len(chosen) < target and rng.random() < self.probability(pos):
                    chosen.append(pos)
                else:
                    next_remaining.append(pos)
            remaining = next_remaining
        return chosen


def paper_fill_probability(psi: float, n_nodes: int, k_winners: int) -> float:
    """The paper's ``Pr(psi) = sum_{i=0}^{N-K} C(i+K, i)(1-psi)^i psi^K``.

    Not a true probability for all parameters (it can exceed 1); kept verbatim
    for fidelity and compared against the exact form in tests.
    """
    _check_fill_args(psi, n_nodes, k_winners)
    total = 0.0
    for i in range(0, n_nodes - k_winners + 1):
        total += comb(i + k_winners, i, exact=True) * (1.0 - psi) ** i * psi ** k_winners
    return float(total)


def negative_binomial_fill_probability(psi: float, n_nodes: int, k_winners: int) -> float:
    """Exact probability a single pass over N nodes admits K of them.

    The number of trials needed for the K-th acceptance is negative
    binomial; the single-pass fill probability is its CDF at N:
    ``sum_{i=0}^{N-K} C(i+K-1, i) psi^K (1-psi)^i``.
    """
    _check_fill_args(psi, n_nodes, k_winners)
    total = 0.0
    for i in range(0, n_nodes - k_winners + 1):
        total += comb(i + k_winners - 1, i, exact=True) * psi ** k_winners * (1.0 - psi) ** i
    return float(min(total, 1.0))


def _check_fill_args(psi: float, n_nodes: int, k_winners: int) -> None:
    if not (0.0 < psi <= 1.0):
        raise ValueError("psi must lie in (0, 1]")
    if not (1 <= k_winners <= n_nodes):
        raise ValueError("need 1 <= K <= N")
