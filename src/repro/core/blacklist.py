"""Blacklisting of non-compliant nodes (Sections II-A and III-A).

The paper assumes nodes deliver what they bid, backed by enforcement:
"If any edge node does not comply with the contract, it will be put into
the blacklist by the aggregator" and "many techniques such as blacklist can
be applied to the defaulter".  This module makes that concrete:

* :class:`DeliveryReport` — what a winner actually provided vs declared,
* :class:`Blacklist` — tracks violations with a strike policy and exposes
  a filter for the bid-collection step,
* :func:`audit_round` — compares an auction outcome against delivery
  reports and files violations.

A strike threshold above one tolerates transient resource failures (an
edge node losing bandwidth mid-round) while still expelling systematic
under-deliverers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .auction import AuctionOutcome

__all__ = [
    "DeliveryReport",
    "Violation",
    "Blacklist",
    "audit_round",
    "simulate_deliveries",
]


@dataclass(frozen=True)
class DeliveryReport:
    """What node ``node_id`` actually delivered for a won contract."""

    node_id: int
    delivered_quality: np.ndarray

    def __post_init__(self) -> None:
        q = np.asarray(self.delivered_quality, dtype=float)
        object.__setattr__(self, "delivered_quality", q)


@dataclass(frozen=True)
class Violation:
    """A recorded contract breach."""

    node_id: int
    round_index: int
    declared: np.ndarray
    delivered: np.ndarray
    shortfall: float  # max relative under-delivery across dimensions


@dataclass
class Blacklist:
    """Strike-based exclusion of defaulting nodes.

    Parameters
    ----------
    strikes_to_ban:
        Violations tolerated before exclusion (1 = zero tolerance).
    tolerance:
        Relative under-delivery ignored as measurement noise (e.g. 0.05
        forgives delivering 95 of 100 promised samples).
    """

    strikes_to_ban: int = 2
    tolerance: float = 0.05
    violations: list[Violation] = field(default_factory=list)
    _strikes: dict[int, int] = field(default_factory=dict)
    _banned: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.strikes_to_ban < 1:
            raise ValueError("strikes_to_ban must be >= 1")
        if not (0.0 <= self.tolerance < 1.0):
            raise ValueError("tolerance must lie in [0, 1)")

    def is_banned(self, node_id: int) -> bool:
        return node_id in self._banned

    @property
    def banned(self) -> frozenset[int]:
        return frozenset(self._banned)

    def strikes(self, node_id: int) -> int:
        return self._strikes.get(node_id, 0)

    def record(self, violation: Violation) -> None:
        """File a violation and ban the node once strikes are exhausted."""
        self.violations.append(violation)
        count = self._strikes.get(violation.node_id, 0) + 1
        self._strikes[violation.node_id] = count
        if count >= self.strikes_to_ban:
            self._banned.add(violation.node_id)

    def filter_agents(self, agents):
        """Drop banned agents before a bid ask (the enforcement hook)."""
        return [a for a in agents if a.node_id not in self._banned]

    def pardon(self, node_id: int) -> None:
        """Lift a ban and clear strikes (operator override)."""
        self._banned.discard(node_id)
        self._strikes.pop(node_id, None)

    def state_dict(self) -> dict:
        """JSON-able snapshot of the mutable enforcement state.

        Covers everything :meth:`record` accumulates — the violation log,
        strike counters and the banned set — so a blacklist restored into
        a fresh instance (same ``strikes_to_ban``/``tolerance``) behaves
        identically from the next audit on.
        """
        return {
            "violations": [
                {
                    "node_id": int(v.node_id),
                    "round_index": int(v.round_index),
                    "declared": [float(x) for x in np.asarray(v.declared).ravel()],
                    "delivered": [float(x) for x in np.asarray(v.delivered).ravel()],
                    "shortfall": float(v.shortfall),
                }
                for v in self.violations
            ],
            "strikes": {str(int(k)): int(v) for k, v in self._strikes.items()},
            "banned": sorted(int(n) for n in self._banned),
        }

    def load_state(self, state: dict) -> None:
        """Install a :meth:`state_dict` snapshot, replacing current state."""
        unknown = sorted(set(state) - {"violations", "strikes", "banned"})
        if unknown:
            raise ValueError(f"unknown blacklist state keys {unknown}")
        self.violations = [
            Violation(
                node_id=int(v["node_id"]),
                round_index=int(v["round_index"]),
                declared=np.asarray(v["declared"], dtype=float),
                delivered=np.asarray(v["delivered"], dtype=float),
                shortfall=float(v["shortfall"]),
            )
            for v in state.get("violations", [])
        ]
        self._strikes = {int(k): int(v) for k, v in state.get("strikes", {}).items()}
        self._banned = {int(n) for n in state.get("banned", [])}


def simulate_deliveries(
    outcome: AuctionOutcome,
    defectors: frozenset[int] | set[int],
    shortfall: float,
) -> dict[int, DeliveryReport]:
    """Synthetic delivery reports: ``defectors`` under-deliver by ``shortfall``.

    The simulation has no physical resources to measure, so robustness
    scenarios model defection explicitly: a defecting winner delivers
    ``(1 - shortfall)`` of every declared dimension, everyone else delivers
    in full.  The result feeds :func:`audit_round` unchanged — the audit
    logic cannot tell synthetic reports from measured ones.
    """
    if not (0.0 < shortfall <= 1.0):
        raise ValueError(f"shortfall must lie in (0, 1]; got {shortfall!r}")
    reports: dict[int, DeliveryReport] = {}
    for winner in outcome.winners:
        declared = np.asarray(winner.quality, dtype=float)
        delivered = (
            declared * (1.0 - shortfall)
            if winner.node_id in defectors
            else declared
        )
        reports[winner.node_id] = DeliveryReport(winner.node_id, delivered)
    return reports


def audit_round(
    outcome: AuctionOutcome,
    reports: dict[int, DeliveryReport],
    blacklist: Blacklist,
    round_index: int,
) -> list[Violation]:
    """Compare winners' declared qualities against delivery reports.

    A missing report counts as delivering nothing.  Under-delivery beyond
    the blacklist's tolerance in *any* dimension files a violation.
    Returns the violations found this round (already recorded).
    """
    found: list[Violation] = []
    for winner in outcome.winners:
        declared = np.asarray(winner.quality, dtype=float)
        report = reports.get(winner.node_id)
        delivered = (
            np.zeros_like(declared)
            if report is None
            else np.asarray(report.delivered_quality, dtype=float)
        )
        if delivered.shape != declared.shape:
            raise ValueError(
                f"delivery report for node {winner.node_id} has wrong shape"
            )
        with np.errstate(divide="ignore", invalid="ignore"):
            rel_short = np.where(
                declared > 0, (declared - delivered) / declared, 0.0
            )
        shortfall = float(np.max(rel_short)) if rel_short.size else 0.0
        if shortfall > blacklist.tolerance:
            violation = Violation(
                node_id=winner.node_id,
                round_index=round_index,
                declared=declared,
                delivered=delivered,
                shortfall=shortfall,
            )
            blacklist.record(violation)
            found.append(violation)
    return found
