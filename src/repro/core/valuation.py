"""Private-value model: distributions of the cost parameter ``theta``.

The paper adopts the independent private value model (Section II-A): each
edge node's type ``theta_i`` is drawn i.i.d. from a distribution with CDF
``F`` supported on ``[theta_lo, theta_hi]`` with ``0 < theta_lo < theta_hi``,
and a positive, continuously differentiable density ``f``.  Nodes learn
``F`` from historical data; the aggregator knows ``F`` but not the realised
``theta_i``.

The equilibrium machinery only touches distributions through this small
interface (``cdf``, ``pdf``, ``ppf``, ``sample``), so adding a new family is
a three-method exercise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np
from scipy import stats

from .registry import THETA_DISTRIBUTIONS

__all__ = [
    "ThetaDistribution",
    "UniformTheta",
    "TruncatedNormalTheta",
    "ScaledBetaTheta",
    "PrivateValueModel",
]


class ThetaDistribution(ABC):
    """A distribution for the private cost parameter on ``[lo, hi]``."""

    def __init__(self, lo: float, hi: float):
        if not (0.0 < lo < hi < np.inf):
            raise ValueError("support must satisfy 0 < lo < hi < inf")
        self.lo = float(lo)
        self.hi = float(hi)

    @property
    def support(self) -> tuple[float, float]:
        return (self.lo, self.hi)

    @abstractmethod
    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """``F(x)``, clipped to [0, 1] outside the support."""

    @abstractmethod
    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """``f(x)``, zero outside the support."""

    @abstractmethod
    def ppf(self, u: np.ndarray | float) -> np.ndarray | float:
        """Quantile function ``F^{-1}(u)``."""

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw i.i.d. types via inverse-transform sampling."""
        u = rng.random(size)
        return self.ppf(u)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(lo={self.lo}, hi={self.hi})"


@THETA_DISTRIBUTIONS.register("uniform")
class UniformTheta(ThetaDistribution):
    """``theta ~ Uniform[lo, hi]`` — the workhorse of the simulations."""

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.clip((x - self.lo) / (self.hi - self.lo), 0.0, 1.0)
        return out if out.ndim else float(out)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        inside = (x >= self.lo) & (x <= self.hi)
        out = np.where(inside, 1.0 / (self.hi - self.lo), 0.0)
        return out if out.ndim else float(out)

    def ppf(self, u):
        u = np.asarray(u, dtype=float)
        out = self.lo + np.clip(u, 0.0, 1.0) * (self.hi - self.lo)
        return out if out.ndim else float(out)


@THETA_DISTRIBUTIONS.register("truncated_normal")
class TruncatedNormalTheta(ThetaDistribution):
    """Normal(mu, sigma) truncated to ``[lo, hi]``.

    Models populations where most nodes cluster around a typical cost with
    thinner tails of very cheap / very expensive providers.
    """

    def __init__(self, lo: float, hi: float, mu: float | None = None, sigma: float | None = None):
        super().__init__(lo, hi)
        self.mu = float(mu) if mu is not None else 0.5 * (lo + hi)
        self.sigma = float(sigma) if sigma is not None else (hi - lo) / 4.0
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        a = (self.lo - self.mu) / self.sigma
        b = (self.hi - self.mu) / self.sigma
        self._dist = stats.truncnorm(a, b, loc=self.mu, scale=self.sigma)

    def cdf(self, x):
        out = np.clip(self._dist.cdf(x), 0.0, 1.0)
        return out if np.ndim(out) else float(out)

    def pdf(self, x):
        out = self._dist.pdf(x)
        return out if np.ndim(out) else float(out)

    def ppf(self, u):
        out = self._dist.ppf(np.clip(u, 0.0, 1.0))
        return out if np.ndim(out) else float(out)


@THETA_DISTRIBUTIONS.register("scaled_beta")
class ScaledBetaTheta(ThetaDistribution):
    """Beta(a, b) rescaled onto ``[lo, hi]``.

    Skewed choices (e.g. ``a=2, b=5``) capture markets dominated by low-cost
    nodes, the regime where auctions help the aggregator most.
    """

    def __init__(self, lo: float, hi: float, a: float = 2.0, b: float = 2.0):
        super().__init__(lo, hi)
        if a <= 0 or b <= 0:
            raise ValueError("beta shape parameters must be positive")
        self.a = float(a)
        self.b = float(b)
        self._dist = stats.beta(self.a, self.b)

    def _to_unit(self, x):
        return (np.asarray(x, dtype=float) - self.lo) / (self.hi - self.lo)

    def cdf(self, x):
        out = np.clip(self._dist.cdf(self._to_unit(x)), 0.0, 1.0)
        return out if np.ndim(out) else float(out)

    def pdf(self, x):
        out = self._dist.pdf(self._to_unit(x)) / (self.hi - self.lo)
        return out if np.ndim(out) else float(out)

    def ppf(self, u):
        out = self.lo + self._dist.ppf(np.clip(u, 0.0, 1.0)) * (self.hi - self.lo)
        return out if np.ndim(out) else float(out)


@dataclass
class PrivateValueModel:
    """Bundle of the type distribution and population size.

    This is the common knowledge of the game: every node knows ``F`` (and
    hence can compute the equilibrium), the number of competitors ``n_nodes``
    and the advertised number of winners ``k_winners``.
    """

    distribution: ThetaDistribution
    n_nodes: int
    k_winners: int

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if not (1 <= self.k_winners <= self.n_nodes):
            raise ValueError("k_winners must satisfy 1 <= K <= N")

    def sample_types(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one type per node."""
        return np.asarray(self.distribution.sample(rng, self.n_nodes), dtype=float)
