"""Nash-equilibrium bidding strategies for the FMore auction.

This module implements the theory of Section IV of the paper:

* **Che's Theorem 1** — in a first-score auction with ``K >= 1`` winners the
  equilibrium quality depends only on the private type:
  ``qs(theta) = argmax_q  s(q) - c(q, theta)``
  (:func:`optimize_quality`, with closed forms for the common families and a
  multi-start numerical fallback).
* **Paper Theorem 1** — the equilibrium payment with ``K`` winners:
  ``ps(theta) = c(qs, theta) + Int_0^u g(x) dx / g(u)`` with
  ``u(theta) = s(qs) - c(qs, theta)`` and winning kernel
  ``g(u) = sum_{i=1..K} [1 - H(u)]^{i-1} [H(u)]^{N-i}``, where ``H`` is the
  CDF of the maximum score across types (:class:`EquilibriumSolver`).
* **Che's Theorem 2 / Proposition 1** — closed-form payments for one and two
  winners via the type-space integral with exponent ``N - K``
  (:meth:`EquilibriumSolver.payment_che_closed_form`), used as an
  independent cross-check of the score-space machinery.

Two winning-probability kernels are available:

* ``win_model="paper"`` — the paper's Eq. 9, which omits the binomial
  coefficients of the true order statistic.  For ``K = 1`` and ``K = 2`` it
  coincides exactly with the Che/Proposition-1 forms (for ``K = 2`` note
  ``H^{N-1} + (1-H) H^{N-2} = H^{N-2}``).
* ``win_model="exact"`` — the combinatorially exact probability of placing
  in the top ``K`` among ``N`` i.i.d. scores,
  ``sum_{i=0..K-1} C(N-1, i) (1-H)^i H^{N-1-i}``.

The ablation benchmark compares the payments the two kernels induce.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Sequence

import numpy as np
from scipy import optimize
from scipy.special import comb

from .costs import CostModel, LinearCost, PowerCost, QuadraticCost
from .odesolvers import MARGIN_BACKENDS
from .scoring import AdditiveScore, ScoringRule
from .valuation import PrivateValueModel

__all__ = [
    "optimize_quality",
    "optimize_quality_batch",
    "win_kernel",
    "EquilibriumSolver",
]

_WIN_MODELS = ("paper", "exact")


def win_kernel(h: np.ndarray | float, n_nodes: int, k_winners: int, model: str = "paper"):
    """Winning-probability kernel ``g`` as a function of the score CDF ``H``.

    ``model="paper"`` evaluates Eq. 9 of the paper; ``model="exact"``
    evaluates the true order-statistic win probability.  Both are vectorised
    over ``h`` and return values in ``[0, 1]`` for the exact model (the
    paper kernel is not a probability for ``K >= 3`` but is what the
    published payment formula uses).
    """
    if model not in _WIN_MODELS:
        raise ValueError(f"unknown win model {model!r}; choose from {_WIN_MODELS}")
    if not (1 <= k_winners <= n_nodes):
        raise ValueError("need 1 <= K <= N")
    h_arr = np.clip(np.asarray(h, dtype=float), 0.0, 1.0)
    out = np.zeros_like(h_arr, dtype=float)
    if model == "paper":
        for i in range(1, k_winners + 1):
            out += (1.0 - h_arr) ** (i - 1) * h_arr ** (n_nodes - i)
    else:
        for i in range(0, k_winners):
            out += comb(n_nodes - 1, i, exact=True) * (1.0 - h_arr) ** i * h_arr ** (
                n_nodes - 1 - i
            )
    if np.ndim(h) == 0:
        return float(out)
    return out


def _box_corners(bounds: np.ndarray) -> np.ndarray:
    """All corners of an axis-aligned box (``2**m`` points; ``m`` is small)."""
    m = bounds.shape[0]
    corners = np.empty((2 ** m, m))
    for idx in range(2 ** m):
        for j in range(m):
            corners[idx, j] = bounds[j, (idx >> j) & 1]
    return corners


def optimize_quality(
    rule: ScoringRule,
    cost: CostModel,
    theta: float,
    bounds: np.ndarray,
) -> np.ndarray:
    """Che's Theorem 1: ``qs(theta) = argmax_q s(q) - c(q, theta)`` on a box.

    Closed forms are used for additive scoring with quadratic/power/linear
    costs; every other combination falls back to multi-start L-BFGS-B plus
    explicit corner evaluation (linear-in-q structures push optima to the
    box boundary).
    """
    b = np.asarray(bounds, dtype=float)
    if b.shape != (rule.n_dimensions, 2):
        raise ValueError("bounds must be an (m, 2) array of [lo, hi] rows")
    if np.any(b[:, 1] < b[:, 0]):
        raise ValueError("each bound row must satisfy lo <= hi")
    lo, hi = b[:, 0], b[:, 1]

    if _has_closed_form(rule, cost):
        # One-row batch: the closed forms live in optimize_quality_batch so
        # grid builds and single queries share one (bitwise-identical)
        # NumPy code path.
        return optimize_quality_batch(rule, cost, np.asarray([float(theta)]), b)[0]

    def objective(q: np.ndarray) -> float:
        return -(rule.value(q) - cost.cost(q, theta))

    candidates = [_best_corner(rule, cost, theta, b)]
    starts = [
        0.5 * (lo + hi),
        0.25 * lo + 0.75 * hi,
        0.75 * lo + 0.25 * hi,
    ]
    for x0 in starts:
        res = optimize.minimize(
            objective, x0, method="L-BFGS-B", bounds=list(map(tuple, b))
        )
        if res.success or np.isfinite(res.fun):
            candidates.append(np.clip(res.x, lo, hi))
    best = max(candidates, key=lambda q: rule.value(q) - cost.cost(q, theta))
    return np.asarray(best, dtype=float)


def _has_closed_form(rule: ScoringRule, cost: CostModel) -> bool:
    """True when ``argmax_q s(q) - c(q, theta)`` separates per dimension."""
    return isinstance(rule, AdditiveScore) and isinstance(
        cost, (QuadraticCost, LinearCost, PowerCost)
    )


def optimize_quality_batch(
    rule: ScoringRule,
    cost: CostModel,
    thetas: Sequence[float] | np.ndarray,
    bounds: np.ndarray,
) -> np.ndarray:
    """``qs(theta)`` for a whole type vector in one NumPy pass.

    Row ``i`` is bitwise-identical to ``optimize_quality(rule, cost,
    thetas[i], bounds)``: the closed-form families (additive scoring with
    quadratic/linear/power costs) evaluate the same elementwise expressions
    over the full ``(n, m)`` grid at once, which removes the last Python
    hot loop from :meth:`EquilibriumSolver._build_tables`; every other
    combination falls back to the per-point numerical optimiser.
    """
    b = np.asarray(bounds, dtype=float)
    if b.shape != (rule.n_dimensions, 2):
        raise ValueError("bounds must be an (m, 2) array of [lo, hi] rows")
    if np.any(b[:, 1] < b[:, 0]):
        raise ValueError("each bound row must satisfy lo <= hi")
    t = np.asarray(thetas, dtype=float)
    if t.ndim != 1:
        raise ValueError("thetas must be a 1-D vector")
    lo, hi = b[:, 0], b[:, 1]
    if t.size == 0:
        return np.empty((0, rule.n_dimensions))

    if _has_closed_form(rule, cost):
        alpha = rule.weights
        if isinstance(cost, QuadraticCost):
            interior = alpha / (2.0 * t[:, None] * np.maximum(cost.betas, 1e-300))
            return np.clip(interior, lo, hi)
        if isinstance(cost, LinearCost):
            marginal_gain = alpha - t[:, None] * cost.betas
            return np.where(marginal_gain > 0.0, hi, lo)
        if isinstance(cost, PowerCost):
            gam = cost.gammas
            theta_beta = t[:, None] * cost.betas
            denom = theta_beta * gam
            # Masked lanes (gamma == 1, denominator <= 0) are overwritten
            # below; the substitutes only keep the exponent/division finite.
            safe_exp = 1.0 / (np.where(gam == 1.0, 2.0, gam) - 1.0)
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                interior = (alpha / np.where(denom > 0.0, denom, 1.0)) ** safe_exp
            q = np.where(
                denom > 0.0,
                interior,
                np.where(alpha > 0.0, hi, lo),
            )
            q = np.where(gam == 1.0, np.where(alpha > theta_beta, hi, lo), q)
            return np.clip(q, lo, hi)

    return np.stack(
        [optimize_quality(rule, cost, float(theta), b) for theta in t]
    )


def _best_corner(rule: ScoringRule, cost: CostModel, theta: float, bounds: np.ndarray):
    corners = _box_corners(bounds)
    values = [rule.value(c) - cost.cost(c, theta) for c in corners]
    return corners[int(np.argmax(values))]


class EquilibriumSolver:
    """Precomputed equilibrium strategy tables for one auction environment.

    The environment is ``(s, c, F, N, K)`` plus per-dimension quality bounds.
    Construction tabulates the type-to-quality map, the maximum-score curve
    ``u0(theta)``, the score CDF ``H`` and the payment margin ``m(u)`` on a
    dense grid; all queries afterwards are O(log grid) interpolations, which
    is what lets the federated-learning simulator price hundreds of bids per
    round cheaply (the paper's "linear time" lightweightness claim).

    Parameters
    ----------
    quality_rule:
        The ``s(q)`` part of the scoring rule (common knowledge).
    cost:
        The cost family ``c(q, theta)`` (common knowledge; the realised
        ``theta`` is private).
    model:
        The :class:`~repro.core.valuation.PrivateValueModel` carrying the
        type distribution and the game size ``(N, K)``.
    quality_bounds:
        ``(m, 2)`` array of ``[lo, hi]`` feasible quality ranges.
    win_model:
        ``"paper"`` (Eq. 9, default) or ``"exact"``.
    payment_method:
        Default backend for the payment margin: ``"quadrature"``, ``"euler"``
        or ``"rk4"``.
    grid_size:
        Number of tabulation points across the type support.
    """

    def __init__(
        self,
        quality_rule: ScoringRule,
        cost: CostModel,
        model: PrivateValueModel,
        quality_bounds: Sequence[Sequence[float]] | np.ndarray,
        win_model: str = "paper",
        payment_method: str = "quadrature",
        grid_size: int = 257,
    ):
        if quality_rule.n_dimensions != cost.n_dimensions:
            raise ValueError("scoring rule and cost model disagree on m")
        if win_model not in _WIN_MODELS:
            raise ValueError(f"unknown win model {win_model!r}")
        if payment_method not in MARGIN_BACKENDS:
            raise ValueError(
                f"unknown payment method {payment_method!r}; "
                f"choose from {sorted(MARGIN_BACKENDS)}"
            )
        if grid_size < 16:
            raise ValueError("grid_size must be at least 16")
        self.quality_rule = quality_rule
        self.cost = cost
        self.model = model
        self.quality_bounds = np.asarray(quality_bounds, dtype=float)
        self.win_model = win_model
        self.payment_method = payment_method
        self.grid_size = int(grid_size)
        self._margin_cache: dict[tuple[str, str], np.ndarray] = {}
        self._build_tables()

    # ------------------------------------------------------------------
    # Table construction
    # ------------------------------------------------------------------
    def _build_tables(self) -> None:
        dist = self.model.distribution
        self.theta_grid = np.linspace(dist.lo, dist.hi, self.grid_size)
        qualities = optimize_quality_batch(
            self.quality_rule, self.cost, self.theta_grid, self.quality_bounds
        )
        self.quality_grid = qualities
        scores = self.quality_rule.value_batch(qualities)
        costs = np.asarray(
            [self.cost.cost(q, t) for q, t in zip(qualities, self.theta_grid)]
        )
        u0 = scores - costs
        # The envelope theorem guarantees u0 is non-increasing in theta
        # (du0/dtheta = -c_theta < 0); numerical optimisation noise can
        # produce tiny violations that we iron out.
        u0 = np.minimum.accumulate(u0)
        self.u0_grid = u0
        # Increasing-score view for interpolation and the ODE backends.
        u_incr = u0[::-1].copy()
        theta_for_u = self.theta_grid[::-1].copy()
        span = max(u_incr[-1] - u_incr[0], 1.0)
        eps = 1e-12 * span
        for i in range(1, u_incr.size):
            if u_incr[i] <= u_incr[i - 1]:
                u_incr[i] = u_incr[i - 1] + eps
        self.u_incr = u_incr
        self.h_grid = 1.0 - np.asarray(dist.cdf(theta_for_u), dtype=float)
        self.g_grid = win_kernel(
            self.h_grid, self.model.n_nodes, self.model.k_winners, self.win_model
        )

    def _margin_grid(self, method: str | None = None, model: str | None = None) -> np.ndarray:
        method = method or self.payment_method
        model = model or self.win_model
        key = (method, model)
        if key not in self._margin_cache:
            if model == self.win_model:
                g = self.g_grid
            else:
                g = win_kernel(
                    self.h_grid, self.model.n_nodes, self.model.k_winners, model
                )
            self._margin_cache[key] = MARGIN_BACKENDS[method](self.u_incr, g)
        return self._margin_cache[key]

    # ------------------------------------------------------------------
    # Strategy queries
    # ------------------------------------------------------------------
    def optimal_quality(self, theta: float) -> np.ndarray:
        """``qs(theta)`` — Che Theorem 1 (interpolated from the table)."""
        self._check_theta(theta)
        out = np.empty(self.quality_rule.n_dimensions)
        for j in range(out.size):
            out[j] = np.interp(theta, self.theta_grid, self.quality_grid[:, j])
        return out

    def max_score(self, theta: float) -> float:
        """``u0(theta) = s(qs) - c(qs, theta)`` — the best attainable score."""
        self._check_theta(theta)
        return float(np.interp(theta, self.theta_grid, self.u0_grid))

    def score_cdf(self, u: float | np.ndarray):
        """``H(u)`` — CDF of the maximum score of a random competitor."""
        return np.interp(u, self.u_incr, self.h_grid, left=0.0, right=1.0)

    def win_probability_at_score(self, u: float, model: str | None = None) -> float:
        """``g(u)`` for a submitted score ``u`` (selectable kernel)."""
        h = float(self.score_cdf(u))
        return float(
            win_kernel(h, self.model.n_nodes, self.model.k_winners, model or self.win_model)
        )

    def win_probability(self, theta: float, model: str | None = None) -> float:
        """Equilibrium winning probability of a type-``theta`` node."""
        return self.win_probability_at_score(self.max_score(theta), model=model)

    def margin_at_score(self, u: float, method: str | None = None) -> float:
        """Profit margin ``m(u) = Int g / g(u)`` for an achieved score ``u``."""
        grid = self._margin_grid(method)
        return float(np.interp(u, self.u_incr, grid, left=0.0, right=grid[-1]))

    def margin(self, theta: float, method: str | None = None) -> float:
        """Equilibrium profit margin ``ps(theta) - c(qs, theta)``."""
        return self.margin_at_score(self.max_score(theta), method=method)

    def payment(self, theta: float, method: str | None = None) -> float:
        """Paper Theorem 1: ``ps(theta) = c(qs, theta) + m(u(theta))``."""
        q = self.optimal_quality(theta)
        return float(self.cost.cost(q, theta) + self.margin(theta, method=method))

    def equilibrium_score(self, theta: float) -> float:
        """Submitted score ``b(u) = u - m(u)`` at equilibrium."""
        u = self.max_score(theta)
        return u - self.margin_at_score(u)

    def expected_profit(self, theta: float, model: str = "exact") -> float:
        """``pi = (ps - c) * Pr{win}`` (Eq. 11) with the chosen win model."""
        return self.margin(theta) * self.win_probability(theta, model=model)

    def bid(self, theta: float) -> tuple[np.ndarray, float]:
        """Return the full equilibrium bid ``(qs(theta), ps(theta))``."""
        q = self.optimal_quality(theta)
        p = float(self.cost.cost(q, theta) + self.margin(theta))
        return q, p

    def bid_with_capacity(
        self, theta: float, capacity: Sequence[float] | np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Equilibrium bid of a node whose available resources cap quality.

        MEC nodes cannot offer more than they currently have (Section II-A:
        resources are dynamic and constrained).  The agent plays the
        equilibrium quality clipped into ``[lo, capacity]`` and prices the
        resulting score with the unconstrained margin curve — a boundedly
        rational strategy that coincides with the exact equilibrium whenever
        the cap does not bind.
        """
        cap = np.asarray(capacity, dtype=float)
        if cap.shape != (self.quality_rule.n_dimensions,):
            raise ValueError("capacity must have one entry per dimension")
        q = np.clip(
            self.optimal_quality(theta), self.quality_bounds[:, 0], np.minimum(cap, self.quality_bounds[:, 1])
        )
        own_cost = self.cost.cost(q, theta)
        u = self.quality_rule.value(q) - own_cost
        return q, float(own_cost + self.margin_at_score(u))

    def bid_batch(
        self,
        thetas: Sequence[float] | np.ndarray,
        capacities: np.ndarray | None = None,
        with_costs: bool = False,
    ):
        """Equilibrium bids for a whole population in one NumPy call.

        ``thetas`` is an ``(n,)`` vector of private types; ``capacities``
        (optional) an ``(n, m)`` array of per-node quality caps.  Returns
        ``(Q, P)`` where ``Q`` is ``(n, m)`` qualities and ``P`` the
        ``(n,)`` asked payments (``(Q, P, costs)`` with
        ``with_costs=True``, saving the caller a re-pricing pass for IR
        checks).  Row ``i`` equals :meth:`bid` (no caps) or
        :meth:`bid_with_capacity` (with caps) for ``(thetas[i],
        capacities[i])`` — same table interpolations, vectorised — which is
        what lets :class:`~repro.core.mechanism.FMoreMechanism` collect all
        N bids of a round without N Python-level solver round-trips.
        """
        t = np.asarray(thetas, dtype=float)
        if t.ndim != 1:
            raise ValueError("thetas must be a 1-D vector")
        dist = self.model.distribution
        if t.size and not (
            t.min() >= dist.lo - 1e-9 and t.max() <= dist.hi + 1e-9
        ):
            raise ValueError(
                f"thetas outside the type support [{dist.lo}, {dist.hi}]"
            )
        m = self.quality_rule.n_dimensions
        qualities = np.empty((t.size, m))
        for j in range(m):
            qualities[:, j] = np.interp(t, self.theta_grid, self.quality_grid[:, j])
        if capacities is None:
            # Uncapped path mirrors bid(): u comes from the tabulated
            # envelope u0(theta), not from re-evaluating s(q) - c(q, theta).
            costs = self.cost.cost_rows(qualities, t)
            u = np.interp(t, self.theta_grid, self.u0_grid)
        else:
            cap = np.asarray(capacities, dtype=float)
            if cap.shape != (t.size, m):
                raise ValueError("capacities must be an (n, m) array")
            qualities = np.clip(
                qualities,
                self.quality_bounds[:, 0],
                np.minimum(cap, self.quality_bounds[:, 1]),
            )
            costs = self.cost.cost_rows(qualities, t)
            u = self.quality_rule.value_batch(qualities) - costs
        grid = self._margin_grid()
        margins = np.interp(u, self.u_incr, grid, left=0.0, right=grid[-1])
        payments = costs + margins
        if with_costs:
            return qualities, payments, costs
        return qualities, payments

    # ------------------------------------------------------------------
    # Cross-checks and population sweeps
    # ------------------------------------------------------------------
    def payment_che_closed_form(self, theta: float) -> float:
        """Type-space payment with exponent ``N - K``.

        For ``K = 1`` this is exactly Che's Theorem 2; for ``K = 2`` exactly
        the paper's Proposition 1 (the Eq. 9 kernel collapses:
        ``H^{N-1} + (1-H) H^{N-2} = H^{N-2}``).  For ``K >= 3`` it is the
        natural generalisation and differs from the Eq. 9 kernel; tests pin
        the K<=2 equivalence and the ablation bench quantifies the K>=3 gap.
        """
        self._check_theta(theta)
        dist = self.model.distribution
        n, k = self.model.n_nodes, self.model.k_winners
        exponent = n - k
        survival_at_theta = 1.0 - float(dist.cdf(theta))
        q_theta = self.optimal_quality(theta)
        base_cost = self.cost.cost(q_theta, theta)
        if survival_at_theta <= 0.0:
            return float(base_cost)
        mask = self.theta_grid >= theta
        ts = np.concatenate([[theta], self.theta_grid[mask]])
        integrand = np.empty_like(ts)
        for i, t in enumerate(ts):
            q_t = self.optimal_quality(float(t))
            ratio = (1.0 - float(dist.cdf(t))) / survival_at_theta
            integrand[i] = self.cost.d_theta(q_t, float(t)) * ratio ** exponent
        margin = float(np.trapezoid(integrand, ts))
        return float(base_cost + margin)

    def with_population(self, n_nodes: int | None = None, k_winners: int | None = None):
        """Clone the solver with a different ``(N, K)``, reusing quality tables.

        Only the winning kernel depends on the population, so Theorem-2/3
        sweeps (profit vs ``N``, profit vs ``K``) avoid re-optimising
        qualities.
        """
        new_model = PrivateValueModel(
            distribution=self.model.distribution,
            n_nodes=n_nodes if n_nodes is not None else self.model.n_nodes,
            k_winners=k_winners if k_winners is not None else self.model.k_winners,
        )
        clone = object.__new__(EquilibriumSolver)
        clone.quality_rule = self.quality_rule
        clone.cost = self.cost
        clone.model = new_model
        clone.quality_bounds = self.quality_bounds
        clone.win_model = self.win_model
        clone.payment_method = self.payment_method
        clone.grid_size = self.grid_size
        clone._margin_cache = {}
        clone.theta_grid = self.theta_grid
        clone.quality_grid = self.quality_grid
        clone.u0_grid = self.u0_grid
        clone.u_incr = self.u_incr
        clone.h_grid = self.h_grid
        clone.g_grid = win_kernel(
            clone.h_grid, new_model.n_nodes, new_model.k_winners, clone.win_model
        )
        return clone

    def _check_theta(self, theta: float) -> None:
        dist = self.model.distribution
        if not (dist.lo - 1e-9 <= theta <= dist.hi + 1e-9):
            raise ValueError(
                f"theta={theta} outside the type support [{dist.lo}, {dist.hi}]"
            )
