"""Link model: parameter-transfer times between nodes and the aggregator.

The real deployment connects 32 machines through a 1 Gbps switch; the
simulated cluster reproduces its communication component with a simple
store-and-forward model: ``transfer_time = latency + bytes / rate``.
Per-node bandwidth heterogeneity (the ``q`` bandwidth dimension the
real-world scoring function prices) enters through the node's profile.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Link", "duplex_transfer_time"]

BITS_PER_BYTE = 8


@dataclass(frozen=True)
class Link:
    """A point-to-point link with a rate cap and propagation latency."""

    bandwidth_mbps: float
    latency_s: float = 0.002

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time(self, n_bytes: int) -> float:
        """Seconds to push ``n_bytes`` through the link."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        return self.latency_s + (n_bytes * BITS_PER_BYTE) / (self.bandwidth_mbps * 1e6)


def duplex_transfer_time(link: Link, down_bytes: int, up_bytes: int) -> float:
    """Download-then-upload time for one FL round's model exchange."""
    return link.transfer_time(down_bytes) + link.transfer_time(up_bytes)
