"""EdgeNode: the bidding half of an MEC participant.

An :class:`EdgeNode` owns a private cost type ``theta``, a resource
endowment with dynamics, and a reference to the population's
:class:`~repro.core.equilibrium.EquilibriumSolver` (the common-knowledge
game).  Each round it answers the aggregator's bid ask with the Nash
equilibrium bid capped by its currently-available resources — or abstains
when the individual-rationality constraint fails (Eq. 5: nodes never
participate at negative profit).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.bids import Bid
from ..core.equilibrium import EquilibriumSolver
from .resources import ResourceDynamics, ResourceProfile, StaticDynamics

__all__ = ["EdgeNode", "default_quality_extractor"]


def default_quality_extractor(profile: ResourceProfile) -> np.ndarray:
    """Map a profile to the simulator's 2-D quality ``(data_k, categories)``.

    ``q1`` is the data size in thousands of samples (the paper's simulator
    scores raw data size; kilosamples keep the solver grids well-scaled)
    and ``q2`` the category proportion in ``(0, 1]``.
    """
    return np.asarray(
        [profile.data_size / 1000.0, profile.category_proportion], dtype=float
    )


class EdgeNode:
    """A rational MEC participant bidding at equilibrium.

    Parameters
    ----------
    node_id:
        Shared with the matching :class:`~repro.fl.client.FLClient`.
    theta:
        The node's private cost parameter (drawn from the common prior).
    solver:
        Equilibrium strategy tables for the advertised game ``(s, c, F, N, K)``.
    profile:
        Nominal resource endowment.
    dynamics:
        Availability process (static by default).
    quality_extractor:
        Maps an available :class:`ResourceProfile` to the capacity vector in
        quality units (defaults to the 2-D simulator mapping).
    min_margin:
        Abstention threshold: bids whose expected margin falls below this
        are withheld (IR; default exactly 0).
    theta_jitter:
        Per-round re-estimation of the private cost parameter, as a
        fraction of the type-support width.  The walk-through example
        (Section III-B) lists "the private cost parameter theta is
        reestimated and revised" among the reasons bids change between
        rounds; the jitter reproduces that dynamic (and the winner churn it
        induces).  0 disables it.
    """

    def __init__(
        self,
        node_id: int,
        theta: float,
        solver: EquilibriumSolver,
        profile: ResourceProfile,
        dynamics: ResourceDynamics | None = None,
        quality_extractor: Callable[[ResourceProfile], np.ndarray] | None = None,
        min_margin: float = 0.0,
        theta_jitter: float = 0.0,
    ):
        if not (0.0 <= theta_jitter <= 1.0):
            raise ValueError("theta_jitter must lie in [0, 1]")
        self.node_id = int(node_id)
        self.theta = float(theta)
        self.solver = solver
        self.profile = profile
        self.dynamics = dynamics if dynamics is not None else StaticDynamics()
        self.quality_extractor = (
            quality_extractor if quality_extractor is not None else default_quality_extractor
        )
        self.min_margin = float(min_margin)
        self.theta_jitter = float(theta_jitter)
        self.last_available: ResourceProfile = profile

    def available_profile(
        self, round_index: int, rng: np.random.Generator
    ) -> ResourceProfile:
        """Resources free this round (also cached for the timing model)."""
        self.last_available = self.dynamics.availability(self.profile, round_index, rng)
        return self.last_available

    def effective_theta(self, rng: np.random.Generator) -> float:
        """This round's re-estimated cost parameter (Section III-B)."""
        if self.theta_jitter <= 0.0:
            return self.theta
        dist = self.solver.model.distribution
        width = (dist.hi - dist.lo) * self.theta_jitter
        return float(
            np.clip(self.theta + rng.uniform(-width, width), dist.lo, dist.hi)
        )

    def bid_inputs(
        self, round_index: int, rng: np.random.Generator
    ) -> tuple[float, np.ndarray]:
        """This round's ``(theta, capacity)`` — the rng-consuming half of a bid.

        Draws the round's resource availability and re-estimated type in
        the same order :meth:`make_bid` always has, then stops *before*
        the solver maths.  :class:`~repro.core.mechanism.FMoreMechanism`
        calls this for every agent and prices all collected inputs in one
        vectorised ``EquilibriumSolver.bid_batch`` call per solver.
        """
        available = self.available_profile(round_index, rng)
        capacity = np.asarray(self.quality_extractor(available), dtype=float)
        theta = self.effective_theta(rng)
        return theta, capacity

    def make_bid(self, round_index: int, rng: np.random.Generator) -> Bid | None:
        """Answer a bid ask with the capacity-capped equilibrium bid.

        Returns ``None`` (abstains) when the expected profit margin of the
        achievable bid is below ``min_margin`` — individual rationality.
        """
        theta, capacity = self.bid_inputs(round_index, rng)
        quality, payment = self.solver.bid_with_capacity(theta, capacity)
        margin = payment - self.solver.cost.cost(quality, theta)
        if margin < self.min_margin - 1e-12:
            return None
        return Bid(node_id=self.node_id, quality=quality, payment=payment)

    def profit_if_paid(self, quality: np.ndarray, payment: float) -> float:
        """Realised profit ``p - c(q, theta)`` for an awarded contract."""
        return float(payment - self.solver.cost.cost(quality, self.theta))
