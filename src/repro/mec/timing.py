"""Computation-time model for local training at edge nodes.

Local training cost scales with ``samples x epochs`` divided by the node's
effective compute rate, which grows with CPU cores (the paper tunes
"computing power ... by the number of CPU cores").  Parallel efficiency is
sublinear in cores, as in real data-parallel training on one machine.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ComputeModel"]


@dataclass(frozen=True)
class ComputeModel:
    """Seconds of local training as a function of work and capability.

    ``base_rate`` is samples/second on a single core (calibrated to CNN
    training on a desktop i7, the paper's testbed: ~10^2 samples/s);
    ``core_exponent`` (< 1) models diminishing returns of multi-core
    speedup; ``overhead_s`` covers process startup / data loading per round.
    """

    base_rate: float = 120.0
    core_exponent: float = 0.8
    overhead_s: float = 1.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not (0.0 < self.core_exponent <= 1.0):
            raise ValueError("core_exponent must lie in (0, 1]")
        if self.overhead_s < 0:
            raise ValueError("overhead must be non-negative")

    def effective_rate(self, cpu_cores: int) -> float:
        """Samples/second with ``cpu_cores`` cores (sublinear scaling)."""
        if cpu_cores < 1:
            raise ValueError("cpu_cores must be >= 1")
        return self.base_rate * float(cpu_cores) ** self.core_exponent

    def training_time(self, n_samples: int, epochs: int, cpu_cores: int) -> float:
        """Seconds to run ``epochs`` passes over ``n_samples`` locally."""
        if n_samples < 0 or epochs < 0:
            raise ValueError("n_samples and epochs must be non-negative")
        return self.overhead_s + (n_samples * epochs) / self.effective_rate(cpu_cores)
