"""Edge-node resources and their round-to-round dynamics.

Section II-A: edge nodes hold *dynamic*, *multi-dimensional*, *constrained*
resources — local data, bandwidth, CPU — because federated learning
competes with their other tasks.  A :class:`ResourceProfile` is a node's
nominal endowment; a :class:`ResourceDynamics` process yields the fraction
of it actually available in a given round ("nodes randomly choose different
quantities of resources in each round of training", Section V-A).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "ResourceProfile",
    "ResourceDynamics",
    "StaticDynamics",
    "UniformAvailabilityDynamics",
    "RandomWalkDynamics",
]


@dataclass(frozen=True)
class ResourceProfile:
    """A node's endowment across the resource types the paper considers."""

    data_size: int                 # local training samples held
    category_proportion: float     # fraction of label classes present (q2)
    bandwidth_mbps: float = 100.0  # link rate to the aggregator
    cpu_cores: int = 4             # compute capability
    compute_rate: float = 2000.0   # training samples processed per second

    def __post_init__(self) -> None:
        if self.data_size < 0:
            raise ValueError("data_size must be non-negative")
        if not (0.0 <= self.category_proportion <= 1.0):
            raise ValueError("category_proportion must lie in [0, 1]")
        if self.bandwidth_mbps <= 0 or self.compute_rate <= 0:
            raise ValueError("bandwidth and compute rate must be positive")
        if self.cpu_cores < 1:
            raise ValueError("cpu_cores must be >= 1")

    def scaled(self, fraction: float) -> "ResourceProfile":
        """The profile with ``fraction`` of data/bandwidth/compute available."""
        f = float(np.clip(fraction, 0.0, 1.0))
        return replace(
            self,
            data_size=int(round(self.data_size * f)),
            bandwidth_mbps=max(self.bandwidth_mbps * f, 1e-6),
            compute_rate=max(self.compute_rate * f, 1e-6),
        )


class ResourceDynamics(ABC):
    """Stochastic process producing per-round available resources."""

    @abstractmethod
    def availability(
        self, base: ResourceProfile, round_index: int, rng: np.random.Generator
    ) -> ResourceProfile:
        """The resources actually offerable this round (<= base)."""


class StaticDynamics(ResourceDynamics):
    """Resources never change — the 'relatively stable' regime of III-C."""

    def availability(self, base, round_index, rng):
        return base


class UniformAvailabilityDynamics(ResourceDynamics):
    """Each round an independent fraction in ``[min_fraction, 1]`` is free."""

    def __init__(self, min_fraction: float = 0.5):
        if not (0.0 < min_fraction <= 1.0):
            raise ValueError("min_fraction must lie in (0, 1]")
        self.min_fraction = float(min_fraction)

    def availability(self, base, round_index, rng):
        return base.scaled(rng.uniform(self.min_fraction, 1.0))


class RandomWalkDynamics(ResourceDynamics):
    """Available fraction follows a bounded random walk (smooth dynamics).

    Captures nodes whose background load drifts over time rather than
    re-rolling independently; state is kept per-instance, so give each node
    its own object.
    """

    def __init__(self, step: float = 0.1, min_fraction: float = 0.3):
        if step <= 0:
            raise ValueError("step must be positive")
        if not (0.0 < min_fraction < 1.0):
            raise ValueError("min_fraction must lie in (0, 1)")
        self.step = float(step)
        self.min_fraction = float(min_fraction)
        self._fraction: float | None = None

    def availability(self, base, round_index, rng):
        if self._fraction is None:
            self._fraction = rng.uniform(self.min_fraction, 1.0)
        else:
            self._fraction = float(
                np.clip(
                    self._fraction + rng.uniform(-self.step, self.step),
                    self.min_fraction,
                    1.0,
                )
            )
        return base.scaled(self._fraction)
