"""Mobile-edge-computing substrate: resources, nodes, network, cluster.

Models the environment FMore operates in — heterogeneous, dynamic edge
resources (Section II-A) and the 32-node testbed of the real-world
experiments (Section V-C).
"""

from .cluster import (
    ClusterQualityExtractor,
    ClusterNodeSpec,
    SimulatedCluster,
    build_cluster_specs,
    cluster_quality_extractor,
)
from .network import Link, duplex_transfer_time
from .node import EdgeNode, default_quality_extractor
from .resources import (
    RandomWalkDynamics,
    ResourceDynamics,
    ResourceProfile,
    StaticDynamics,
    UniformAvailabilityDynamics,
)
from .timing import ComputeModel

__all__ = [
    "ResourceProfile",
    "ResourceDynamics",
    "StaticDynamics",
    "UniformAvailabilityDynamics",
    "RandomWalkDynamics",
    "EdgeNode",
    "default_quality_extractor",
    "Link",
    "duplex_transfer_time",
    "ComputeModel",
    "ClusterNodeSpec",
    "SimulatedCluster",
    "build_cluster_specs",
    "ClusterQualityExtractor",
    "cluster_quality_extractor",
]
