"""SimulatedCluster: the stand-in for the paper's 32-machine testbed.

Section V-A (real-world experiments): one aggregator plus 31 edge nodes
(Intel i7, 8 GB RAM, 1 Gbps Ethernet through one switch), resources =
{computing power (CPU cores), bandwidth, data size}, scored with
``S = 0.4 q1 + 0.3 q2 + 0.3 q3 - p``.  We cannot run that hardware, so
this module reproduces its *wall-clock behaviour*: a synchronous FL round
costs ``max over winners(download + local training + upload) + aggregation``
under per-node heterogeneous links and compute rates.  Figs 12-13 (accuracy
vs round, time vs round, time vs accuracy) are regenerated on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .network import Link, duplex_transfer_time
from .resources import ResourceProfile
from .timing import ComputeModel

__all__ = [
    "ClusterNodeSpec",
    "SimulatedCluster",
    "build_cluster_specs",
    "ClusterQualityExtractor",
    "cluster_quality_extractor",
]


@dataclass(frozen=True)
class ClusterNodeSpec:
    """A cluster machine: its resources and its link to the switch."""

    node_id: int
    profile: ResourceProfile
    link: Link


class SimulatedCluster:
    """Implements the :class:`~repro.fl.trainer.RoundTimer` protocol."""

    def __init__(
        self,
        specs: Sequence[ClusterNodeSpec],
        compute: ComputeModel | None = None,
        aggregation_s: float = 0.3,
    ):
        self.specs = {s.node_id: s for s in specs}
        if len(self.specs) != len(specs):
            raise ValueError("duplicate node ids in cluster specs")
        self.compute = compute if compute is not None else ComputeModel()
        if aggregation_s < 0:
            raise ValueError("aggregation_s must be non-negative")
        self.aggregation_s = float(aggregation_s)

    def node_round_time(
        self, node_id: int, n_samples: int, model_bytes: int, local_epochs: int
    ) -> float:
        """One node's share of a round: model down, local train, model up."""
        spec = self.specs[node_id]
        comm = duplex_transfer_time(spec.link, model_bytes, model_bytes)
        train = self.compute.training_time(
            n_samples, local_epochs, spec.profile.cpu_cores
        )
        return comm + train

    def round_time(
        self,
        winner_ids: Sequence[int],
        declared_samples: dict[int, int],
        model_bytes: int,
        local_epochs: int,
    ) -> float:
        """Synchronous-round wall clock: the slowest winner gates the round."""
        if not winner_ids:
            return self.aggregation_s
        slowest = max(
            self.node_round_time(
                wid,
                declared_samples.get(wid, self.specs[wid].profile.data_size),
                model_bytes,
                local_epochs,
            )
            for wid in winner_ids
        )
        return slowest + self.aggregation_s


def build_cluster_specs(
    data_sizes: Sequence[int],
    rng: np.random.Generator,
    category_proportions: Sequence[float] | None = None,
    core_choices: Sequence[int] = (1, 2, 4, 8),
    bandwidth_range_mbps: tuple[float, float] = (50.0, 1000.0),
    base_compute_rate: float = 120.0,
) -> list[ClusterNodeSpec]:
    """Heterogeneous cluster machines around given per-node data sizes.

    The paper tunes computing power via CPU-core counts and allocates data
    over [2000, 10000]; bandwidth heterogeneity arises from background
    traffic sharing the 1 Gbps switch.
    """
    lo_bw, hi_bw = bandwidth_range_mbps
    if not (0 < lo_bw <= hi_bw):
        raise ValueError("bandwidth range must satisfy 0 < lo <= hi")
    specs: list[ClusterNodeSpec] = []
    for node_id, data_size in enumerate(data_sizes):
        cores = int(rng.choice(np.asarray(core_choices)))
        bandwidth = float(rng.uniform(lo_bw, hi_bw))
        cat = (
            float(category_proportions[node_id])
            if category_proportions is not None
            else 1.0
        )
        profile = ResourceProfile(
            data_size=int(data_size),
            category_proportion=cat,
            bandwidth_mbps=bandwidth,
            cpu_cores=cores,
            compute_rate=base_compute_rate * cores ** 0.8,
        )
        specs.append(ClusterNodeSpec(node_id, profile, Link(bandwidth)))
    return specs


@dataclass(frozen=True)
class ClusterQualityExtractor:
    """Normalised 3-D quality ``(compute, bandwidth, data)`` in [0, 1].

    Matches the real-world scoring function's resource triple; the additive
    rule ``0.4 q1 + 0.3 q2 + 0.3 q3`` then operates on comparable scales
    (the min-max normalisation the walk-through example applies).  A frozen
    dataclass rather than a closure so agents carrying it can cross process
    boundaries (parallel sweep executors pickle their work).
    """

    max_cores: int
    max_bandwidth_mbps: float
    max_data_size: int

    def __post_init__(self) -> None:
        if self.max_cores < 1 or self.max_bandwidth_mbps <= 0 or self.max_data_size < 1:
            raise ValueError("normalisation maxima must be positive")

    def __call__(self, profile: ResourceProfile) -> np.ndarray:
        return np.asarray(
            [
                min(profile.cpu_cores / self.max_cores, 1.0),
                min(profile.bandwidth_mbps / self.max_bandwidth_mbps, 1.0),
                min(profile.data_size / self.max_data_size, 1.0),
            ],
            dtype=float,
        )


def cluster_quality_extractor(
    max_cores: int, max_bandwidth_mbps: float, max_data_size: int
) -> ClusterQualityExtractor:
    """Factory kept for callers predating :class:`ClusterQualityExtractor`."""
    return ClusterQualityExtractor(max_cores, max_bandwidth_mbps, max_data_size)
