"""Client-selection strategies: RandFL, FixFL, FMore and psi-FMore.

The paper compares three ways of choosing the K participants of each round
(Section V-A):

* **RandFL** — classic federated learning: K uniform-random nodes.
* **FixFL** — a fixed set of K nodes chosen once (the degenerate baseline
  whose limited data diversity hurts accuracy most).
* **FMore** — the auction: nodes bid ``(q, p)`` at equilibrium, the top-K
  scores win, and winners train with their *declared* resources.
* **psi-FMore** — FMore with probabilistic admission down the sorted list.

Every strategy implements :class:`SelectionStrategy` and returns a
:class:`SelectionResult`; auction-based strategies also surface payments,
scores and the raw :class:`~repro.core.auction.AuctionOutcome` so the
benches can reproduce the paper's score-distribution and payment figures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.auction import AuctionOutcome
from ..core.mechanism import BiddingAgent, FMoreMechanism

__all__ = [
    "SelectionResult",
    "SelectionStrategy",
    "RandomSelection",
    "FixedSelection",
    "AuctionSelection",
]


@dataclass
class SelectionResult:
    """Winners of one round plus the auction metadata (if any)."""

    winner_ids: list[int]
    declared_samples: dict[int, int] = field(default_factory=dict)
    payments: dict[int, float] = field(default_factory=dict)
    scores: dict[int, float] = field(default_factory=dict)
    outcome: AuctionOutcome | None = None
    # Round-policy decisions (bans, alpha updates, churn) filed by the
    # mechanism's policy pipeline this round; empty for policy-free runs
    # and for the non-auction schemes.
    actions: list = field(default_factory=list)

    @property
    def total_payment(self) -> float:
        return float(sum(self.payments.values()))


class SelectionStrategy(ABC):
    """Chooses the winner set W of each training round."""

    name: str = "base"

    @abstractmethod
    def select(self, round_index: int, rng: np.random.Generator) -> SelectionResult:
        ...


class RandomSelection(SelectionStrategy):
    """RandFL: K nodes uniformly at random, fresh every round."""

    name = "RandFL"

    def __init__(self, client_ids: Sequence[int], k_winners: int):
        if k_winners < 1:
            raise ValueError("k_winners must be >= 1")
        self.client_ids = list(client_ids)
        self.k_winners = min(int(k_winners), len(self.client_ids))

    def select(self, round_index: int, rng: np.random.Generator) -> SelectionResult:
        chosen = rng.choice(self.client_ids, size=self.k_winners, replace=False)
        return SelectionResult(winner_ids=[int(c) for c in chosen])


class FixedSelection(SelectionStrategy):
    """FixFL: the same K nodes every round (drawn once at construction)."""

    name = "FixFL"

    def __init__(self, client_ids: Sequence[int], k_winners: int, rng: np.random.Generator):
        if k_winners < 1:
            raise ValueError("k_winners must be >= 1")
        ids = list(client_ids)
        k = min(int(k_winners), len(ids))
        self.fixed_ids = [int(c) for c in rng.choice(ids, size=k, replace=False)]

    def select(self, round_index: int, rng: np.random.Generator) -> SelectionResult:
        return SelectionResult(winner_ids=list(self.fixed_ids))


class AuctionSelection(SelectionStrategy):
    """FMore (and psi-FMore, via the mechanism's selection policy).

    Parameters
    ----------
    mechanism:
        The :class:`~repro.core.mechanism.FMoreMechanism` driving steps 1-3
        (its auction may carry a :class:`~repro.core.psi.PsiSelection`).
    agents:
        The bidding agents, one per client, sharing ``node_id`` with the
        corresponding :class:`~repro.fl.client.FLClient`.
    quality_to_samples:
        Maps a winner's declared quality vector to the number of local
        samples it must train on (``None`` entries mean "all local data").
        The default reads dimension 0 as a raw sample count.
    """

    name = "FMore"

    def __init__(
        self,
        mechanism: FMoreMechanism,
        agents: Sequence[BiddingAgent],
        quality_to_samples: Callable[[np.ndarray], int] | None = None,
    ):
        self.mechanism = mechanism
        self.agents = list(agents)
        self.quality_to_samples = (
            quality_to_samples
            if quality_to_samples is not None
            else (lambda q: int(round(q[0])))
        )

    def select(self, round_index: int, rng: np.random.Generator) -> SelectionResult:
        record = self.mechanism.run_round(self.agents, round_index, rng)
        outcome = record.outcome
        winner_ids = outcome.winner_ids
        declared = {
            w.node_id: max(self.quality_to_samples(w.quality), 1)
            for w in outcome.winners
        }
        payments = {w.node_id: w.charged_payment for w in outcome.winners}
        scores = {w.node_id: w.score for w in outcome.winners}
        return SelectionResult(
            winner_ids=winner_ids,
            declared_samples=declared,
            payments=payments,
            scores=scores,
            outcome=outcome,
            actions=list(record.actions),
        )
