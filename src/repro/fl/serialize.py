"""Weight (de)serialisation: the durable form of a model's parameters.

Checkpointing a federated run (see :mod:`repro.api.store`) must persist
the global model's weights exactly — a resumed session continues from the
same float64 values the uninterrupted run would have held, so the
histories it produces are bitwise-identical.  The weight interface of
:class:`repro.fl.nn.model.Sequential` is a flat list of arrays
(``get_weights`` / ``set_weights``); this module round-trips that list
through a single ``.npz`` archive, preserving order, dtype and shape.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence

import numpy as np

__all__ = ["save_weights", "load_weights", "weights_equal"]

# Archive keys are "w000", "w001", ...: np.load returns files unordered,
# so the index rides in the key (zero-padded for lexicographic sanity).
_KEY = "w{:03d}"


def save_weights(path: str | Path, weights: Sequence[np.ndarray]) -> Path:
    """Write a ``get_weights()`` list to one ``.npz`` archive, atomically.

    The archive is written to a sibling temp file first and moved into
    place with :func:`os.replace`, so a crash mid-write never leaves a
    truncated checkpoint behind.
    """
    path = Path(path)
    if len(weights) > 999:
        raise ValueError("weight lists beyond 999 arrays are not supported")
    arrays = {_KEY.format(i): np.asarray(w) for i, w in enumerate(weights)}
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(fh, **arrays)
    os.replace(tmp, path)
    return path


def load_weights(path: str | Path) -> list[np.ndarray]:
    """Inverse of :func:`save_weights`: the ordered list of weight arrays."""
    with np.load(Path(path)) as archive:
        keys = sorted(archive.files)
        expected = [_KEY.format(i) for i in range(len(keys))]
        if keys != expected:
            raise ValueError(
                f"{path} is not a weight archive (keys {keys[:3]}...)"
            )
        return [archive[k] for k in keys]


def weights_equal(
    a: Sequence[np.ndarray], b: Sequence[np.ndarray]
) -> bool:
    """Exact (bitwise) equality of two weight lists."""
    if len(a) != len(b):
        return False
    return all(
        x.shape == y.shape and x.dtype == y.dtype and bool((x == y).all())
        for x, y in zip(a, b)
    )
