"""Non-IID data partitioning across federated clients.

The paper follows McMahan et al. in studying non-IID sample distributions
across edge nodes (Section V-A), and FMore's whole premise is a *widening
resource gap*: clients differ in how much data they hold (``q1``) and how
many of the label categories they cover (``q2``, "the proportion of data
category").  This module turns those two axes into client specifications:

* :func:`heterogeneous_specs` — every client gets a data size drawn from a
  (log-uniform by default) size law and a random subset of classes, giving
  the joint size/diversity spread the auction prices.
* :func:`shard_specs` — the classic McMahan shard construction (sort by
  label, deal out shards), expressed as per-class counts.
* :func:`dirichlet_specs` — label distribution per client drawn from a
  Dirichlet, the other standard non-IID benchmark.

Specs are materialised into actual arrays with
:func:`materialize_clients`, which asks a
:class:`~repro.fl.datasets.DataGenerator` for exactly the samples needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .datasets import DataGenerator

__all__ = [
    "ClientSpec",
    "ClientData",
    "heterogeneous_specs",
    "shard_specs",
    "dirichlet_specs",
    "materialize_clients",
]


@dataclass(frozen=True)
class ClientSpec:
    """How one client's local dataset should look: samples per class."""

    client_id: int
    class_counts: dict[int, int]

    @property
    def size(self) -> int:
        return int(sum(self.class_counts.values()))

    @property
    def n_classes_present(self) -> int:
        return int(sum(1 for v in self.class_counts.values() if v > 0))


@dataclass
class ClientData:
    """A client's realised local dataset plus the stats the auction scores.

    ``category_proportion`` is the paper's ``q2``: the fraction of all label
    categories present locally, in ``(0, 1]``.
    """

    client_id: int
    x: np.ndarray
    y: np.ndarray
    n_classes_total: int

    @property
    def size(self) -> int:
        return int(self.y.shape[0])

    @property
    def class_histogram(self) -> np.ndarray:
        return np.bincount(self.y, minlength=self.n_classes_total)

    @property
    def n_classes_present(self) -> int:
        return int(np.count_nonzero(self.class_histogram))

    @property
    def category_proportion(self) -> float:
        if self.n_classes_total == 0:
            return 0.0
        return self.n_classes_present / self.n_classes_total

    def subset(self, n_samples: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """A class-stratified subset of ``n_samples`` (declared data size).

        When a node's equilibrium bid declares fewer samples than it holds,
        it trains on this subset — keeping every locally-present class
        represented so the declared category proportion stays honest.
        """
        n_samples = int(min(max(n_samples, 1), self.size))
        if n_samples == self.size:
            return self.x, self.y
        chosen: list[np.ndarray] = []
        classes = np.flatnonzero(self.class_histogram)
        # At least one sample per present class, remainder proportional.
        per_class = np.maximum(
            (self.class_histogram[classes] / self.size * n_samples).astype(int), 1
        )
        while per_class.sum() > n_samples:
            j = int(np.argmax(per_class))
            per_class[j] -= 1
        for cls, count in zip(classes, per_class):
            idx = np.flatnonzero(self.y == cls)
            take = rng.choice(idx, size=min(count, idx.size), replace=False)
            chosen.append(take)
        sel = np.concatenate(chosen)
        return self.x[sel], self.y[sel]


def heterogeneous_specs(
    n_clients: int,
    n_classes: int,
    rng: np.random.Generator,
    size_range: tuple[int, int] = (200, 5000),
    min_classes: int = 1,
    max_classes: int | None = None,
    log_uniform_sizes: bool = True,
) -> list[ClientSpec]:
    """Clients with independently drawn data sizes and class subsets.

    This is the MEC population of the paper's simulator: data sizes over a
    wide range (the walk-through uses [1000, 5000]) and category coverage
    from a single class up to all ten.
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    lo, hi = size_range
    if not (0 < lo <= hi):
        raise ValueError("size_range must satisfy 0 < lo <= hi")
    max_classes = n_classes if max_classes is None else max_classes
    if not (1 <= min_classes <= max_classes <= n_classes):
        raise ValueError("need 1 <= min_classes <= max_classes <= n_classes")
    specs: list[ClientSpec] = []
    for cid in range(n_clients):
        if log_uniform_sizes:
            size = int(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        else:
            size = int(rng.integers(lo, hi + 1))
        n_cls = int(rng.integers(min_classes, max_classes + 1))
        classes = rng.choice(n_classes, size=n_cls, replace=False)
        weights = rng.dirichlet(np.ones(n_cls) * 3.0)
        counts = np.maximum((weights * size).astype(int), 1)
        specs.append(
            ClientSpec(cid, {int(c): int(k) for c, k in zip(classes, counts)})
        )
    return specs


def shard_specs(
    n_clients: int,
    n_classes: int,
    rng: np.random.Generator,
    shards_per_client: int = 2,
    shard_size: int = 150,
) -> list[ClientSpec]:
    """McMahan-style shards: each client holds a few single-class shards."""
    if shards_per_client < 1 or shard_size < 1:
        raise ValueError("shards_per_client and shard_size must be >= 1")
    n_shards = n_clients * shards_per_client
    shard_classes = rng.permutation(np.repeat(np.arange(n_classes), int(np.ceil(n_shards / n_classes))))[:n_shards]
    specs: list[ClientSpec] = []
    for cid in range(n_clients):
        mine = shard_classes[cid * shards_per_client : (cid + 1) * shards_per_client]
        counts: dict[int, int] = {}
        for cls in mine:
            counts[int(cls)] = counts.get(int(cls), 0) + shard_size
        specs.append(ClientSpec(cid, counts))
    return specs


def dirichlet_specs(
    n_clients: int,
    n_classes: int,
    rng: np.random.Generator,
    alpha: float = 0.5,
    size_range: tuple[int, int] = (200, 2000),
) -> list[ClientSpec]:
    """Label mixes drawn from ``Dirichlet(alpha)`` with random sizes."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    lo, hi = size_range
    specs: list[ClientSpec] = []
    for cid in range(n_clients):
        size = int(rng.integers(lo, hi + 1))
        mix = rng.dirichlet(np.full(n_classes, alpha))
        counts = np.floor(mix * size).astype(int)
        # Guarantee a non-empty client even for extreme draws.
        if counts.sum() == 0:
            counts[int(np.argmax(mix))] = 1
        specs.append(
            ClientSpec(
                cid,
                {int(c): int(k) for c, k in enumerate(counts) if k > 0},
            )
        )
    return specs


def materialize_clients(
    generator: DataGenerator,
    specs: list[ClientSpec],
    rng: np.random.Generator,
) -> list[ClientData]:
    """Generate each client's local arrays from its spec."""
    clients: list[ClientData] = []
    for spec in specs:
        x, y = generator.sample_mixed(spec.class_counts, rng)
        clients.append(
            ClientData(
                client_id=spec.client_id,
                x=x,
                y=y,
                n_classes_total=generator.n_classes,
            )
        )
    return clients
