"""The paper's model zoo: two CNNs and an LSTM classifier.

Footnotes 1-2 of the paper give the exact TensorFlow architectures:

* MNIST CNN (8 layers):  3x3x32 Conv -> 3x3x64 Conv -> 2x2 MaxPool ->
  Dropout -> Flatten -> 128 Dense -> Dropout -> 10 Dense -> Softmax.
* CIFAR CNN (11 layers): 3x3x32 Conv -> Dropout -> 2x2 MaxPool ->
  3x3x64 Conv -> Dropout -> 2x2 MaxPool -> Flatten -> Dropout ->
  1024 Dense -> Dropout -> 10 Dense -> Softmax.
* HPNews LSTM: Embedding -> LSTM -> Dense -> Softmax (standard Keras text
  classifier; exact sizes unstated in the paper).

``width`` scales the filter/unit counts so benchmark presets can run the
same architectures at laptop speed; ``width=1.0`` is the paper-faithful
configuration.  Softmax itself is fused into the cross-entropy loss.

The factories are frozen dataclasses rather than closures so a
:class:`Sequential` built from them pickles — the ``process``
local-training pool ships scratch replicas to worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .nn import (
    LSTM,
    Conv2D,
    Dense,
    Dropout,
    Embedding,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    SGD,
)

__all__ = [
    "cnn_mnist_factory",
    "cnn_cifar_factory",
    "lstm_factory",
    "build_model",
]


def _scaled(base: int, width: float) -> int:
    return max(int(round(base * width)), 2)


@dataclass(frozen=True)
class _MnistLayers:
    n_classes: int
    width: float
    dropout: float

    def __call__(self):
        return [
            Conv2D(_scaled(32, self.width), kernel_size=3),
            ReLU(),
            Conv2D(_scaled(64, self.width), kernel_size=3),
            ReLU(),
            MaxPool2D(2),
            Dropout(self.dropout),
            Flatten(),
            Dense(_scaled(128, self.width)),
            ReLU(),
            Dropout(self.dropout),
            Dense(self.n_classes),
        ]


@dataclass(frozen=True)
class _CifarLayers:
    n_classes: int
    width: float
    dropout: float

    def __call__(self):
        return [
            Conv2D(_scaled(32, self.width), kernel_size=3),
            ReLU(),
            Dropout(self.dropout),
            MaxPool2D(2),
            Conv2D(_scaled(64, self.width), kernel_size=3),
            ReLU(),
            Dropout(self.dropout),
            MaxPool2D(2),
            Flatten(),
            Dropout(self.dropout),
            Dense(_scaled(1024, self.width)),
            ReLU(),
            Dropout(self.dropout),
            Dense(self.n_classes),
        ]


@dataclass(frozen=True)
class _LstmLayers:
    vocab_size: int
    n_classes: int
    embed_dim: int
    hidden: int
    width: float

    def __call__(self):
        return [
            Embedding(self.vocab_size, _scaled(self.embed_dim, self.width)),
            LSTM(_scaled(self.hidden, self.width)),
            Dense(self.n_classes),
        ]


def cnn_mnist_factory(n_classes: int = 10, width: float = 1.0, dropout: float = 0.2):
    """Layer factory for the paper's MNIST CNN (footnote 1)."""
    return _MnistLayers(int(n_classes), float(width), float(dropout))


def cnn_cifar_factory(n_classes: int = 10, width: float = 1.0, dropout: float = 0.2):
    """Layer factory for the paper's CIFAR-10 CNN (footnote 2)."""
    return _CifarLayers(int(n_classes), float(width), float(dropout))


def lstm_factory(
    vocab_size: int,
    n_classes: int = 10,
    embed_dim: int = 32,
    hidden: int = 32,
    width: float = 1.0,
):
    """Layer factory for the HPNews LSTM classifier."""
    return _LstmLayers(
        int(vocab_size), int(n_classes), int(embed_dim), int(hidden), float(width)
    )


def build_model(
    dataset_name: str,
    input_shape: tuple[int, ...],
    n_classes: int,
    rng: np.random.Generator,
    width: float = 1.0,
    lr: float = 0.05,
    vocab_size: int | None = None,
) -> Sequential:
    """Build the paper's model for a dataset name at a given width.

    The CIFAR CNN needs images of at least 10x10 for its two pool stages;
    smaller presets automatically fall back to the single-pool MNIST
    architecture (identical code path, one fewer stage).
    """
    if dataset_name in ("mnist_o", "mnist_f"):
        factory = cnn_mnist_factory(n_classes, width)
    elif dataset_name == "cifar10":
        size = input_shape[0]
        # Width-scaled small nets are fragile under the paper's 0.2 dropout;
        # keep dropout proportional to capacity.
        drop = 0.2 if width >= 0.75 else 0.1
        if size >= 10:
            factory = cnn_cifar_factory(n_classes, width, dropout=drop)
        else:
            factory = cnn_mnist_factory(n_classes, width, dropout=drop)
    elif dataset_name == "hpnews":
        if vocab_size is None:
            raise ValueError("hpnews model requires vocab_size")
        factory = lstm_factory(vocab_size, n_classes, width=max(width, 0.25))
    else:
        raise ValueError(f"unknown dataset {dataset_name!r}")
    return Sequential(factory, input_shape, optimizer=SGD(lr), rng=rng)
