"""Federated-learning substrate: models, data, clients, FedAvg, selection.

This package is the paper's "RandFL" baseline plus everything FMore plugs
into: a numpy NN library (:mod:`repro.fl.nn`), synthetic datasets
(:mod:`repro.fl.datasets`), non-IID partitioning
(:mod:`repro.fl.partition`), the FedAvg server/client pair and the
selection strategies of Section V.
"""

from .client import FLClient, LocalUpdate
from .datasets import (
    DATASET_NAMES,
    IMAGE_PRESETS,
    TEXT_PRESETS,
    DataGenerator,
    ImageSpec,
    SyntheticImageGenerator,
    SyntheticTextGenerator,
    TextSpec,
    make_generator,
)
from .metrics import (
    accuracy_improvement,
    round_reduction,
    rounds_to_accuracy,
    speedup_percent,
    time_to_accuracy,
)
from .models import build_model, cnn_cifar_factory, cnn_mnist_factory, lstm_factory
from .partition import (
    ClientData,
    ClientSpec,
    dirichlet_specs,
    heterogeneous_specs,
    materialize_clients,
    shard_specs,
)
from .selection import (
    AuctionSelection,
    FixedSelection,
    RandomSelection,
    SelectionResult,
    SelectionStrategy,
)
from .serialize import load_weights, save_weights, weights_equal
from .server import FedAvgServer, federated_average
from .trainer import FederatedTrainer, RoundRecord, RoundTimer, TrainingHistory

__all__ = [
    "DataGenerator",
    "ImageSpec",
    "TextSpec",
    "SyntheticImageGenerator",
    "SyntheticTextGenerator",
    "IMAGE_PRESETS",
    "TEXT_PRESETS",
    "DATASET_NAMES",
    "make_generator",
    "ClientSpec",
    "ClientData",
    "heterogeneous_specs",
    "shard_specs",
    "dirichlet_specs",
    "materialize_clients",
    "FLClient",
    "LocalUpdate",
    "FedAvgServer",
    "federated_average",
    "SelectionStrategy",
    "SelectionResult",
    "RandomSelection",
    "FixedSelection",
    "AuctionSelection",
    "FederatedTrainer",
    "TrainingHistory",
    "RoundRecord",
    "RoundTimer",
    "rounds_to_accuracy",
    "time_to_accuracy",
    "round_reduction",
    "accuracy_improvement",
    "speedup_percent",
    "build_model",
    "cnn_mnist_factory",
    "cnn_cifar_factory",
    "lstm_factory",
    "save_weights",
    "load_weights",
    "weights_equal",
]
