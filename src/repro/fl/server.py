"""The aggregator's learning half: FedAvg global aggregation (Eq. 3).

``w(t+1) = sum_i D_i w_i(t+1) / sum_i D_i`` — the data-size-weighted mean
of the winners' local models.  The server also owns the global model and
the held-out evaluation set the experiments report accuracy/loss on.
"""

from __future__ import annotations

import numpy as np

from .client import LocalUpdate
from .nn import Sequential

__all__ = ["FedAvgServer", "federated_average"]


def federated_average(updates: list[LocalUpdate]) -> list[np.ndarray]:
    """Data-size-weighted average of client weights (paper Eq. 3)."""
    if not updates:
        raise ValueError("cannot aggregate an empty update set")
    total = float(sum(u.n_samples for u in updates))
    if total <= 0:
        # All contributors empty: fall back to an unweighted mean.
        weights = [1.0 / len(updates)] * len(updates)
    else:
        weights = [u.n_samples / total for u in updates]
    averaged = [np.zeros_like(p) for p in updates[0].weights]
    for u, w in zip(updates, weights):
        if len(u.weights) != len(averaged):
            raise ValueError("updates disagree on parameter count")
        for acc, param in zip(averaged, u.weights):
            acc += w * param
    return averaged


class FedAvgServer:
    """Owns the global model; broadcasts weights and aggregates updates."""

    def __init__(self, global_model: Sequential):
        self.model = global_model

    def broadcast(self) -> list[np.ndarray]:
        """Global weights ``w(t)`` shipped to this round's winners."""
        return self.model.get_weights()

    def aggregate(self, updates: list[LocalUpdate]) -> None:
        """Install the FedAvg mean of ``updates`` as ``w(t+1)``."""
        self.model.set_weights(federated_average(updates))

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """Return ``(loss, accuracy)`` of the current global model."""
        return self.model.evaluate(x, y)

    @property
    def model_bytes(self) -> int:
        return self.model.parameter_bytes
