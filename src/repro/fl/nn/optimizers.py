"""Optimizers for local training at edge nodes.

Classic federated averaging runs plain SGD locally (paper Eq. 2,
``w_i(t+1) = w(t) - eta * grad F_i``); momentum and Adam are provided for
the extension benches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer(ABC):
    """Updates a flat list of parameter arrays from a parallel grad list."""

    @abstractmethod
    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        ...

    def reset(self) -> None:
        """Drop any accumulated state (fresh client, new round)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, lr: float = 0.05, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not (0.0 <= momentum < 1.0):
            raise ValueError("momentum must lie in [0, 1)")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self.momentum == 0.0:
            for p, g in zip(params, grads):
                p -= self.lr * g
            return
        if self._velocity is None or len(self._velocity) != len(params):
            self._velocity = [np.zeros_like(p) for p in params]
        for v, p, g in zip(self._velocity, params, grads):
            v *= self.momentum
            v += g
            p -= self.lr * v

    def reset(self) -> None:
        self._velocity = None


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._m is None or len(self._m) != len(params):
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
            self._t = 0
        self._t += 1
        b1t = 1.0 - self.beta1 ** self._t
        b2t = 1.0 - self.beta2 ** self._t
        for m, v, p, g in zip(self._m, self._v, params, grads):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0
