"""Loss functions for the numpy neural-network substrate."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Loss", "SoftmaxCrossEntropy", "MeanSquaredError"]


class Loss(ABC):
    """A loss pairs a scalar objective with its gradient wrt the logits."""

    @abstractmethod
    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        ...

    @abstractmethod
    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        ...


class SoftmaxCrossEntropy(Loss):
    """Fused softmax + categorical cross-entropy over integer labels.

    Fusing keeps the backward pass the numerically-stable
    ``softmax(logits) - one_hot(targets)`` and matches the paper's
    ``...Fully connected -> Softmax`` model heads.
    """

    @staticmethod
    def probabilities(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        probs = self.probabilities(predictions)
        n = predictions.shape[0]
        picked = probs[np.arange(n), targets.astype(int)]
        return float(-np.mean(np.log(np.maximum(picked, 1e-12))))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        probs = self.probabilities(predictions)
        n = predictions.shape[0]
        probs[np.arange(n), targets.astype(int)] -= 1.0
        return probs / n


class MeanSquaredError(Loss):
    """Plain MSE for regression-style diagnostics."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        diff = predictions - targets
        return float(np.mean(diff * diff))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return 2.0 * (predictions - targets) / predictions.size
