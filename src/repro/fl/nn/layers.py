"""Feed-forward layers of the numpy neural-network substrate.

The paper trains two CNNs (for MNIST-O/MNIST-F and CIFAR-10) and an LSTM
with TensorFlow; reproducing offline requires a from-scratch substrate.
Every layer implements the same tiny contract:

* ``forward(x, training)`` caches what backward needs and returns the
  activation,
* ``backward(grad)`` consumes ``dL/dy`` and returns ``dL/dx`` while filling
  ``self.grads`` aligned with ``self.params``,
* ``params`` / ``grads`` are parallel lists of arrays (possibly empty), and
  FedAvg manipulates weights exclusively through them.

Convolutions use im2col/col2im so the heavy lifting is one GEMM per layer —
the standard trick for acceptable pure-numpy speed.  All layers are
gradient-checked against central finite differences in the test suite.

The super-linear kernels (GEMM, im2col/col2im) are fetched at call time
from the active :mod:`~repro.fl.nn.backends` entry, so a registered
``NN_BACKENDS`` backend swaps the compute engine under every layer at
once; the default ``numpy`` backend is bitwise-identical to the
historically inlined operations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

# _im2col/_col2im stay importable from here (their historical home); the
# implementations now live beside the other reference kernels in backends.
from .backends import get_backend
from .backends import numpy_col2im as _col2im  # noqa: F401 - re-export
from .backends import numpy_im2col as _im2col  # noqa: F401 - re-export
from .initializers import glorot_uniform, he_normal, zeros

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "Conv2D",
    "MaxPool2D",
]


class Layer(ABC):
    """Base class: a differentiable module with (possibly zero) parameters."""

    def __init__(self) -> None:
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []
        self.built = False

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        """Allocate parameters for ``input_shape`` (sans batch); return output shape."""
        self.built = True
        return self.output_shape(input_shape)

    def reseed(self, rng: np.random.Generator) -> None:
        """Rebind any build-time generator (dropout masks) to ``rng``.

        The within-round training pool reseeds each scratch replica with
        the winner's derived stream before local training, so stochastic
        layers draw from the per-client stream rather than whichever
        generator the replica was built with.  Deterministic layers (the
        default) have nothing to rebind.
        """

    @abstractmethod
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape of the activation (sans batch) for a given input shape."""

    @abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        ...

    @abstractmethod
    def backward(self, grad: np.ndarray) -> np.ndarray:
        ...

    @property
    def n_parameters(self) -> int:
        return int(sum(p.size for p in self.params))


class Dense(Layer):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, units: int, weight_init: str = "he"):
        super().__init__()
        if units < 1:
            raise ValueError("units must be >= 1")
        self.units = int(units)
        if weight_init not in ("he", "glorot"):
            raise ValueError("weight_init must be 'he' or 'glorot'")
        self.weight_init = weight_init

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 1:
            raise ValueError(f"Dense expects flat input, got shape {input_shape}")
        return (self.units,)

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator):
        (fan_in,) = input_shape
        if self.weight_init == "he":
            w = he_normal(rng, (fan_in, self.units), fan_in)
        else:
            w = glorot_uniform(rng, (fan_in, self.units), fan_in, self.units)
        self.params = [w, zeros((self.units,))]
        self.grads = [np.zeros_like(p) for p in self.params]
        return super().build(input_shape, rng)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        w, b = self.params
        return get_backend().matmul(x, w) + b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        w, _ = self.params
        backend = get_backend()
        self.grads[0][...] = backend.matmul(self._x.T, grad)
        self.grads[1][...] = grad.sum(axis=0)
        return backend.matmul(grad, w.T)


class ReLU(Layer):
    """Rectified linear activation."""

    def output_shape(self, input_shape):
        return input_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0.0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def output_shape(self, input_shape):
        return input_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * (1.0 - self._y * self._y)


class Sigmoid(Layer):
    """Logistic activation."""

    def output_shape(self, input_shape):
        return input_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._y = 1.0 / (1.0 + np.exp(-x))
        return self._y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._y * (1.0 - self._y)


class Flatten(Layer):
    """Collapse all non-batch dimensions."""

    def output_shape(self, input_shape):
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time.

    Both paper CNNs interleave Dropout layers (footnotes 1-2); the layer
    draws its mask from a generator handed over at build time so runs are
    reproducible.
    """

    def __init__(self, rate: float):
        super().__init__()
        if not (0.0 <= rate < 1.0):
            raise ValueError("rate must lie in [0, 1)")
        self.rate = float(rate)
        self._rng: np.random.Generator | None = None

    def output_shape(self, input_shape):
        return input_shape

    def build(self, input_shape, rng):
        self._rng = rng
        return super().build(input_shape, rng)

    def reseed(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        if self._rng is None:
            raise RuntimeError("Dropout used before build()")
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class Conv2D(Layer):
    """2-D convolution over NHWC inputs via im2col + GEMM."""

    def __init__(self, filters: int, kernel_size: int = 3, stride: int = 1, padding: str = "valid"):
        super().__init__()
        if filters < 1 or kernel_size < 1 or stride < 1:
            raise ValueError("filters, kernel_size and stride must be >= 1")
        if padding not in ("valid", "same"):
            raise ValueError("padding must be 'valid' or 'same'")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = padding

    def _pad(self) -> int:
        if self.padding == "valid":
            return 0
        # 'same' for stride 1 / odd kernels; adequate for the paper's nets.
        return (self.kernel_size - 1) // 2

    def output_shape(self, input_shape):
        h, w, _ = input_shape
        k, s, p = self.kernel_size, self.stride, self._pad()
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        if oh < 1 or ow < 1:
            raise ValueError(f"kernel {k} too large for input {input_shape}")
        return (oh, ow, self.filters)

    def build(self, input_shape, rng):
        h, w, c = input_shape
        k = self.kernel_size
        fan_in = k * k * c
        kernel = he_normal(rng, (fan_in, self.filters), fan_in)
        self.params = [kernel, zeros((self.filters,))]
        self.grads = [np.zeros_like(p) for p in self.params]
        self._in_channels = c
        return super().build(input_shape, rng)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self._pad()
        backend = get_backend()
        cols, (oh, ow) = backend.im2col(x, k, k, s, p)
        self._cols = cols
        self._x_shape = x.shape
        self._out_hw = (oh, ow)
        kernel, bias = self.params
        out = backend.matmul(cols, kernel) + bias
        return out.reshape(x.shape[0], oh, ow, self.filters)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self._pad()
        oh, ow = self._out_hw
        g = grad.reshape(-1, self.filters)
        kernel, _ = self.params
        backend = get_backend()
        self.grads[0][...] = backend.matmul(self._cols.T, g)
        self.grads[1][...] = g.sum(axis=0)
        dcols = backend.matmul(g, kernel.T)
        return backend.col2im(dcols, self._x_shape, k, k, s, p, oh, ow)


class MaxPool2D(Layer):
    """Max pooling over NHWC inputs (non-overlapping windows by default)."""

    def __init__(self, pool_size: int = 2, stride: int | None = None):
        super().__init__()
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else int(pool_size)

    def output_shape(self, input_shape):
        h, w, c = input_shape
        oh = (h - self.pool_size) // self.stride + 1
        ow = (w - self.pool_size) // self.stride + 1
        if oh < 1 or ow < 1:
            raise ValueError(f"pool {self.pool_size} too large for input {input_shape}")
        return (oh, ow, c)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, h, w, c = x.shape
        k, s = self.pool_size, self.stride
        oh = (h - k) // s + 1
        ow = (w - k) // s + 1
        shape = (n, oh, ow, k, k, c)
        strides = (
            x.strides[0],
            x.strides[1] * s,
            x.strides[2] * s,
            x.strides[1],
            x.strides[2],
            x.strides[3],
        )
        windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
        flat = windows.reshape(n, oh, ow, k * k, c)
        self._argmax = flat.argmax(axis=3)
        self._x_shape = x.shape
        self._out_hw = (oh, ow)
        return flat.max(axis=3)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, h, w, c = self._x_shape
        k, s = self.pool_size, self.stride
        oh, ow = self._out_hw
        dx = np.zeros(self._x_shape, dtype=grad.dtype)
        # Scatter each output gradient back to the argmax position.
        rows_in_window, cols_in_window = np.divmod(self._argmax, k)
        n_idx, oh_idx, ow_idx, c_idx = np.indices((n, oh, ow, c))
        h_idx = oh_idx * s + rows_in_window
        w_idx = ow_idx * s + cols_in_window
        np.add.at(dx, (n_idx, h_idx, w_idx, c_idx), grad)
        return dx
