"""From-scratch numpy neural-network substrate used by the FL engine.

Replaces the paper's TensorFlow dependency.  Layers are gradient-checked
against finite differences; the :class:`Sequential` container exposes the
``get_weights``/``set_weights`` interface FedAvg averages over.
"""

from .backends import (
    NN_BACKENDS,
    ArrayBackend,
    BackendUnavailableError,
    available_backend_names,
    backend_available,
    get_backend,
    set_backend,
    use_backend,
)
from .initializers import glorot_uniform, he_normal, orthogonal, zeros
from .layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)
from .losses import Loss, MeanSquaredError, SoftmaxCrossEntropy
from .model import Sequential
from .optimizers import SGD, Adam, Optimizer
from .recurrent import LSTM, Embedding

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "Conv2D",
    "MaxPool2D",
    "Embedding",
    "LSTM",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "Optimizer",
    "SGD",
    "Adam",
    "Sequential",
    "glorot_uniform",
    "he_normal",
    "orthogonal",
    "zeros",
    "NN_BACKENDS",
    "ArrayBackend",
    "BackendUnavailableError",
    "available_backend_names",
    "backend_available",
    "get_backend",
    "set_backend",
    "use_backend",
]
