"""Pluggable array backends for the NN substrate's hot kernels.

The whole numpy substrate funnels its heavy lifting through three kernel
families — the im2col/col2im convolution lowering, the dense GEMMs, and
the per-timestep LSTM recurrence — so swapping *those* swaps the entire
compute engine without touching a single layer's calculus.  This module
gives each family a seat on an :class:`ArrayBackend` and registers the
implementations in the string-keyed :data:`NN_BACKENDS` table:

* ``numpy`` — the bitwise reference.  Its kernels are the exact
  operations the layers historically inlined, so routing through it is a
  no-op for results: every golden history, manifest hash and checkpoint
  in the test suite stays byte-identical.
* ``numba`` — optional JIT acceleration of the scatter/gather loops the
  BLAS cannot see (col2im, the LSTM gate fusion).  It is registered
  unconditionally so the reference docs list it, but constructing it
  without the dependency raises :class:`BackendUnavailableError`; tests
  parameterised over the registry skip it via :func:`backend_available`.
  Numba output is validated against the numpy reference to 1e-10 in
  ``tests/test_nn_backends.py`` — tight, but not bitwise (fused
  floating-point contraction reorders rounding).

The active backend is a process-wide setting (:func:`set_backend`,
``python -m repro ... --nn-backend numba``) read by the layers at call
time via :func:`get_backend`; :func:`use_backend` scopes a switch to a
``with`` block, which is how the cross-backend agreement tests run both
sides in one process.  Layers never cache the backend, so a switch
applies to the next forward/backward immediately.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from ...core.registry import NN_BACKENDS

__all__ = [
    "NN_BACKENDS",
    "ArrayBackend",
    "BackendUnavailableError",
    "NumpyBackend",
    "NumbaBackend",
    "available_backend_names",
    "backend_available",
    "get_backend",
    "set_backend",
    "use_backend",
    "numpy_im2col",
    "numpy_col2im",
]


class BackendUnavailableError(RuntimeError):
    """Constructing a backend whose optional dependency is not installed."""


# ----------------------------------------------------------------------
# Reference kernels (module-level so the numpy backend and any validator
# share one implementation; layers.py re-exports them as _im2col/_col2im)
# ----------------------------------------------------------------------
def numpy_im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int):
    """Lower (N, H, W, C) into (N*OH*OW, KH*KW*C) patches."""
    n, h, w, c = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (pad, pad), (pad, pad), (0, 0)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    shape = (n, oh, ow, kh, kw, c)
    strides = (
        x.strides[0],
        x.strides[1] * stride,
        x.strides[2] * stride,
        x.strides[1],
        x.strides[2],
        x.strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    return patches.reshape(n * oh * ow, kh * kw * c), (oh, ow)


def numpy_col2im(
    cols: np.ndarray, x_shape, kh: int, kw: int, stride: int, pad: int, oh: int, ow: int
):
    """Scatter-add patch gradients back into the (padded) input."""
    n, h, w, c = x_shape
    padded = np.zeros((n, h + 2 * pad, w + 2 * pad, c), dtype=cols.dtype)
    cols = cols.reshape(n, oh, ow, kh, kw, c)
    for i in range(kh):
        for j in range(kw):
            padded[:, i : i + stride * oh : stride, j : j + stride * ow : stride, :] += cols[
                :, :, :, i, j, :
            ]
    if pad:
        return padded[:, pad:-pad, pad:-pad, :]
    return padded


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class ArrayBackend(ABC):
    """The kernel surface a :class:`~repro.fl.nn.layers.Layer` computes on.

    Implementations must be semantically interchangeable: same shapes,
    same dtypes, results within tight floating-point tolerance of the
    ``numpy`` reference (which itself is the bitwise-exact historical
    behaviour).  The contract is intentionally small — three kernel
    families cover every super-linear operation in the substrate.
    """

    #: Registry name; set by the concrete class.
    name: str = "?"

    @staticmethod
    def available() -> bool:
        """Whether this backend's dependencies are importable here."""
        return True

    @abstractmethod
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense GEMM ``a @ b`` (the Dense/Conv2D/LSTM contraction)."""

    @abstractmethod
    def im2col(self, x: np.ndarray, kh: int, kw: int, stride: int, pad: int):
        """Patch-lower an NHWC batch; returns ``(cols, (oh, ow))``."""

    @abstractmethod
    def col2im(
        self,
        cols: np.ndarray,
        x_shape,
        kh: int,
        kw: int,
        stride: int,
        pad: int,
        oh: int,
        ow: int,
    ) -> np.ndarray:
        """Scatter-add the patch gradients back to input shape."""

    @abstractmethod
    def lstm_step(
        self,
        x_t: np.ndarray,
        h_prev: np.ndarray,
        c_prev: np.ndarray,
        wx: np.ndarray,
        wh: np.ndarray,
        b: np.ndarray,
    ):
        """One LSTM recurrence step with the ``[i, f, g, o]`` gate layout.

        Returns ``(h_next, c_next, i, f, g, o, tanh_c)`` — the new states
        plus everything BPTT caches.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


@NN_BACKENDS.register("numpy")
class NumpyBackend(ArrayBackend):
    """The bitwise-reference backend: the substrate's historical kernels.

    Always available; every other backend is validated against it.
    """

    name = "numpy"

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    def im2col(self, x, kh, kw, stride, pad):
        return numpy_im2col(x, kh, kw, stride, pad)

    def col2im(self, cols, x_shape, kh, kw, stride, pad, oh, ow):
        return numpy_col2im(cols, x_shape, kh, kw, stride, pad, oh, ow)

    def lstm_step(self, x_t, h_prev, c_prev, wx, wh, b):
        h = h_prev.shape[1]
        z = x_t @ wx + h_prev @ wh + b
        i = _sigmoid(z[:, 0 * h : 1 * h])
        f = _sigmoid(z[:, 1 * h : 2 * h])
        g = np.tanh(z[:, 2 * h : 3 * h])
        o = _sigmoid(z[:, 3 * h : 4 * h])
        c_next = f * c_prev + i * g
        tanh_c = np.tanh(c_next)
        h_next = o * tanh_c
        return h_next, c_next, i, f, g, o, tanh_c


def _numba_installed() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


@NN_BACKENDS.register("numba")
class NumbaBackend(ArrayBackend):
    """JIT-compiled scatter/gate kernels (optional ``numba`` dependency).

    The GEMMs stay on BLAS (``np.matmul`` — numba cannot beat it); what
    gets compiled are the loops BLAS never sees: the col2im scatter-add
    and the fused LSTM gate math.  Construction raises
    :class:`BackendUnavailableError` when numba is not importable, so
    registry-driven test batteries probe :func:`backend_available` first.
    Agreement with the numpy reference is validated to 1e-10 (not
    bitwise: the fused loops reorder floating-point accumulation).
    """

    name = "numba"

    def __init__(self) -> None:
        if not self.available():
            raise BackendUnavailableError(
                "the 'numba' nn backend needs the optional numba package; "
                "install it or stay on the default 'numpy' backend"
            )
        self._col2im_jit, self._lstm_gates_jit = _compile_numba_kernels()

    @staticmethod
    def available() -> bool:
        return _numba_installed()

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    def im2col(self, x, kh, kw, stride, pad):
        # Stride-tricks lowering is already a zero-copy view + one copy on
        # reshape; numba has nothing to add here.
        return numpy_im2col(x, kh, kw, stride, pad)

    def col2im(self, cols, x_shape, kh, kw, stride, pad, oh, ow):
        n, h, w, c = x_shape
        padded = self._col2im_jit(
            np.ascontiguousarray(cols, dtype=np.float64),
            n, h, w, c, kh, kw, stride, pad, oh, ow,
        )
        if pad:
            return padded[:, pad:-pad, pad:-pad, :]
        return padded

    def lstm_step(self, x_t, h_prev, c_prev, wx, wh, b):
        z = x_t @ wx + h_prev @ wh + b
        i, f, g, o, c_next, tanh_c, h_next = self._lstm_gates_jit(
            np.ascontiguousarray(z), np.ascontiguousarray(c_prev)
        )
        return h_next, c_next, i, f, g, o, tanh_c


def _compile_numba_kernels():
    """Build the jitted kernels (deferred so import stays numba-free)."""
    import numba

    @numba.njit(cache=True)
    def col2im_jit(cols, n, h, w, c, kh, kw, stride, pad, oh, ow):
        padded = np.zeros((n, h + 2 * pad, w + 2 * pad, c), dtype=np.float64)
        patches = cols.reshape(n, oh, ow, kh, kw, c)
        for b_ in range(n):
            for oy in range(oh):
                for ox in range(ow):
                    for ky in range(kh):
                        for kx in range(kw):
                            for ch in range(c):
                                padded[b_, oy * stride + ky, ox * stride + kx, ch] += (
                                    patches[b_, oy, ox, ky, kx, ch]
                                )
        return padded

    @numba.njit(cache=True)
    def lstm_gates_jit(z, c_prev):
        n, four_h = z.shape
        h = four_h // 4
        i = np.empty((n, h))
        f = np.empty((n, h))
        g = np.empty((n, h))
        o = np.empty((n, h))
        c_next = np.empty((n, h))
        tanh_c = np.empty((n, h))
        h_next = np.empty((n, h))
        for r in range(n):
            for k in range(h):
                zi = min(max(z[r, k], -60.0), 60.0)
                zf = min(max(z[r, h + k], -60.0), 60.0)
                zo = min(max(z[r, 3 * h + k], -60.0), 60.0)
                iv = 1.0 / (1.0 + np.exp(-zi))
                fv = 1.0 / (1.0 + np.exp(-zf))
                gv = np.tanh(z[r, 2 * h + k])
                ov = 1.0 / (1.0 + np.exp(-zo))
                cv = fv * c_prev[r, k] + iv * gv
                tc = np.tanh(cv)
                i[r, k] = iv
                f[r, k] = fv
                g[r, k] = gv
                o[r, k] = ov
                c_next[r, k] = cv
                tanh_c[r, k] = tc
                h_next[r, k] = ov * tc
        return i, f, g, o, c_next, tanh_c, h_next

    return col2im_jit, lstm_gates_jit


# ----------------------------------------------------------------------
# Active-backend selection (process-wide; layers read it at call time)
# ----------------------------------------------------------------------
_ACTIVE: ArrayBackend = NumpyBackend()


def get_backend() -> ArrayBackend:
    """The backend the layers compute on right now."""
    return _ACTIVE


def set_backend(backend: str | ArrayBackend) -> ArrayBackend:
    """Install a backend process-wide (by registry name or instance).

    Returns the installed instance.  The setting is global by design —
    the within-round training pool shares one backend across worker
    threads, and forked ``process`` local-training workers inherit it.
    """
    global _ACTIVE
    if isinstance(backend, str):
        backend = NN_BACKENDS.create(backend)
    if not isinstance(backend, ArrayBackend):
        raise TypeError(
            f"nn backend must be an ArrayBackend or a registered name, "
            f"got {type(backend).__name__}"
        )
    _ACTIVE = backend
    return backend


@contextmanager
def use_backend(backend: str | ArrayBackend) -> Iterator[ArrayBackend]:
    """Scope a :func:`set_backend` to a ``with`` block, then restore."""
    previous = _ACTIVE
    installed = set_backend(backend)
    try:
        yield installed
    finally:
        set_backend(previous)


def backend_available(name: str) -> bool:
    """Whether the registered backend ``name`` can be constructed here."""
    factory = NN_BACKENDS.get(name)
    probe = getattr(factory, "available", None)
    return bool(probe()) if callable(probe) else True


def available_backend_names() -> tuple[str, ...]:
    """Registered backends whose dependencies are importable, sorted."""
    return tuple(n for n in NN_BACKENDS.names() if backend_available(n))
