"""Sequential model container with the FedAvg-facing weight interface.

:class:`Sequential` chains layers, owns the loss and optimiser, and exposes
``get_weights`` / ``set_weights`` as flat lists of arrays — exactly the
granularity at which the FedAvg server averages client updates (paper
Eq. 3).  ``clone_architecture`` stamps out per-client replicas that share
the architecture but never the parameter storage.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .layers import Layer
from .losses import Loss, SoftmaxCrossEntropy
from .optimizers import SGD, Optimizer

__all__ = ["Sequential"]


class Sequential:
    """A feed-forward stack of :class:`Layer` objects.

    Parameters
    ----------
    layer_factory:
        Zero-argument callable producing a fresh list of layers.  Taking a
        factory (rather than layer instances) makes cloning for federated
        clients trivial and guarantees no accidental parameter sharing.
    input_shape:
        Shape of one sample (no batch dimension) — e.g. ``(28, 28, 1)`` for
        images or ``(12,)`` for token sequences.
    loss, optimizer:
        Training objective and update rule (defaults: softmax cross-entropy
        and plain SGD, matching the paper's setup).
    rng:
        Generator used for weight init and dropout masks.
    """

    def __init__(
        self,
        layer_factory: Callable[[], list[Layer]],
        input_shape: tuple[int, ...],
        loss: Loss | None = None,
        optimizer: Optimizer | None = None,
        rng: np.random.Generator | None = None,
    ):
        self._layer_factory = layer_factory
        self.input_shape = tuple(input_shape)
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        self.optimizer = optimizer if optimizer is not None else SGD()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.layers: list[Layer] = layer_factory()
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.build(shape, self.rng)
        self.output_shape = shape

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict_logits(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        chunks = [
            self.forward(x[i : i + batch_size], training=False)
            for i in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(chunks, axis=0)

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions (argmax of logits)."""
        return self.predict_logits(x, batch_size).argmax(axis=1)

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> tuple[float, float]:
        """Return ``(loss, accuracy)`` over a dataset."""
        logits = self.predict_logits(x, batch_size)
        loss = self.loss.value(logits, y)
        accuracy = float(np.mean(logits.argmax(axis=1) == y))
        return loss, accuracy

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One SGD step on a mini-batch; returns the batch loss."""
        logits = self.forward(x, training=True)
        loss_value = self.loss.value(logits, y)
        grad = self.loss.gradient(logits, y)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        params: list[np.ndarray] = []
        grads: list[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.params)
            grads.extend(layer.grads)
        self.optimizer.step(params, grads)
        return float(loss_value)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        batch_size: int = 32,
        shuffle_rng: np.random.Generator | None = None,
    ) -> float:
        """Local training loop (paper Eq. 2); returns the mean epoch loss."""
        rng = shuffle_rng if shuffle_rng is not None else self.rng
        n = x.shape[0]
        losses: list[float] = []
        for _ in range(max(epochs, 1)):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                losses.append(self.train_batch(x[idx], y[idx]))
        return float(np.mean(losses)) if losses else 0.0

    # ------------------------------------------------------------------
    # FedAvg weight interface
    # ------------------------------------------------------------------
    def get_weights(self) -> list[np.ndarray]:
        """Deep copies of all parameters, layer by layer."""
        return [p.copy() for layer in self.layers for p in layer.params]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        """Load parameters produced by :meth:`get_weights`."""
        flat = [p for layer in self.layers for p in layer.params]
        if len(flat) != len(weights):
            raise ValueError(
                f"expected {len(flat)} parameter arrays, got {len(weights)}"
            )
        for dst, src in zip(flat, weights):
            if dst.shape != src.shape:
                raise ValueError(f"shape mismatch: {dst.shape} vs {src.shape}")
            dst[...] = src

    def clone_architecture(self, rng: np.random.Generator, optimizer: Optimizer | None = None):
        """A fresh model with identical architecture and new parameters."""
        return Sequential(
            self._layer_factory,
            self.input_shape,
            loss=type(self.loss)(),
            optimizer=optimizer if optimizer is not None else _clone_optimizer(self.optimizer),
            rng=rng,
        )

    def reseed(self, rng: np.random.Generator) -> None:
        """Rebind all stochastic state (dropout masks, default shuffle) to ``rng``.

        The within-round training pool calls this on a scratch replica
        before every local run, so each winner's stochastic draws come
        from its own derived stream (see
        :meth:`repro.fl.client.FLClient.train_with_stream`) no matter
        which replica — or which pool thread — serves it.
        """
        self.rng = rng
        for layer in self.layers:
            layer.reseed(rng)

    @property
    def n_parameters(self) -> int:
        return int(sum(layer.n_parameters for layer in self.layers))

    @property
    def parameter_bytes(self) -> int:
        """Wire size of one model copy (float64), for the timing model."""
        return int(sum(p.nbytes for layer in self.layers for p in layer.params))


def _clone_optimizer(opt: Optimizer) -> Optimizer:
    """Fresh optimiser of the same configuration, with clean state."""
    if isinstance(opt, SGD):
        return SGD(lr=opt.lr, momentum=opt.momentum)
    from .optimizers import Adam

    if isinstance(opt, Adam):
        return Adam(lr=opt.lr, beta1=opt.beta1, beta2=opt.beta2, eps=opt.eps)
    raise TypeError(f"cannot clone optimiser of type {type(opt).__name__}")
