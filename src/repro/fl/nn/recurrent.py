"""Recurrent layers: Embedding and LSTM, for the HPNews text workload.

The paper's fourth task classifies HuffPost news headlines with an LSTM.
Our substrate mirrors the usual Keras composition
``Embedding -> LSTM(last hidden state) -> Dense -> softmax``.

The LSTM implements full backpropagation through time with the standard
gate layout ``[i, f, g, o]`` and a unit forget-gate bias initialisation —
the numerically-checked canonical formulation.
"""

from __future__ import annotations

import numpy as np

from .backends import get_backend
from .initializers import glorot_uniform, orthogonal, zeros
from .layers import Layer

__all__ = ["Embedding", "LSTM"]


class Embedding(Layer):
    """Token-id lookup table mapping (N, T) ints to (N, T, D) vectors."""

    def __init__(self, vocab_size: int, dim: int):
        super().__init__()
        if vocab_size < 1 or dim < 1:
            raise ValueError("vocab_size and dim must be >= 1")
        self.vocab_size = int(vocab_size)
        self.dim = int(dim)

    def output_shape(self, input_shape):
        (t,) = input_shape
        return (t, self.dim)

    def build(self, input_shape, rng):
        scale = 1.0 / np.sqrt(self.dim)
        table = rng.uniform(-scale, scale, size=(self.vocab_size, self.dim))
        self.params = [table.astype(np.float64)]
        self.grads = [np.zeros_like(self.params[0])]
        return super().build(input_shape, rng)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        ids = np.asarray(x)
        if ids.dtype.kind not in "iu":
            raise TypeError("Embedding expects integer token ids")
        if ids.min() < 0 or ids.max() >= self.vocab_size:
            raise ValueError("token id outside the vocabulary")
        self._ids = ids
        return self.params[0][ids]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.grads[0][...] = 0.0
        np.add.at(self.grads[0], self._ids.reshape(-1), grad.reshape(-1, self.dim))
        # Token ids are not differentiable; return a zero placeholder of the
        # input's shape so Sequential's chaining stays uniform.
        return np.zeros(self._ids.shape, dtype=np.float64)


class LSTM(Layer):
    """Single-layer LSTM returning the last hidden state (N, T, D) -> (N, H)."""

    def __init__(self, units: int):
        super().__init__()
        if units < 1:
            raise ValueError("units must be >= 1")
        self.units = int(units)

    def output_shape(self, input_shape):
        t, d = input_shape
        return (self.units,)

    def build(self, input_shape, rng):
        _, d = input_shape
        h = self.units
        wx = glorot_uniform(rng, (d, 4 * h), d, 4 * h)
        wh = np.concatenate([orthogonal(rng, (h, h)) for _ in range(4)], axis=1)
        b = zeros((4 * h,))
        b[h : 2 * h] = 1.0  # forget-gate bias trick
        self.params = [wx, wh, b]
        self.grads = [np.zeros_like(p) for p in self.params]
        return super().build(input_shape, rng)

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, t, d = x.shape
        h = self.units
        wx, wh, b = self.params
        hs = np.zeros((t + 1, n, h))
        cs = np.zeros((t + 1, n, h))
        cache = []
        backend = get_backend()
        for step in range(t):
            h_next, c_next, i, f, g, o, tanh_c = backend.lstm_step(
                x[:, step, :], hs[step], cs[step], wx, wh, b
            )
            cs[step + 1] = c_next
            hs[step + 1] = h_next
            cache.append((i, f, g, o, tanh_c))
        self._x = x
        self._hs = hs
        self._cs = cs
        self._cache = cache
        return hs[t]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x, hs, cs, cache = self._x, self._hs, self._cs, self._cache
        n, t, d = x.shape
        h = self.units
        wx, wh, _ = self.params
        for g_arr in self.grads:
            g_arr[...] = 0.0
        dwx, dwh, db = self.grads
        dx = np.zeros_like(x)
        dh_next = grad.copy()
        dc_next = np.zeros((n, h))
        backend = get_backend()
        for step in range(t - 1, -1, -1):
            i, f, g, o, tanh_c = cache[step]
            dc = dc_next + dh_next * o * (1.0 - tanh_c * tanh_c)
            do = dh_next * tanh_c
            di = dc * g
            dg = dc * i
            df = dc * cs[step]
            dz = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g * g),
                    do * o * (1.0 - o),
                ],
                axis=1,
            )
            dwx += backend.matmul(x[:, step, :].T, dz)
            dwh += backend.matmul(hs[step].T, dz)
            db += dz.sum(axis=0)
            dx[:, step, :] = backend.matmul(dz, wx.T)
            dh_next = backend.matmul(dz, wh.T)
            dc_next = dc * f
        return dx
