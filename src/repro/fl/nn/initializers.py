"""Weight initialisers for the numpy neural-network substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "orthogonal", "zeros"]


def glorot_uniform(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform — the right default for tanh/sigmoid layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_normal(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    """He normal — the right default for ReLU layers."""
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float64)


def orthogonal(rng: np.random.Generator, shape: tuple[int, int]) -> np.ndarray:
    """Orthogonal init — standard for recurrent kernels (stable BPTT)."""
    a = rng.standard_normal(shape)
    q, r = np.linalg.qr(a if shape[0] >= shape[1] else a.T)
    q = q * np.sign(np.diag(r))
    if shape[0] < shape[1]:
        q = q.T
    return q[: shape[0], : shape[1]].astype(np.float64)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)
