"""Performance metrics: the paper's two headline quantities and friends.

Section II-B: "model accuracy and training rounds are two critical
performance metrics".  The evaluation reports, per scheme:

* accuracy / loss per round (Figs 4-7, 12),
* rounds needed to reach a target accuracy (Figs 9a, 10a, 11a),
* relative round reduction and accuracy improvement (the 51.3% / 28% /
  44.9% headline numbers),
* wall-clock time per round and time-to-accuracy (Fig 13).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "rounds_to_accuracy",
    "time_to_accuracy",
    "round_reduction",
    "accuracy_improvement",
    "speedup_percent",
]


def rounds_to_accuracy(accuracies: Sequence[float], target: float) -> int | None:
    """First 1-based round whose accuracy reaches ``target`` (None if never)."""
    for i, acc in enumerate(accuracies):
        if acc >= target:
            return i + 1
    return None


def time_to_accuracy(
    accuracies: Sequence[float], cumulative_times: Sequence[float], target: float
) -> float | None:
    """Simulated seconds until the model first reaches ``target`` accuracy."""
    if len(accuracies) != len(cumulative_times):
        raise ValueError("accuracies and times must align")
    for acc, t in zip(accuracies, cumulative_times):
        if acc >= target:
            return float(t)
    return None


def round_reduction(baseline_rounds: int | None, scheme_rounds: int | None) -> float | None:
    """Percent fewer rounds than the baseline (positive = faster).

    The paper's "FMore reduces training rounds by 51.3%" is
    ``round_reduction(rounds(RandFL), rounds(FMore))`` averaged over tasks.
    """
    if baseline_rounds is None or scheme_rounds is None or baseline_rounds <= 0:
        return None
    return 100.0 * (baseline_rounds - scheme_rounds) / baseline_rounds


def accuracy_improvement(baseline_accuracy: float, scheme_accuracy: float) -> float:
    """Relative accuracy improvement in percent (paper's "+28%" style)."""
    if baseline_accuracy <= 0:
        return math.inf if scheme_accuracy > 0 else 0.0
    return 100.0 * (scheme_accuracy - baseline_accuracy) / baseline_accuracy


def speedup_percent(baseline_time: float | None, scheme_time: float | None) -> float | None:
    """Percent wall-clock reduction vs the baseline (positive = faster)."""
    if baseline_time is None or scheme_time is None or baseline_time <= 0:
        return None
    return 100.0 * (baseline_time - scheme_time) / baseline_time
