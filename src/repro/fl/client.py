"""Federated-learning clients: local training on (declared) local data.

A winner of the auction trains the global model on its local data with the
*declared* resources (Algorithm 1, lines 12-16).  If the equilibrium bid
declared fewer samples than the node holds (the node trades quality for
cost), training runs on a class-stratified subset of the declared size —
the incentive-compatibility property guarantees over-declaring never helps,
and the blacklist assumption covers under-delivery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .nn import Sequential
from .partition import ClientData

__all__ = ["LocalUpdate", "FLClient"]


@dataclass
class LocalUpdate:
    """What a client ships back to the aggregator after local training."""

    client_id: int
    weights: list[np.ndarray]
    n_samples: int
    train_loss: float


class FLClient:
    """One edge participant's learning half (the bidding half lives in
    :class:`repro.mec.node.EdgeNode`)."""

    def __init__(
        self,
        data: ClientData,
        local_epochs: int = 1,
        batch_size: int = 32,
        max_batches_per_round: int | None = None,
    ):
        """``max_batches_per_round`` caps local SGD steps per round.

        Data-rich winners would otherwise take many more local steps than
        small clients, drifting far from the global model under non-IID
        data before FedAvg can average them (the classic client-drift
        pathology).  With a cap, a big node's advantage comes from *sample
        diversity* — each round it exposes a fresh subset of its larger
        pool — which is the effect the paper's selection exploits.
        """
        if local_epochs < 1:
            raise ValueError("local_epochs must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if max_batches_per_round is not None and max_batches_per_round < 1:
            raise ValueError("max_batches_per_round must be >= 1 or None")
        self.data = data
        self.local_epochs = int(local_epochs)
        self.batch_size = int(batch_size)
        self.max_batches_per_round = (
            int(max_batches_per_round) if max_batches_per_round is not None else None
        )

    @property
    def client_id(self) -> int:
        return self.data.client_id

    def train(
        self,
        scratch_model: Sequential,
        global_weights: list[np.ndarray],
        rng: np.random.Generator,
        declared_samples: int | None = None,
    ) -> LocalUpdate:
        """Run Eq. 2 locally and return the updated weights.

        ``scratch_model`` is a shared architecture replica owned by the
        trainer; its parameters are overwritten with the global weights
        before training, so no state leaks between clients.
        """
        if self.data.size == 0:
            return LocalUpdate(self.client_id, [w.copy() for w in global_weights], 0, 0.0)
        scratch_model.set_weights(global_weights)
        scratch_model.optimizer.reset()
        if declared_samples is None or declared_samples >= self.data.size:
            x, y = self.data.x, self.data.y
        else:
            x, y = self.data.subset(declared_samples, rng)
        declared_count = int(y.shape[0])
        if self.max_batches_per_round is not None:
            cap = self.max_batches_per_round * self.batch_size
            if x.shape[0] > cap:
                take = rng.choice(x.shape[0], size=cap, replace=False)
                x, y = x[take], y[take]
        loss = scratch_model.fit(
            x,
            y,
            epochs=self.local_epochs,
            batch_size=self.batch_size,
            shuffle_rng=rng,
        )
        # FedAvg weighting (Eq. 3) uses the *declared* data size D_i even
        # when step-capping subsampled the round's mini-batches.
        return LocalUpdate(self.client_id, scratch_model.get_weights(), declared_count, loss)

    def train_with_stream(
        self,
        scratch_model: Sequential,
        global_weights: list[np.ndarray],
        stream_rng: np.random.Generator,
        declared_samples: int | None = None,
    ) -> LocalUpdate:
        """:meth:`train`, with *all* stochastic draws bound to ``stream_rng``.

        The within-round training pool hands every winner its own derived
        generator (see :class:`repro.fl.trainer.FederatedTrainer`); binding
        subset selection, step-cap sampling, shuffling *and* the replica's
        dropout masks to that stream makes the local run independent of
        which replica serves it or in which order winners complete — the
        property that lets thread/process pools match the serial schedule
        byte for byte.
        """
        scratch_model.reseed(stream_rng)
        return self.train(scratch_model, global_weights, stream_rng, declared_samples)
