"""The federated training loop tying selection, clients and FedAvg together.

One :class:`FederatedTrainer` run is one curve of the paper's figures: a
scheme (RandFL / FixFL / FMore / psi-FMore) driving T rounds of
select -> local train -> aggregate -> evaluate, with optional wall-clock
accounting supplied by a :class:`RoundTimer` (the MEC cluster's timing
model, for the "real-world" Figs 12-13).

The paper's Algorithm 1 trains the K winners *in parallel* on their edge
nodes; ``local_executor`` reproduces that within-round fan-out.  When an
in-process :class:`~repro.api.executor.Executor` (``serial`` / ``thread``
/ ``process``) is supplied, each winner trains on its own scratch replica
with a generator derived from a single per-round entropy draw, so results
are byte-identical across pool types and completion orders; without one,
the trainer keeps its historical strictly-sequential shared-RNG schedule.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Protocol, Sequence

import numpy as np

from .client import FLClient, LocalUpdate
from .metrics import rounds_to_accuracy
from .nn import Sequential
from .selection import SelectionResult, SelectionStrategy
from .server import FedAvgServer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api imports fl)
    from ..api.executor import Executor

__all__ = ["RoundTimer", "RoundRecord", "TrainingHistory", "FederatedTrainer"]


class RoundTimer(Protocol):
    """Computes the simulated wall-clock duration of one round."""

    def round_time(
        self,
        winner_ids: Sequence[int],
        declared_samples: dict[int, int],
        model_bytes: int,
        local_epochs: int,
    ) -> float:
        ...


@dataclass
class RoundRecord:
    """Everything measured in one training round."""

    round_index: int
    accuracy: float
    loss: float
    winner_ids: list[int]
    total_payment: float
    scores: dict[int, float] = field(default_factory=dict)
    winner_ranks: dict[int, int] = field(default_factory=dict)
    all_scores: list[float] = field(default_factory=list)
    mean_train_loss: float = 0.0
    round_seconds: float = 0.0
    # Per-winner charged payments (auction schemes only).
    payments: dict[int, float] = field(default_factory=dict)
    # Round-policy decisions (see repro.core.policies.PolicyAction).
    policy_actions: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """A plain JSON-able dict; exact inverse of :meth:`from_dict`.

        Mapping keys become strings (JSON has no int keys) and numpy
        scalars collapse to Python numbers, so a dumped record reloads
        equal to the original — the round-trip the experiment store's
        manifests rely on.
        """
        return {
            "round_index": int(self.round_index),
            "accuracy": float(self.accuracy),
            "loss": float(self.loss),
            "winner_ids": [int(w) for w in self.winner_ids],
            "total_payment": float(self.total_payment),
            "scores": {str(int(k)): float(v) for k, v in self.scores.items()},
            "winner_ranks": {
                str(int(k)): int(v) for k, v in self.winner_ranks.items()
            },
            "all_scores": [float(s) for s in self.all_scores],
            "mean_train_loss": float(self.mean_train_loss),
            "round_seconds": float(self.round_seconds),
            "payments": {str(int(k)): float(v) for k, v in self.payments.items()},
            "policy_actions": [a.to_dict() for a in self.policy_actions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RoundRecord":
        from ..core.policies import PolicyAction

        return cls(
            round_index=int(data["round_index"]),
            accuracy=float(data["accuracy"]),
            loss=float(data["loss"]),
            winner_ids=[int(w) for w in data["winner_ids"]],
            total_payment=float(data["total_payment"]),
            scores={int(k): float(v) for k, v in data["scores"].items()},
            winner_ranks={int(k): int(v) for k, v in data["winner_ranks"].items()},
            all_scores=[float(s) for s in data["all_scores"]],
            mean_train_loss=float(data["mean_train_loss"]),
            round_seconds=float(data["round_seconds"]),
            payments={int(k): float(v) for k, v in data["payments"].items()},
            policy_actions=[
                PolicyAction.from_dict(a) for a in data["policy_actions"]
            ],
        )


@dataclass
class TrainingHistory:
    """Per-round series for one scheme — the unit the figures plot."""

    scheme: str
    records: list[RoundRecord] = field(default_factory=list)

    @property
    def accuracies(self) -> list[float]:
        return [r.accuracy for r in self.records]

    @property
    def losses(self) -> list[float]:
        return [r.loss for r in self.records]

    @property
    def cumulative_seconds(self) -> list[float]:
        total = 0.0
        out: list[float] = []
        for r in self.records:
            total += r.round_seconds
            out.append(total)
        return out

    @property
    def total_payment(self) -> float:
        return float(sum(r.total_payment for r in self.records))

    @property
    def final_accuracy(self) -> float:
        return self.records[-1].accuracy if self.records else 0.0

    def rounds_to(self, target_accuracy: float) -> int | None:
        return rounds_to_accuracy(self.accuracies, target_accuracy)

    def winner_counts(self) -> dict[int, int]:
        """How often each node won — Fig 11b's selection-proportion data."""
        counts: dict[int, int] = {}
        for r in self.records:
            for w in r.winner_ids:
                counts[w] = counts.get(w, 0) + 1
        return counts

    def to_dict(self) -> dict:
        """JSON-able form (see :meth:`RoundRecord.to_dict`)."""
        return {
            "scheme": self.scheme,
            "records": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrainingHistory":
        return cls(
            scheme=str(data["scheme"]),
            records=[RoundRecord.from_dict(r) for r in data["records"]],
        )


class FederatedTrainer:
    """Run ``n_rounds`` of federated learning under one selection scheme.

    ``local_executor`` (optional) fans the winners' local trainings out
    over an in-process or process pool; see the module docstring.  It is
    duck-typed — anything with ``map`` (input-order-preserving) and
    ``in_process`` works — so :mod:`repro.fl` never imports the executor
    module at runtime.
    """

    def __init__(
        self,
        server: FedAvgServer,
        clients: Sequence[FLClient] | Mapping[int, FLClient],
        selection: SelectionStrategy,
        test_x: np.ndarray,
        test_y: np.ndarray,
        rng: np.random.Generator,
        timer: RoundTimer | None = None,
        local_executor: "Executor | None" = None,
    ):
        self.server = server
        if isinstance(clients, Mapping):
            # Pre-keyed pools (e.g. the hierarchical variant's bounded FL
            # pool, which resolves out-of-pool winner ids itself) are
            # adopted as-is.
            self.clients = clients
        else:
            self.clients = {c.client_id: c for c in clients}
            if len(self.clients) != len(clients):
                raise ValueError("duplicate client ids")
        self.selection = selection
        self.test_x = test_x
        self.test_y = test_y
        self.rng = rng
        self.timer = timer
        if local_executor is not None and getattr(local_executor, "needs_store", False):
            raise ValueError(
                "local_executor must be an in-round pool (serial/thread/process); "
                "store-coordinated executors cannot run within-round training"
            )
        self.local_executor = local_executor
        # One scratch replica shared across clients: weights are overwritten
        # before every local run, so no state can leak between clients.
        self._scratch = server.model.clone_architecture(rng)
        # Extra replicas for concurrent in-process local training, grown
        # lazily to the pool's width; slot 0 reuses the primary replica.
        self._scratch_pool: list[Sequential] = [self._scratch]

    def _client_for(self, wid: int) -> FLClient:
        """The client registered for a winner id, or a diagnosable error."""
        try:
            return self.clients[wid]
        except KeyError:
            raise ValueError(
                f"selection returned winner id {wid}, but no FL client is "
                f"registered under that id ({len(self.clients)} clients known)"
            ) from None

    def _scratch_for(self, slot: int) -> Sequential:
        """The scratch replica reserved for concurrent task slot ``slot``.

        Replicas beyond the first are built from a fixed throwaway seed:
        their parameters are overwritten with the global weights and their
        dropout generators rebound to the winner's derived stream before
        every use, so the build-time draws never reach any result.
        """
        while len(self._scratch_pool) <= slot:
            self._scratch_pool.append(
                self.server.model.clone_architecture(np.random.default_rng(0))
            )
        return self._scratch_pool[slot]

    def _run_local_pool(
        self,
        sel: SelectionResult,
        global_weights: list[np.ndarray],
    ) -> tuple[list[LocalUpdate], int]:
        """Fan the winners' local trainings out over ``local_executor``.

        One entropy draw per round from the round stream seeds every
        winner's derived generator (``rng_from(entropy,
        "local-train-{id}")``).  The draw advances ``self.rng`` exactly
        once regardless of K — checkpoint/resume sees the same stream
        position — and the derived streams make each winner's stochastic
        path independent of scheduling, so serial, thread and process
        pools agree byte for byte.  Updates come back in ``winner_ids``
        order (executors preserve input order), which fixes the FedAvg
        aggregation order.
        """
        # Imported lazily: repro.sim's package init reaches repro.api.engine,
        # which imports this module — a top-level import would be circular.
        from ..sim.rng import rng_from

        entropy = int(self.rng.integers(2**63))
        local_epochs = 1
        tasks: list[tuple[int, FLClient, int | None]] = []
        for wid in sel.winner_ids:
            client = self._client_for(wid)
            local_epochs = client.local_epochs
            tasks.append((wid, client, sel.declared_samples.get(wid)))
        if not tasks:
            return [], local_epochs
        executor = self.local_executor
        assert executor is not None
        if executor.in_process:

            def run_slot(slot_task: tuple[int, tuple[int, FLClient, int | None]]):
                slot, (wid, client, declared) = slot_task
                stream = rng_from(entropy, f"local-train-{wid}")
                return client.train_with_stream(
                    self._scratch_for(slot), global_weights, stream, declared
                )

            # Pre-grow the replica pool serially; concurrent tasks then only
            # ever touch their own slot.
            self._scratch_for(len(tasks) - 1)
            updates = executor.map(run_slot, list(enumerate(tasks)))
        else:
            fn = functools.partial(
                _train_winner_remote, self._scratch, global_weights, entropy
            )
            updates = executor.map(fn, tasks)
        return updates, local_epochs

    def run_round(self, round_index: int) -> RoundRecord:
        sel: SelectionResult = self.selection.select(round_index, self.rng)
        global_weights = self.server.broadcast()
        updates: list[LocalUpdate] = []
        local_epochs = 1
        if self.local_executor is not None:
            updates, local_epochs = self._run_local_pool(sel, global_weights)
        else:
            # Historical strictly-sequential schedule: every local run draws
            # from the shared round stream in winner order.  Kept verbatim so
            # legacy scenarios stay bitwise-identical.
            for wid in sel.winner_ids:
                client = self._client_for(wid)
                local_epochs = client.local_epochs
                declared = sel.declared_samples.get(wid)
                updates.append(
                    client.train(self._scratch, global_weights, self.rng, declared)
                )
        if updates:
            self.server.aggregate(updates)
        loss, accuracy = self.server.evaluate(self.test_x, self.test_y)
        seconds = 0.0
        if self.timer is not None:
            seconds = self.timer.round_time(
                sel.winner_ids,
                {u.client_id: u.n_samples for u in updates},
                self.server.model_bytes,
                local_epochs,
            )
        winner_ranks: dict[int, int] = {}
        all_scores: list[float] = []
        if sel.outcome is not None:
            positions = {
                sb.node_id: pos for pos, sb in enumerate(sel.outcome.scored_bids)
            }
            winner_ranks = {wid: positions[wid] for wid in sel.winner_ids if wid in positions}
            all_scores = [sb.score for sb in sel.outcome.scored_bids]
        return RoundRecord(
            round_index=round_index,
            accuracy=accuracy,
            loss=loss,
            winner_ids=list(sel.winner_ids),
            total_payment=sel.total_payment,
            scores=dict(sel.scores),
            winner_ranks=winner_ranks,
            all_scores=all_scores,
            mean_train_loss=float(np.mean([u.train_loss for u in updates])) if updates else 0.0,
            round_seconds=float(seconds),
            payments=dict(sel.payments),
            policy_actions=list(sel.actions),
        )

    def run(self, n_rounds: int) -> TrainingHistory:
        """Algorithm 1's outer loop: ``n_rounds`` rounds of train+aggregate."""
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        history = TrainingHistory(scheme=self.selection.name)
        for t in range(1, n_rounds + 1):
            history.records.append(self.run_round(t))
        return history


def _train_winner_remote(
    scratch_model: Sequential,
    global_weights: list[np.ndarray],
    entropy: int,
    task: tuple[int, FLClient, int | None],
) -> LocalUpdate:
    """Process-pool work function for one winner's local training.

    Module-level so :class:`~repro.api.executor.ProcessExecutor` can pickle
    it; each task unpickles private copies of the scratch replica, the
    client and the global weights, and derives the winner's stream exactly
    like the in-process path — hence byte-identical results.
    """
    from ..sim.rng import rng_from

    wid, client, declared = task
    stream = rng_from(entropy, f"local-train-{wid}")
    return client.train_with_stream(scratch_model, global_weights, stream, declared)
