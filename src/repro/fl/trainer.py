"""The federated training loop tying selection, clients and FedAvg together.

One :class:`FederatedTrainer` run is one curve of the paper's figures: a
scheme (RandFL / FixFL / FMore / psi-FMore) driving T rounds of
select -> local train -> aggregate -> evaluate, with optional wall-clock
accounting supplied by a :class:`RoundTimer` (the MEC cluster's timing
model, for the "real-world" Figs 12-13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, Sequence

import numpy as np

from .client import FLClient, LocalUpdate
from .metrics import rounds_to_accuracy
from .nn import Sequential
from .selection import SelectionResult, SelectionStrategy
from .server import FedAvgServer

__all__ = ["RoundTimer", "RoundRecord", "TrainingHistory", "FederatedTrainer"]


class RoundTimer(Protocol):
    """Computes the simulated wall-clock duration of one round."""

    def round_time(
        self,
        winner_ids: Sequence[int],
        declared_samples: dict[int, int],
        model_bytes: int,
        local_epochs: int,
    ) -> float:
        ...


@dataclass
class RoundRecord:
    """Everything measured in one training round."""

    round_index: int
    accuracy: float
    loss: float
    winner_ids: list[int]
    total_payment: float
    scores: dict[int, float] = field(default_factory=dict)
    winner_ranks: dict[int, int] = field(default_factory=dict)
    all_scores: list[float] = field(default_factory=list)
    mean_train_loss: float = 0.0
    round_seconds: float = 0.0
    # Per-winner charged payments (auction schemes only).
    payments: dict[int, float] = field(default_factory=dict)
    # Round-policy decisions (see repro.core.policies.PolicyAction).
    policy_actions: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """A plain JSON-able dict; exact inverse of :meth:`from_dict`.

        Mapping keys become strings (JSON has no int keys) and numpy
        scalars collapse to Python numbers, so a dumped record reloads
        equal to the original — the round-trip the experiment store's
        manifests rely on.
        """
        return {
            "round_index": int(self.round_index),
            "accuracy": float(self.accuracy),
            "loss": float(self.loss),
            "winner_ids": [int(w) for w in self.winner_ids],
            "total_payment": float(self.total_payment),
            "scores": {str(int(k)): float(v) for k, v in self.scores.items()},
            "winner_ranks": {
                str(int(k)): int(v) for k, v in self.winner_ranks.items()
            },
            "all_scores": [float(s) for s in self.all_scores],
            "mean_train_loss": float(self.mean_train_loss),
            "round_seconds": float(self.round_seconds),
            "payments": {str(int(k)): float(v) for k, v in self.payments.items()},
            "policy_actions": [a.to_dict() for a in self.policy_actions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RoundRecord":
        from ..core.policies import PolicyAction

        return cls(
            round_index=int(data["round_index"]),
            accuracy=float(data["accuracy"]),
            loss=float(data["loss"]),
            winner_ids=[int(w) for w in data["winner_ids"]],
            total_payment=float(data["total_payment"]),
            scores={int(k): float(v) for k, v in data["scores"].items()},
            winner_ranks={int(k): int(v) for k, v in data["winner_ranks"].items()},
            all_scores=[float(s) for s in data["all_scores"]],
            mean_train_loss=float(data["mean_train_loss"]),
            round_seconds=float(data["round_seconds"]),
            payments={int(k): float(v) for k, v in data["payments"].items()},
            policy_actions=[
                PolicyAction.from_dict(a) for a in data["policy_actions"]
            ],
        )


@dataclass
class TrainingHistory:
    """Per-round series for one scheme — the unit the figures plot."""

    scheme: str
    records: list[RoundRecord] = field(default_factory=list)

    @property
    def accuracies(self) -> list[float]:
        return [r.accuracy for r in self.records]

    @property
    def losses(self) -> list[float]:
        return [r.loss for r in self.records]

    @property
    def cumulative_seconds(self) -> list[float]:
        total = 0.0
        out: list[float] = []
        for r in self.records:
            total += r.round_seconds
            out.append(total)
        return out

    @property
    def total_payment(self) -> float:
        return float(sum(r.total_payment for r in self.records))

    @property
    def final_accuracy(self) -> float:
        return self.records[-1].accuracy if self.records else 0.0

    def rounds_to(self, target_accuracy: float) -> int | None:
        return rounds_to_accuracy(self.accuracies, target_accuracy)

    def winner_counts(self) -> dict[int, int]:
        """How often each node won — Fig 11b's selection-proportion data."""
        counts: dict[int, int] = {}
        for r in self.records:
            for w in r.winner_ids:
                counts[w] = counts.get(w, 0) + 1
        return counts

    def to_dict(self) -> dict:
        """JSON-able form (see :meth:`RoundRecord.to_dict`)."""
        return {
            "scheme": self.scheme,
            "records": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrainingHistory":
        return cls(
            scheme=str(data["scheme"]),
            records=[RoundRecord.from_dict(r) for r in data["records"]],
        )


class FederatedTrainer:
    """Run ``n_rounds`` of federated learning under one selection scheme."""

    def __init__(
        self,
        server: FedAvgServer,
        clients: Sequence[FLClient] | Mapping[int, FLClient],
        selection: SelectionStrategy,
        test_x: np.ndarray,
        test_y: np.ndarray,
        rng: np.random.Generator,
        timer: RoundTimer | None = None,
    ):
        self.server = server
        if isinstance(clients, Mapping):
            # Pre-keyed pools (e.g. the hierarchical variant's bounded FL
            # pool, which resolves out-of-pool winner ids itself) are
            # adopted as-is.
            self.clients = clients
        else:
            self.clients = {c.client_id: c for c in clients}
            if len(self.clients) != len(clients):
                raise ValueError("duplicate client ids")
        self.selection = selection
        self.test_x = test_x
        self.test_y = test_y
        self.rng = rng
        self.timer = timer
        # One scratch replica shared across clients: weights are overwritten
        # before every local run, so no state can leak between clients.
        self._scratch = server.model.clone_architecture(rng)

    def run_round(self, round_index: int) -> RoundRecord:
        sel: SelectionResult = self.selection.select(round_index, self.rng)
        global_weights = self.server.broadcast()
        updates: list[LocalUpdate] = []
        local_epochs = 1
        for wid in sel.winner_ids:
            client = self.clients[wid]
            local_epochs = client.local_epochs
            declared = sel.declared_samples.get(wid)
            updates.append(
                client.train(self._scratch, global_weights, self.rng, declared)
            )
        if updates:
            self.server.aggregate(updates)
        loss, accuracy = self.server.evaluate(self.test_x, self.test_y)
        seconds = 0.0
        if self.timer is not None:
            seconds = self.timer.round_time(
                sel.winner_ids,
                {u.client_id: u.n_samples for u in updates},
                self.server.model_bytes,
                local_epochs,
            )
        winner_ranks: dict[int, int] = {}
        all_scores: list[float] = []
        if sel.outcome is not None:
            positions = {
                sb.node_id: pos for pos, sb in enumerate(sel.outcome.scored_bids)
            }
            winner_ranks = {wid: positions[wid] for wid in sel.winner_ids if wid in positions}
            all_scores = [sb.score for sb in sel.outcome.scored_bids]
        return RoundRecord(
            round_index=round_index,
            accuracy=accuracy,
            loss=loss,
            winner_ids=list(sel.winner_ids),
            total_payment=sel.total_payment,
            scores=dict(sel.scores),
            winner_ranks=winner_ranks,
            all_scores=all_scores,
            mean_train_loss=float(np.mean([u.train_loss for u in updates])) if updates else 0.0,
            round_seconds=float(seconds),
            payments=dict(sel.payments),
            policy_actions=list(sel.actions),
        )

    def run(self, n_rounds: int) -> TrainingHistory:
        """Algorithm 1's outer loop: ``n_rounds`` rounds of train+aggregate."""
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        history = TrainingHistory(scheme=self.selection.name)
        for t in range(1, n_rounds + 1):
            history.records.append(self.run_round(t))
        return history
