"""Synthetic stand-ins for the paper's four datasets.

The paper evaluates on MNIST (MNIST-O), Fashion-MNIST (MNIST-F), CIFAR-10
and the HuffPost news-category corpus (HPNews).  This reproduction runs
offline, so the datasets are replaced by *procedural generators* that
preserve the property the experiments rely on: tasks of graded difficulty
where model accuracy grows with the amount and the class diversity of
training data.

* ``mnist_o``  — 1-channel images from well-separated smooth class
  prototypes with light noise: easy, accuracy saturates quickly (the paper
  reaches ~95%).
* ``mnist_f``  — same construction with overlapping prototypes and heavier
  noise: medium difficulty (~84% in the paper).
* ``cifar10``  — 3-channel images, two prototype modes per class, colour
  jitter and large shifts: the hard image task (~50-60% in the paper).
* ``hpnews``   — token sequences whose unigram distribution mixes a
  class-specific topic with a shared background vocabulary; classified
  with the LSTM (~46-60% in the paper).

Generators synthesise samples *on demand* (``sample``/``sample_mixed``), so
federated clients of any size and class mix can be materialised without a
fixed pool; a fixed held-out test set comes from :meth:`test_set`.
Every generator is deterministic given its construction seed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

__all__ = [
    "DataGenerator",
    "ImageSpec",
    "TextSpec",
    "SyntheticImageGenerator",
    "SyntheticTextGenerator",
    "IMAGE_PRESETS",
    "TEXT_PRESETS",
    "make_generator",
    "DATASET_NAMES",
]


class DataGenerator(ABC):
    """A class-conditional sampler with a fixed input shape and label set."""

    name: str
    n_classes: int
    input_shape: tuple[int, ...]

    @abstractmethod
    def sample(self, class_id: int, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` inputs of class ``class_id``."""

    def sample_mixed(
        self, class_counts: dict[int, int], rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw a shuffled dataset with ``class_counts[c]`` samples of class c."""
        xs: list[np.ndarray] = []
        ys: list[np.ndarray] = []
        for cls, count in sorted(class_counts.items()):
            if not (0 <= cls < self.n_classes):
                raise ValueError(f"class {cls} outside [0, {self.n_classes})")
            if count <= 0:
                continue
            xs.append(self.sample(cls, count, rng))
            ys.append(np.full(count, cls, dtype=np.int64))
        if not xs:
            empty_x = np.empty((0, *self.input_shape), dtype=self._dtype())
            return empty_x, np.empty(0, dtype=np.int64)
        x = np.concatenate(xs, axis=0)
        y = np.concatenate(ys, axis=0)
        order = rng.permutation(x.shape[0])
        return x[order], y[order]

    def test_set(self, n_per_class: int, rng: np.random.Generator):
        """A balanced held-out evaluation set."""
        counts = {c: n_per_class for c in range(self.n_classes)}
        return self.sample_mixed(counts, rng)

    def _dtype(self):
        return np.float64


@dataclass(frozen=True)
class ImageSpec:
    """Difficulty knobs of a synthetic image task.

    ``prototype_blend`` pulls class prototypes towards a shared field (more
    overlap = harder); ``modes`` gives each class several visual variants
    (intra-class variation, the CIFAR-like regime); ``noise_std`` and
    ``max_shift`` control per-sample corruption; ``color_jitter`` perturbs
    channels independently.
    """

    name: str
    size: int = 14
    channels: int = 1
    n_classes: int = 10
    noise_std: float = 0.25
    max_shift: int = 1
    prototype_blend: float = 0.0
    modes: int = 1
    color_jitter: float = 0.0
    smoothness: float = 1.6


IMAGE_PRESETS: dict[str, ImageSpec] = {
    # Noise levels calibrated so accuracy grows substantially with training
    # set size in the federated regime (hundreds to thousands of samples),
    # mirroring the relative difficulty MNIST < Fashion < CIFAR.
    "mnist_o": ImageSpec(name="mnist_o", noise_std=1.10, max_shift=1),
    "mnist_f": ImageSpec(
        name="mnist_f", noise_std=1.50, max_shift=1, prototype_blend=0.40
    ),
    "cifar10": ImageSpec(
        name="cifar10",
        channels=3,
        noise_std=1.00,
        max_shift=2,
        prototype_blend=0.55,
        modes=2,
        color_jitter=0.35,
    ),
}


class SyntheticImageGenerator(DataGenerator):
    """Procedural image classes built from smooth random prototype fields.

    Each (class, mode, channel) triple owns a Gaussian-filtered noise field
    normalised to zero mean / unit variance.  A sample rolls the field by a
    random shift, adds white noise and (for colour tasks) channel jitter.
    Convolutional models exploit the spatially-local structure, so the CNN >
    MLP ordering of the original datasets is preserved.
    """

    def __init__(self, spec: ImageSpec, seed: int = 0):
        self.spec = spec
        self.name = spec.name
        self.n_classes = spec.n_classes
        self.input_shape = (spec.size, spec.size, spec.channels)
        rng = np.random.default_rng(seed)
        common = self._smooth_field(rng, spec)
        protos = np.empty(
            (spec.n_classes, spec.modes, spec.size, spec.size, spec.channels)
        )
        for cls in range(spec.n_classes):
            for mode in range(spec.modes):
                raw = self._smooth_field(rng, spec)
                protos[cls, mode] = (
                    (1.0 - spec.prototype_blend) * raw + spec.prototype_blend * common
                )
        self._prototypes = protos

    @staticmethod
    def _smooth_field(rng: np.random.Generator, spec: ImageSpec) -> np.ndarray:
        field = rng.standard_normal((spec.size, spec.size, spec.channels))
        for ch in range(spec.channels):
            field[:, :, ch] = ndimage.gaussian_filter(
                field[:, :, ch], sigma=spec.smoothness, mode="wrap"
            )
        field -= field.mean()
        std = field.std()
        if std > 0:
            field /= std
        return field

    def sample(self, class_id: int, n: int, rng: np.random.Generator) -> np.ndarray:
        if not (0 <= class_id < self.n_classes):
            raise ValueError(f"class {class_id} outside [0, {self.n_classes})")
        if n < 0:
            raise ValueError("n must be non-negative")
        spec = self.spec
        out = np.empty((n, *self.input_shape))
        modes = rng.integers(spec.modes, size=n)
        shifts = rng.integers(-spec.max_shift, spec.max_shift + 1, size=(n, 2))
        for i in range(n):
            img = self._prototypes[class_id, modes[i]]
            img = np.roll(img, shift=tuple(shifts[i]), axis=(0, 1))
            if spec.color_jitter > 0.0 and spec.channels > 1:
                jitter = 1.0 + spec.color_jitter * rng.standard_normal(spec.channels)
                img = img * jitter
            out[i] = img
        out += spec.noise_std * rng.standard_normal(out.shape)
        return out


@dataclass(frozen=True)
class TextSpec:
    """Difficulty knobs of the synthetic headline task.

    Tokens are drawn from a mixture ``topic_weight * topic(class) +
    (1 - topic_weight) * background``; lower ``topic_weight`` means fewer
    class-bearing tokens per headline and a harder task.
    """

    name: str
    vocab_size: int = 800
    seq_len: int = 12
    n_classes: int = 10
    topic_words: int = 40
    topic_weight: float = 0.55
    zipf_exponent: float = 1.1


TEXT_PRESETS: dict[str, TextSpec] = {
    "hpnews": TextSpec(name="hpnews", topic_weight=0.70),
}


class SyntheticTextGenerator(DataGenerator):
    """Class-topical token sequences standing in for news headlines."""

    def __init__(self, spec: TextSpec, seed: int = 0):
        if spec.topic_words * spec.n_classes >= spec.vocab_size:
            raise ValueError("vocabulary too small for the requested topics")
        self.spec = spec
        self.name = spec.name
        self.n_classes = spec.n_classes
        self.input_shape = (spec.seq_len,)
        rng = np.random.default_rng(seed)
        # Background: Zipf-like mass over the whole vocabulary.
        ranks = np.arange(1, spec.vocab_size + 1, dtype=float)
        background = ranks ** (-spec.zipf_exponent)
        background /= background.sum()
        # Each class gets an exclusive topical word block.
        perm = rng.permutation(spec.vocab_size)
        self._distributions = np.empty((spec.n_classes, spec.vocab_size))
        for cls in range(spec.n_classes):
            block = perm[cls * spec.topic_words : (cls + 1) * spec.topic_words]
            topic = np.zeros(spec.vocab_size)
            weights = rng.dirichlet(np.ones(spec.topic_words) * 2.0)
            topic[block] = weights
            self._distributions[cls] = (
                spec.topic_weight * topic + (1.0 - spec.topic_weight) * background
            )
            self._distributions[cls] /= self._distributions[cls].sum()

    def sample(self, class_id: int, n: int, rng: np.random.Generator) -> np.ndarray:
        if not (0 <= class_id < self.n_classes):
            raise ValueError(f"class {class_id} outside [0, {self.n_classes})")
        if n < 0:
            raise ValueError("n must be non-negative")
        spec = self.spec
        flat = rng.choice(
            spec.vocab_size,
            size=n * spec.seq_len,
            p=self._distributions[class_id],
        )
        return flat.reshape(n, spec.seq_len).astype(np.int64)

    def _dtype(self):
        return np.int64


DATASET_NAMES = ("mnist_o", "mnist_f", "cifar10", "hpnews")


def make_generator(
    name: str,
    seed: int = 0,
    image_size: int | None = None,
) -> DataGenerator:
    """Factory for the four paper datasets by name.

    ``image_size`` overrides the preset resolution (the ``paper`` preset in
    :mod:`repro.sim.config` asks for larger images; benches use the default
    compact resolution for speed — the learning dynamics are unchanged).
    """
    if name in IMAGE_PRESETS:
        spec = IMAGE_PRESETS[name]
        if image_size is not None:
            spec = ImageSpec(**{**spec.__dict__, "size": int(image_size)})
        return SyntheticImageGenerator(spec, seed=seed)
    if name in TEXT_PRESETS:
        return SyntheticTextGenerator(TEXT_PRESETS[name], seed=seed)
    raise ValueError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
