"""repro — reproduction of "FMore: An Incentive Scheme of Multi-dimensional
Auction for Federated Learning in MEC" (Zeng et al., ICDCS 2020).

Subpackages
-----------
``repro.core``
    The paper's contribution: the K-winner multi-dimensional procurement
    auction, Nash-equilibrium bidding strategies, psi-FMore, aggregator
    guidance and mechanism properties.
``repro.fl``
    Federated-learning substrate: a from-scratch numpy neural-network
    library, synthetic datasets standing in for MNIST/Fashion-MNIST/
    CIFAR-10/HPNews, non-IID partitioners, FedAvg and client-selection
    strategies (RandFL / FixedFL / FMore / psi-FMore).
``repro.mec``
    Mobile-edge-computing substrate: dynamic multi-dimensional resources,
    edge-node bidding agents, network/compute timing, and the simulated
    32-node cluster used for the "real-world" experiments.
``repro.api``
    The declarative surface: frozen, JSON-round-trippable
    :class:`~repro.api.Scenario` specs and the registry-driven
    :class:`~repro.api.FMoreEngine` façade (solver caching, batched
    bid collection).
``repro.sim``
    Experiment harness: configs, multi-seed runners and report tables that
    regenerate every figure of the paper's evaluation.
``repro.analysis``
    Equilibrium analytics (profit vs N/K, payment/score sweeps) and
    convergence summaries (rounds-to-accuracy, speedups).
"""

__version__ = "1.0.0"

from . import analysis, api, core, fl, mec, sim
from .api import FMoreEngine, RunResult, Scenario

__all__ = [
    "analysis",
    "api",
    "core",
    "fl",
    "mec",
    "sim",
    "Scenario",
    "FMoreEngine",
    "RunResult",
    "__version__",
]
