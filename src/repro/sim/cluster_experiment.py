"""The "real-world" experiment: FMore on the simulated 32-node cluster.

Section V-C deploys one aggregator plus 31 edge nodes on an HPC cluster;
resources are {computing power, bandwidth, data size} scored with the
additive rule ``S = 0.4 q1 + 0.3 q2 + 0.3 q3 - p``; data sizes span
[2000, 10000]; nodes "randomly choose different quantities of resources in
each round".  Figs 12-13 report CIFAR-10 accuracy per round and wall-clock
time (per round and to target accuracy) for FMore vs RandFL.

Since the execution-layer refactor this experiment is a
``variant="cluster"`` :class:`~repro.api.Scenario` like any other — the
registry-driven engine assembles the 3-D additive auction, the
:class:`SimulatedCluster` wall-clock model and the bidding agents, and
:func:`run_cluster_comparison` is a thin shim over
``FMoreEngine().run(Scenario.from_cluster_config(cfg))`` (bitwise-identical
seed streams).  New code should prefer the scenario surface directly::

    from repro.api import FMoreEngine, Scenario

    result = FMoreEngine().run(Scenario.from_preset("cluster_cifar10"))

:func:`build_cluster_environment` remains for callers that want the raw
assembled objects (cluster specs, solver, agents) rather than a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.costs import LinearCost
from ..core.equilibrium import EquilibriumSolver
from ..core.scoring import AdditiveScore
from ..core.valuation import PrivateValueModel, UniformTheta
from ..fl.partition import heterogeneous_specs, materialize_clients
from ..fl.trainer import TrainingHistory
from ..fl.datasets import make_generator
from ..mec.cluster import (
    SimulatedCluster,
    build_cluster_specs,
    cluster_quality_extractor,
)
from ..mec.node import EdgeNode
from ..mec.resources import UniformAvailabilityDynamics
from .rng import rng_from

__all__ = ["ClusterConfig", "build_cluster_environment", "run_cluster_comparison"]


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of the simulated-testbed experiment (Figs 12-13)."""

    name: str = "cluster"
    dataset: str = "cifar10"
    n_nodes: int = 31
    k_winners: int = 8
    n_rounds: int = 20
    local_epochs: int = 1
    batch_size: int = 32
    lr: float = 0.03
    model_width: float = 0.2
    test_per_class: int = 40
    size_range: tuple[int, int] = (200, 1000)
    min_classes: int = 1
    max_classes: int | None = 5
    theta_lo: float = 0.1
    theta_hi: float = 1.0
    score_weights: tuple[float, float, float] = (0.4, 0.3, 0.3)
    cost_betas: tuple[float, float, float] = (0.25, 0.25, 0.5)
    availability_min_fraction: float = 0.6
    core_choices: tuple[int, ...] = (1, 2, 4, 8)
    bandwidth_range_mbps: tuple[float, float] = (50.0, 1000.0)
    data_seed: int = 7
    grid_size: int = 129

    def __post_init__(self) -> None:
        if not (1 <= self.k_winners <= self.n_nodes):
            raise ValueError("need 1 <= k_winners <= n_nodes")
        lo, hi = self.size_range
        if not (0 < lo <= hi):
            raise ValueError("size_range must satisfy 0 < lo <= hi")


@dataclass
class ClusterEnvironment:
    """Everything the cluster schemes share."""

    generator: object
    clients_data: list
    test_x: np.ndarray
    test_y: np.ndarray
    thetas: np.ndarray
    cluster: SimulatedCluster
    solver: EquilibriumSolver
    agents: list[EdgeNode]
    max_data_size: int
    initial_weights: list[np.ndarray] = field(default_factory=list)


def build_cluster_environment(cfg: ClusterConfig, seed: int) -> ClusterEnvironment:
    """Materialise the cluster: data, machines, auction, bidding agents."""
    data_rng = rng_from(seed, f"cluster-data-{cfg.name}")
    theta_rng = rng_from(seed, f"cluster-theta-{cfg.name}")
    hw_rng = rng_from(seed, f"cluster-hw-{cfg.name}")

    generator = make_generator(cfg.dataset, seed=cfg.data_seed)
    specs = heterogeneous_specs(
        cfg.n_nodes,
        generator.n_classes,
        data_rng,
        size_range=cfg.size_range,
        min_classes=cfg.min_classes,
        max_classes=cfg.max_classes,
    )
    clients_data = materialize_clients(generator, specs, data_rng)
    test_x, test_y = generator.test_set(cfg.test_per_class, data_rng)

    cluster_specs = build_cluster_specs(
        [c.size for c in clients_data],
        hw_rng,
        category_proportions=[c.category_proportion for c in clients_data],
        core_choices=cfg.core_choices,
        bandwidth_range_mbps=cfg.bandwidth_range_mbps,
    )
    cluster = SimulatedCluster(cluster_specs)

    rule = AdditiveScore(cfg.score_weights)
    cost = LinearCost(cfg.cost_betas)
    model = PrivateValueModel(
        UniformTheta(cfg.theta_lo, cfg.theta_hi),
        n_nodes=cfg.n_nodes,
        k_winners=cfg.k_winners,
    )
    solver = EquilibriumSolver(
        rule, cost, model, [[0.0, 1.0]] * 3, grid_size=cfg.grid_size
    )

    max_data = cfg.size_range[1]
    extractor = cluster_quality_extractor(
        max_cores=max(cfg.core_choices),
        max_bandwidth_mbps=cfg.bandwidth_range_mbps[1],
        max_data_size=max_data,
    )
    thetas = np.asarray(
        UniformTheta(cfg.theta_lo, cfg.theta_hi).sample(theta_rng, cfg.n_nodes)
    )
    agents = [
        EdgeNode(
            node_id=spec.node_id,
            theta=float(theta),
            solver=solver,
            profile=spec.profile,
            dynamics=UniformAvailabilityDynamics(cfg.availability_min_fraction),
            quality_extractor=extractor,
        )
        for spec, theta in zip(cluster_specs, thetas)
    ]
    return ClusterEnvironment(
        generator,
        clients_data,
        test_x,
        test_y,
        thetas,
        cluster,
        solver,
        agents,
        max_data,
    )


def run_cluster_comparison(
    cfg: ClusterConfig,
    schemes: tuple[str, ...] = ("FMore", "RandFL"),
    seed: int = 0,
) -> dict[str, TrainingHistory]:
    """Run the testbed schemes on one shared environment (Figs 12-13).

    Delegates to the engine via ``Scenario.from_cluster_config`` — same
    named seed streams, same histories as the historical hand-assembled
    loop, plus the engine's solver cache and executor support.
    """
    from ..api import FMoreEngine, Scenario

    scenario = Scenario.from_cluster_config(cfg, schemes=tuple(schemes), seeds=(seed,))
    return FMoreEngine().run(scenario).comparison()
