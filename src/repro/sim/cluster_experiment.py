"""The "real-world" experiment: FMore on the simulated 32-node cluster.

Section V-C deploys one aggregator plus 31 edge nodes on an HPC cluster;
resources are {computing power, bandwidth, data size} scored with the
additive rule ``S = 0.4 q1 + 0.3 q2 + 0.3 q3 - p``; data sizes span
[2000, 10000]; nodes "randomly choose different quantities of resources in
each round".  Figs 12-13 report CIFAR-10 accuracy per round and wall-clock
time (per round and to target accuracy) for FMore vs RandFL.

This module assembles that experiment on the :class:`SimulatedCluster`
timing substrate: the same federated trainer, a 3-D additive auction and a
synchronous-round wall-clock model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.auction import MultiDimensionalProcurementAuction
from ..core.costs import LinearCost
from ..core.equilibrium import EquilibriumSolver
from ..core.mechanism import FMoreMechanism
from ..core.scoring import AdditiveScore
from ..core.valuation import PrivateValueModel, UniformTheta
from ..fl.client import FLClient
from ..fl.models import build_model
from ..fl.partition import heterogeneous_specs, materialize_clients
from ..fl.selection import AuctionSelection, FixedSelection, RandomSelection
from ..fl.server import FedAvgServer
from ..fl.trainer import FederatedTrainer, TrainingHistory
from ..fl.datasets import make_generator
from ..mec.cluster import (
    SimulatedCluster,
    build_cluster_specs,
    cluster_quality_extractor,
)
from ..mec.node import EdgeNode
from ..mec.resources import UniformAvailabilityDynamics
from .rng import rng_from

__all__ = ["ClusterConfig", "build_cluster_environment", "run_cluster_comparison"]


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of the simulated-testbed experiment (Figs 12-13)."""

    name: str = "cluster"
    dataset: str = "cifar10"
    n_nodes: int = 31
    k_winners: int = 8
    n_rounds: int = 20
    local_epochs: int = 1
    batch_size: int = 32
    lr: float = 0.03
    model_width: float = 0.2
    test_per_class: int = 40
    size_range: tuple[int, int] = (200, 1000)
    min_classes: int = 1
    max_classes: int | None = 5
    theta_lo: float = 0.1
    theta_hi: float = 1.0
    score_weights: tuple[float, float, float] = (0.4, 0.3, 0.3)
    cost_betas: tuple[float, float, float] = (0.25, 0.25, 0.5)
    availability_min_fraction: float = 0.6
    core_choices: tuple[int, ...] = (1, 2, 4, 8)
    bandwidth_range_mbps: tuple[float, float] = (50.0, 1000.0)
    data_seed: int = 7
    grid_size: int = 129

    def __post_init__(self) -> None:
        if not (1 <= self.k_winners <= self.n_nodes):
            raise ValueError("need 1 <= k_winners <= n_nodes")
        lo, hi = self.size_range
        if not (0 < lo <= hi):
            raise ValueError("size_range must satisfy 0 < lo <= hi")


@dataclass
class ClusterEnvironment:
    """Everything the cluster schemes share."""

    generator: object
    clients_data: list
    test_x: np.ndarray
    test_y: np.ndarray
    thetas: np.ndarray
    cluster: SimulatedCluster
    solver: EquilibriumSolver
    agents: list[EdgeNode]
    max_data_size: int
    initial_weights: list[np.ndarray] = field(default_factory=list)


def build_cluster_environment(cfg: ClusterConfig, seed: int) -> ClusterEnvironment:
    """Materialise the cluster: data, machines, auction, bidding agents."""
    data_rng = rng_from(seed, f"cluster-data-{cfg.name}")
    theta_rng = rng_from(seed, f"cluster-theta-{cfg.name}")
    hw_rng = rng_from(seed, f"cluster-hw-{cfg.name}")

    generator = make_generator(cfg.dataset, seed=cfg.data_seed)
    specs = heterogeneous_specs(
        cfg.n_nodes,
        generator.n_classes,
        data_rng,
        size_range=cfg.size_range,
        min_classes=cfg.min_classes,
        max_classes=cfg.max_classes,
    )
    clients_data = materialize_clients(generator, specs, data_rng)
    test_x, test_y = generator.test_set(cfg.test_per_class, data_rng)

    cluster_specs = build_cluster_specs(
        [c.size for c in clients_data],
        hw_rng,
        category_proportions=[c.category_proportion for c in clients_data],
        core_choices=cfg.core_choices,
        bandwidth_range_mbps=cfg.bandwidth_range_mbps,
    )
    cluster = SimulatedCluster(cluster_specs)

    rule = AdditiveScore(cfg.score_weights)
    cost = LinearCost(cfg.cost_betas)
    model = PrivateValueModel(
        UniformTheta(cfg.theta_lo, cfg.theta_hi),
        n_nodes=cfg.n_nodes,
        k_winners=cfg.k_winners,
    )
    solver = EquilibriumSolver(
        rule, cost, model, [[0.0, 1.0]] * 3, grid_size=cfg.grid_size
    )

    max_data = cfg.size_range[1]
    extractor = cluster_quality_extractor(
        max_cores=max(cfg.core_choices),
        max_bandwidth_mbps=cfg.bandwidth_range_mbps[1],
        max_data_size=max_data,
    )
    thetas = np.asarray(
        UniformTheta(cfg.theta_lo, cfg.theta_hi).sample(theta_rng, cfg.n_nodes)
    )
    agents = [
        EdgeNode(
            node_id=spec.node_id,
            theta=float(theta),
            solver=solver,
            profile=spec.profile,
            dynamics=UniformAvailabilityDynamics(cfg.availability_min_fraction),
            quality_extractor=extractor,
        )
        for spec, theta in zip(cluster_specs, thetas)
    ]
    return ClusterEnvironment(
        generator,
        clients_data,
        test_x,
        test_y,
        thetas,
        cluster,
        solver,
        agents,
        max_data,
    )


def run_cluster_comparison(
    cfg: ClusterConfig,
    schemes: tuple[str, ...] = ("FMore", "RandFL"),
    seed: int = 0,
) -> dict[str, TrainingHistory]:
    """Run the testbed schemes on one shared environment (Figs 12-13)."""
    env = build_cluster_environment(cfg, seed)
    results: dict[str, TrainingHistory] = {}
    client_ids = [c.client_id for c in env.clients_data]
    max_data = env.max_data_size
    for scheme in schemes:
        global_model = build_model(
            cfg.dataset,
            env.generator.input_shape,
            env.generator.n_classes,
            rng_from(seed, "cluster-model"),
            width=cfg.model_width,
            lr=cfg.lr,
        )
        if env.initial_weights:
            global_model.set_weights(env.initial_weights)
        else:
            env.initial_weights = global_model.get_weights()
        server = FedAvgServer(global_model)
        clients = [
            FLClient(d, local_epochs=cfg.local_epochs, batch_size=cfg.batch_size)
            for d in env.clients_data
        ]
        if scheme == "RandFL":
            selection = RandomSelection(client_ids, cfg.k_winners)
        elif scheme == "FixFL":
            selection = FixedSelection(
                client_ids, cfg.k_winners, rng_from(seed, "cluster-fixfl")
            )
        elif scheme == "FMore":
            auction = MultiDimensionalProcurementAuction(
                env.solver.quality_rule, cfg.k_winners
            )
            selection = AuctionSelection(
                FMoreMechanism(auction),
                env.agents,
                quality_to_samples=lambda q: int(round(q[2] * max_data)),
            )
        else:
            raise ValueError(f"unknown cluster scheme {scheme!r}")
        trainer = FederatedTrainer(
            server,
            clients,
            selection,
            env.test_x,
            env.test_y,
            rng_from(seed, f"cluster-train-{scheme}"),
            timer=env.cluster,
        )
        results[scheme] = trainer.run(cfg.n_rounds)
    return results
