"""Experiment configurations and scale presets.

The paper's simulator uses N=100 nodes, K=20 winners, 20 rounds, the
two-dimensional quality (data size, data-category proportion) scored with
``S = 25 * q1 * q2 - p``, and five-run averages (Section V-A).  The
``paper`` preset encodes those numbers; ``bench`` shrinks the federation
and the models so every figure regenerates in minutes on a laptop; and
``smoke`` exists for CI-speed tests.  All three exercise identical code
paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["AuctionConfig", "ExperimentConfig", "preset", "PRESET_NAMES"]


@dataclass(frozen=True)
class AuctionConfig:
    """Common-knowledge auction environment for the simulation experiments.

    The default mirrors Section V-A: multiplicative score ``25 * q1 * q2``
    over (data size in kilosamples, category proportion), linear private
    cost ``theta * (b1 q1 + b2 q2)`` with uniform types.
    """

    theta_lo: float = 0.1
    theta_hi: float = 1.0
    score_scale: float = 25.0
    cost_betas: tuple[float, ...] = (4.0, 2.0)
    payment_rule: str = "first_score"
    win_model: str = "paper"
    payment_method: str = "euler"   # Algorithm 1 line 7 uses Euler's method
    psi: float | None = None        # None = plain FMore (psi = 1)
    grid_size: int = 257

    def __post_init__(self) -> None:
        if not (0 < self.theta_lo < self.theta_hi):
            raise ValueError("need 0 < theta_lo < theta_hi")
        if self.score_scale <= 0:
            raise ValueError("score_scale must be positive")
        if self.psi is not None and not (0.0 < self.psi <= 1.0):
            raise ValueError("psi must lie in (0, 1]")


@dataclass(frozen=True)
class ExperimentConfig:
    """One federated-learning experiment (one curve-set of a figure)."""

    name: str = "default"
    dataset: str = "mnist_o"
    n_clients: int = 100
    k_winners: int = 20
    n_rounds: int = 20
    local_epochs: int = 1
    batch_size: int = 32
    # Optional client-drift control: cap local SGD steps per round (None =
    # one full pass over the declared data, the paper's Eq. 2).
    max_batches_per_round: int | None = None
    lr: float = 0.08
    model_width: float = 0.25
    image_size: int | None = None
    test_per_class: int = 50
    size_range: tuple[int, int] = (200, 5000)
    min_classes: int = 1
    max_classes: int | None = None
    # "Nodes randomly choose different quantities of resources in each
    # round" (Section V-A): per-round availability fraction in
    # [availability_min_fraction, 1], plus per-round re-estimation of the
    # private cost parameter (Section III-B, reason 2).
    availability_min_fraction: float = 0.35
    theta_jitter: float = 0.2
    data_seed: int = 7
    auction: AuctionConfig = field(default_factory=AuctionConfig)

    def __post_init__(self) -> None:
        if self.n_clients < 2:
            raise ValueError("n_clients must be >= 2")
        if not (1 <= self.k_winners <= self.n_clients):
            raise ValueError("need 1 <= k_winners <= n_clients")
        if self.n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        lo, hi = self.size_range
        if not (0 < lo <= hi):
            raise ValueError("size_range must satisfy 0 < lo <= hi")

    def with_(self, **changes) -> "ExperimentConfig":
        """A modified copy (dataclasses.replace with a shorter name)."""
        return replace(self, **changes)


def _smoke(dataset: str) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"smoke-{dataset}",
        dataset=dataset,
        n_clients=10,
        k_winners=3,
        n_rounds=3,
        model_width=0.12,
        test_per_class=10,
        size_range=(30, 120),
        batch_size=16,
        auction=AuctionConfig(grid_size=65),
    )


def _bench(dataset: str) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"bench-{dataset}",
        dataset=dataset,
        n_clients=30,
        k_winners=6,
        n_rounds=12,
        model_width=0.2,
        test_per_class=40,
        size_range=(80, 1200),
        max_classes=5,
        auction=AuctionConfig(grid_size=129),
    )


def _paper(dataset: str) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"paper-{dataset}",
        dataset=dataset,
        n_clients=100,
        k_winners=20,
        n_rounds=20,
        model_width=1.0,
        image_size=28 if dataset in ("mnist_o", "mnist_f") else None,
        test_per_class=100,
        size_range=(200, 5000),
        max_classes=5,
    )


_PRESETS = {"smoke": _smoke, "bench": _bench, "paper": _paper}
PRESET_NAMES = tuple(_PRESETS)

# Per-dataset learning rates calibrated on the synthetic tasks (the deeper
# CIFAR net needs a gentler step; the noisy Fashion task oscillates at 0.08
# under non-IID FedAvg; the LSTM needs a larger step).
_DATASET_LR = {"mnist_o": 0.08, "mnist_f": 0.05, "cifar10": 0.03, "hpnews": 0.3}


def preset(scale: str, dataset: str = "mnist_o") -> ExperimentConfig:
    """Build the named preset for a dataset (``smoke``/``bench``/``paper``)."""
    if scale not in _PRESETS:
        raise ValueError(f"unknown preset {scale!r}; choose from {PRESET_NAMES}")
    cfg = _PRESETS[scale](dataset)
    return cfg.with_(lr=_DATASET_LR.get(dataset, cfg.lr))
