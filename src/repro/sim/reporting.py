"""ASCII reporting: the tables and series the benchmark harness prints.

Each benchmark regenerates a paper figure as a printed table — the same
rows/series the figure plots — plus a paper-vs-measured block recorded in
EXPERIMENTS.md.  Only standard-library string formatting is used so reports
render identically everywhere.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["fmt", "ascii_table", "series_table", "paper_vs_measured"]


def fmt(value, precision: int = 4) -> str:
    """Human-friendly numeric formatting (None -> 'n/a')."""
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.{precision}g}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width table with a rule under the header."""
    str_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width must match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def series_table(
    title: str,
    index_name: str,
    index: Sequence[object],
    columns: Mapping[str, Sequence[object]],
) -> str:
    """A per-round series table: one index column plus one column per curve."""
    headers = [index_name] + list(columns)
    rows = []
    for i, idx in enumerate(index):
        row: list[object] = [idx]
        for name in columns:
            col = columns[name]
            row.append(col[i] if i < len(col) else None)
        rows.append(row)
    return ascii_table(headers, rows, title=title)


def paper_vs_measured(
    rows: Sequence[tuple[str, object, object]],
    title: str = "paper vs measured",
) -> str:
    """The EXPERIMENTS.md block: metric, paper's value, our value."""
    return ascii_table(
        ["metric", "paper", "measured"],
        [(m, p, v) for (m, p, v) in rows],
        title=title,
    )
