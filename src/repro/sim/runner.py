"""Multi-seed experiment running and series averaging.

"All the results are the average of five experiments" (Section V-A); this
module runs a configuration over several seeds and averages the per-round
series, exposing mean and standard deviation for each curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..api.engine import FMoreEngine
from ..api.scenario import Scenario
from ..fl.trainer import TrainingHistory
from .config import ExperimentConfig

__all__ = ["SeriesStats", "average_histories", "run_seeds", "averaged_comparison"]


@dataclass
class SeriesStats:
    """Mean/std of a per-round metric across repeated runs."""

    mean: np.ndarray
    std: np.ndarray

    def __len__(self) -> int:
        return int(self.mean.size)


def _stack(histories: list[TrainingHistory], attr: str) -> np.ndarray:
    series = [np.asarray(getattr(h, attr), dtype=float) for h in histories]
    lengths = {s.size for s in series}
    if len(lengths) != 1:
        raise ValueError("histories must have equal length to be averaged")
    return np.stack(series)


def average_histories(histories: list[TrainingHistory]) -> dict[str, SeriesStats]:
    """Per-round mean/std of accuracy, loss and cumulative time."""
    if not histories:
        raise ValueError("need at least one history")
    out: dict[str, SeriesStats] = {}
    for attr, key in (
        ("accuracies", "accuracy"),
        ("losses", "loss"),
        ("cumulative_seconds", "cumulative_seconds"),
    ):
        data = _stack(histories, attr)
        out[key] = SeriesStats(mean=data.mean(axis=0), std=data.std(axis=0))
    return out


def run_seeds(
    cfg: ExperimentConfig,
    schemes: tuple[str, ...],
    seeds: tuple[int, ...],
    timer=None,
    executor: str = "serial",
    max_workers: int | None = None,
    policies: dict | None = None,
    store=None,
) -> dict[str, list[TrainingHistory]]:
    """Run all schemes across seeds, grouped by scheme.

    One :class:`~repro.api.FMoreEngine` drives the whole plan, so the
    equilibrium strategy tables of the (seed-independent) advertised game
    are built exactly once and reused by every seed.  ``executor`` /
    ``max_workers`` populate the scenario's ``execution`` spec — the
    ``(scheme, seed)`` cells are embarrassingly parallel, and every
    executor returns bitwise-identical histories.  ``policies`` (a
    Scenario round-policy spec, see :mod:`repro.core.policies`) installs a
    per-round policy pipeline on the auction schemes.  ``store`` (an
    :class:`~repro.api.ExperimentStore` or root path) makes the sweep
    durable and incremental — completed ``(scheme, seed)`` cells are
    loaded from their manifests instead of re-run, so growing ``seeds``
    only computes the new cells.
    """
    engine = FMoreEngine(timer=timer)
    scenario = Scenario.from_config(cfg, schemes=tuple(schemes), seeds=tuple(seeds))
    scenario = scenario.with_(
        execution={"executor": executor, "max_workers": max_workers}
    )
    if policies is not None:
        scenario = scenario.with_(policies=policies)
    return engine.run(scenario, store=store).histories


def averaged_comparison(
    cfg: ExperimentConfig,
    schemes: tuple[str, ...],
    seeds: tuple[int, ...],
    timer=None,
    executor: str = "serial",
    max_workers: int | None = None,
) -> dict[str, dict[str, SeriesStats]]:
    """Seed-averaged accuracy/loss/time series for each scheme."""
    grouped = run_seeds(
        cfg, schemes, seeds, timer=timer, executor=executor, max_workers=max_workers
    )
    return {scheme: average_histories(h) for scheme, h in grouped.items()}
