"""Deterministic random-stream management for experiments.

Every experiment derives independent generator streams (data, types, model
init, per-scheme training) from one root seed via ``SeedSequence.spawn``,
so schemes compared in a figure share the federation and the initial model
but draw independent training randomness — the paper averages five runs of
exactly this construction.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

__all__ = ["spawn_rngs", "rng_from", "rng_state", "set_rng_state"]


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """``n`` independent generators derived from ``seed``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def rng_from(seed: int, stream: str) -> np.random.Generator:
    """A named, reproducible stream: same ``(seed, stream)`` -> same draws."""
    h = np.frombuffer(stream.encode("utf-8"), dtype=np.uint8)
    entropy = [int(seed)] + h.tolist()
    return np.random.default_rng(np.random.SeedSequence(entropy))


def rng_state(rng: np.random.Generator) -> dict[str, Any]:
    """A JSON-able snapshot of a generator's exact position in its stream.

    The bit-generator state dict contains only strings and (arbitrary
    precision) integers, so it survives a JSON round-trip unchanged;
    :func:`set_rng_state` restores it bit-for-bit — the foundation of the
    checkpoint/resume guarantee in :mod:`repro.api.store`.
    """
    return _plain(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: Mapping[str, Any]) -> None:
    """Install a :func:`rng_state` snapshot (the generator types must match)."""
    current = rng.bit_generator.state.get("bit_generator")
    expected = state.get("bit_generator")
    if expected != current:
        raise ValueError(
            f"rng state is for bit generator {expected!r}, "
            f"but this generator is {current!r}"
        )
    rng.bit_generator.state = _plain(state)


def _plain(value: Any) -> Any:
    """Recursively coerce numpy scalars to Python ints (JSON equivalence)."""
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (list, tuple, np.ndarray)):
        return [_plain(v) for v in value]
    return value
