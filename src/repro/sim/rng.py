"""Deterministic random-stream management for experiments.

Every experiment derives independent generator streams (data, types, model
init, per-scheme training) from one root seed via ``SeedSequence.spawn``,
so schemes compared in a figure share the federation and the initial model
but draw independent training randomness — the paper averages five runs of
exactly this construction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_rngs", "rng_from"]


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """``n`` independent generators derived from ``seed``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def rng_from(seed: int, stream: str) -> np.random.Generator:
    """A named, reproducible stream: same ``(seed, stream)`` -> same draws."""
    h = np.frombuffer(stream.encode("utf-8"), dtype=np.uint8)
    entropy = [int(seed)] + h.tolist()
    return np.random.default_rng(np.random.SeedSequence(entropy))
