"""Experiment harness: configs, multi-seed runners, reporting.

The legacy ``ExperimentConfig`` builder shims (``repro.sim.experiment``)
have been removed — assembly lives in the registry-driven
:mod:`repro.api` (``Scenario`` + ``FMoreEngine``); this package keeps the
config presets, the multi-seed averaging helpers, the named-seed-stream
utilities and the ASCII reporting the benches print.
"""

from .config import PRESET_NAMES, AuctionConfig, ExperimentConfig, preset
from .reporting import ascii_table, fmt, paper_vs_measured, series_table
from .rng import rng_from, rng_state, set_rng_state, spawn_rngs
from .runner import SeriesStats, average_histories, averaged_comparison, run_seeds

__all__ = [
    "AuctionConfig",
    "ExperimentConfig",
    "preset",
    "PRESET_NAMES",
    "SeriesStats",
    "average_histories",
    "run_seeds",
    "averaged_comparison",
    "ascii_table",
    "series_table",
    "paper_vs_measured",
    "fmt",
    "rng_from",
    "spawn_rngs",
    "rng_state",
    "set_rng_state",
]
