"""Experiment harness: configs, builders, multi-seed runners, reporting."""

from .config import PRESET_NAMES, AuctionConfig, ExperimentConfig, preset
from .experiment import (
    SCHEMES,
    Federation,
    build_agents,
    build_federation,
    build_selection,
    build_solver,
    run_comparison,
    run_scheme,
)
from .reporting import ascii_table, fmt, paper_vs_measured, series_table
from .rng import rng_from, spawn_rngs
from .runner import SeriesStats, average_histories, averaged_comparison, run_seeds

__all__ = [
    "AuctionConfig",
    "ExperimentConfig",
    "preset",
    "PRESET_NAMES",
    "SCHEMES",
    "Federation",
    "build_federation",
    "build_solver",
    "build_agents",
    "build_selection",
    "run_scheme",
    "run_comparison",
    "SeriesStats",
    "average_histories",
    "run_seeds",
    "averaged_comparison",
    "ascii_table",
    "series_table",
    "paper_vs_measured",
    "fmt",
    "rng_from",
    "spawn_rngs",
]
