"""Experiment assembly: federation, auction environment, scheme runners.

This module is the glue the figures are made of.  From an
:class:`~repro.sim.config.ExperimentConfig` it builds

* the **federation** — synthetic dataset generator, heterogeneous non-IID
  clients, held-out test set (shared across schemes for fair comparison),
* the **auction environment** — the equilibrium solver for the advertised
  game and one :class:`~repro.mec.node.EdgeNode` bidding agent per client,
* the **schemes** — RandFL / FixFL / FMore / psi-FMore selection strategies
  wired into :class:`~repro.fl.trainer.FederatedTrainer` instances sharing
  the same initial global weights,

and runs them, returning :class:`~repro.fl.trainer.TrainingHistory` series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.auction import MultiDimensionalProcurementAuction
from ..core.costs import LinearCost
from ..core.equilibrium import EquilibriumSolver
from ..core.mechanism import FMoreMechanism
from ..core.psi import PsiSelection, TopKSelection
from ..core.scoring import MultiplicativeScore
from ..core.valuation import PrivateValueModel, UniformTheta
from ..fl.client import FLClient
from ..fl.datasets import DataGenerator, make_generator
from ..fl.models import build_model
from ..fl.partition import ClientData, heterogeneous_specs, materialize_clients
from ..fl.selection import (
    AuctionSelection,
    FixedSelection,
    RandomSelection,
    SelectionStrategy,
)
from ..fl.server import FedAvgServer
from ..fl.trainer import FederatedTrainer, RoundTimer, TrainingHistory
from ..mec.node import EdgeNode
from ..mec.resources import ResourceProfile, UniformAvailabilityDynamics
from .config import ExperimentConfig
from .rng import rng_from

__all__ = [
    "SCHEMES",
    "Federation",
    "build_federation",
    "build_solver",
    "build_agents",
    "build_selection",
    "run_scheme",
    "run_comparison",
]

SCHEMES = ("FMore", "RandFL", "FixFL", "PsiFMore")

SAMPLES_PER_QUALITY_UNIT = 1000.0  # q1 is data size in kilosamples


@dataclass
class Federation:
    """Everything schemes must share for a fair comparison."""

    generator: DataGenerator
    clients_data: list[ClientData]
    test_x: np.ndarray
    test_y: np.ndarray
    thetas: np.ndarray
    initial_weights: list[np.ndarray] = field(default_factory=list)

    @property
    def n_clients(self) -> int:
        return len(self.clients_data)


def build_federation(cfg: ExperimentConfig, seed: int) -> Federation:
    """Materialise clients, test set and private types for one seed.

    The federation depends on ``(cfg, seed)`` only — schemes run on
    identical data and identical theta draws, as the paper's comparisons
    require.
    """
    data_rng = rng_from(seed, f"data-{cfg.name}")
    theta_rng = rng_from(seed, f"theta-{cfg.name}")
    generator = make_generator(cfg.dataset, seed=cfg.data_seed, image_size=cfg.image_size)
    specs = heterogeneous_specs(
        cfg.n_clients,
        generator.n_classes,
        data_rng,
        size_range=cfg.size_range,
        min_classes=cfg.min_classes,
        max_classes=cfg.max_classes,
    )
    clients_data = materialize_clients(generator, specs, data_rng)
    test_x, test_y = generator.test_set(cfg.test_per_class, data_rng)
    thetas = UniformTheta(cfg.auction.theta_lo, cfg.auction.theta_hi).sample(
        theta_rng, cfg.n_clients
    )
    return Federation(generator, clients_data, test_x, test_y, np.asarray(thetas))


def build_solver(
    cfg: ExperimentConfig,
    n_clients: int | None = None,
    k_winners: int | None = None,
) -> EquilibriumSolver:
    """The common-knowledge equilibrium solver of the simulation game.

    Scoring ``s(q) = alpha * q1 * q2`` over (kilosamples, category
    proportion); linear cost; uniform types — Section V-A's setup.
    """
    ac = cfg.auction
    rule = MultiplicativeScore(n_dimensions=2, scale=ac.score_scale)
    cost = LinearCost(ac.cost_betas)
    model = PrivateValueModel(
        UniformTheta(ac.theta_lo, ac.theta_hi),
        n_nodes=n_clients if n_clients is not None else cfg.n_clients,
        k_winners=k_winners if k_winners is not None else cfg.k_winners,
    )
    hi_q1 = cfg.size_range[1] / SAMPLES_PER_QUALITY_UNIT
    bounds = [[0.01, hi_q1], [0.05, 1.0]]
    return EquilibriumSolver(
        rule,
        cost,
        model,
        bounds,
        win_model=ac.win_model,
        payment_method=ac.payment_method,
        grid_size=ac.grid_size,
    )


def build_agents(
    cfg: ExperimentConfig,
    federation: Federation,
    solver: EquilibriumSolver,
) -> list[EdgeNode]:
    """One bidding agent per client, capacity = its actual local data."""
    agents: list[EdgeNode] = []
    for data, theta in zip(federation.clients_data, federation.thetas):
        profile = ResourceProfile(
            data_size=data.size,
            category_proportion=max(data.category_proportion, 0.05),
        )
        agents.append(
            EdgeNode(
                node_id=data.client_id,
                theta=float(theta),
                solver=solver,
                profile=profile,
                dynamics=UniformAvailabilityDynamics(cfg.availability_min_fraction),
                theta_jitter=cfg.theta_jitter,
            )
        )
    return agents


def _quality_to_samples(quality: np.ndarray) -> int:
    return int(round(quality[0] * SAMPLES_PER_QUALITY_UNIT))


def build_selection(
    cfg: ExperimentConfig,
    scheme: str,
    federation: Federation,
    seed: int,
    solver: EquilibriumSolver | None = None,
) -> SelectionStrategy:
    """Construct the selection strategy for a scheme name."""
    client_ids = [c.client_id for c in federation.clients_data]
    if scheme == "RandFL":
        return RandomSelection(client_ids, cfg.k_winners)
    if scheme == "FixFL":
        return FixedSelection(client_ids, cfg.k_winners, rng_from(seed, "fixfl"))
    if scheme in ("FMore", "PsiFMore"):
        if solver is None:
            solver = build_solver(cfg)
        agents = build_agents(cfg, federation, solver)
        if scheme == "PsiFMore":
            psi = cfg.auction.psi if cfg.auction.psi is not None else 0.8
            policy = PsiSelection(psi)
        else:
            policy = TopKSelection()
        auction = MultiDimensionalProcurementAuction(
            solver.quality_rule,
            cfg.k_winners,
            payment_rule=cfg.auction.payment_rule,
            selection=policy,
        )
        mechanism = FMoreMechanism(auction)
        strategy = AuctionSelection(mechanism, agents, _quality_to_samples)
        strategy.name = scheme
        return strategy
    raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")


def _build_global_model(cfg: ExperimentConfig, federation: Federation, seed: int):
    vocab = None
    if cfg.dataset == "hpnews":
        vocab = federation.generator.spec.vocab_size  # type: ignore[attr-defined]
    return build_model(
        cfg.dataset,
        federation.generator.input_shape,
        federation.generator.n_classes,
        rng_from(seed, "model-init"),
        width=cfg.model_width,
        lr=cfg.lr,
        vocab_size=vocab,
    )


def run_scheme(
    cfg: ExperimentConfig,
    scheme: str,
    seed: int,
    federation: Federation | None = None,
    timer: RoundTimer | None = None,
    solver: EquilibriumSolver | None = None,
) -> TrainingHistory:
    """Run one scheme for ``cfg.n_rounds`` rounds; returns its history.

    All schemes for a given ``(cfg, seed)`` share the federation and the
    initial global weights; only training randomness differs per scheme.
    """
    if federation is None:
        federation = build_federation(cfg, seed)
    global_model = _build_global_model(cfg, federation, seed)
    if federation.initial_weights:
        global_model.set_weights(federation.initial_weights)
    else:
        federation.initial_weights = global_model.get_weights()
    server = FedAvgServer(global_model)
    clients = [
        FLClient(
            data,
            local_epochs=cfg.local_epochs,
            batch_size=cfg.batch_size,
            max_batches_per_round=cfg.max_batches_per_round,
        )
        for data in federation.clients_data
    ]
    selection = build_selection(cfg, scheme, federation, seed, solver=solver)
    trainer = FederatedTrainer(
        server,
        clients,
        selection,
        federation.test_x,
        federation.test_y,
        rng_from(seed, f"train-{scheme}"),
        timer=timer,
    )
    return trainer.run(cfg.n_rounds)


def run_comparison(
    cfg: ExperimentConfig,
    schemes: tuple[str, ...] = ("FMore", "RandFL", "FixFL"),
    seed: int = 0,
    timer: RoundTimer | None = None,
) -> dict[str, TrainingHistory]:
    """Run several schemes on the same federation (one figure's curves)."""
    federation = build_federation(cfg, seed)
    solver = None
    if any(s in ("FMore", "PsiFMore") for s in schemes):
        solver = build_solver(cfg)
    return {
        scheme: run_scheme(cfg, scheme, seed, federation=federation, timer=timer, solver=solver)
        for scheme in schemes
    }
