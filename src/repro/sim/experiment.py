"""Deprecated experiment builders — thin shims over :mod:`repro.api`.

Historically this module hand-assembled the federation, the auction
environment and the scheme runners from an
:class:`~repro.sim.config.ExperimentConfig`.  That assembly now lives in
the registry-driven :mod:`repro.api.engine`; the functions here keep
their exact signatures and behaviour (same RNG streams, same histories)
by lifting the config to a :class:`~repro.api.Scenario` and delegating.

Every call emits a :class:`DeprecationWarning`: all in-repo callers have
migrated, and the shims will be removed once downstream users follow.
New code should use the declarative surface directly::

    from repro.api import FMoreEngine, Scenario

    result = FMoreEngine().run(Scenario.from_preset("bench", "mnist_o"))
"""

from __future__ import annotations

import warnings

from ..api.engine import (
    SAMPLES_PER_QUALITY_UNIT,
    Federation,
    FMoreEngine,
)
from ..api.engine import build_agents as _build_agents
from ..api.engine import build_federation as _build_federation
from ..api.engine import build_selection as _build_selection
from ..api.engine import build_solver as _build_solver
from ..api.engine import run_scheme as _run_scheme
from ..api.scenario import SCHEME_NAMES, Scenario
from ..core.equilibrium import EquilibriumSolver
from ..fl.selection import SelectionStrategy
from ..fl.trainer import RoundTimer, TrainingHistory
from ..mec.node import EdgeNode
from .config import ExperimentConfig

__all__ = [
    "SCHEMES",
    "Federation",
    "build_federation",
    "build_solver",
    "build_agents",
    "build_selection",
    "run_scheme",
    "run_comparison",
]

SCHEMES = SCHEME_NAMES


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.sim.{name} is deprecated; use {replacement} "
        "(see repro.api — Scenario + FMoreEngine)",
        DeprecationWarning,
        stacklevel=3,
    )


def build_federation(cfg: ExperimentConfig, seed: int) -> Federation:
    """Materialise clients, test set and private types for one seed.

    The federation depends on ``(cfg, seed)`` only — schemes run on
    identical data and identical theta draws, as the paper's comparisons
    require.
    """
    _deprecated("build_federation", "repro.api.build_federation(Scenario.from_config(cfg), seed)")
    return _build_federation(Scenario.from_config(cfg), seed)


def build_solver(
    cfg: ExperimentConfig,
    n_clients: int | None = None,
    k_winners: int | None = None,
) -> EquilibriumSolver:
    """The common-knowledge equilibrium solver of the simulation game.

    Scoring ``s(q) = alpha * q1 * q2`` over (kilosamples, category
    proportion); linear cost; uniform types — Section V-A's setup.
    """
    _deprecated("build_solver", "repro.api.build_solver(Scenario.from_config(cfg), ...)")
    return _build_solver(
        Scenario.from_config(cfg), n_clients=n_clients, k_winners=k_winners
    )


def build_agents(
    cfg: ExperimentConfig,
    federation: Federation,
    solver: EquilibriumSolver,
) -> list[EdgeNode]:
    """One bidding agent per client, capacity = its actual local data."""
    _deprecated("build_agents", "repro.api.build_agents(Scenario.from_config(cfg), ...)")
    return _build_agents(Scenario.from_config(cfg), federation, solver)


def build_selection(
    cfg: ExperimentConfig,
    scheme: str,
    federation: Federation,
    seed: int,
    solver: EquilibriumSolver | None = None,
) -> SelectionStrategy:
    """Construct the selection strategy for a scheme name."""
    _deprecated("build_selection", "repro.api.build_selection(Scenario.from_config(cfg), ...)")
    return _build_selection(
        Scenario.from_config(cfg), scheme, federation, seed, solver=solver
    )


def run_scheme(
    cfg: ExperimentConfig,
    scheme: str,
    seed: int,
    federation: Federation | None = None,
    timer: RoundTimer | None = None,
    solver: EquilibriumSolver | None = None,
) -> TrainingHistory:
    """Run one scheme for ``cfg.n_rounds`` rounds; returns its history.

    All schemes for a given ``(cfg, seed)`` share the federation and the
    initial global weights; only training randomness differs per scheme.
    """
    _deprecated("run_scheme", "repro.api.run_scheme(Scenario.from_config(cfg), ...)")
    return _run_scheme(
        Scenario.from_config(cfg),
        scheme,
        seed,
        federation=federation,
        timer=timer,
        solver=solver,
    )


def run_comparison(
    cfg: ExperimentConfig,
    schemes: tuple[str, ...] = ("FMore", "RandFL", "FixFL"),
    seed: int = 0,
    timer: RoundTimer | None = None,
) -> dict[str, TrainingHistory]:
    """Run several schemes on the same federation (one figure's curves)."""
    _deprecated("run_comparison", "FMoreEngine().run(Scenario.from_config(cfg, ...)).comparison()")
    engine = FMoreEngine(timer=timer)
    scenario = Scenario.from_config(cfg, schemes=tuple(schemes), seeds=(seed,))
    return engine.run(scenario).comparison()
