"""A gym-style auction environment over the streaming session API.

:class:`AuctionEnv` wraps one ``(scheme, seed)`` cell of a scenario as a
sequential decision problem for a *single controlled bidder*: the rest of
the population bids according to the scenario's ``bidding`` spec (all
truthful by default), the controlled node's bid is whatever the agent's
``action`` says, and the reward is that node's realized payoff — payment
received minus realized cost, zero on a loss.  The observation is the
*public* round state only (what a real node would know): the advertised
game, the previous round's clearing threshold and the node's own private
type and capacity.  Nothing about the other bidders' types or bids leaks.

The env rides the existing machinery end to end — the controlled node is
routed through an :class:`~repro.strategic.policies.ExternalBidPolicy`
attached to the cell's :class:`~repro.core.mechanism.FMoreMechanism`, so
federated training, policy pipelines, manifests and checkpoints all keep
working.  :meth:`snapshot` / :meth:`restore` delegate to the session's
checkpoint surface (the external policy's pending action and the bidding
stream position ride in ``bid_policy_states`` / ``bidding_rng_state``),
so an env can be frozen mid-episode and resumed bitwise-identically.

>>> env = AuctionEnv(scenario, seed=0, node_id=3)        # doctest: +SKIP
>>> obs = env.reset()                                    # doctest: +SKIP
>>> obs, reward, done, info = env.step(obs["equilibrium_payment"] * 1.1)
... # doctest: +SKIP
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..fl.selection import AuctionSelection
from ..sim.rng import rng_from
from .policies import ExternalBidPolicy

__all__ = ["AuctionEnv"]


class AuctionEnv:
    """One controlled bidder inside a policy-driven FMore population.

    Parameters
    ----------
    scenario:
        The experiment spec; its ``bidding`` mix drives the *other*
        bidders (empty = all truthful).
    scheme:
        An auction scheme name (``"FMore"`` or ``"PsiFMore"``) — the env
        needs a mechanism to attach to, so selection-only schemes raise.
    seed:
        The cell's seed (drives federation, types and training streams).
    node_id:
        The controlled node.  Defaults to the first node of the
        federation.
    engine:
        An optional shared :class:`~repro.api.engine.FMoreEngine`
        (solver-cache reuse across envs); a private one is built
        otherwise.

    Episodes run ``scenario.n_rounds`` steps.  Actions are interpreted per
    step as the controlled node's sealed bid:

    * ``None`` — bid the equilibrium (truthful) quality and payment;
    * a scalar — ask that payment at the equilibrium quality;
    * a length ``m + 1`` vector — ``m`` qualities followed by the asked
      payment.  Qualities outside the game's quality box (and non-positive
      or non-finite payments) raise ``ValueError``; in-box qualities are
      still capped to the node's private capacity at submission.
    """

    def __init__(
        self,
        scenario,
        scheme: str = "FMore",
        seed: int = 0,
        node_id: int | None = None,
        engine=None,
    ):
        if engine is None:
            from ..api.engine import FMoreEngine

            engine = FMoreEngine()
        self.engine = engine
        self.scenario = scenario
        self.scheme = str(scheme)
        self.seed = int(seed)
        self._requested_node_id = node_id
        self.session = None
        self.node_id: int | None = None
        self._policy: ExternalBidPolicy | None = None
        self._agent = None
        # Convenience stream for sample_action(); deliberately outside the
        # checkpoint surface (exploration helpers are not episode state).
        self._sample_rng = rng_from(self.seed, f"env-sample-{self.scheme}")

    # ------------------------------------------------------------------
    # Episode lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> dict[str, Any]:
        """Start a fresh episode; returns the initial observation."""
        self.session = self.engine.session(self.scenario, self.scheme, self.seed)
        self._bind(self._requested_node_id)
        return self.observation()

    def _bind(self, node_id: int | None) -> None:
        """Attach the external policy to the controlled node."""
        selection = self.session.trainer.selection
        if not isinstance(selection, AuctionSelection):
            raise ValueError(
                f"scheme {self.scheme!r} runs no auction mechanism; "
                "AuctionEnv needs an auction scheme (FMore/PsiFMore)"
            )
        self.mechanism = selection.mechanism
        agents = {a.node_id: a for a in selection.agents}
        if node_id is None:
            node_id = selection.agents[0].node_id
        if node_id not in agents:
            raise ValueError(
                f"node_id {node_id} is not in the federation "
                f"({len(agents)} nodes)"
            )
        self.node_id = int(node_id)
        self._agent = agents[self.node_id]
        self._policy = ExternalBidPolicy()
        self._policy.label = "controlled"
        self.mechanism.attach_bid_policy(self.node_id, self._policy)

    @property
    def done(self) -> bool:
        return self.session is None or self.session.rounds_remaining <= 0

    def observation(self) -> dict[str, Any]:
        """The controlled node's public view of the upcoming round."""
        if self.session is None:
            raise RuntimeError("call reset() before observing")
        solver = self._agent.solver
        last = self.mechanism.history[-1] if self.mechanism.history else None
        threshold = None
        if last is not None and last.outcome.winners:
            threshold = min(float(w.score) for w in last.outcome.winners)
        quality, payment = solver.bid(self._agent.theta)
        return {
            "round_index": self.session.rounds_run + 1,
            "rounds_remaining": self.session.rounds_remaining,
            "n_clients": self.scenario.n_clients,
            "k_winners": self.scenario.k_winners,
            "theta": float(self._agent.theta),
            # Capacity as of the node's last availability draw (its nominal
            # endowment before round one) — the node's own knowledge, no RNG.
            "capacity": np.asarray(
                self._agent.quality_extractor(self._agent.last_available),
                dtype=float,
            ),
            "equilibrium_quality": np.asarray(quality, dtype=float),
            "equilibrium_payment": float(payment),
            "last_threshold": threshold,
            "rounds_waited": int(self._policy.waits.get(self.node_id, 0)),
            "last_payoff": float(
                self._policy.last_payoffs.get(self.node_id, 0.0)
            ),
        }

    def sample_action(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """A random feasible full bid: ``m`` qualities plus a payment.

        Qualities are uniform in the node's feasible box ``[lo,
        min(capacity, hi)]``; the payment is the equilibrium ask scaled by
        a uniform factor in ``[0.5, 1.5]``.  Draws come from ``rng`` when
        given, else from the env's own seeded convenience stream (stable
        across runs, but *not* part of the checkpoint surface — learners
        that need replayable exploration must pass their own generator).
        """
        if self.session is None:
            raise RuntimeError("call reset() before sampling an action")
        if rng is None:
            rng = self._sample_rng
        solver = self._agent.solver
        bounds = np.asarray(solver.quality_bounds, dtype=float)
        cap = np.asarray(
            self._agent.quality_extractor(self._agent.last_available),
            dtype=float,
        )
        lo = bounds[:, 0]
        hi = np.minimum(cap, bounds[:, 1])
        hi = np.maximum(hi, lo)
        qualities = rng.uniform(lo, hi)
        _, eq_payment = solver.bid(self._agent.theta)
        payment = float(eq_payment) * rng.uniform(0.5, 1.5)
        return np.concatenate([qualities, [payment]])

    def step(self, action=None) -> tuple[dict[str, Any], float, bool, dict[str, Any]]:
        """Submit ``action`` as this round's bid; run the round.

        Returns ``(observation, reward, done, info)`` in the familiar gym
        shape.  ``info`` carries whether the bid won, the charged payment
        and the full :class:`~repro.api.engine.RoundEvent`.
        """
        if self.session is None:
            raise RuntimeError("call reset() before stepping")
        if self.done:
            raise RuntimeError("episode is over; call reset()")
        quality, payment = self._parse_action(action)
        if payment is not None or quality is not None:
            self._policy.set_action(self.node_id, payment, quality)
        event = next(self.session)
        feedback = self._policy.last_feedback
        reward = 0.0
        won = False
        paid = 0.0
        if feedback is not None:
            idx = feedback.node_ids.index(self.node_id)
            won = bool(feedback.won[idx])
            paid = float(feedback.payments[idx])
            reward = float(feedback.payoffs[idx])
        info = {"won": won, "paid": paid, "event": event}
        return self.observation() if not self.done else {}, reward, self.done, info

    def _parse_action(
        self, action
    ) -> tuple[list[float] | None, float | None]:
        if action is None:
            return None, None
        arr = np.atleast_1d(np.asarray(action, dtype=float))
        if arr.size == 1:
            return None, self._check_payment(float(arr[0]))
        bounds = np.asarray(self._agent.solver.quality_bounds, dtype=float)
        m = len(bounds)
        if arr.size != m + 1:
            raise ValueError(
                f"action must be a scalar payment or a length-{m + 1} "
                f"(qualities + payment) vector; got size {arr.size}"
            )
        qualities = arr[:-1]
        # Declared qualities must lie in the *game's* quality box — an
        # out-of-box vector is a malformed action, not a bold bid, so it
        # errors instead of being clamped silently.  (The node's dynamic
        # capacity cap is still applied by BidBatch.clip_qualities: that
        # one is private state the agent cannot know.)
        if not np.all(np.isfinite(qualities)):
            raise ValueError(f"action qualities must be finite; got {qualities!r}")
        lo, hi = bounds[:, 0], bounds[:, 1]
        if np.any(qualities < lo) or np.any(qualities > hi):
            raise ValueError(
                f"action qualities {qualities!r} fall outside the game's "
                f"quality box [{lo!r}, {hi!r}]"
            )
        return [float(v) for v in qualities], self._check_payment(float(arr[-1]))

    @staticmethod
    def _check_payment(payment: float) -> float:
        if not np.isfinite(payment) or payment <= 0.0:
            raise ValueError(
                f"action payment must be a positive finite ask; got {payment!r}"
            )
        return payment

    # ------------------------------------------------------------------
    # Checkpointing (bitwise resume, via the session surface)
    # ------------------------------------------------------------------
    def snapshot(self):
        """A :class:`~repro.api.store.Checkpoint` of the episode so far."""
        if self.session is None:
            raise RuntimeError("call reset() before snapshotting")
        return self.session.snapshot()

    def restore(self, checkpoint) -> dict[str, Any]:
        """Resume an episode from :meth:`snapshot`; returns the observation.

        The controlled node's policy state (pending action) and the
        bidding stream position ride in the checkpoint, so the resumed
        episode continues bitwise-identically.
        """
        self.session = self.engine.session(self.scenario, self.scheme, self.seed)
        self._bind(self._requested_node_id)
        self.session.restore(checkpoint)
        return self.observation()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = (
            "unstarted"
            if self.session is None
            else f"round {self.session.rounds_run}/{self.scenario.n_rounds}"
        )
        return (
            f"AuctionEnv(scheme={self.scheme!r}, seed={self.seed}, "
            f"node={self.node_id}, {where})"
        )
