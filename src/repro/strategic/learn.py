"""The ``BID_LEARNERS`` family: trainable strategic bidders over the gym.

PR 6's :class:`~repro.strategic.gym.AuctionEnv` turned one auction cell
into a sequential decision problem; this module closes the loop with
bidders that *learn* from it.  A :class:`BidLearner` maps the controlled
node's public observation to a relative markup from a discrete menu
(``payment = equilibrium_ask * (1 + markup)``); two members register:

* ``q_table`` — tabular Q-learning over a coarse discretisation of the
  observation (theta bucket x rounds-waited bucket x won-last flag), with
  epsilon-greedy exploration that decays per episode;
* ``pg_mlp`` — REINFORCE over a tiny two-layer MLP built on the existing
  :mod:`repro.fl.nn` stack (no new dependencies): softmax policy over the
  markup menu, episode-mean baseline, manual backprop through the layer
  chain.

Both menus put ``markup = 0`` first, so an untrained (all-zero /
symmetric) learner tie-breaks to the truthful ask.

:class:`BidLearnerTrainer` drives seeded episodes over
``FMoreEngine.session`` — every episode is a pure function of
``(scenario, scheme, env_seed)`` plus the learner's state and the
training stream's position, so training is deterministic end to end and
checkpoints written through :class:`~repro.api.store.ExperimentStore`
(one pseudo-cell ``learn_<name>-seed<train_seed>`` per learner, riding
the retained ``round-<episode>/`` directories) resume bitwise-identically
from any retained episode.

A trained learner deploys through the ``learned`` entry of
``BID_POLICIES``: :func:`save_policy_artifact` writes a self-contained
JSON artifact (spec + state + weights) whose SHA-256 a scenario can pin,
and :class:`LearnedBidding` replays the greedy policy inside the
mechanism's ordinary bid-collection path — which is how the incentive
report's "learned deviation" row measures the best adaptive adversary
found (:mod:`repro.analysis.incentive_report`).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..core.registry import BID_LEARNERS, BID_POLICIES
from ..fl.nn import SGD, Dense, Sequential, Tanh
from ..sim.rng import rng_from, rng_state, set_rng_state
from .gym import AuctionEnv
from .policies import BidPolicy

__all__ = [
    "BID_LEARNERS",
    "DEFAULT_MARKUPS",
    "BidObservation",
    "features",
    "N_FEATURES",
    "BidLearner",
    "QTableLearner",
    "PolicyGradientLearner",
    "LearnedBidding",
    "BidLearnerTrainer",
    "save_policy_artifact",
    "load_policy_artifact",
    "artifact_digest",
    "evaluate",
    "greedy_controller",
    "jitter_controller",
    "curve_to_csv",
]

ARTIFACT_FORMAT = 1

#: The shared markup menu.  ``0.0`` is deliberately first: ``argmax``
#: tie-breaks toward the lowest index, so a fresh (all-zero) learner bids
#: exactly truthfully until feedback says otherwise.
DEFAULT_MARKUPS = (0.0, -0.1, -0.05, 0.05, 0.1, 0.2)

#: Rounds-waited horizon used to normalise the wait feature.
WAIT_HORIZON = 5


# ----------------------------------------------------------------------
# Observations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BidObservation:
    """The slice of the env observation a learner conditions on.

    One definition shared by the training path (built from
    ``AuctionEnv.observation()`` dicts) and the deployed
    :class:`LearnedBidding` policy (built per node from the mechanism's
    :class:`~repro.strategic.policies.BidBatch`), so train-time and
    deploy-time features cannot drift apart.
    """

    theta: float
    equilibrium_payment: float
    last_threshold: float | None
    rounds_waited: int
    last_payoff: float

    @classmethod
    def from_env(cls, obs: Mapping[str, Any]) -> "BidObservation":
        threshold = obs["last_threshold"]
        return cls(
            theta=float(obs["theta"]),
            equilibrium_payment=float(obs["equilibrium_payment"]),
            last_threshold=None if threshold is None else float(threshold),
            rounds_waited=int(obs.get("rounds_waited", 0)),
            last_payoff=float(obs.get("last_payoff", 0.0)),
        )


N_FEATURES = 5


def features(ob: BidObservation) -> np.ndarray:
    """A bounded, scale-free feature vector for function approximators.

    Payoff and threshold are squashed by ``tanh`` after normalising with
    the node's own equilibrium ask — the only price scale a node knows —
    so features stay O(1) across cost families and population sizes.
    """
    scale = abs(ob.equilibrium_payment) + 1e-12
    threshold_missing = 1.0 if ob.last_threshold is None else 0.0
    threshold = (
        0.0
        if ob.last_threshold is None
        else math.tanh(ob.last_threshold / scale)
    )
    return np.array(
        [
            float(ob.theta),
            min(ob.rounds_waited / WAIT_HORIZON, 1.0),
            math.tanh(ob.last_payoff / scale),
            threshold_missing,
            threshold,
        ],
        dtype=float,
    )


# ----------------------------------------------------------------------
# Learners
# ----------------------------------------------------------------------
def _check_markups(markups: Sequence[float]) -> list[float]:
    menu = [float(m) for m in markups]
    if not menu or any(m <= -1.0 for m in menu):
        raise ValueError("markups must be a non-empty menu of values > -1")
    if len(set(menu)) != len(menu):
        raise ValueError("markups must be distinct")
    return menu


class BidLearner:
    """Base trainable bidder: markup-menu policy plus an update rule.

    Subclasses implement :meth:`act` (exploratory action during
    training), :meth:`greedy` (deterministic deployment action), the
    :meth:`update` / :meth:`finish_episode` learning hooks, and the
    persistence trio :meth:`state_dict` / :meth:`weights` / :meth:`spec`.
    All randomness flows through the generator the trainer passes to
    :meth:`act` — learners own no streams, which is what makes training
    checkpointable at episode granularity.
    """

    name: str = "base"

    def __init__(self, markups: Sequence[float] = DEFAULT_MARKUPS):
        self.markups = _check_markups(markups)

    @property
    def n_actions(self) -> int:
        return len(self.markups)

    # -- acting ---------------------------------------------------------
    def act(self, ob: BidObservation, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def greedy(self, ob: BidObservation) -> int:
        raise NotImplementedError

    # -- learning -------------------------------------------------------
    def begin_episode(self) -> None:
        """Reset per-episode buffers (called by the trainer at reset)."""

    def update(
        self,
        ob: BidObservation,
        action: int,
        reward: float,
        next_ob: BidObservation | None,
        done: bool,
    ) -> None:
        """One transition of feedback."""

    def finish_episode(self) -> None:
        """Episode boundary (decay schedules, policy-gradient steps)."""

    # -- persistence ----------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able non-array state (schedules, counters)."""
        return {}

    def load_state(self, state: Mapping[str, Any]) -> None:
        if state:
            raise ValueError(
                f"bid learner {self.name!r} is stateless but was given "
                f"state keys {sorted(state)}"
            )

    def weights(self) -> list[np.ndarray]:
        """Array-valued state (ride the checkpoint ``weights.npz``)."""
        return []

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        if len(weights):
            raise ValueError(f"bid learner {self.name!r} takes no weights")

    def spec(self) -> dict:
        """A ``BID_LEARNERS.create``-able reconstruction of this config."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(markups={self.markups})"


@BID_LEARNERS.register("q_table")
class QTableLearner(BidLearner):
    """Tabular Q-learning over a coarse observation discretisation.

    The state index is ``theta`` bucketed into ``theta_bins`` (thetas are
    clipped into ``[0, 1)`` bucket space), rounds-waited capped at
    ``wait_cap``, and a won-last-round flag — small enough that a few
    dozen episodes visit every reachable state.  Exploration is
    epsilon-greedy with per-episode decay; one ``rng.random()`` is always
    drawn first per action so the stream position is a pure function of
    the step count.
    """

    name = "q_table"

    def __init__(
        self,
        markups: Sequence[float] = DEFAULT_MARKUPS,
        lr: float = 0.2,
        discount: float = 0.9,
        epsilon: float = 0.2,
        epsilon_decay: float = 0.97,
        epsilon_min: float = 0.05,
        theta_bins: int = 4,
        wait_cap: int = 3,
    ):
        super().__init__(markups)
        if not (0.0 < lr <= 1.0):
            raise ValueError("lr must lie in (0, 1]")
        if not (0.0 <= discount <= 1.0):
            raise ValueError("discount must lie in [0, 1]")
        if not (0.0 <= epsilon <= 1.0 and 0.0 <= epsilon_min <= 1.0):
            raise ValueError("epsilon and epsilon_min must lie in [0, 1]")
        if not (0.0 < epsilon_decay <= 1.0):
            raise ValueError("epsilon_decay must lie in (0, 1]")
        if theta_bins < 1 or wait_cap < 0:
            raise ValueError("theta_bins must be >= 1 and wait_cap >= 0")
        self.lr = float(lr)
        self.discount = float(discount)
        self.epsilon0 = float(epsilon)
        self.epsilon = float(epsilon)
        self.epsilon_decay = float(epsilon_decay)
        self.epsilon_min = float(epsilon_min)
        self.theta_bins = int(theta_bins)
        self.wait_cap = int(wait_cap)
        n_states = self.theta_bins * (self.wait_cap + 1) * 2
        self.q = np.zeros((n_states, self.n_actions), dtype=float)

    def _index(self, ob: BidObservation) -> int:
        theta_bucket = min(
            self.theta_bins - 1, max(0, int(ob.theta * self.theta_bins))
        )
        wait_bucket = min(ob.rounds_waited, self.wait_cap)
        won_last = 1 if ob.last_payoff > 0.0 else 0
        return (
            theta_bucket * (self.wait_cap + 1) + wait_bucket
        ) * 2 + won_last

    def act(self, ob, rng):
        explore = rng.random() < self.epsilon
        if explore:
            return int(rng.integers(self.n_actions))
        return self.greedy(ob)

    def greedy(self, ob):
        return int(np.argmax(self.q[self._index(ob)]))

    def update(self, ob, action, reward, next_ob, done):
        target = float(reward)
        if not done and next_ob is not None:
            target += self.discount * float(self.q[self._index(next_ob)].max())
        idx = self._index(ob)
        self.q[idx, action] += self.lr * (target - self.q[idx, action])

    def finish_episode(self):
        self.epsilon = max(
            self.epsilon_min, self.epsilon * self.epsilon_decay
        )

    def state_dict(self) -> dict:
        return {"epsilon": float(self.epsilon)}

    def load_state(self, state: Mapping[str, Any]) -> None:
        unknown = sorted(set(state) - {"epsilon"})
        if unknown:
            raise ValueError(f"unknown q_table state keys {unknown}")
        self.epsilon = float(state.get("epsilon", self.epsilon0))

    def weights(self) -> list[np.ndarray]:
        return [self.q.copy()]

    def set_weights(self, weights):
        if len(weights) != 1:
            raise ValueError(f"q_table takes one array, got {len(weights)}")
        q = np.asarray(weights[0], dtype=float)
        if q.shape != self.q.shape:
            raise ValueError(
                f"q table shape mismatch: stored {q.shape}, "
                f"configured {self.q.shape}"
            )
        self.q = q.copy()

    def spec(self) -> dict:
        return {
            "name": self.name,
            "markups": list(self.markups),
            "lr": self.lr,
            "discount": self.discount,
            "epsilon": self.epsilon0,
            "epsilon_decay": self.epsilon_decay,
            "epsilon_min": self.epsilon_min,
            "theta_bins": self.theta_bins,
            "wait_cap": self.wait_cap,
        }


@BID_LEARNERS.register("pg_mlp")
class PolicyGradientLearner(BidLearner):
    """REINFORCE over a tiny MLP policy, on the :mod:`repro.fl.nn` stack.

    The network maps :func:`features` to one logit per menu entry;
    actions sample the softmax during training and take the argmax when
    deployed.  At each episode end the standard REINFORCE gradient with
    an episode-mean baseline is pushed through the existing layer
    ``backward`` chain and applied by the model's own SGD — no new
    autodiff, no new dependencies.  Weight init is seeded by
    ``init_seed`` (part of :meth:`spec`), so two learners built from the
    same spec start bitwise-identical.
    """

    name = "pg_mlp"

    def __init__(
        self,
        markups: Sequence[float] = DEFAULT_MARKUPS,
        hidden: int = 16,
        lr: float = 0.05,
        discount: float = 0.9,
        temperature: float = 1.0,
        init_seed: int = 0,
    ):
        super().__init__(markups)
        if hidden < 1:
            raise ValueError("hidden must be >= 1")
        if lr <= 0.0:
            raise ValueError("lr must be positive")
        if not (0.0 <= discount <= 1.0):
            raise ValueError("discount must lie in [0, 1]")
        if temperature <= 0.0:
            raise ValueError("temperature must be positive")
        self.hidden = int(hidden)
        self.lr = float(lr)
        self.discount = float(discount)
        self.temperature = float(temperature)
        self.init_seed = int(init_seed)
        n_actions = self.n_actions
        self.model = Sequential(
            lambda: [Dense(self.hidden), Tanh(), Dense(n_actions)],
            input_shape=(N_FEATURES,),
            optimizer=SGD(lr=self.lr),
            rng=rng_from(self.init_seed, "bid-learner-pg-init"),
        )
        # Zero the output layer: a fresh policy is exactly uniform, so its
        # argmax tie-breaks to menu index 0 — the truthful ask.
        for param in self.model.layers[-1].params:
            param[...] = 0.0
        self._features: list[np.ndarray] = []
        self._actions: list[int] = []
        self._rewards: list[float] = []

    def _probs(self, ob: BidObservation) -> np.ndarray:
        logits = self.model.forward(features(ob)[None, :], training=False)[0]
        z = (logits - logits.max()) / self.temperature
        p = np.exp(z)
        return p / p.sum()

    def act(self, ob, rng):
        probs = self._probs(ob)
        draw = rng.random()
        choice = int(np.searchsorted(np.cumsum(probs), draw))
        return min(choice, self.n_actions - 1)

    def greedy(self, ob):
        return int(np.argmax(self._probs(ob)))

    def begin_episode(self):
        self._features.clear()
        self._actions.clear()
        self._rewards.clear()

    def update(self, ob, action, reward, next_ob, done):
        self._features.append(features(ob))
        self._actions.append(int(action))
        self._rewards.append(float(reward))

    def finish_episode(self):
        steps = len(self._actions)
        if steps == 0:
            return
        x = np.asarray(self._features, dtype=float)
        actions = np.asarray(self._actions, dtype=int)
        rewards = np.asarray(self._rewards, dtype=float)
        returns = np.empty(steps, dtype=float)
        acc = 0.0
        for t in range(steps - 1, -1, -1):
            acc = rewards[t] + self.discount * acc
            returns[t] = acc
        advantage = returns - returns.mean()
        std = float(returns.std())
        if std > 1e-8:
            advantage = advantage / std
        logits = self.model.forward(x, training=True)
        z = (logits - logits.max(axis=1, keepdims=True)) / self.temperature
        probs = np.exp(z)
        probs /= probs.sum(axis=1, keepdims=True)
        # d(-log pi(a|x) * adv)/dlogits, averaged over the episode.
        grad = probs
        grad[np.arange(steps), actions] -= 1.0
        grad *= advantage[:, None] / (self.temperature * steps)
        for layer in reversed(self.model.layers):
            grad = layer.backward(grad)
        params: list[np.ndarray] = []
        grads: list[np.ndarray] = []
        for layer in self.model.layers:
            params.extend(layer.params)
            grads.extend(layer.grads)
        self.model.optimizer.step(params, grads)
        self.begin_episode()

    def state_dict(self) -> dict:
        # The transition buffers are always empty at episode boundaries —
        # the only places the trainer checkpoints — so arrays are the
        # whole persistent state.
        return {}

    def load_state(self, state: Mapping[str, Any]) -> None:
        unknown = sorted(set(state))
        if unknown:
            raise ValueError(f"unknown pg_mlp state keys {unknown}")

    def weights(self) -> list[np.ndarray]:
        return self.model.get_weights()

    def set_weights(self, weights):
        self.model.set_weights([np.asarray(w, dtype=float) for w in weights])

    def spec(self) -> dict:
        return {
            "name": self.name,
            "markups": list(self.markups),
            "hidden": self.hidden,
            "lr": self.lr,
            "discount": self.discount,
            "temperature": self.temperature,
            "init_seed": self.init_seed,
        }


# ----------------------------------------------------------------------
# Policy artifacts (train once, deploy anywhere)
# ----------------------------------------------------------------------
def save_policy_artifact(path: str | Path, learner: BidLearner) -> str:
    """Write a self-contained JSON artifact; returns its SHA-256 digest.

    The artifact carries the learner's :meth:`~BidLearner.spec` (how to
    rebuild it), :meth:`~BidLearner.state_dict` and weights (as nested
    lists — ``repr``-exact for float64, so a load round-trips bitwise).
    Written atomically, like every store file.
    """
    payload = {
        "format": ARTIFACT_FORMAT,
        "learner": learner.spec(),
        "state": learner.state_dict(),
        "weights": [
            np.asarray(w, dtype=float).tolist() for w in learner.weights()
        ],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def artifact_digest(path: str | Path) -> str:
    """SHA-256 of an artifact's bytes (what a scenario's ``digest`` pins)."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def load_policy_artifact(path: str | Path) -> BidLearner:
    """Rebuild the trained :class:`BidLearner` from an artifact file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read policy artifact {path}: {exc}") from exc
    if data.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"policy artifact {path} has format {data.get('format')!r}; "
            f"this build reads format {ARTIFACT_FORMAT}"
        )
    learner = BID_LEARNERS.create(dict(data["learner"]))
    learner.load_state(dict(data.get("state", {})))
    learner.set_weights(
        [np.asarray(w, dtype=float) for w in data.get("weights", [])]
    )
    return learner


class LearnedBidding(BidPolicy):
    """Deploy a trained learner greedily inside the mechanism's bid path.

    Constructed by the ``learned`` entry of ``BID_POLICIES`` (see
    :mod:`repro.strategic.policies`); the scenario pins the artifact file
    and optionally its digest.  Each round every assigned node rebuilds
    the same :class:`BidObservation` the trainer used — equilibrium ask
    from its batch row, last clearing threshold and per-node win/wait
    history from :meth:`observe` — and asks the learner for its greedy
    markup.  Deterministic (no rng draws), and the observed history
    round-trips ``state_dict`` so checkpointed runs resume bitwise.
    """

    name = "learned"
    enforce_ir = False

    def __init__(self, artifact: str | Path, digest: str | None = None):
        super().__init__()
        self.artifact = str(artifact)
        actual = artifact_digest(self.artifact)
        if digest is not None and str(digest) != actual:
            raise ValueError(
                f"policy artifact {self.artifact} has digest {actual[:12]}…, "
                f"but the scenario pins {str(digest)[:12]}…"
            )
        self.digest = actual
        self.learner = load_policy_artifact(self.artifact)
        self._last_threshold: float | None = None
        self._waits: dict[int, int] = {}
        self._last_payoffs: dict[int, float] = {}

    def shade(self, batch, rng):
        payments = np.array(batch.payments, dtype=float)
        for j, node_id in enumerate(batch.node_ids):
            node_id = int(node_id)
            ob = BidObservation(
                theta=float(batch.thetas[j]),
                equilibrium_payment=float(batch.payments[j]),
                last_threshold=self._last_threshold,
                rounds_waited=int(self._waits.get(node_id, 0)),
                last_payoff=float(self._last_payoffs.get(node_id, 0.0)),
            )
            markup = self.learner.markups[self.learner.greedy(ob)]
            payments[j] = batch.payments[j] * (1.0 + markup)
        return batch.qualities, payments

    def observe(self, feedback, rng):
        self._last_threshold = (
            None if feedback.threshold is None else float(feedback.threshold)
        )
        payoffs = feedback.payoffs
        for j, node_id in enumerate(feedback.node_ids):
            node_id = int(node_id)
            if feedback.won[j]:
                self._waits[node_id] = 0
            else:
                self._waits[node_id] = self._waits.get(node_id, 0) + 1
            self._last_payoffs[node_id] = float(payoffs[j])

    def state_dict(self) -> dict:
        return {
            "last_threshold": self._last_threshold,
            "waits": {str(k): int(v) for k, v in self._waits.items()},
            "last_payoffs": {
                str(k): float(v) for k, v in self._last_payoffs.items()
            },
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        unknown = sorted(
            set(state) - {"last_threshold", "waits", "last_payoffs"}
        )
        if unknown:
            raise ValueError(f"unknown learned state keys {unknown}")
        threshold = state.get("last_threshold")
        self._last_threshold = None if threshold is None else float(threshold)
        self._waits = {
            int(k): int(v) for k, v in dict(state.get("waits", {})).items()
        }
        self._last_payoffs = {
            int(k): float(v)
            for k, v in dict(state.get("last_payoffs", {})).items()
        }


# ----------------------------------------------------------------------
# Training loop
# ----------------------------------------------------------------------
class BidLearnerTrainer:
    """Seeded episode loop: ``AuctionEnv`` in, trained learner out.

    Parameters
    ----------
    scenario:
        The cell spec; its ``bidding`` mix drives the rest of the
        population (all truthful by default — the setting the incentive
        report trains against).
    learner:
        A :class:`BidLearner`, a ``BID_LEARNERS`` name, or a spec dict.
    scheme / env_seed / node_id:
        The :class:`~repro.strategic.gym.AuctionEnv` cell the learner
        plays (``env_seed`` is the *cell's* seed: federation, types and
        the other bidders' streams).
    train_seed:
        Seeds the learner's exploration stream
        (``bid-learner-<name>-<scheme>``) — independent of the env.
    store / checkpoint_every:
        When a store is given, training state is checkpointed under the
        pseudo-cell ``learn_<name>-seed<train_seed>`` every
        ``checkpoint_every`` episodes (plus once at the end), with
        episodes as the round index so the store's retention policy
        (``keep_last_n`` / ``keep_every_k``) applies unchanged.

    Each episode resets the env (a fresh federation — episodes are
    *identical* replays apart from the learner's own bids), so training
    is a pure function of the arguments above: two trainers with equal
    arguments produce bitwise-equal learners, and :meth:`train` with
    ``resume=True`` continues from the newest retained checkpoint
    bitwise-identically to a never-interrupted run.
    """

    def __init__(
        self,
        scenario,
        learner: "BidLearner | str | Mapping[str, Any]" = "q_table",
        scheme: str = "FMore",
        env_seed: int = 0,
        node_id: int | None = None,
        train_seed: int = 0,
        store=None,
        checkpoint_every: int | None = None,
        engine=None,
    ):
        from ..api.store import ExperimentStore

        if isinstance(learner, (str, Mapping)):
            learner = BID_LEARNERS.create(learner)
        if not isinstance(learner, BidLearner):
            raise TypeError(
                f"learner must be a BidLearner, name or spec; "
                f"got {type(learner).__name__}"
            )
        self.scenario = scenario
        self.learner = learner
        self.scheme = str(scheme)
        self.env_seed = int(env_seed)
        self.node_id = None if node_id is None else int(node_id)
        self.train_seed = int(train_seed)
        self.store = ExperimentStore.coerce(store)
        if checkpoint_every is not None and int(checkpoint_every) < 1:
            raise ValueError("checkpoint_every must be >= 1 (or None)")
        self.checkpoint_every = (
            None if checkpoint_every is None else int(checkpoint_every)
        )
        self.env = AuctionEnv(
            scenario,
            scheme=self.scheme,
            seed=self.env_seed,
            node_id=self.node_id,
            engine=engine,
        )
        self.rng = rng_from(
            self.train_seed, f"bid-learner-{self.learner.name}-{self.scheme}"
        )
        self.curve: list[dict] = []
        self.episodes_done = 0

    @property
    def cell_scheme(self) -> str:
        """The store pseudo-scheme this trainer checkpoints under."""
        return f"learn_{self.learner.name}"

    # -- episodes -------------------------------------------------------
    def run_episode(self) -> dict:
        """Play one full episode, learning online; returns the curve row."""
        obs = self.env.reset()
        self.learner.begin_episode()
        total = 0.0
        wins = 0
        steps = 0
        done = False
        while not done:
            ob = BidObservation.from_env(obs)
            action = self.learner.act(ob, self.rng)
            payment = ob.equilibrium_payment * (
                1.0 + self.learner.markups[action]
            )
            obs, reward, done, info = self.env.step(payment)
            next_ob = None if done else BidObservation.from_env(obs)
            self.learner.update(ob, action, reward, next_ob, done)
            total += float(reward)
            wins += int(bool(info["won"]))
            steps += 1
        self.learner.finish_episode()
        row = {
            "episode": self.episodes_done,
            "payoff": float(total),
            "wins": wins,
            "steps": steps,
        }
        self.episodes_done += 1
        self.curve.append(row)
        return row

    def train(
        self, episodes: int, resume: bool = False
    ) -> list[dict]:
        """Run up to ``episodes`` total episodes; returns the full curve.

        With ``resume=True`` and a store, the trainer first restores the
        newest retained checkpoint of its pseudo-cell (no-op when none
        exists) and only plays the remaining episodes.
        """
        if episodes < 0:
            raise ValueError("episodes must be >= 0")
        if resume:
            self.resume()
        trained = False
        while self.episodes_done < episodes:
            self.run_episode()
            trained = True
            if (
                self.store is not None
                and self.checkpoint_every is not None
                and self.episodes_done % self.checkpoint_every == 0
            ):
                self.save_checkpoint()
                trained = False
        if self.store is not None and trained:
            self.save_checkpoint()
        return self.curve

    # -- persistence ----------------------------------------------------
    def snapshot(self):
        """A store :class:`~repro.api.store.Checkpoint` of training so far.

        Episodes stand in for rounds (``round_index`` = episodes played),
        records stay empty (there is no federated history to carry), and
        the learner rides the policy-state slot: arrays in ``weights``,
        everything else under one ``policy_states`` entry together with
        the training curve and the env binding (validated on load — a
        checkpoint trained against a different cell refuses to resume).
        """
        from ..api.store import Checkpoint, scenario_hash

        return Checkpoint(
            scenario=self.scenario.to_dict(),
            scenario_hash=scenario_hash(self.scenario),
            scheme=self.cell_scheme,
            seed=self.train_seed,
            round_index=self.episodes_done,
            records=[],
            weights=[
                np.asarray(w, dtype=float) for w in self.learner.weights()
            ],
            rng_state=rng_state(self.rng),
            policy_states=[
                {
                    "name": self.learner.name,
                    "spec": self.learner.spec(),
                    "state": self.learner.state_dict(),
                    "curve": [dict(row) for row in self.curve],
                    "env_scheme": self.scheme,
                    "env_seed": self.env_seed,
                    "node_id": self.node_id,
                }
            ],
        )

    def save_checkpoint(self):
        """Persist :meth:`snapshot` through the store (requires a store)."""
        if self.store is None:
            raise ValueError("trainer has no store to checkpoint into")
        self.store.register_scenario(self.scenario)
        return self.store.save_checkpoint(self.snapshot())

    def restore(self, checkpoint) -> int:
        """Install a trainer checkpoint; returns the episode to continue at."""
        from ..api.store import StoreError

        if checkpoint.scheme != self.cell_scheme:
            raise StoreError(
                f"checkpoint is for cell scheme {checkpoint.scheme!r}, "
                f"not {self.cell_scheme!r}"
            )
        if int(checkpoint.seed) != self.train_seed:
            raise StoreError(
                f"checkpoint is for train seed {checkpoint.seed}, "
                f"not {self.train_seed}"
            )
        if len(checkpoint.policy_states) != 1:
            raise StoreError(
                "trainer checkpoints carry exactly one policy-state entry; "
                f"got {len(checkpoint.policy_states)}"
            )
        entry = checkpoint.policy_states[0]
        if entry.get("name") != self.learner.name:
            raise StoreError(
                f"checkpoint trained learner {entry.get('name')!r}, "
                f"not {self.learner.name!r}"
            )
        binding = (
            entry.get("env_scheme"),
            entry.get("env_seed"),
            entry.get("node_id"),
        )
        expected = (self.scheme, self.env_seed, self.node_id)
        if binding != expected:
            raise StoreError(
                f"checkpoint trained against env cell {binding!r}, "
                f"not {expected!r}"
            )
        self.learner.load_state(dict(entry.get("state", {})))
        self.learner.set_weights(checkpoint.weights)
        set_rng_state(self.rng, checkpoint.rng_state)
        self.curve = [dict(row) for row in entry.get("curve", [])]
        self.episodes_done = int(checkpoint.round_index)
        return self.episodes_done

    def resume(self) -> int:
        """Restore the newest retained store checkpoint, if any."""
        if self.store is None:
            return self.episodes_done
        checkpoint = self.store.latest_checkpoint(
            self.scenario, self.cell_scheme, self.train_seed
        )
        if checkpoint is None:
            return self.episodes_done
        return self.restore(checkpoint)

    def save_artifact(self, path: str | Path) -> str:
        """Write the trained policy artifact; returns its digest."""
        return save_policy_artifact(path, self.learner)


# ----------------------------------------------------------------------
# Evaluation (greedy policy vs baselines, shared by CLI and CI gates)
# ----------------------------------------------------------------------
def evaluate(
    scenario,
    controller: Callable[[BidObservation], float],
    scheme: str = "FMore",
    seed: int = 0,
    node_id: int | None = None,
    episodes: int = 4,
    engine=None,
) -> list[float]:
    """Total controlled-node payoff of ``controller`` per episode.

    ``controller`` maps a :class:`BidObservation` to the payment to ask;
    every episode replays the same cell, so two controllers evaluated
    with equal arguments face exactly the same auctions.
    """
    env = AuctionEnv(
        scenario, scheme=scheme, seed=seed, node_id=node_id, engine=engine
    )
    totals: list[float] = []
    for _ in range(int(episodes)):
        obs = env.reset()
        total = 0.0
        done = False
        while not done:
            payment = float(controller(BidObservation.from_env(obs)))
            obs, reward, done, _ = env.step(payment)
            total += float(reward)
        totals.append(total)
    return totals


def greedy_controller(learner: BidLearner) -> Callable[[BidObservation], float]:
    """The learner's deployment behavior: greedy markup, no exploration."""

    def control(ob: BidObservation) -> float:
        return ob.equilibrium_payment * (
            1.0 + learner.markups[learner.greedy(ob)]
        )

    return control


def jitter_controller(
    payment_scale: float = 0.05, seed: int = 0
) -> Callable[[BidObservation], float]:
    """The ``random_jitter`` baseline as a controller (seeded stream)."""
    rng = rng_from(int(seed), "learn-eval-jitter")
    scale = float(payment_scale)

    def control(ob: BidObservation) -> float:
        return ob.equilibrium_payment * math.exp(
            scale * rng.standard_normal()
        )

    return control


def curve_to_csv(curve: Sequence[Mapping[str, Any]], path: str | Path) -> None:
    """Write a training curve as CSV (the CI artifact format)."""
    lines = ["episode,payoff,wins,steps"]
    for row in curve:
        lines.append(
            f"{int(row['episode'])},{float(row['payoff'])!r},"
            f"{int(row['wins'])},{int(row['steps'])}"
        )
    Path(path).write_text("\n".join(lines) + "\n")
