"""Strategic bidders: deviation from the equilibrium strategy as data.

The paper *proves* truthful equilibrium bidding optimal (Theorems 1-3);
this subsystem makes that claim empirical.  It has three layers:

* :mod:`repro.strategic.policies` — the registry-registered
  ``BID_POLICIES`` family (``truthful``, ``fixed_markup``,
  ``random_jitter``, ``regret_matching``, ``adaptive_heuristic``,
  ``external``).  A :class:`~repro.api.scenario.Scenario` assigns
  policies to population fractions through its ``bidding`` spec and the
  mechanism partitions bidders per policy — the all-truthful slice keeps
  the vectorised ``bid_batch`` hot path bitwise-identical to a run with
  no ``bidding`` spec at all.
* :mod:`repro.strategic.gym` — :class:`AuctionEnv`, a gym-style
  environment over ``FMoreEngine.session``: one controlled agent amid a
  policy-driven population (observation = public round state, action =
  bid vector, reward = realized payoff).
* :mod:`repro.analysis.incentive_report` — the IC/IR report sweeping a
  deviating fraction across policies and schemes (CLI:
  ``python -m repro report --incentives``).
"""

from .policies import (
    BID_POLICIES,
    AdaptiveHeuristicBidding,
    BidBatch,
    BidPolicy,
    ExternalBidPolicy,
    FixedMarkupBidding,
    RandomJitterBidding,
    RegretMatchingBidding,
    RoundFeedback,
    TruthfulBidding,
    build_bid_policies,
)

__all__ = [
    "BID_POLICIES",
    "BidPolicy",
    "BidBatch",
    "RoundFeedback",
    "TruthfulBidding",
    "FixedMarkupBidding",
    "RandomJitterBidding",
    "RegretMatchingBidding",
    "AdaptiveHeuristicBidding",
    "ExternalBidPolicy",
    "build_bid_policies",
    "AuctionEnv",
]


def __getattr__(name: str):
    # AuctionEnv lives in .gym, which imports repro.api.engine; resolving
    # it lazily keeps `repro.api.scenario -> repro.strategic` cycle-free.
    if name == "AuctionEnv":
        from .gym import AuctionEnv

        return AuctionEnv
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
