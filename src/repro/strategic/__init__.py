"""Strategic bidders: deviation from the equilibrium strategy as data.

The paper *proves* truthful equilibrium bidding optimal (Theorems 1-3);
this subsystem makes that claim empirical.  It has three layers:

* :mod:`repro.strategic.policies` — the registry-registered
  ``BID_POLICIES`` family (``truthful``, ``fixed_markup``,
  ``random_jitter``, ``regret_matching``, ``adaptive_heuristic``,
  ``external``).  A :class:`~repro.api.scenario.Scenario` assigns
  policies to population fractions through its ``bidding`` spec and the
  mechanism partitions bidders per policy — the all-truthful slice keeps
  the vectorised ``bid_batch`` hot path bitwise-identical to a run with
  no ``bidding`` spec at all.
* :mod:`repro.strategic.gym` — :class:`AuctionEnv`, a gym-style
  environment over ``FMoreEngine.session``: one controlled agent amid a
  policy-driven population (observation = public round state, action =
  bid vector, reward = realized payoff).
* :mod:`repro.strategic.learn` — the trainable ``BID_LEARNERS`` family
  (``q_table``, ``pg_mlp``) with :class:`BidLearnerTrainer` driving
  checkpointed, bitwise-resumable episodes over the gym; trained
  policies deploy through the ``learned`` ``BID_POLICIES`` entry (CLI:
  ``python -m repro train-bidder``).
* :mod:`repro.analysis.incentive_report` — the IC/IR report sweeping a
  deviating fraction across policies and schemes, including a "learned
  deviation" row trained on the spot (CLI:
  ``python -m repro report --incentives``).
"""

from .policies import (
    BID_POLICIES,
    AdaptiveHeuristicBidding,
    BidBatch,
    BidPolicy,
    ExternalBidPolicy,
    FixedMarkupBidding,
    RandomJitterBidding,
    RegretMatchingBidding,
    RoundFeedback,
    TruthfulBidding,
    build_bid_policies,
)

__all__ = [
    "BID_POLICIES",
    "BidPolicy",
    "BidBatch",
    "RoundFeedback",
    "TruthfulBidding",
    "FixedMarkupBidding",
    "RandomJitterBidding",
    "RegretMatchingBidding",
    "AdaptiveHeuristicBidding",
    "ExternalBidPolicy",
    "build_bid_policies",
    "AuctionEnv",
    "BID_LEARNERS",
    "BidLearner",
    "QTableLearner",
    "PolicyGradientLearner",
    "BidLearnerTrainer",
    "LearnedBidding",
    "save_policy_artifact",
    "load_policy_artifact",
    "artifact_digest",
]

# Names resolved lazily: .gym and .learn import repro.api modules, and
# `repro.api.scenario -> repro.strategic` must stay cycle-free.
_LEARN_EXPORTS = frozenset(
    {
        "BID_LEARNERS",
        "BidLearner",
        "QTableLearner",
        "PolicyGradientLearner",
        "BidLearnerTrainer",
        "LearnedBidding",
        "save_policy_artifact",
        "load_policy_artifact",
        "artifact_digest",
    }
)


def __getattr__(name: str):
    if name == "AuctionEnv":
        from .gym import AuctionEnv

        return AuctionEnv
    if name in _LEARN_EXPORTS:
        from . import learn

        return getattr(learn, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
