"""The ``BID_POLICIES`` family: how a node deviates from equilibrium.

Every node in the baseline repro answers a bid ask with the closed-form
equilibrium bid (:meth:`repro.mec.node.EdgeNode.make_bid`).  A
:class:`BidPolicy` is a *strategic transform* of that bid: the mechanism
still prices a policy's nodes through one vectorised
``EquilibriumSolver.bid_batch`` call, then hands the whole batch to
:meth:`BidPolicy.shade` which may re-price (shade payments) or re-declare
(perturb qualities) before the sealed bids are submitted.  After winner
determination the mechanism feeds the realized outcome back through
:meth:`BidPolicy.observe` — win/loss, charged payments, and the round's
minimum winning score as a counterfactual threshold — so adaptive
policies (regret matching, heuristics) learn across rounds.

Contracts:

* ``truthful`` is the identity; nodes a scenario leaves truthful are not
  routed through a policy at all, so scenarios without a ``bidding``
  spec are bitwise-identical to the historical protocol.
* Policy randomness comes from the dedicated ``bidding-{scheme}`` stream
  the engine passes in — never from the training stream — so a strategic
  mix leaves the federation, theta draws and tie-breaks untouched.
* Stateful policies round-trip **all** observable state through
  :meth:`state_dict` / :meth:`load_state` (the same contract as
  :class:`repro.core.policies.RoundPolicy`), so checkpointed sessions
  resume bitwise-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.registry import BID_POLICIES

__all__ = [
    "BID_POLICIES",
    "BidBatch",
    "RoundFeedback",
    "BidPolicy",
    "TruthfulBidding",
    "FixedMarkupBidding",
    "RandomJitterBidding",
    "RegretMatchingBidding",
    "AdaptiveHeuristicBidding",
    "ExternalBidPolicy",
    "build_bid_policies",
]


@dataclass
class BidBatch:
    """One policy group's equilibrium-priced bids, pre-submission.

    Arrays are aligned: row ``j`` is node ``node_ids[j]`` with its round
    type ``thetas[j]``, capacity cap ``capacities[j]``, and the
    capacity-capped equilibrium bid ``(qualities[j], payments[j])`` whose
    true cost is ``costs[j]``.  ``bounds`` is the game's per-dimension
    ``[lo, hi]`` quality box — shaded qualities must stay inside
    ``[lo, min(capacity, hi)]``.
    """

    round_index: int
    node_ids: list[int]
    thetas: np.ndarray
    capacities: np.ndarray
    qualities: np.ndarray
    payments: np.ndarray
    costs: np.ndarray
    bounds: np.ndarray

    def clip_qualities(self, qualities: np.ndarray) -> np.ndarray:
        """Clip declared qualities into the feasible box (per node)."""
        lo = self.bounds[:, 0]
        hi = np.minimum(self.capacities, self.bounds[:, 1])
        return np.clip(qualities, lo, hi)


@dataclass
class RoundFeedback:
    """What one policy's nodes learned from a round's outcome.

    Arrays align with ``node_ids``; ``submitted`` marks nodes whose bid
    reached the auction (IR abstentions are ``False``).  ``values`` is
    the quasi-linear value part of each submitted bid — ``score +
    payment``, i.e. ``s(q)`` — so a counterfactual re-pricing to ``p'``
    scores ``values - p'`` against ``threshold`` (the round's minimum
    winning score; ``None`` when nobody won, in which case any submitted
    bid would have won).
    """

    round_index: int
    node_ids: list[int]
    submitted: np.ndarray
    won: np.ndarray
    payments: np.ndarray  # charged payment; 0.0 for losers/abstainers
    costs: np.ndarray     # true cost of the submitted bid; 0.0 if not submitted
    values: np.ndarray    # s(q) of the submitted bid; 0.0 if not submitted
    bid_payments: np.ndarray  # the submitted ask; 0.0 if not submitted
    threshold: float | None

    @property
    def payoffs(self) -> np.ndarray:
        """Realized per-node payoff: ``payment - cost`` for winners, else 0."""
        return np.where(self.won, self.payments - self.costs, 0.0)

    def would_win(self, payments: np.ndarray) -> np.ndarray:
        """Counterfactual win mask for re-priced asks (quasi-linear score)."""
        if self.threshold is None:
            return np.asarray(self.submitted, dtype=bool)
        scores = self.values - payments
        return self.submitted & (scores >= self.threshold - 1e-12)


class BidPolicy:
    """Base strategic policy: the identity transform.

    Subclasses override :meth:`shade` (re-price/re-declare a batch of
    equilibrium bids) and, if they learn, :meth:`observe` plus the
    :meth:`state_dict` / :meth:`load_state` pair.  ``enforce_ir``
    controls whether the mechanism still applies each node's
    ``min_margin`` abstention check to the *shaded* bid; policies that
    deliberately explore loss-making bids set it ``False``.
    """

    name: str = "base"
    enforce_ir: bool = True

    def __init__(self) -> None:
        # Display label for metrics/reports; the engine overrides it from
        # the bidding spec's optional "label" key.
        self.label = self.name

    def shade(
        self, batch: BidBatch, rng: np.random.Generator | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return the ``(qualities, payments)`` actually submitted."""
        return batch.qualities, batch.payments

    def observe(
        self, feedback: RoundFeedback, rng: np.random.Generator | None
    ) -> None:
        """Per-round outcome feedback (win/payment/counterfactuals)."""

    def state_dict(self) -> dict:
        """JSON-able snapshot of all observable state (default: none)."""
        return {}

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Install a :meth:`state_dict`; unknown keys fail loudly."""
        if state:
            raise ValueError(
                f"bid policy {self.name!r} is stateless but was given state "
                f"keys {sorted(state)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(label={self.label!r})"


@BID_POLICIES.register("truthful")
class TruthfulBidding(BidPolicy):
    """Bid the capacity-capped equilibrium strategy unchanged (the default).

    Nodes a scenario leaves truthful are not routed through a policy
    object at all — this class exists so an explicit ``truthful`` mix
    entry (e.g. as a labelled control group) is addressable.
    """

    name = "truthful"


@BID_POLICIES.register("fixed_markup")
class FixedMarkupBidding(BidPolicy):
    """Shade the ask by a constant relative markup: ``p -> p * (1 + markup)``.

    The simplest deviation: demand more than the equilibrium price while
    declaring the same quality.  Negative markups underbid (buy wins at
    reduced — possibly negative — margin).
    """

    name = "fixed_markup"

    def __init__(self, markup: float = 0.1):
        super().__init__()
        markup = float(markup)
        if markup <= -1.0:
            raise ValueError("markup must be > -1 (asks stay positive)")
        self.markup = markup
        self.enforce_ir = markup >= 0.0

    def shade(self, batch, rng):
        return batch.qualities, batch.payments * (1.0 + self.markup)


@BID_POLICIES.register("random_jitter")
class RandomJitterBidding(BidPolicy):
    """Log-normal noise on the ask (and optionally the declared quality).

    ``p -> p * exp(payment_scale * z)`` with ``z ~ N(0, 1)`` per node per
    round; ``quality_scale > 0`` additionally perturbs the declared
    quality (clipped back into the feasible capacity box).  Models noisy
    best-response play; with ``enforce_ir=False`` the jitter may submit
    below-cost asks, which is exactly what the IR report measures.
    """

    name = "random_jitter"

    def __init__(
        self,
        payment_scale: float = 0.05,
        quality_scale: float = 0.0,
        enforce_ir: bool = True,
    ):
        super().__init__()
        if payment_scale < 0.0 or quality_scale < 0.0:
            raise ValueError("jitter scales must be >= 0")
        self.payment_scale = float(payment_scale)
        self.quality_scale = float(quality_scale)
        self.enforce_ir = bool(enforce_ir)

    def shade(self, batch, rng):
        n = len(batch.node_ids)
        payments = batch.payments * np.exp(
            self.payment_scale * rng.standard_normal(n)
        )
        qualities = batch.qualities
        if self.quality_scale > 0.0:
            factors = np.exp(
                self.quality_scale * rng.standard_normal(batch.qualities.shape)
            )
            qualities = batch.clip_qualities(batch.qualities * factors)
        return qualities, payments


@BID_POLICIES.register("regret_matching")
class RegretMatchingBidding(BidPolicy):
    """Per-node regret matching over a discrete markup menu.

    Each node keeps cumulative regrets against a menu of relative markups
    and each round plays markup ``a`` with probability proportional to
    the positive part of its regret (uniform while all regrets are
    non-positive).  After winner determination the counterfactual payoff
    of every alternative markup is evaluated against the round's minimum
    winning score — re-pricing changes a quasi-linear score one-for-one —
    and regrets are updated with the realized-vs-counterfactual gap.
    Hart & Mas-Colell's guarantee: the empirical play converges to the
    set of coarse correlated equilibria, so *if* truthful bidding is
    optimal, regrets against ``markup=0`` stay dominant.
    """

    name = "regret_matching"

    def __init__(self, markups: Sequence[float] = (0.0, 0.05, 0.1, 0.2)):
        super().__init__()
        menu = [float(m) for m in markups]
        if not menu or any(m <= -1.0 for m in menu):
            raise ValueError("markups must be a non-empty menu of values > -1")
        if len(set(menu)) != len(menu):
            raise ValueError("markups must be distinct")
        self.markups = menu
        # node_id -> cumulative regret per menu entry
        self._regrets: dict[int, list[float]] = {}
        # node_id -> (chosen menu index, base equilibrium ask) for the
        # round in flight; cleared by observe(), so it is empty at every
        # between-rounds checkpoint boundary.
        self._pending: dict[int, tuple[int, float]] = {}

    def _choice_probs(self, node_id: int) -> np.ndarray:
        regrets = np.asarray(
            self._regrets.get(node_id, [0.0] * len(self.markups)), dtype=float
        )
        positive = np.clip(regrets, 0.0, None)
        total = positive.sum()
        if total <= 0.0:
            return np.full(len(self.markups), 1.0 / len(self.markups))
        return positive / total

    def shade(self, batch, rng):
        n = len(batch.node_ids)
        payments = np.array(batch.payments, dtype=float)
        draws = rng.random(n)
        for j, node_id in enumerate(batch.node_ids):
            probs = self._choice_probs(node_id)
            choice = int(np.searchsorted(np.cumsum(probs), draws[j]))
            choice = min(choice, len(self.markups) - 1)
            self._pending[node_id] = (choice, float(batch.payments[j]))
            payments[j] = batch.payments[j] * (1.0 + self.markups[choice])
        return batch.qualities, payments

    def observe(self, feedback, rng):
        realized = feedback.payoffs
        for j, node_id in enumerate(feedback.node_ids):
            pending = self._pending.pop(node_id, None)
            if pending is None or not feedback.submitted[j]:
                continue
            choice, base = pending
            regrets = self._regrets.setdefault(
                node_id, [0.0] * len(self.markups)
            )
            cost = float(feedback.costs[j])
            value = float(feedback.values[j])
            for a, markup in enumerate(self.markups):
                if a == choice:
                    continue
                ask = base * (1.0 + markup)
                wins = (
                    feedback.threshold is None
                    or value - ask >= feedback.threshold - 1e-12
                )
                counterfactual = (ask - cost) if wins else 0.0
                regrets[a] += counterfactual - float(realized[j])

    def state_dict(self) -> dict:
        return {
            "regrets": {str(k): list(v) for k, v in self._regrets.items()},
            "pending": {
                str(k): [int(c), float(b)] for k, (c, b) in self._pending.items()
            },
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        unknown = sorted(set(state) - {"regrets", "pending"})
        if unknown:
            raise ValueError(
                f"unknown regret_matching state keys {unknown}"
            )
        self._regrets = {
            int(k): [float(x) for x in v]
            for k, v in dict(state.get("regrets", {})).items()
        }
        self._pending = {
            int(k): (int(v[0]), float(v[1]))
            for k, v in dict(state.get("pending", {})).items()
        }


@BID_POLICIES.register("adaptive_heuristic")
class AdaptiveHeuristicBidding(BidPolicy):
    """Markup shaped by urgency, relative capacity, and wait time.

    Each node tracks how long it has waited since its last win; the
    effective markup is

    ``m = base_markup * (1 + capacity_weight * z) - wait_weight *
    base_markup * u``

    where ``z`` is the node's mean capacity relative to its group's
    round mean (big nodes demand more) and ``u = min(wait / wait_horizon,
    1)`` is its urgency (the longer the dry spell, the more aggressively
    it underbids).  ``urgency_weight`` bounds how far below the
    equilibrium ask a desperate node goes: ``m`` is clipped to
    ``[-urgency_weight * base_markup, +inf)``, so an urgent node may bid
    below cost — an IR-relevant deviation.
    """

    name = "adaptive_heuristic"
    enforce_ir = False

    def __init__(
        self,
        base_markup: float = 0.15,
        urgency_weight: float = 0.5,
        capacity_weight: float = 0.25,
        wait_weight: float = 1.0,
        wait_horizon: int = 5,
    ):
        super().__init__()
        if base_markup <= 0.0:
            raise ValueError("base_markup must be > 0")
        if min(urgency_weight, capacity_weight, wait_weight) < 0.0:
            raise ValueError("weights must be >= 0")
        if wait_horizon < 1:
            raise ValueError("wait_horizon must be >= 1")
        self.base_markup = float(base_markup)
        self.urgency_weight = float(urgency_weight)
        self.capacity_weight = float(capacity_weight)
        self.wait_weight = float(wait_weight)
        self.wait_horizon = int(wait_horizon)
        self._waits: dict[int, int] = {}

    def shade(self, batch, rng):
        mean_caps = batch.capacities.mean(axis=1)
        group_mean = float(mean_caps.mean()) or 1.0
        z = mean_caps / group_mean - 1.0
        waits = np.asarray(
            [self._waits.get(node_id, 0) for node_id in batch.node_ids],
            dtype=float,
        )
        urgency = np.minimum(waits / self.wait_horizon, 1.0)
        markup = (
            self.base_markup * (1.0 + self.capacity_weight * z)
            - self.wait_weight * self.base_markup * urgency
        )
        markup = np.clip(markup, -self.urgency_weight * self.base_markup, None)
        return batch.qualities, batch.payments * (1.0 + markup)

    def observe(self, feedback, rng):
        for j, node_id in enumerate(feedback.node_ids):
            if feedback.won[j]:
                self._waits[node_id] = 0
            else:
                self._waits[node_id] = self._waits.get(node_id, 0) + 1

    def state_dict(self) -> dict:
        return {"waits": {str(k): int(v) for k, v in self._waits.items()}}

    def load_state(self, state: Mapping[str, Any]) -> None:
        unknown = sorted(set(state) - {"waits"})
        if unknown:
            raise ValueError(f"unknown adaptive_heuristic state keys {unknown}")
        self._waits = {
            int(k): int(v) for k, v in dict(state.get("waits", {})).items()
        }


@BID_POLICIES.register("external")
class ExternalBidPolicy(BidPolicy):
    """A bid set from *outside* the mechanism — the gym's control surface.

    :class:`repro.strategic.gym.AuctionEnv` attaches one of these to its
    controlled node and writes the agent's action into :attr:`pending`
    before advancing the round; nodes with no pending action bid
    truthfully.  The last round's realized feedback is kept on
    :attr:`last_feedback` for the env to turn into a reward.  IR is not
    enforced — a learning agent must be allowed to explore losing bids.
    """

    name = "external"
    enforce_ir = False

    def __init__(self) -> None:
        super().__init__()
        # node_id -> (quality vector or None, payment or None); None keeps
        # the equilibrium value for that half of the bid.
        self.pending: dict[int, tuple[list[float] | None, float | None]] = {}
        self.last_feedback: RoundFeedback | None = None
        # node_id -> rounds since last win / last realized payoff, kept so
        # the env can expose them as observation features.
        self.waits: dict[int, int] = {}
        self.last_payoffs: dict[int, float] = {}

    def set_action(
        self,
        node_id: int,
        payment: float | None,
        quality: Sequence[float] | None = None,
    ) -> None:
        self.pending[int(node_id)] = (
            None if quality is None else [float(q) for q in quality],
            None if payment is None else float(payment),
        )

    def shade(self, batch, rng):
        qualities = np.array(batch.qualities, dtype=float)
        payments = np.array(batch.payments, dtype=float)
        for j, node_id in enumerate(batch.node_ids):
            action = self.pending.pop(node_id, None)
            if action is None:
                continue
            quality, payment = action
            if quality is not None:
                qualities[j] = np.asarray(quality, dtype=float)
            if payment is not None:
                payments[j] = payment
        return batch.clip_qualities(qualities), payments

    def observe(self, feedback, rng):
        self.last_feedback = feedback
        payoffs = feedback.payoffs
        for j, node_id in enumerate(feedback.node_ids):
            node_id = int(node_id)
            if feedback.won[j]:
                self.waits[node_id] = 0
            else:
                self.waits[node_id] = self.waits.get(node_id, 0) + 1
            self.last_payoffs[node_id] = float(payoffs[j])

    def state_dict(self) -> dict:
        return {
            "pending": {
                str(k): [q, p] for k, (q, p) in self.pending.items()
            },
            "waits": {str(k): int(v) for k, v in self.waits.items()},
            "last_payoffs": {
                str(k): float(v) for k, v in self.last_payoffs.items()
            },
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        # waits/last_payoffs may be absent in checkpoints written before
        # they existed; tolerate that, reject anything unknown.
        unknown = sorted(set(state) - {"pending", "waits", "last_payoffs"})
        if unknown:
            raise ValueError(f"unknown external state keys {unknown}")
        self.pending = {
            int(k): (
                None if v[0] is None else [float(q) for q in v[0]],
                None if v[1] is None else float(v[1]),
            )
            for k, v in dict(state.get("pending", {})).items()
        }
        self.waits = {
            int(k): int(v) for k, v in dict(state.get("waits", {})).items()
        }
        self.last_payoffs = {
            int(k): float(v)
            for k, v in dict(state.get("last_payoffs", {})).items()
        }


@BID_POLICIES.register("learned")
def _learned_bidding(artifact: str, digest: str | None = None):
    """Deploy a trained bid-learner artifact as a greedy markup policy.

    ``artifact`` is the JSON file written by ``python -m repro
    train-bidder --artifact`` (or :func:`repro.strategic.learn.
    save_policy_artifact`); ``digest`` optionally pins its SHA-256 so a
    scenario only runs against the exact policy it was written for.  The
    heavy learner module is imported lazily: scenarios without a
    ``learned`` entry never pay for it.
    """
    from .learn import LearnedBidding

    return LearnedBidding(artifact=artifact, digest=digest)


# ----------------------------------------------------------------------
# Spec -> per-node assignment (the engine's wiring helper)
# ----------------------------------------------------------------------
def build_bid_policies(
    mix: Sequence[Mapping[str, Any]], node_ids: Sequence[int]
) -> dict[int, BidPolicy]:
    """Assign strategic policies to population fractions, deterministically.

    ``mix`` entries are ``{"name": <BID_POLICIES entry>, "fraction": f,
    "label": ..., **params}``; each entry claims ``round(f * N)`` nodes
    in ``node_ids`` order (contiguous blocks from the front — node order
    is deterministic per federation, so the assignment is too).  The
    remainder stays truthful with *no* policy attached: truthful nodes
    ride the untouched batched hot path.  Entries naming ``truthful``
    are skipped the same way unless they carry a custom ``label`` (a
    labelled truthful control group reports separately).
    """
    assignments: dict[int, BidPolicy] = {}
    cursor = 0
    n = len(node_ids)
    for entry in mix:
        params = {str(k): v for k, v in entry.items()}
        fraction = float(params.pop("fraction"))
        label = params.pop("label", None)
        count = min(int(round(fraction * n)), n - cursor)
        block = list(node_ids[cursor : cursor + count])
        cursor += count
        if params.get("name") == "truthful" and label is None:
            continue  # identity with no reporting label: stay on the hot path
        policy = BID_POLICIES.create(params)
        policy.label = str(label) if label is not None else policy.name
        for node_id in block:
            assignments[int(node_id)] = policy
    return assignments
