"""Generated reference of every registered component spec.

``docs/scenario_reference.md`` is *emitted*, not hand-written: this
module introspects the :mod:`repro.core.registry` tables — names,
constructor parameters with defaults, first doc sentence — and renders
them as one markdown page.  ``python -m repro registry`` prints a plain
summary; ``--markdown`` prints the page, and ``tests/test_docs.py``
fails whenever the committed doc drifts from the live registries, so
registering a component *is* documenting it.

The registries are populated on import: :mod:`repro.core` registers the
auction families in their defining modules, and importing
:mod:`repro.api` registers the executors (including ``distributed``) and
round policies.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from .. import core as _core  # noqa: F401 - registers the auction families
from ..core.registry import (
    BID_LEARNERS,
    BID_POLICIES,
    COST_MODELS,
    EXECUTORS,
    MARGIN_METHODS,
    NN_BACKENDS,
    PAYMENT_RULES,
    ROUND_POLICIES,
    SCORING_RULES,
    THETA_DISTRIBUTIONS,
    WINNER_SELECTIONS,
    Registry,
)
from ..fl.nn import backends as _backends  # noqa: F401 - registers NN backends
from ..strategic import learn as _learn  # noqa: F401 - registers bid learners
from ..strategic import policies as _strategic  # noqa: F401 - registers bid policies
from . import coordinator as _coordinator  # noqa: F401 - registers "service"
from . import distributed as _distributed  # noqa: F401 - registers "distributed"
from . import executor as _executor  # noqa: F401 - registers the pool executors

__all__ = [
    "FAMILIES",
    "RegistryEntry",
    "iter_entries",
    "registry_reference_markdown",
    "registry_summary",
]

#: The documented families, in page order: ``(registry, title, blurb)``.
#: ``blurb`` says where the family plugs into a Scenario spec.
FAMILIES: tuple[tuple[Registry, str, str], ...] = (
    (
        SCORING_RULES,
        "Scoring rules",
        "Scenario field `scoring` — the quasi-linear rule "
        "`S(q, p)` the aggregator advertises (spec mapping with `name` + "
        "parameters).",
    ),
    (
        COST_MODELS,
        "Cost models",
        "Scenario field `cost` — the bidders' common-knowledge cost "
        "family `c(q, theta)` (spec mapping).",
    ),
    (
        THETA_DISTRIBUTIONS,
        "Theta distributions",
        "Scenario field `theta` — the private-type prior `F` the "
        "equilibrium is computed against (spec mapping).",
    ),
    (
        WINNER_SELECTIONS,
        "Winner selections",
        "Spec for `policies.selection` (field `name` + parameters) and "
        "the rule behind the `FMore`/`PsiFMore` schemes (`top_k`, `psi` "
        "via the scenario's `psi` field).",
    ),
    (
        PAYMENT_RULES,
        "Payment rules",
        "Scenario field `payment_rule` — addressed by *name only*; the "
        "entries are charge functions applied to the score-sorted bids "
        "(parameters below are their call signature, not spec keys).",
    ),
    (
        MARGIN_METHODS,
        "Margin backends",
        "Scenario field `payment_method` — addressed by *name only*; the "
        "ODE/quadrature backends computing the equilibrium profit margin "
        "(parameters below are their call signature, not spec keys).",
    ),
    (
        ROUND_POLICIES,
        "Round policies",
        "Scenario field `policies` — one optional stage per registered "
        "name (`{\"policies\": {\"<name>\": {params}}}`), plus a "
        "`per_scheme` override mapping; see the round-policy pipeline "
        "section of the README.",
    ),
    (
        BID_POLICIES,
        "Bid policies",
        "Scenario field `bidding` — `{\"mix\": [{\"name\": \"<entry>\", "
        "\"fraction\": f, **params}, ...]}` assigns population fractions "
        "to strategic bidding behaviours (plus a `per_scheme` override "
        "mapping); unassigned nodes stay truthful. See the strategic "
        "bidders section of the README.",
    ),
    (
        BID_LEARNERS,
        "Bid learners",
        "Training-side family, not a Scenario field: "
        "`python -m repro train-bidder --learner <name>` (or "
        "`repro.strategic.learn.BidLearnerTrainer`) trains one over the "
        "auction gym and freezes it into a policy artifact; scenarios then "
        "deploy the artifact through the `learned` bid-policy entry. See "
        "the learned bidders section of the README.",
    ),
    (
        EXECUTORS,
        "Executors",
        "Scenario field `execution` — `{\"executor\": \"<name>\", "
        "\"max_workers\": N}`; the store-coordinated executors "
        "(`distributed`, `service`) additionally take `lease_seconds` / "
        "`poll_interval` and allow `max_workers=0` (coordinate-only), "
        "and `service` takes `coordinator_url` (null = an embedded "
        "coordinator). See docs/deployment.md. "
        "The in-process pools (`serial`/`thread`/`process`) also fan out "
        "the per-cluster auctions of `variant=\"hierarchical\"` runs via "
        "`clusters.executor`; see the hierarchical auctions section of "
        "the README.  An optional `execution.local_training` sub-spec "
        "(`{\"executor\": \"serial\"|\"thread\"|\"process\", "
        "\"max_workers\": N}`; CLI `run --local-parallel N`) fans each "
        "round's K winner trainings over a within-round pool — the three "
        "pool types match each other bitwise. See the within-round "
        "parallelism section of the README.",
    ),
    (
        NN_BACKENDS,
        "NN array backends",
        "Not a Scenario field: process-wide compute engines for the "
        "neural-network substrate's hot kernels (GEMM, im2col/col2im, "
        "LSTM step), selected via `repro.fl.nn.set_backend(\"<name>\")` or "
        "the CLI's `--nn-backend`. `numpy` is the bitwise reference; "
        "`numba` JIT-compiles the scatter/gate kernels and needs the "
        "optional numba dependency (validated against the reference to "
        "1e-10 in the test suite).",
    ),
)

@dataclass(frozen=True)
class RegistryEntry:
    """One registered factory, reduced to what the reference page shows."""

    family: str
    name: str
    parameters: str
    summary: str


def _signature_text(factory: Callable[..., Any]) -> str:
    """``param=default, ...`` for a factory (class ``__init__`` sans self)."""
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return "…"
    parts: list[str] = []
    for param in sig.parameters.values():
        if param.name == "self":
            continue
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            parts.append(f"*{param.name}")
        elif param.kind is inspect.Parameter.VAR_KEYWORD:
            parts.append(f"**{param.name}")
        elif param.default is inspect.Parameter.empty:
            parts.append(param.name)
        else:
            parts.append(f"{param.name}={param.default!r}")
    return ", ".join(parts) if parts else "(no parameters)"


def _summary_text(factory: Callable[..., Any], limit: int = 160) -> str:
    """First sentence of the factory's docstring, whitespace-collapsed."""
    doc = inspect.getdoc(factory) or ""
    paragraph = doc.split("\n\n", 1)[0]
    text = " ".join(paragraph.split())
    if ". " in text:
        text = text.split(". ", 1)[0] + "."
    if len(text) > limit:
        text = text[: limit - 1].rstrip() + "…"
    return text or "—"


def iter_entries() -> Iterator[RegistryEntry]:
    """Every registered component, family by family, names sorted."""
    for registry, title, _ in FAMILIES:
        for name in registry.names():
            factory = registry.get(name)
            yield RegistryEntry(
                family=title,
                name=name,
                parameters=_signature_text(factory),
                summary=_summary_text(factory),
            )


def _escape_cell(text: str) -> str:
    return text.replace("|", "\\|")


def registry_reference_markdown() -> str:
    """The full ``docs/scenario_reference.md`` page, as a string."""
    lines: list[str] = [
        "# Scenario spec reference",
        "",
        "<!-- GENERATED FILE — do not edit by hand.",
        "     Regenerate with:",
        "         PYTHONPATH=src python -m repro registry --markdown "
        "> docs/scenario_reference.md",
        "     tests/test_docs.py fails when this page drifts from the"
        " registries. -->",
        "",
        "Every pluggable component of the FMore protocol lives in a"
        " string-keyed",
        "registry (`repro.core.registry`) and is addressed from a"
        " [`Scenario`](ARCHITECTURE.md)",
        "by a JSON spec — either a bare name or"
        " `{\"name\": \"<entry>\", **params}`.",
        "The tables below list every registered name, its parameters with"
        " defaults,",
        "and what it does.  Registering a new component"
        " (`@REGISTRY.register(\"x\")`)",
        "makes it scenario-addressable *and* adds it to this page on the"
        " next",
        "regeneration.",
        "",
    ]
    entries_by_family: dict[str, list[RegistryEntry]] = {}
    for entry in iter_entries():
        entries_by_family.setdefault(entry.family, []).append(entry)
    for registry, title, blurb in FAMILIES:
        lines.append(f"## {title} (`{_registry_var_name(registry)}`)")
        lines.append("")
        lines.append(blurb)
        lines.append("")
        lines.append("| name | parameters | summary |")
        lines.append("| --- | --- | --- |")
        for entry in entries_by_family.get(title, []):
            lines.append(
                f"| `{entry.name}` "
                f"| `{_escape_cell(entry.parameters)}` "
                f"| {_escape_cell(entry.summary)} |"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _registry_var_name(registry: Registry) -> str:
    """The ``repro.core.registry`` variable holding this table."""
    mapping = {
        id(SCORING_RULES): "SCORING_RULES",
        id(COST_MODELS): "COST_MODELS",
        id(THETA_DISTRIBUTIONS): "THETA_DISTRIBUTIONS",
        id(WINNER_SELECTIONS): "WINNER_SELECTIONS",
        id(PAYMENT_RULES): "PAYMENT_RULES",
        id(MARGIN_METHODS): "MARGIN_METHODS",
        id(ROUND_POLICIES): "ROUND_POLICIES",
        id(BID_POLICIES): "BID_POLICIES",
        id(BID_LEARNERS): "BID_LEARNERS",
        id(EXECUTORS): "EXECUTORS",
        id(NN_BACKENDS): "NN_BACKENDS",
    }
    return mapping[id(registry)]


def registry_summary() -> str:
    """Plain-text listing for ``python -m repro registry``."""
    lines: list[str] = []
    for registry, title, _ in FAMILIES:
        names = ", ".join(registry.names())
        lines.append(f"{title} ({registry.kind}, {len(registry)}): {names}")
    lines.append("")
    lines.append(
        "Full parameter tables: python -m repro registry --markdown "
        "(committed as docs/scenario_reference.md)"
    )
    return "\n".join(lines)
