"""The metrics-frame aggregation layer: policy trajectories as one table.

``RunResult.metrics()`` returns a :class:`MetricsFrame` — a small columnar
table with one row per ``(scheme, round)`` holding the seed-averaged
training series (accuracy, loss, cumulative simulated seconds, per-round
payment) *and* the seed-averaged policy trajectory that previously had to
be hand-rolled out of ``RoundEvent.actions``:

* ``bans_total`` — cumulative blacklist bans up to and including the round,
* ``violations`` / ``churn_departed`` / ``churn_arrived`` — per-round
  enforcement and membership events,
* ``alpha<i>`` — the guidance exponents in force after the round
  (forward-filled between ``alpha_update`` actions; ``None`` before the
  first update, and entirely absent when no run ever retuned),
* ``payoff_<label>_mean`` / ``payoff_<label>_min`` — per bidder-group
  realized payoff series from strategic runs (``bid_payoff`` actions, see
  :mod:`repro.strategic`); absent for all-truthful runs, ``None`` for
  rounds of schemes without the group.  These back the IC/IR report
  (:mod:`repro.analysis.incentive_report`),
* ``cluster_selected_mean`` / ``cluster_local_winners_mean`` /
  ``cluster_head_payment_mean`` — the two-tier trajectory of hierarchical
  runs (``cluster_round`` actions, see :mod:`repro.core.hierarchy`):
  clusters admitted by the head auction, global winners they contributed,
  and the total head-tier payment; absent for flat runs.

Frames export with ``to_csv`` / ``to_json`` so the paper's
robustness/guidance figures are one-liners over a stored
:class:`~repro.api.store.ExperimentStore` run (CLI: ``python -m repro
report --store DIR --csv out.csv``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["MetricsFrame", "build_metrics_frame"]

_BASE_COLUMNS = (
    "scheme",
    "round",
    "accuracy_mean",
    "accuracy_std",
    "loss_mean",
    "cumulative_seconds_mean",
    "payment_mean",
    "n_winners_mean",
    "bans_total_mean",
    "violations_mean",
    "churn_departed_mean",
    "churn_arrived_mean",
)

# Seed-averaged head-tier cells, present only when some history carries
# ``cluster_round`` actions (hierarchical runs).
_CLUSTER_COLUMNS = (
    "cluster_selected_mean",
    "cluster_local_winners_mean",
    "cluster_head_payment_mean",
)


@dataclass
class MetricsFrame:
    """A plain columnar table: ``columns`` names, ``rows`` aligned tuples.

    Built by ``RunResult.metrics()`` with one row per ``(scheme, round)``
    — the seed-averaged training series (``accuracy_mean``/``_std``,
    ``loss_mean``, ``cumulative_seconds_mean``, ``payment_mean``,
    ``n_winners_mean``) plus the policy trajectory (cumulative
    ``bans_total_mean``, per-round ``violations_mean`` /
    ``churn_departed_mean`` / ``churn_arrived_mean``, and forward-filled
    guidance ``alpha<i>`` columns when a run retuned).  Slice with
    :meth:`filter` / :meth:`column`, export with :meth:`to_csv` /
    :meth:`to_json`, and round-trip losslessly via :meth:`from_json`.

    Deliberately dependency-free (no pandas in this repo): just enough
    structure to slice by column or scheme and to serialise losslessly.
    Missing values are ``None`` (never NaN, so frames compare equal after
    a round-trip).

    >>> frame = result.metrics()                      # doctest: +SKIP
    >>> frame.filter(scheme="FMore").column("accuracy_mean")  # doctest: +SKIP
    """

    columns: list[str]
    rows: list[tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.columns = [str(c) for c in self.columns]
        self.rows = [tuple(r) for r in self.rows]
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row width {len(row)} != {len(self.columns)} columns"
                )

    def __len__(self) -> int:
        return len(self.rows)

    def _index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"unknown column {name!r}; available: {self.columns}"
            ) from None

    def column(self, name: str) -> list[Any]:
        """One column as a list (raises on unknown names, listing them)."""
        i = self._index(name)
        return [row[i] for row in self.rows]

    def filter(self, **equals: Any) -> "MetricsFrame":
        """Rows whose named columns equal the given values."""
        idx = {name: self._index(name) for name in equals}
        rows = [
            row
            for row in self.rows
            if all(row[idx[name]] == v for name, v in equals.items())
        ]
        return MetricsFrame(list(self.columns), rows)

    def to_records(self) -> list[dict[str, Any]]:
        """Rows as dicts — the friendliest shape for ad-hoc analysis."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_csv(self, path: str | Path | None = None) -> str:
        """RFC-4180-ish CSV (empty field for ``None``); optionally written."""
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(_csv_cell(v) for v in row))
        text = "\n".join(lines) + "\n"
        if path is not None:
            Path(path).write_text(text)
        return text

    def to_json(self, path: str | Path | None = None) -> str:
        payload = {"columns": list(self.columns), "rows": [list(r) for r in self.rows]}
        text = json.dumps(payload, indent=2)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    @classmethod
    def from_json(cls, text: str) -> "MetricsFrame":
        data = json.loads(text)
        return cls(columns=data["columns"], rows=[tuple(r) for r in data["rows"]])


def _csv_cell(value: Any) -> str:
    if value is None:
        return ""
    text = str(value)
    if any(c in text for c in ',"\n'):
        text = '"' + text.replace('"', '""') + '"'
    return text


def build_metrics_frame(result) -> MetricsFrame:
    """Seed-averaged per-round metrics of a ``RunResult``.

    One row per ``(scheme, round)``; ``alpha<i>`` columns appear only when
    at least one history carries ``alpha_update`` actions (their width is
    the guidance dimensionality).
    """
    n_alphas = 0
    payoff_labels: set[str] = set()
    has_clusters = False
    for histories in result.histories.values():
        for history in histories:
            for record in history.records:
                for action in record.policy_actions:
                    if action.kind == "alpha_update":
                        n_alphas = max(n_alphas, len(action.payload["alphas"]))
                    elif action.kind == "bid_payoff":
                        payoff_labels.update(action.payload["groups"])
                    elif action.kind == "cluster_round":
                        has_clusters = True
    labels = sorted(payoff_labels)
    columns = (
        list(_BASE_COLUMNS)
        + [f"alpha{i}" for i in range(n_alphas)]
        + [f"payoff_{label}_{stat}" for label in labels for stat in ("mean", "min")]
        + (list(_CLUSTER_COLUMNS) if has_clusters else [])
    )

    rows: list[tuple] = []
    for scheme in result.schemes:
        histories = result.histories[scheme]
        lengths = {len(h.records) for h in histories}
        if len(lengths) != 1:
            raise ValueError(
                f"scheme {scheme!r} has histories of unequal length "
                f"{sorted(lengths)}; cannot seed-average"
            )
        (n_rounds,) = lengths
        acc = np.asarray([h.accuracies for h in histories], dtype=float)
        loss = np.asarray([h.losses for h in histories], dtype=float)
        secs = np.asarray([h.cumulative_seconds for h in histories], dtype=float)
        pay = np.asarray(
            [[r.total_payment for r in h.records] for h in histories], dtype=float
        )
        n_win = np.asarray(
            [[len(r.winner_ids) for r in h.records] for h in histories], dtype=float
        )
        per_seed = [_policy_series(h, n_rounds, n_alphas) for h in histories]
        for t in range(n_rounds):
            alphas = _mean_optional(
                [series["alphas"][t] for series in per_seed], n_alphas
            )
            payoffs = _payoff_cells(
                [series["payoffs"][t] for series in per_seed], labels
            )
            cluster_cells = (
                _mean_optional(
                    [series["clusters"][t] for series in per_seed],
                    len(_CLUSTER_COLUMNS),
                )
                if has_clusters
                else ()
            )
            rows.append(
                (
                    scheme,
                    t + 1,
                    float(acc[:, t].mean()),
                    float(acc[:, t].std()),
                    float(loss[:, t].mean()),
                    float(secs[:, t].mean()),
                    float(pay[:, t].mean()),
                    float(n_win[:, t].mean()),
                    float(np.mean([s["bans"][t] for s in per_seed])),
                    float(np.mean([s["violations"][t] for s in per_seed])),
                    float(np.mean([s["departed"][t] for s in per_seed])),
                    float(np.mean([s["arrived"][t] for s in per_seed])),
                )
                + alphas
                + payoffs
                + cluster_cells
            )
    return MetricsFrame(columns, rows)


def _policy_series(history, n_rounds: int, n_alphas: int) -> dict[str, list]:
    """Per-round policy trajectories of one seed's history.

    ``bans`` is cumulative (the robustness figures plot the ban count so
    far); ``violations``/``departed``/``arrived`` are per-round event
    counts; ``alphas`` forward-fills the last ``alpha_update`` (``None``
    before the first).
    """
    bans: list[int] = []
    violations: list[int] = []
    departed: list[int] = []
    arrived: list[int] = []
    alphas: list[tuple | None] = []
    payoffs: list[dict | None] = []
    clusters: list[tuple | None] = []
    bans_so_far = 0
    current_alphas: tuple | None = None
    for record in history.records:
        v = d = a = 0
        round_payoffs: dict | None = None
        round_clusters: tuple | None = None
        for action in record.policy_actions:
            if action.kind == "ban":
                bans_so_far += 1
            elif action.kind == "violation":
                v += 1
            elif action.kind == "churn":
                d += len(action.payload.get("departed", []))
                a += len(action.payload.get("arrived", []))
            elif action.kind == "alpha_update":
                current_alphas = tuple(
                    float(x) for x in action.payload["alphas"]
                )
            elif action.kind == "bid_payoff":
                round_payoffs = action.payload["groups"]
            elif action.kind == "cluster_round":
                round_clusters = (
                    float(len(action.payload["selected"])),
                    float(action.payload["n_local_winners"]),
                    float(action.payload["head_payment"]),
                )
        bans.append(bans_so_far)
        violations.append(v)
        departed.append(d)
        arrived.append(a)
        alphas.append(current_alphas)
        payoffs.append(round_payoffs)
        clusters.append(round_clusters)
    return {
        "bans": bans,
        "violations": violations,
        "departed": departed,
        "arrived": arrived,
        "alphas": alphas,
        "payoffs": payoffs,
        "clusters": clusters,
    }


def _payoff_cells(values: list[dict | None], labels: list[str]) -> tuple:
    """Seed-aggregated ``(mean, min)`` payoff cells for one round.

    Per seed the group mean is total payoff over group size; the seed
    average of those and the seed-minimum of ``min_payoff`` fill the
    columns.  A label absent from every seed's round stays ``None``.
    """
    out: list[float | None] = []
    for label in labels:
        means = []
        mins = []
        for groups in values:
            stats = None if groups is None else groups.get(label)
            if stats is None or not stats.get("n"):
                continue
            means.append(float(stats["payoff"]) / float(stats["n"]))
            mins.append(float(stats["min_payoff"]))
        out.append(float(np.mean(means)) if means else None)
        out.append(float(min(mins)) if mins else None)
    return tuple(out)


def _mean_optional(values: list[tuple | None], n_alphas: int) -> tuple:
    """Seed-mean of the alpha tuples; all-None rounds stay ``None``."""
    if n_alphas == 0:
        return ()
    present = [v for v in values if v is not None]
    if not present:
        return (None,) * n_alphas
    stacked = np.asarray(present, dtype=float)
    return tuple(float(x) for x in stacked.mean(axis=0))
