"""Durable experiment results: the content-addressed :class:`ExperimentStore`.

The paper's headline experiments are multi-hundred-round, multi-seed runs;
this module makes their results durable, resumable and queryable:

* **Run manifests** — every completed ``(scheme, seed)`` cell is written
  as one JSON manifest under a *scenario hash*: the SHA-256 of the
  scenario's canonical JSON with the run plan (``schemes``, ``seeds``,
  ``execution``) stripped, i.e. exactly the fields a cell's history is a
  pure function of.  Two scenarios that differ only in their plan share
  one address, so extending a sweep with new seeds reuses every cell
  already on disk (``FMoreEngine.run(scenario, store=...)`` skips them
  unless ``force=True``).
* **Checkpoints** — a :class:`Checkpoint` captures everything a
  mid-flight :class:`~repro.api.engine.Session` needs to continue
  *bitwise-identically*: global model weights (via
  :mod:`repro.fl.serialize`), the completed round records, the training
  and policy RNG streams' exact positions, and every
  :meth:`~repro.core.policies.RoundPolicy.state_dict`.  The store writes
  them as ``state.json`` + ``weights.npz`` beside the manifests; a
  finished cell's checkpoint is cleared when its manifest lands.
* **Fail-fast addressing** — :meth:`ExperimentStore.require_scenario`
  raises :class:`StoreMismatchError` (listing the stored scenarios'
  hashes and names) when a resume is pointed at a store populated by a
  different scenario spec, instead of silently starting from scratch.

Layout under the store root::

    scenarios/<hash>.json                   # full scenario spec (first run's plan)
    runs/<hash>/<scheme>-seed<seed>.json    # one manifest per completed cell
    checkpoints/<hash>/<scheme>-seed<seed>/ # state.json + weights.npz
    jobs/<hash>/<scheme>-seed<seed>.json    # distributed job queue (+ .lock
                                            # claims; see repro.api.distributed)

Because every write lands via temp-file + :func:`os.replace` and every
cell's content is a deterministic function of its address, the store is
safe to share between machines: concurrent writers of the same cell
produce byte-identical manifests and the last writer simply wins.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from ..fl.serialize import load_weights, save_weights
from ..fl.trainer import RoundRecord, TrainingHistory
from .scenario import Scenario

__all__ = [
    "ExperimentStore",
    "Checkpoint",
    "StoreError",
    "StoreMismatchError",
    "IncompleteRunError",
    "scenario_hash",
]

FORMAT_VERSION = 1

#: Scenario fields that do not affect a single cell's history: which cells
#: run (the plan) and where they run (the executor).  Everything else —
#: federation shape, auction specs, policies, training hyper-parameters,
#: even ``name`` (it feeds the named seed streams) — is part of the hash.
PLAN_FIELDS = ("schemes", "seeds", "execution")

#: Keys of the hierarchical ``clusters`` spec that are likewise plan, not
#: content: the in-round executor fans the per-cluster auctions out but is
#: bitwise-invisible in the result (every RNG draw happens in the caller).
_CLUSTERS_PLAN_KEYS = ("executor", "max_workers")

_CELL_RE = re.compile(r"^(?P<scheme>[A-Za-z0-9_]+)-seed(?P<seed>-?\d+)$")


class StoreError(ValueError):
    """A malformed store operation (missing cells, corrupt manifests...)."""


class StoreMismatchError(StoreError):
    """Resume pointed at a store produced by a different scenario spec."""


class IncompleteRunError(RuntimeError):
    """An engine run stopped with cells checkpointed but not finished.

    Raised by ``FMoreEngine.run(..., stop_after=N)`` once every pending
    cell has either finished or been checkpointed; re-running with
    ``resume=True`` (CLI: ``--resume``) picks the cells up where they
    stopped.
    """

    def __init__(self, cells: list[tuple[str, int]], root: Path):
        self.cells = list(cells)
        self.root = Path(root)
        names = ", ".join(f"{s}/seed{d}" for s, d in self.cells)
        super().__init__(
            f"{len(self.cells)} cell(s) incomplete ({names}); checkpoints "
            f"saved under {self.root} — re-run with resume=True (--resume) "
            "to continue"
        )


def scenario_hash(scenario: Scenario) -> str:
    """SHA-256 content address of everything that shapes one cell's result.

    The run plan (:data:`PLAN_FIELDS`) is excluded: a cell is a pure
    function of ``(scenario-sans-plan, scheme, seed)``, so sweeps that
    grow their seed list — or fan out over a different executor — keep
    hitting the manifests earlier runs wrote.  The same goes for the
    in-round ``clusters`` executor of hierarchical scenarios: serial,
    thread and process fan-out produce bitwise-identical rounds, so those
    keys are stripped before hashing.

    One execution key IS content: the presence of a ``local_training``
    sub-spec.  Its within-round pool switches local training onto
    per-winner derived RNG streams, changing every round's numbers versus
    the legacy shared-stream schedule — though not across pool types,
    which is why only a boolean marker (never the executor name or worker
    count) enters the hash.
    """
    payload = {
        k: v for k, v in scenario.to_dict().items() if k not in PLAN_FIELDS
    }
    if scenario.execution.get("local_training") is not None:
        payload["local_training"] = True
    if "clusters" in payload:
        payload["clusters"] = {
            k: v
            for k, v in payload["clusters"].items()
            if k not in _CLUSTERS_PLAN_KEYS
        }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class Checkpoint:
    """A resumable snapshot of one ``(scheme, seed)`` cell at round ``r``.

    Produced by ``Session.snapshot()`` and consumed by
    ``Session.restore()`` / ``FMoreEngine.resume()``; carries the full
    scenario spec so a checkpoint alone is enough to rebuild the session
    it came from.  ``policy_states`` aligns with the scheme's round-policy
    pipeline (one ``state_dict`` per policy, in pipeline order).
    """

    scenario: dict
    scenario_hash: str
    scheme: str
    seed: int
    round_index: int
    records: list[RoundRecord]
    weights: list[np.ndarray]
    rng_state: dict
    policy_rng_state: dict | None = None
    policy_states: list[dict] = field(default_factory=list)
    # Strategic-bidder state (repro.strategic): the bidding stream's
    # position plus one {"label", "name", "state"} entry per distinct
    # policy, aligned with FMoreMechanism.bid_policy_seq.  Both default
    # empty so pre-strategic checkpoints keep loading.
    bidding_rng_state: dict | None = None
    bid_policy_states: list[dict] = field(default_factory=list)

    def to_state_dict(self) -> dict:
        """The JSON half of the checkpoint (weights ride in the .npz)."""
        return {
            "format": FORMAT_VERSION,
            "scenario": self.scenario,
            "scenario_hash": self.scenario_hash,
            "scheme": self.scheme,
            "seed": int(self.seed),
            "round_index": int(self.round_index),
            "records": [r.to_dict() for r in self.records],
            "rng_state": self.rng_state,
            "policy_rng_state": self.policy_rng_state,
            "policy_states": list(self.policy_states),
            "bidding_rng_state": self.bidding_rng_state,
            "bid_policy_states": list(self.bid_policy_states),
        }

    @classmethod
    def from_state_dict(
        cls, data: Mapping[str, Any], weights: list[np.ndarray]
    ) -> "Checkpoint":
        return cls(
            scenario=dict(data["scenario"]),
            scenario_hash=str(data["scenario_hash"]),
            scheme=str(data["scheme"]),
            seed=int(data["seed"]),
            round_index=int(data["round_index"]),
            records=[RoundRecord.from_dict(r) for r in data["records"]],
            weights=weights,
            rng_state=dict(data["rng_state"]),
            policy_rng_state=(
                None
                if data.get("policy_rng_state") is None
                else dict(data["policy_rng_state"])
            ),
            policy_states=[dict(s) for s in data.get("policy_states", [])],
            bidding_rng_state=(
                None
                if data.get("bidding_rng_state") is None
                else dict(data["bidding_rng_state"])
            ),
            bid_policy_states=[
                dict(s) for s in data.get("bid_policy_states", [])
            ],
        )


class ExperimentStore:
    """Filesystem-backed, content-addressed result and checkpoint store.

    Cheap to construct (one ``mkdir``); safe to point several processes —
    or several *machines* on a shared filesystem — at the same root:
    every write lands via a temp file + :func:`os.replace`, and because a
    cell's manifest bytes are a pure function of its address, concurrent
    writers of one cell are last-writer-wins over identical content.
    The distributed backend (:mod:`repro.api.distributed`) additionally
    keeps its work queue under ``jobs/`` in the same root.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        keep_last_n: int = 1,
        keep_every_k: int | None = None,
    ):
        """Open (or create) a store at ``root``.

        ``keep_last_n`` / ``keep_every_k`` set the checkpoint *retention
        policy*: by default each cell keeps exactly one checkpoint,
        overwritten in place (the historical flat layout — byte-compatible
        with stores written before retention existed).  Raising
        ``keep_last_n`` or setting ``keep_every_k`` switches the cell's
        checkpoint directory to per-round ``round-<r>/`` subdirectories
        and prunes to the union of the last ``keep_last_n`` rounds and
        every round divisible by ``keep_every_k`` — the mid-run states a
        learned bidder can later be replayed from.
        """
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep_last_n = int(keep_last_n)
        self.keep_every_k = None if keep_every_k is None else int(keep_every_k)
        if self.keep_last_n < 1:
            raise ValueError("keep_last_n must be >= 1")
        if self.keep_every_k is not None and self.keep_every_k < 1:
            raise ValueError("keep_every_k must be >= 1 (or None)")

    @property
    def _retains_history(self) -> bool:
        """Whether the retention policy keeps more than the latest round."""
        return self.keep_last_n > 1 or self.keep_every_k is not None

    @classmethod
    def coerce(
        cls, store: "ExperimentStore | str | Path | None"
    ) -> "ExperimentStore | None":
        """Accept a store, a path, or None (engine/CLI convenience)."""
        if store is None or isinstance(store, ExperimentStore):
            return store
        return cls(store)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @staticmethod
    def _hash_of(scenario: Scenario | str) -> str:
        return scenario if isinstance(scenario, str) else scenario_hash(scenario)

    @staticmethod
    def _cell_name(scheme: str, seed: int) -> str:
        return f"{scheme}-seed{int(seed)}"

    def manifest_path(
        self, scenario: Scenario | str, scheme: str, seed: int
    ) -> Path:
        h = self._hash_of(scenario)
        return self.root / "runs" / h / f"{self._cell_name(scheme, seed)}.json"

    def checkpoint_dir(
        self, scenario: Scenario | str, scheme: str, seed: int
    ) -> Path:
        h = self._hash_of(scenario)
        return self.root / "checkpoints" / h / self._cell_name(scheme, seed)

    def scenario_path(self, scenario: Scenario | str) -> Path:
        return self.root / "scenarios" / f"{self._hash_of(scenario)}.json"

    # ------------------------------------------------------------------
    # Scenario registry
    # ------------------------------------------------------------------
    def register_scenario(self, scenario: Scenario) -> str:
        """Record the scenario spec under its hash (first writer wins).

        The stored spec includes the registering run's plan — enough to
        rebuild a :class:`Scenario` for reports; the plan-free projection
        is what the address hashes.
        """
        h = scenario_hash(scenario)
        path = self.scenario_path(h)
        if not path.exists():
            _write_json(
                path,
                {
                    "format": FORMAT_VERSION,
                    "scenario_hash": h,
                    "scenario": scenario.to_dict(),
                },
            )
        return h

    def scenarios(self) -> dict[str, dict]:
        """All registered scenario specs, keyed by hash."""
        out: dict[str, dict] = {}
        directory = self.root / "scenarios"
        if not directory.is_dir():
            return out
        for path in sorted(directory.glob("*.json")):
            data = _read_json(path)
            out[str(data["scenario_hash"])] = dict(data["scenario"])
        return out

    def load_scenario(self, h: str) -> Scenario:
        """Rebuild the registered :class:`Scenario` for a stored hash."""
        path = self.scenario_path(h)
        if not path.exists():
            raise StoreError(
                f"store {self.root} has no scenario {h[:12]}…; "
                f"known: {[k[:12] for k in self.scenarios()]}"
            )
        return Scenario.from_dict(_read_json(path)["scenario"])

    def require_scenario(self, scenario: Scenario) -> str:
        """Fail fast when this store was populated by a *different* spec.

        An empty (or scenario-less) store passes — there is nothing to
        mismatch against.  A store holding only other hashes raises
        :class:`StoreMismatchError` naming them, so ``--resume`` against
        the wrong store directory dies loudly instead of quietly starting
        a fresh run next to unrelated results.
        """
        h = scenario_hash(scenario)
        stored = self.scenarios()
        if stored and h not in stored:
            listing = ", ".join(
                f"{k[:12]}… ({v.get('name', '?')})" for k, v in stored.items()
            )
            raise StoreMismatchError(
                f"scenario {h[:12]}… ({scenario.name!r}) not found in store "
                f"{self.root}: its manifests were produced by a different "
                f"scenario spec — stored: {listing}. Point --store at this "
                "scenario's store, or re-run without --resume to start one."
            )
        return h

    # ------------------------------------------------------------------
    # Run manifests
    # ------------------------------------------------------------------
    def has_cell(self, scenario: Scenario | str, scheme: str, seed: int) -> bool:
        return self.manifest_path(scenario, scheme, seed).exists()

    def missing_cells(
        self,
        scenario: Scenario | str,
        cells: Sequence[tuple[str, int]],
    ) -> list[tuple[str, int]]:
        """The subset of ``cells`` whose manifests have not landed yet.

        One hash derivation however many cells — the shape every
        coordinator poll loop needs (``[]`` means the sweep is done).
        """
        h = self._hash_of(scenario)
        return [(s, d) for s, d in cells if not self.has_cell(h, s, int(d))]

    def save_history(
        self,
        scenario: Scenario,
        scheme: str,
        seed: int,
        history: TrainingHistory,
    ) -> Path:
        """Write one completed cell's manifest (and register the scenario)."""
        h = self.register_scenario(scenario)
        path = self.manifest_path(h, scheme, seed)
        _write_json(
            path,
            {
                "format": FORMAT_VERSION,
                "scenario_hash": h,
                "scenario_name": scenario.name,
                "scheme": scheme,
                "seed": int(seed),
                "n_rounds": len(history.records),
                "history": history.to_dict(),
            },
        )
        return path

    def load_history(
        self, scenario: Scenario | str, scheme: str, seed: int
    ) -> TrainingHistory:
        """Read one cell's manifest back into a :class:`TrainingHistory`."""
        path = self.manifest_path(scenario, scheme, seed)
        if not path.exists():
            raise StoreError(
                f"store {self.root} has no manifest for cell "
                f"({scheme}, seed {seed}) of scenario "
                f"{self._hash_of(scenario)[:12]}…"
            )
        data = _read_json(path)
        expected = self._hash_of(scenario)
        if data.get("scenario_hash") != expected:
            raise StoreError(
                f"manifest {path} was written for scenario "
                f"{str(data.get('scenario_hash'))[:12]}…, "
                f"not {expected[:12]}…"
            )
        return TrainingHistory.from_dict(data["history"])

    def cells(
        self, scenario: Scenario | str | None = None
    ) -> list[tuple[str, str, int]]:
        """Completed ``(hash, scheme, seed)`` cells, optionally filtered."""
        out: list[tuple[str, str, int]] = []
        runs = self.root / "runs"
        if not runs.is_dir():
            return out
        only = None if scenario is None else self._hash_of(scenario)
        for hash_dir in sorted(runs.iterdir()):
            if not hash_dir.is_dir() or (only and hash_dir.name != only):
                continue
            for path in sorted(hash_dir.glob("*.json")):
                match = _CELL_RE.match(path.stem)
                if match:
                    out.append(
                        (hash_dir.name, match["scheme"], int(match["seed"]))
                    )
        return out

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def save_checkpoint(self, checkpoint: Checkpoint) -> Path:
        """Persist a mid-run snapshot (weights first, then the state JSON).

        The state file is the commit point: written last and atomically,
        so a partially-written checkpoint is never loadable.  Under the
        default retention policy the snapshot overwrites the cell's flat
        checkpoint in place; with ``keep_last_n > 1`` or ``keep_every_k``
        it lands in a per-round ``round-<r>/`` subdirectory and older
        rounds outside the retention set are pruned.
        """
        directory = self.checkpoint_dir(
            checkpoint.scenario_hash, checkpoint.scheme, checkpoint.seed
        )
        if self._retains_history:
            target = directory / f"round-{int(checkpoint.round_index)}"
        else:
            target = directory
        target.mkdir(parents=True, exist_ok=True)
        save_weights(target / "weights.npz", checkpoint.weights)
        _write_json(target / "state.json", checkpoint.to_state_dict())
        if self._retains_history:
            self._prune_checkpoints(directory)
        return target

    def _prune_checkpoints(self, directory: Path) -> None:
        """Drop round checkpoints outside the retention set."""
        rounds = sorted(self._round_dirs(directory))
        keep = set(rounds[-self.keep_last_n :])
        if self.keep_every_k is not None:
            keep.update(r for r in rounds if r % self.keep_every_k == 0)
        for r in rounds:
            if r not in keep:
                shutil.rmtree(directory / f"round-{r}")

    @staticmethod
    def _round_dirs(directory: Path) -> list[int]:
        """Round indices with a committed per-round checkpoint."""
        if not directory.is_dir():
            return []
        out = []
        for child in directory.iterdir():
            if (
                child.is_dir()
                and child.name.startswith("round-")
                and child.name[6:].isdigit()
                and (child / "state.json").exists()
            ):
                out.append(int(child.name[6:]))
        return out

    def checkpoint_rounds(
        self, scenario: Scenario | str, scheme: str, seed: int
    ) -> list[int]:
        """Rounds with a retained checkpoint for one cell, ascending.

        Flat (legacy / default-policy) checkpoints report their stored
        ``round_index``, so the result is layout-independent.
        """
        directory = self.checkpoint_dir(scenario, scheme, seed)
        rounds = sorted(self._round_dirs(directory))
        if not rounds and (directory / "state.json").exists():
            rounds = [int(_read_json(directory / "state.json")["round_index"])]
        return rounds

    def load_checkpoint(
        self,
        scenario: Scenario | str,
        scheme: str,
        seed: int,
        round_index: int | None = None,
    ) -> Checkpoint | None:
        """A cell's checkpoint, or ``None`` when none exists.

        Defaults to the latest retained round; ``round_index`` picks a
        specific retained one (:meth:`checkpoint_rounds` lists them) and
        raises when that round was pruned or never written.  Both layouts
        load: per-round subdirectories when retention kept them, else the
        flat ``state.json`` legacy stores (and the default policy) write.
        """
        directory = self.checkpoint_dir(scenario, scheme, seed)
        rounds = self._round_dirs(directory)
        if round_index is not None:
            if round_index not in rounds:
                raise StoreError(
                    f"no retained checkpoint at round {round_index} for cell "
                    f"({scheme}, seed {seed}); retained: {sorted(rounds)}"
                )
            target = directory / f"round-{int(round_index)}"
        elif rounds:
            target = directory / f"round-{max(rounds)}"
        else:
            target = directory
        state_path = target / "state.json"
        if not state_path.exists():
            return None
        data = _read_json(state_path)
        weights = load_weights(target / "weights.npz")
        checkpoint = Checkpoint.from_state_dict(data, weights)
        expected = self._hash_of(scenario)
        if checkpoint.scenario_hash != expected:
            raise StoreError(
                f"checkpoint {target} belongs to scenario "
                f"{checkpoint.scenario_hash[:12]}…, not {expected[:12]}…"
            )
        return checkpoint

    def latest_checkpoint(
        self, scenario: Scenario | str, scheme: str, seed: int
    ) -> Checkpoint | None:
        """The newest retained checkpoint of a cell, or ``None``.

        A documented convenience for resume loops (the bid-learner
        trainer, CLI ``--resume``): equivalent to
        :meth:`load_checkpoint` with ``round_index=None`` — newest
        per-round directory under retention policies, flat-layout
        fallback otherwise.
        """
        return self.load_checkpoint(scenario, scheme, seed, round_index=None)

    def clear_checkpoint(
        self, scenario: Scenario | str, scheme: str, seed: int
    ) -> None:
        """Drop a cell's checkpoint (called once its manifest is durable)."""
        directory = self.checkpoint_dir(scenario, scheme, seed)
        if directory.is_dir():
            shutil.rmtree(directory)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExperimentStore({str(self.root)!r})"


# ----------------------------------------------------------------------
# Atomic JSON IO (shared by manifests, checkpoints, the scenario registry)
# ----------------------------------------------------------------------
def _write_json(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _read_json(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise StoreError(f"corrupt store file {path}: {exc}") from exc
