"""Event-driven coordination service: push-based sweeps over the store.

The filesystem queue of :mod:`repro.api.distributed` coordinates by
*polling* — workers re-scan ``jobs/`` and the coordinator re-stats
manifests every ``poll_interval`` — which is robust but slow: startup
and poll latency dominate small sweeps, exactly the regime FMore's MEC
aggregator lives in (one auction round per network beat, PAPER.md §III).
This module adds the event-driven tier on top of the *same* store
protocol:

* :class:`CoordinatorService` — an asyncio TCP server speaking a minimal
  hand-rolled HTTP/1.1 (stdlib only, JSON bodies, ``Connection: close``)
  that owns the job queue **in memory** and pushes cells to connected
  workers over long-poll ``/claim`` requests.  Durability is delegated
  to the store: every queued cell is still mirrored as a job spec under
  ``jobs/<hash>/`` and every dispatch takes the cell's filesystem lock
  (under the *claiming worker's* label), so plain filesystem workers,
  SLURM scripts and a restarted coordinator all interoperate — the
  in-memory queue is rebuilt from the mirror at startup, and a janitor
  task re-queues lease-expired claims with the exact semantics of
  :meth:`repro.api.distributed.JobQueue.reclaim_stale`.
* :class:`WorkerClient` / :class:`ServiceLink` — the worker side:
  register (learning the store location), long-poll for pushed cells,
  stream one round-completion event per round through ``/heartbeat``,
  report ``/complete`` / ``/release``.  When the coordinator becomes
  unreachable the link detaches and :func:`repro.api.distributed.run_worker`
  falls back to filesystem claims against the mirror, re-attaching when
  the coordinator returns.
* :class:`ServiceExecutor` — the registry-registered ``"service"``
  executor.  ``execution={"executor": "service", "coordinator_url":
  "http://host:port"}`` submits the sweep to a running coordinator;
  with ``coordinator_url=None`` it embeds a coordinator thread on an
  ephemeral port and keeps its spawned workers *warm* across
  ``execute_plan`` calls (the coordinator hands them the next sweep's
  cells without a process restart).

Determinism contract: the service tier schedules the *same* engine
session path as every other executor, so a service-executed sweep's
manifests are byte-identical to serial's (pinned in
``tests/test_coordinator.py``).  Protocol summary::

    POST /register   {worker}                          -> {store, poll_interval}
    POST /sweep      {scenario, cells, resume, ...}    -> {hash, queued}
    POST /claim      {worker, timeout}                 -> {job | null}   (long-poll)
    POST /heartbeat  {worker, scenario_hash, scheme, seed, round} -> {alive}
    POST /release    {worker, scenario_hash, scheme, seed}        -> {ok}
    POST /complete   {worker, scenario_hash, scheme, seed}        -> {ok, outstanding}
    GET  /status?hash=H&timeout=T                      -> {done, outstanding} (long-poll)
    GET  /health                                       -> {ok, counts...}
    POST /shutdown   {}                                -> {ok}
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import subprocess
import sys
import threading
import time
import urllib.parse
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from ..core.registry import EXECUTORS
from .distributed import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_POLL_INTERVAL,
    Job,
    JobQueue,
)
from .executor import Executor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .scenario import Scenario
    from .store import ExperimentStore

__all__ = [
    "CoordinatorService",
    "CoordinatorHandle",
    "CoordinatorError",
    "ServiceExecutor",
    "ServiceLink",
    "WorkerClient",
    "start_coordinator",
]

#: Server-side cap on long-poll hold times (claim and status); clients
#: simply re-issue the request, so the cap only bounds connection age.
MAX_LONG_POLL = 30.0

#: Errors that mean "the coordinator is unreachable or spoke garbage" —
#: every client falls back to the filesystem protocol on these.
_UNREACHABLE = (OSError, http.client.HTTPException, json.JSONDecodeError)


class CoordinatorError(RuntimeError):
    """The coordinator answered with an application-level error."""


# ----------------------------------------------------------------------
# Minimal HTTP: client helper + server-side request framing
# ----------------------------------------------------------------------
def _request(
    base_url: str,
    method: str,
    path: str,
    payload: dict | None = None,
    *,
    timeout: float = 10.0,
) -> dict:
    """One JSON-over-HTTP exchange with the coordinator.

    Raises :class:`CoordinatorError` for non-200 answers and lets the
    transport errors in ``_UNREACHABLE`` propagate — callers distinguish
    "coordinator said no" from "coordinator is gone".
    """
    parsed = urllib.parse.urlsplit(base_url)
    conn = http.client.HTTPConnection(
        parsed.hostname or "127.0.0.1", parsed.port or 80, timeout=timeout
    )
    try:
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json", "Connection": "close"}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = response.read()
        if response.status != 200:
            raise CoordinatorError(
                f"{method} {path} -> {response.status}: "
                f"{data.decode(errors='replace')[:200]}"
            )
        return json.loads(data) if data else {}
    finally:
        conn.close()


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], dict]:
    """Parse one request: ``(method, path, query_params, json_body)``."""
    line = await reader.readline()
    if not line:
        raise ConnectionError("empty request")
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        raise ValueError(f"malformed request line {line!r}")
    method, target = parts[0].upper(), parts[1]
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    payload = json.loads(body) if body else {}
    path, _, query = target.partition("?")
    params = dict(urllib.parse.parse_qsl(query))
    return method, path, params, payload


def _response_bytes(status: int, payload: dict) -> bytes:
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(status, "Error")
    data = json.dumps(payload).encode()
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(data)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin-1")
    return head + data


# ----------------------------------------------------------------------
# The coordinator service
# ----------------------------------------------------------------------
class CoordinatorService:
    """In-memory job queue with a store mirror and long-poll dispatch.

    All state lives on the event-loop thread; request handlers and the
    janitor are coroutines on that loop, so no locking beyond the two
    :class:`asyncio.Condition` wakeups is needed.  Store I/O (job-spec
    mirroring, lock files, manifest stats) happens inline on the loop —
    each operation is a handful of small-file syscalls, far below the
    poll latency this service exists to remove.

    The mirror keeps three invariants that make mixed fleets and crash
    recovery work:

    * every in-memory pending cell has a job spec under ``jobs/<hash>/``
      (so filesystem workers can steal it, and a restarted coordinator
      rebuilds the queue from the directory);
    * every dispatched cell holds the filesystem lock *under the claiming
      worker's label* (so the worker can keep heartbeating the lock
      directly when the coordinator dies, and filesystem workers see the
      cell as owned);
    * cells locked by someone the coordinator never dispatched to are
      *deferred*, watched by the janitor until their manifest lands or
      their lease expires — never double-dispatched.
    """

    def __init__(
        self,
        store: "ExperimentStore | str | Path",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ):
        from .store import ExperimentStore

        self.store = ExperimentStore.coerce(store)
        self.queue = JobQueue(self.store)
        self.host = str(host)
        self.port = int(port)
        self.poll_interval = float(poll_interval)
        if self.poll_interval <= 0.0:
            raise ValueError("poll_interval must be > 0")
        # -- queue state (event-loop thread only) -----------------------
        self._sweeps: dict[str, dict] = {}  # hash -> lease/resume/ckpt + outstanding
        self._pending: deque[tuple[str, str, int]] = deque()
        self._pending_set: set[tuple[str, str, int]] = set()
        self._deferred: set[tuple[str, str, int]] = set()  # externally locked
        self._claims: dict[tuple[str, str, int], dict] = {}
        self._workers: dict[str, dict] = {}
        self._rounds_seen = 0  # round-completion events streamed so far
        # -- loop plumbing ----------------------------------------------
        self._work_cond: asyncio.Condition | None = None
        self._status_cond: asyncio.Condition | None = None
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.ready = threading.Event()  # set once the port is bound
        self.error: BaseException | None = None

    # -- lifecycle ------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve(self, *, install_signal_handlers: bool = False) -> None:
        """Run the service until :meth:`request_stop` (or SIGTERM/SIGINT)."""
        self._loop = asyncio.get_running_loop()
        self._work_cond = asyncio.Condition()
        self._status_cond = asyncio.Condition()
        self._stop = asyncio.Event()
        if install_signal_handlers:
            import signal

            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(signum, self._stop.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        try:
            self._rebuild_from_mirror()
            server = await asyncio.start_server(self._handle, self.host, self.port)
        except BaseException as exc:  # pragma: no cover - bind failures
            self.error = exc
            self.ready.set()
            raise
        self.port = server.sockets[0].getsockname()[1]
        self.ready.set()
        janitor = asyncio.create_task(self._janitor())
        try:
            async with server:
                await self._stop.wait()
        finally:
            janitor.cancel()
            server.close()
            await server.wait_closed()

    def request_stop(self) -> None:
        """Thread-safe shutdown trigger (used by :class:`CoordinatorHandle`)."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)

    def _rebuild_from_mirror(self) -> None:
        """Reload queue state from ``jobs/`` — coordinator crash recovery.

        Job specs are the durable queue; locks say who owns what.  Cells
        with a live lock were claimed by workers that have fallen back to
        filesystem heartbeats — they are deferred (the janitor adopts or
        reclaims them); stale locks are stolen and the cells re-queued.
        """
        for path in self.queue._job_paths():
            data = self.queue._read_job(path)
            if data is None:
                continue
            h = str(data["scenario_hash"])
            scheme, seed = str(data["scheme"]), int(data["seed"])
            if self.store.has_cell(h, scheme, seed):
                self.queue._remove(path)
                self.queue._remove(self.queue.lock_path_for(path))
                continue
            sweep = self._sweeps.setdefault(
                h,
                {
                    "resume": bool(data.get("resume", False)),
                    "checkpoint_every": data.get("checkpoint_every"),
                    "lease_seconds": float(
                        data.get("lease_seconds", DEFAULT_LEASE_SECONDS)
                    ),
                    "outstanding": set(),
                },
            )
            key = (h, scheme, seed)
            sweep["outstanding"].add((scheme, seed))
            lock = self.queue.lock_path_for(path)
            if lock.exists() and not self.queue._is_stale(lock):
                self._deferred.add(key)
            else:
                if lock.exists():
                    self.queue._steal(lock)
                self._enqueue_key(key)

    # -- request handling -----------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, params, payload = await _read_request(reader)
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        except Exception as exc:
            writer.write(_response_bytes(400, {"error": str(exc)}))
            await writer.drain()
            writer.close()
            return
        try:
            status, reply = await self._dispatch(method, path, params, payload)
        except CoordinatorError as exc:
            status, reply = 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - handler bugs
            status, reply = 400, {"error": f"{type(exc).__name__}: {exc}"}
        try:
            writer.write(_response_bytes(status, reply))
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            writer.close()

    async def _dispatch(
        self, method: str, path: str, params: dict, payload: dict
    ) -> tuple[int, dict]:
        route = (method, path)
        if route == ("GET", "/health"):
            return 200, self._health()
        if route == ("POST", "/register"):
            return 200, self._register(payload)
        if route == ("POST", "/sweep"):
            return 200, await self._sweep(payload)
        if route == ("POST", "/claim"):
            return 200, await self._claim(payload)
        if route == ("POST", "/heartbeat"):
            return 200, self._heartbeat(payload)
        if route == ("POST", "/release"):
            return 200, await self._release(payload)
        if route == ("POST", "/complete"):
            return 200, await self._complete(payload)
        if route == ("GET", "/status"):
            return 200, await self._status(params)
        if route == ("POST", "/shutdown"):
            assert self._stop is not None
            self._stop.set()
            return 200, {"ok": True}
        return 404, {"error": f"no route {method} {path}"}

    def _health(self) -> dict:
        outstanding = sum(len(s["outstanding"]) for s in self._sweeps.values())
        return {
            "ok": True,
            "store": str(self.store.root.resolve()),
            "pending": len(self._pending),
            "claimed": len(self._claims),
            "deferred": len(self._deferred),
            "outstanding": outstanding,
            "workers": len(self._workers),
            "rounds_seen": self._rounds_seen,
        }

    def _register(self, payload: dict) -> dict:
        worker = str(payload.get("worker", ""))
        if not worker:
            raise CoordinatorError("register needs a worker label")
        entry = self._workers.setdefault(
            worker, {"registered_at": time.time(), "completed": 0}
        )
        entry["last_seen"] = time.time()
        return {
            "ok": True,
            # Resolved: workers on other cwds (or machines mounting the
            # same share at the same absolute path) must agree on it.
            "store": str(self.store.root.resolve()),
            "poll_interval": self.poll_interval,
        }

    async def _sweep(self, payload: dict) -> dict:
        """Accept a sweep: mirror its job specs, queue the missing cells."""
        from .scenario import Scenario

        scenario = Scenario.from_dict(payload["scenario"])
        cells = [(str(s), int(d)) for s, d in payload["cells"]]
        resume = bool(payload.get("resume", False))
        checkpoint_every = payload.get("checkpoint_every")
        lease_seconds = float(payload.get("lease_seconds", DEFAULT_LEASE_SECONDS))
        force = bool(payload.get("force", False))
        h = self.store.register_scenario(scenario)
        if force:
            for scheme, seed in cells:
                try:
                    self.store.manifest_path(h, scheme, seed).unlink()
                except FileNotFoundError:
                    pass
        # Mirror first: the store is the durable queue, memory the index.
        self.queue.enqueue(
            scenario,
            cells,
            resume=resume,
            checkpoint_every=checkpoint_every,
            lease_seconds=lease_seconds,
        )
        sweep = self._sweeps.setdefault(
            h,
            {
                "resume": resume,
                "checkpoint_every": checkpoint_every,
                "lease_seconds": lease_seconds,
                "outstanding": set(),
            },
        )
        queued = 0
        for scheme, seed in cells:
            key = (h, scheme, seed)
            if self.store.has_cell(h, scheme, seed):
                continue
            if (
                key in self._pending_set
                or key in self._claims
                or key in self._deferred
            ):
                sweep["outstanding"].add((scheme, seed))
                continue  # idempotent re-submission of a live sweep
            sweep["outstanding"].add((scheme, seed))
            lock = self.queue.lock_path_for(self.queue.job_path(h, scheme, seed))
            if lock.exists() and not self.queue._is_stale(lock):
                self._deferred.add(key)  # a filesystem worker beat us to it
                continue
            self._enqueue_key(key)
            queued += 1
        if queued:
            await self._notify(self._work_cond)
        if not sweep["outstanding"]:
            await self._notify(self._status_cond)
        return {"ok": True, "hash": h, "queued": queued,
                "outstanding": len(sweep["outstanding"])}

    async def _claim(self, payload: dict) -> dict:
        """Long-poll dispatch: hold until a cell is pushable or timeout."""
        worker = str(payload.get("worker", ""))
        if not worker:
            raise CoordinatorError("claim needs a worker label")
        timeout = min(float(payload.get("timeout", 1.0)), MAX_LONG_POLL)
        entry = self._workers.setdefault(
            worker, {"registered_at": time.time(), "completed": 0}
        )
        assert self._loop is not None and self._work_cond is not None
        deadline = self._loop.time() + timeout
        async with self._work_cond:
            while True:
                entry["last_seen"] = time.time()
                descriptor = self._next_claim(worker)
                if descriptor is not None:
                    return {"job": descriptor}
                remaining = deadline - self._loop.time()
                if remaining <= 0.0:
                    return {"job": None}
                try:
                    await asyncio.wait_for(self._work_cond.wait(), remaining)
                except asyncio.TimeoutError:
                    return {"job": None}

    def _next_claim(self, worker: str) -> dict | None:
        """Pop the first dispatchable pending cell and lock it for ``worker``."""
        while self._pending:
            key = self._pending.popleft()
            self._pending_set.discard(key)
            h, scheme, seed = key
            sweep = self._sweeps.get(h)
            if sweep is None:
                continue
            if self.store.has_cell(h, scheme, seed):
                self._finalize_done(key)
                continue
            lease = float(sweep["lease_seconds"])
            lock = self.queue.lock_path_for(self.queue.job_path(h, scheme, seed))
            # The mirror lock is taken under the *worker's* label so the
            # worker can fall back to direct filesystem heartbeats if
            # this coordinator dies mid-cell.
            if not self.queue._acquire(lock, worker, lease):
                self._deferred.add(key)  # someone on the fs owns it
                continue
            self._claims[key] = {
                "worker": worker,
                "deadline": time.time() + (lease or DEFAULT_LEASE_SECONDS),
                "lease_seconds": lease,
                "rounds": 0,
            }
            return {
                "scenario_hash": h,
                "scheme": scheme,
                "seed": seed,
                "resume": bool(sweep["resume"]),
                "checkpoint_every": sweep["checkpoint_every"],
                "lease_seconds": lease,
            }
        return None

    def _heartbeat(self, payload: dict) -> dict:
        """Renew a claim's in-memory lease; one round-completion event.

        Also the re-attach path: a worker whose claim predates a
        coordinator restart (its cell sits in the deferred set, its
        filesystem lock under its own label) is *adopted* back into the
        claim table on its first heartbeat.
        """
        worker = str(payload.get("worker", ""))
        key = (
            str(payload.get("scenario_hash", "")),
            str(payload.get("scheme", "")),
            int(payload.get("seed", -1)),
        )
        rounds = int(payload.get("round", 0))
        entry = self._workers.setdefault(
            worker, {"registered_at": time.time(), "completed": 0}
        )
        entry["last_seen"] = time.time()
        self._rounds_seen += 1
        claim = self._claims.get(key)
        if claim is not None and claim["worker"] == worker:
            lease = claim["lease_seconds"] or DEFAULT_LEASE_SECONDS
            claim["deadline"] = time.time() + lease
            claim["rounds"] = rounds
            return {"alive": True}
        h, scheme, seed = key
        lock = self.queue.lock_path_for(self.queue.job_path(h, scheme, seed))
        lock_data = self.queue._read_lock(lock)
        if lock_data is not None and lock_data.get("worker") == worker:
            sweep = self._sweeps.get(h)
            lease = float(
                sweep["lease_seconds"] if sweep is not None else DEFAULT_LEASE_SECONDS
            )
            self._deferred.discard(key)
            self._pending_discard(key)
            self._claims[key] = {
                "worker": worker,
                "deadline": time.time() + (lease or DEFAULT_LEASE_SECONDS),
                "lease_seconds": lease,
                "rounds": rounds,
            }
            return {"alive": True, "adopted": True}
        return {"alive": False}

    async def _release(self, payload: dict) -> dict:
        worker = str(payload.get("worker", ""))
        key = (
            str(payload.get("scenario_hash", "")),
            str(payload.get("scheme", "")),
            int(payload.get("seed", -1)),
        )
        claim = self._claims.get(key)
        if claim is None or claim["worker"] != worker:
            return {"ok": False}
        del self._claims[key]
        h, scheme, seed = key
        lock = self.queue.lock_path_for(self.queue.job_path(h, scheme, seed))
        lock_data = self.queue._read_lock(lock)
        if lock_data is not None and lock_data.get("worker") == worker:
            self.queue._remove(lock)
        self._enqueue_key(key)
        await self._notify(self._work_cond)
        return {"ok": True}

    async def _complete(self, payload: dict) -> dict:
        worker = str(payload.get("worker", ""))
        key = (
            str(payload.get("scenario_hash", "")),
            str(payload.get("scheme", "")),
            int(payload.get("seed", -1)),
        )
        h, scheme, seed = key
        if not self.store.has_cell(h, scheme, seed):
            # "Done" without a manifest is a worker bug; requeue instead
            # of wedging the sweep on a phantom completion.
            await self._release(payload)
            return {"ok": False, "error": "no manifest for completed cell"}
        entry = self._workers.setdefault(
            worker, {"registered_at": time.time(), "completed": 0}
        )
        entry["last_seen"] = time.time()
        entry["completed"] += 1
        self._finalize_done(key)
        sweep = self._sweeps.get(h)
        remaining = len(sweep["outstanding"]) if sweep is not None else 0
        await self._notify(self._status_cond)
        return {"ok": True, "outstanding": remaining}

    async def _status(self, params: dict) -> dict:
        """Long-poll a sweep: hold until its outstanding set drains."""
        h = str(params.get("hash", ""))
        timeout = min(float(params.get("timeout", 0.0)), MAX_LONG_POLL)
        assert self._loop is not None and self._status_cond is not None
        deadline = self._loop.time() + timeout
        async with self._status_cond:
            while True:
                sweep = self._sweeps.get(h)
                remaining = len(sweep["outstanding"]) if sweep is not None else 0
                if remaining == 0:
                    return {"done": True, "outstanding": 0}
                wait = deadline - self._loop.time()
                if wait <= 0.0:
                    return {"done": False, "outstanding": remaining}
                try:
                    await asyncio.wait_for(self._status_cond.wait(), wait)
                except asyncio.TimeoutError:
                    return {
                        "done": False,
                        "outstanding": len(
                            self._sweeps.get(h, {"outstanding": ()})["outstanding"]
                        ),
                    }

    # -- the janitor ----------------------------------------------------
    async def _janitor(self) -> None:
        """Lease expiry, external completion and crash re-claim, one tick
        per ``poll_interval`` — the event-driven replacement for every
        worker's own store polling."""
        assert self._stop is not None
        while not self._stop.is_set():
            try:
                await asyncio.wait_for(self._stop.wait(), self.poll_interval)
                return
            except asyncio.TimeoutError:
                pass
            try:
                await self._tick()
            except Exception:  # pragma: no cover - keep the janitor alive
                pass

    async def _tick(self) -> None:
        now = time.time()
        work_changed = False
        status_changed = False
        # Expired claims: the worker stopped heartbeating the coordinator.
        for key, claim in list(self._claims.items()):
            h, scheme, seed = key
            if self.store.has_cell(h, scheme, seed):
                self._finalize_done(key)
                status_changed = True
                continue
            if now <= claim["deadline"]:
                continue
            lock = self.queue.lock_path_for(self.queue.job_path(h, scheme, seed))
            if lock.exists() and not self.queue._is_stale(lock):
                # The filesystem lock is still beating: the worker is
                # alive but detached (coordinator restarted, or its link
                # failed) — treat the cell as externally owned.
                del self._claims[key]
                self._deferred.add(key)
                continue
            if lock.exists():
                self.queue._steal(lock)
            del self._claims[key]
            self._enqueue_key(key)
            work_changed = True
        # Deferred cells: owned by filesystem workers (or detached ones).
        for key in list(self._deferred):
            h, scheme, seed = key
            if self.store.has_cell(h, scheme, seed):
                self._finalize_done(key)
                status_changed = True
                continue
            lock = self.queue.lock_path_for(self.queue.job_path(h, scheme, seed))
            if not lock.exists():
                self._deferred.discard(key)
                self._enqueue_key(key)
                work_changed = True
            elif self.queue._is_stale(lock):
                if self.queue._steal(lock):
                    self._deferred.discard(key)
                    self._enqueue_key(key)
                    work_changed = True
        # Pending cells completed externally before dispatch (a SLURM
        # script or serial run landing manifests under the same hash).
        for key in list(self._pending):
            h, scheme, seed = key
            if self.store.has_cell(h, scheme, seed):
                self._finalize_done(key)
                status_changed = True
        if work_changed:
            await self._notify(self._work_cond)
        if status_changed:
            await self._notify(self._status_cond)

    # -- small state helpers --------------------------------------------
    def _enqueue_key(self, key: tuple[str, str, int]) -> None:
        if key not in self._pending_set:
            self._pending.append(key)
            self._pending_set.add(key)

    def _pending_discard(self, key: tuple[str, str, int]) -> None:
        if key in self._pending_set:
            self._pending_set.discard(key)
            try:
                self._pending.remove(key)
            except ValueError:  # pragma: no cover - set/deque drift
                pass

    def _finalize_done(self, key: tuple[str, str, int]) -> None:
        """Retire a finished cell everywhere: mirror files and memory."""
        h, scheme, seed = key
        path = self.queue.job_path(h, scheme, seed)
        self.queue._remove(path)
        self.queue._remove(self.queue.lock_path_for(path))
        self._pending_discard(key)
        self._deferred.discard(key)
        self._claims.pop(key, None)
        sweep = self._sweeps.get(h)
        if sweep is not None:
            sweep["outstanding"].discard((scheme, seed))

    @staticmethod
    async def _notify(cond: asyncio.Condition | None) -> None:
        if cond is not None:
            async with cond:
                cond.notify_all()


# ----------------------------------------------------------------------
# Thread embedding
# ----------------------------------------------------------------------
class CoordinatorHandle:
    """A coordinator running on a daemon thread; ``stop()`` to shut down."""

    def __init__(self, service: CoordinatorService, thread: threading.Thread):
        self.service = service
        self.thread = thread

    @property
    def url(self) -> str:
        return self.service.url

    def alive(self) -> bool:
        return self.thread.is_alive()

    def stop(self, timeout: float = 10.0) -> None:
        self.service.request_stop()
        self.thread.join(timeout=timeout)


def start_coordinator(
    store: "ExperimentStore | str | Path",
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
) -> CoordinatorHandle:
    """Start a :class:`CoordinatorService` on a background thread.

    Blocks until the server socket is bound (so :attr:`CoordinatorHandle.url`
    is immediately usable); ``port=0`` picks an ephemeral port.
    """
    service = CoordinatorService(
        store, host=host, port=port, poll_interval=poll_interval
    )

    def _runner() -> None:
        try:
            asyncio.run(service.serve())
        except BaseException as exc:  # pragma: no cover - loop crash
            service.error = exc
            service.ready.set()

    thread = threading.Thread(target=_runner, name="fmore-coordinator", daemon=True)
    thread.start()
    service.ready.wait(timeout=30.0)
    if service.error is not None:
        raise CoordinatorError(
            f"coordinator failed to start: {service.error}"
        ) from service.error
    return CoordinatorHandle(service, thread)


# ----------------------------------------------------------------------
# The worker side
# ----------------------------------------------------------------------
class WorkerClient:
    """Thin, typed client over the coordinator's HTTP endpoints.

    Raises the transport errors in ``_UNREACHABLE`` when the coordinator
    is gone; :class:`ServiceLink` wraps this with detach/re-attach and
    filesystem fallback for the worker loop.
    """

    def __init__(self, base_url: str, worker: str):
        self.base_url = str(base_url).rstrip("/")
        self.worker = str(worker)

    def register(self, *, timeout: float = 5.0) -> dict:
        return _request(
            self.base_url, "POST", "/register",
            {"worker": self.worker}, timeout=timeout,
        )

    def claim(self, *, long_poll: float, timeout: float | None = None) -> dict | None:
        reply = _request(
            self.base_url,
            "POST",
            "/claim",
            {"worker": self.worker, "timeout": long_poll},
            timeout=timeout if timeout is not None else long_poll + 10.0,
        )
        return reply.get("job")

    def heartbeat(
        self, scenario_hash: str, scheme: str, seed: int, rounds_done: int
    ) -> bool:
        reply = _request(
            self.base_url,
            "POST",
            "/heartbeat",
            {
                "worker": self.worker,
                "scenario_hash": scenario_hash,
                "scheme": scheme,
                "seed": seed,
                "round": rounds_done,
            },
            timeout=5.0,
        )
        return bool(reply.get("alive"))

    def release(self, scenario_hash: str, scheme: str, seed: int) -> None:
        _request(
            self.base_url,
            "POST",
            "/release",
            {
                "worker": self.worker,
                "scenario_hash": scenario_hash,
                "scheme": scheme,
                "seed": seed,
            },
            timeout=5.0,
        )

    def complete(self, scenario_hash: str, scheme: str, seed: int) -> dict:
        return _request(
            self.base_url,
            "POST",
            "/complete",
            {
                "worker": self.worker,
                "scenario_hash": scenario_hash,
                "scheme": scheme,
                "seed": seed,
            },
            timeout=5.0,
        )

    def health(self, *, timeout: float = 5.0) -> dict:
        return _request(self.base_url, "GET", "/health", timeout=timeout)


class ServiceLink:
    """The worker loop's coordinator attachment, with filesystem fallback.

    Owned by :func:`repro.api.distributed.run_worker`.  While attached,
    cells are claimed over long-poll and per-round events stream through
    ``/heartbeat``; the filesystem mirror lock is *also* renewed every
    round (it is held under this worker's label), so when the coordinator
    dies mid-cell the worker keeps the exact lease semantics of the
    polling protocol without missing a beat.  Detach happens on any
    transport error; :meth:`maybe_reattach` retries registration at most
    once per ``poll_interval``.
    """

    def __init__(
        self,
        base_url: str,
        worker: str,
        *,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ):
        self.client = WorkerClient(base_url, worker)
        self.worker = str(worker)
        self.poll_interval = float(poll_interval)
        self.attached = False
        self.queue: JobQueue | None = None
        self._owned: set[tuple[str, str, int]] = set()
        self._last_attach_attempt = float("-inf")
        # Long-poll hold: long enough to amortise connections, short
        # enough that SIGTERM (which interrupts between requests) stays
        # responsive.
        self.claim_hold = max(0.2, min(5.0, self.poll_interval * 4.0))

    # -- attachment -----------------------------------------------------
    def attach(self, *, required: bool = False) -> str | None:
        """Register with the coordinator; returns its store root (a path).

        With ``required`` a dead coordinator raises
        :class:`CoordinatorError`; otherwise the link just stays detached
        (the caller falls back to filesystem polling).
        """
        self._last_attach_attempt = time.monotonic()
        try:
            reply = self.client.register()
        except _UNREACHABLE as exc:
            self.attached = False
            if required:
                raise CoordinatorError(
                    f"coordinator {self.client.base_url} is unreachable: {exc}"
                ) from exc
            return None
        self.attached = True
        return str(reply.get("store")) if reply.get("store") else None

    def bind(self, queue: JobQueue) -> None:
        """Give the link its filesystem fallback target."""
        self.queue = queue

    def maybe_reattach(self) -> None:
        """Rate-limited re-registration while detached."""
        if self.attached:
            return
        if time.monotonic() - self._last_attach_attempt < self.poll_interval:
            return
        self.attach(required=False)

    # -- the worker-loop protocol ---------------------------------------
    def owns(self, job: Job) -> bool:
        return (job.scenario_hash, job.scheme, job.seed) in self._owned

    def claim(self) -> Job | None:
        """Long-poll the coordinator for a pushed cell.

        ``None`` with ``attached`` still true means an idle hold expired;
        ``None`` with ``attached`` false means the coordinator vanished
        (the worker loop then falls back to filesystem claims).
        """
        assert self.queue is not None, "bind() the link before claiming"
        try:
            descriptor = self.client.claim(long_poll=self.claim_hold)
        except _UNREACHABLE:
            self.attached = False
            return None
        if descriptor is None:
            return None
        h = str(descriptor["scenario_hash"])
        scheme, seed = str(descriptor["scheme"]), int(descriptor["seed"])
        path = self.queue.job_path(h, scheme, seed)
        try:
            scenario = self.queue.store.load_scenario(h).to_dict()
        except Exception:
            # The mirror vanished under us (foreign store, manual rm):
            # give the cell back rather than dying with a claim held.
            self.release_key(h, scheme, seed)
            return None
        job = Job(
            path=path,
            lock_path=JobQueue.lock_path_for(path),
            scenario=scenario,
            scenario_hash=h,
            scheme=scheme,
            seed=seed,
            resume=bool(descriptor.get("resume", False)),
            checkpoint_every=descriptor.get("checkpoint_every"),
            lease_seconds=float(
                descriptor.get("lease_seconds", DEFAULT_LEASE_SECONDS)
            ),
            worker=self.worker,
        )
        self._owned.add((h, scheme, seed))
        return job

    def heartbeat(self, job: Job, rounds_done: int) -> bool:
        """Renew both leases; stream one round-completion event.

        The filesystem lock is authoritative for execution (exactly the
        polling protocol's semantics): if it was stolen the cell is
        abandoned no matter what the coordinator thinks.  Coordinator
        unreachability merely detaches the link — the fs lease keeps the
        cell owned.
        """
        assert self.queue is not None
        alive = self.queue.heartbeat(job)
        try:
            self.client.heartbeat(
                job.scenario_hash, job.scheme, job.seed, rounds_done
            )
        except _UNREACHABLE:
            self.attached = False
        return alive

    def complete(self, job: Job) -> None:
        self._owned.discard((job.scenario_hash, job.scheme, job.seed))
        assert self.queue is not None
        try:
            self.client.complete(job.scenario_hash, job.scheme, job.seed)
            return
        except _UNREACHABLE:
            self.attached = False
        self.queue.complete(job)

    def release(self, job: Job) -> None:
        self._owned.discard((job.scenario_hash, job.scheme, job.seed))
        assert self.queue is not None
        try:
            self.client.release(job.scenario_hash, job.scheme, job.seed)
            return
        except _UNREACHABLE:
            self.attached = False
        self.queue.release(job)

    def release_key(self, scenario_hash: str, scheme: str, seed: int) -> None:
        self._owned.discard((scenario_hash, scheme, seed))
        try:
            self.client.release(scenario_hash, scheme, seed)
        except _UNREACHABLE:
            self.attached = False

    def close(self) -> None:
        self.attached = False
        self._owned.clear()


# ----------------------------------------------------------------------
# The "service" executor
# ----------------------------------------------------------------------
@EXECUTORS.register("service")
class ServiceExecutor(Executor):
    """Drive a sweep through the event-driven coordinator service.

    With ``coordinator_url`` the sweep is submitted to a running
    coordinator (whose warm worker fleet executes it); with
    ``coordinator_url=None`` an embedded coordinator thread is started on
    an ephemeral port and ``max_workers`` local worker processes are
    spawned against it — and both are kept *warm* on this executor
    instance, so back-to-back ``execute_plan`` calls reuse the fleet
    without process restarts.  ``max_workers=0`` spawns nothing
    (external workers do the running).

    Every queued cell is mirrored to the store's ``jobs/`` directory, so
    when the coordinator dies mid-sweep this executor falls back to
    waiting on the filesystem protocol (and service workers fall back to
    filesystem claims) — the sweep still completes, byte-identically.

    Scenario spec::

        {"executor": "service", "max_workers": 2,
         "coordinator_url": "http://127.0.0.1:7464",   # null = embedded
         "lease_seconds": 300.0, "poll_interval": 1.0}
    """

    in_process = False
    needs_store = True

    def __init__(
        self,
        max_workers: int | None = None,
        coordinator_url: str | None = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ):
        if max_workers is not None and int(max_workers) == 0:
            self.max_workers = 0  # coordinate-only: external fleet runs cells
        else:
            super().__init__(max_workers)
        lease_seconds = float(lease_seconds)
        poll_interval = float(poll_interval)
        if lease_seconds < 0.0:
            raise ValueError("lease_seconds must be >= 0")
        if poll_interval <= 0.0:
            raise ValueError("poll_interval must be > 0")
        self.coordinator_url = (
            str(coordinator_url).rstrip("/") if coordinator_url else None
        )
        self.lease_seconds = lease_seconds
        self.poll_interval = poll_interval
        self._embedded: CoordinatorHandle | None = None
        self._workers: list[subprocess.Popen] = []
        self._store_root: Path | None = None

    def map(self, fn, items):
        raise RuntimeError(
            "the service executor does not map functions over cells; run "
            "it through FMoreEngine.run(scenario, store=...) so the "
            "coordinator can schedule whole plans via execute_plan"
        )

    # -- warm-pool lifecycle --------------------------------------------
    def close(self) -> None:
        """Tear down the warm pool: workers first, then the coordinator."""
        workers, self._workers = self._workers, []
        for proc in workers:
            proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - safety
                proc.kill()
        if self._embedded is not None:
            self._embedded.stop()
            self._embedded = None
        self._store_root = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown timing
        try:
            self.close()
        except Exception:
            pass

    def _service_url(self, store: "ExperimentStore") -> str:
        """The coordinator to talk to, starting the embedded one if needed."""
        if self.coordinator_url is not None:
            return self.coordinator_url
        if self._embedded is not None and (
            not self._embedded.alive() or self._store_root != store.root
        ):
            self.close()
        if self._embedded is None:
            self._embedded = start_coordinator(
                store, poll_interval=self.poll_interval
            )
            self._store_root = store.root
        return self._embedded.url

    def _ensure_workers(self, url: str, store: "ExperimentStore", n_cells: int) -> int:
        """Top the warm worker pool up to the configured size."""
        if self.max_workers == 0:
            return 0
        target = self.worker_count(n_cells)
        self._workers = [p for p in self._workers if p.poll() is None]
        while len(self._workers) < target:
            self._workers.append(
                _spawn_service_worker(url, store, self.poll_interval)
            )
        return target

    # -- the sweep ------------------------------------------------------
    def execute_plan(
        self,
        scenario: "Scenario",
        cells: Sequence[tuple[str, int]],
        store: "ExperimentStore",
        *,
        resume: bool = False,
        checkpoint_every: int | None = None,
        force: bool = False,
    ):
        """Submit ``cells`` to the coordinator, long-poll until they land.

        Returns histories aligned with ``cells`` (the engine's positional
        contract).  Coordinator failure at any point degrades to the
        filesystem protocol — queue the mirror directly if the submission
        itself failed, then wait on manifests with stale-lease reclaim,
        exactly like the ``distributed`` executor's coordinate-only mode.
        """
        from .store import ExperimentStore

        store = ExperimentStore.coerce(store)
        h = store.register_scenario(scenario)
        url = self._service_url(store)
        payload = {
            "scenario": scenario.to_dict(),
            "cells": [[s, int(d)] for s, d in cells],
            "resume": bool(resume),
            "checkpoint_every": checkpoint_every,
            "lease_seconds": self.lease_seconds,
            "force": bool(force),
        }
        try:
            _request(url, "POST", "/sweep", payload, timeout=30.0)
        except _UNREACHABLE:
            return self._fallback(
                scenario, cells, store, h,
                resume=resume, checkpoint_every=checkpoint_every, force=force,
            )
        n_local = self._ensure_workers(url, store, len(cells))
        failures = 0
        max_failures = max(3, 2 * n_local)
        last_outstanding: int | None = None
        hold = max(0.2, min(5.0, self.poll_interval * 4.0))
        while True:
            if n_local:
                alive = []
                for proc in self._workers:
                    code = proc.poll()
                    if code is None:
                        alive.append(proc)
                    elif code != 0:
                        failures += 1
                        if failures > max_failures:
                            raise RuntimeError(
                                f"service workers keep failing (last exit "
                                f"code {code}, {failures} failures); see "
                                "the worker stderr above"
                            )
                self._workers = alive
                if len(self._workers) < n_local:
                    self._workers.append(
                        _spawn_service_worker(url, store, self.poll_interval)
                    )
            try:
                status = _request(
                    url,
                    "GET",
                    f"/status?hash={h}&timeout={hold}",
                    timeout=hold + 10.0,
                )
            except _UNREACHABLE:
                return self._fallback_wait(store, h, cells)
            if status.get("done"):
                break
            outstanding = int(status.get("outstanding", 0))
            if last_outstanding is not None and outstanding < last_outstanding:
                failures = 0  # progress absorbs worker churn
            last_outstanding = outstanding
        return [store.load_history(h, s, d) for s, d in cells]

    # -- degraded modes -------------------------------------------------
    def _fallback(
        self,
        scenario: "Scenario",
        cells: Sequence[tuple[str, int]],
        store: "ExperimentStore",
        h: str,
        *,
        resume: bool,
        checkpoint_every: int | None,
        force: bool,
    ):
        """Coordinator gone before submission: mirror the jobs ourselves."""
        queue = JobQueue(store)
        if force:
            for scheme, seed in cells:
                try:
                    store.manifest_path(h, scheme, seed).unlink()
                except FileNotFoundError:
                    pass
        queue.enqueue(
            scenario,
            cells,
            resume=resume,
            checkpoint_every=checkpoint_every,
            lease_seconds=self.lease_seconds,
        )
        return self._fallback_wait(store, h, cells)

    def _fallback_wait(
        self,
        store: "ExperimentStore",
        h: str,
        cells: Sequence[tuple[str, int]],
    ):
        """Wait on the filesystem protocol: manifests + stale-lease reclaim.

        The jobs are mirrored, so any worker — our own spawned fleet
        (which falls back to filesystem claims by itself), or external
        ones — can drain the queue; this loop just watches manifests the
        way the ``distributed`` coordinate-only mode does.
        """
        queue = JobQueue(store)
        hinted = False
        idle = 0
        while store.missing_cells(h, cells):
            queue.reclaim_stale()
            self._workers = [p for p in self._workers if p.poll() is None]
            idle += 1
            if (
                not hinted
                and not self._workers
                and idle * self.poll_interval > 30.0
            ):
                hinted = True
                print(
                    f"[service] coordinator unreachable; waiting on "
                    f"filesystem workers for {store.root} — start some "
                    f"with: python -m repro worker --store {store.root}",
                    file=sys.stderr,
                )
            time.sleep(self.poll_interval)
        return [store.load_history(h, s, d) for s, d in cells]


def _spawn_service_worker(
    url: str, store: "ExperimentStore", poll_interval: float
) -> subprocess.Popen:
    """One warm worker subprocess attached to the coordinator at ``url``.

    The store is passed explicitly (not just learned from ``/register``)
    so the worker can fall back to filesystem claims the moment the
    coordinator dies; ``src`` is prepended to ``PYTHONPATH`` so spawning
    works from a source checkout.
    """
    src_dir = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else os.pathsep.join([src_dir, existing])
    )
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        "--coordinator",
        url,
        "--store",
        str(store.root.resolve()),
        "--poll-interval",
        str(poll_interval),
    ]
    return subprocess.Popen(cmd, env=env)
