"""Distributed sweeps: a work-stealing job queue over the experiment store.

The ``(scheme, seed)`` cells of a :class:`~repro.api.scenario.Scenario`
plan are pure functions of ``(scenario, scheme, seed)`` — every cell
derives its randomness from named seed streams, and a completed cell is
one content-addressed manifest in an
:class:`~repro.api.store.ExperimentStore`.  That makes the store itself a
results bus: this module adds the matching *job* bus, so a sweep can fan
out across processes and machines that share nothing but a filesystem.

Three cooperating roles, all socket-free:

* **Coordinator** — the registry-registered ``"distributed"``
  :class:`~repro.api.executor.Executor`.  ``FMoreEngine.run`` hands it the
  pending cells; it registers the scenario once under
  ``<store>/scenarios/<hash>.json`` and enqueues one *job spec* per cell
  (the cell address plus the scenario hash — specs reference the
  registered scenario rather than embedding it) under
  ``<store>/jobs/<scenario-hash>/``,
  optionally spawns local worker processes, and then just polls the store
  until every cell's manifest exists.  Worker death is handled by *lease
  timeouts*: a claimed job whose lock stops heartbeating is re-queued
  (its lock reclaimed) so surviving workers steal the cell.
* **Workers** — ``python -m repro worker --store DIR`` (or
  :func:`run_worker`).  Each worker scans the job directory, claims cells
  with atomic ``O_CREAT | O_EXCL`` lock files (work-stealing: whoever
  creates the lock first owns the cell), runs the cell through the
  ordinary engine session path, heartbeats its lock every round, writes
  the cell's manifest and removes the job.  Workers are interchangeable
  and stateless between cells — point any number of them, on any machine,
  at the shared store.
* **Batch clusters** — :func:`emit_job_scripts` (CLI: ``python -m repro
  scenario --emit-jobs DIR``) writes one SLURM-style shell script per
  cell plus an array-job wrapper.  Each script runs its single cell as a
  plain serial ``python -m repro run`` against ``$STORE``; because the
  manifest address excludes the run plan, all cells land under one
  scenario hash and the full ``RunResult`` assembles from any machine —
  the same store protocol, with the scheduler playing coordinator.

Determinism contract: however a cell is executed — serially, stolen after
a worker crash, restarted from scratch or resumed from a checkpoint — its
manifest is byte-identical to the serial executor's, because the engine
path and the RNG streams are the same (pinned in
``tests/test_distributed.py``).  Duplicate execution (two workers racing
one cell across a lease expiry) is therefore harmless: manifest writes
are atomic and last-writer-wins over identical bytes.

Queue layout under the store root::

    jobs/<hash>/<scheme>-seed<seed>.json   # job spec (removed when done)
    jobs/<hash>/<scheme>-seed<seed>.lock   # claim: owner + heartbeat

The lock protocol is plain-POSIX: claims use ``O_CREAT | O_EXCL``
(atomic on local filesystems and on NFSv3+), heartbeats rewrite the lock
via temp-file + ``os.replace``, and stale-lock takeover renames the
expired lock aside first — ``os.rename`` succeeds for exactly one
stealer, so a cell is never reclaimed twice.
"""

from __future__ import annotations

import json
import os
import random
import signal
import socket
import stat
import subprocess
import sys
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..core.registry import EXECUTORS
from .executor import Executor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> scenario)
    from .scenario import Scenario
    from .store import ExperimentStore

__all__ = [
    "DistributedExecutor",
    "JobQueue",
    "Job",
    "run_worker",
    "emit_job_scripts",
    "idle_backoff",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_POLL_INTERVAL",
]

# Format 2 job specs reference the registered ``scenarios/<hash>.json``
# by hash instead of embedding the full scenario JSON (one copy per sweep
# rather than one per cell); format 1 specs with an embedded ``scenario``
# are still claimed and run unchanged.
JOB_FORMAT = 2

#: How long a claimed cell may go without a heartbeat before any other
#: worker (or the coordinator) may re-queue it.  Workers heartbeat once
#: per protocol round, so the lease must comfortably exceed the slowest
#: round — see docs/deployment.md for sizing guidance.
DEFAULT_LEASE_SECONDS = 300.0

#: How often idle workers re-scan the queue and the coordinator re-polls
#: the store for finished manifests.
DEFAULT_POLL_INTERVAL = 1.0


def _now() -> float:
    return time.time()


def _worker_label(worker_id: str | None = None) -> str:
    """A globally-unique worker identity (host + pid + nonce by default)."""
    if worker_id:
        return str(worker_id)
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


#: First idle-poll delay of the exponential backoff, as a fraction of the
#: configured ``poll_interval`` (the cap).  Eight consecutive empty scans
#: walk the delay from ``poll_interval / 128`` up to the full interval.
_BACKOFF_START_FRACTION = 1.0 / 128.0


def idle_backoff(
    idle_passes: int, poll_interval: float, rng: random.Random
) -> float:
    """Jittered exponential idle delay, capped at ``poll_interval``.

    A fleet of workers that all find the queue empty on the same scan
    must not re-scan in lockstep forever — a fixed-interval sleep
    synchronizes the herd, so every poll hammers the shared filesystem
    at once.  Instead the delay doubles per consecutive empty pass
    (``idle_passes`` >= 1), capped at ``poll_interval``, and each worker
    draws a uniform jitter in ``[0.5, 1.0)`` of the nominal delay from
    its own RNG — fresh work is picked up quickly, and steady-state
    idlers spread across the interval.
    """
    if idle_passes < 1:
        raise ValueError("idle_passes counts from 1")
    if poll_interval <= 0.0:
        raise ValueError("poll_interval must be > 0")
    nominal = min(
        poll_interval,
        poll_interval * _BACKOFF_START_FRACTION * (2.0 ** (idle_passes - 1)),
    )
    return nominal * (0.5 + 0.5 * rng.random())


class _StopFlag:
    """The worker's shutdown latch: a threading.Event plus signal wiring.

    ``install()`` registers SIGTERM/SIGINT handlers that merely set the
    event (safe to call from a signal context); the worker loop checks it
    between claims and between rounds, so a killed fleet releases (or
    checkpoints) its claims instead of stranding leases until expiry.
    Handlers are only installed in the main thread (Python forbids
    ``signal.signal`` elsewhere) and always restored on ``uninstall()``.
    """

    def __init__(self, event: threading.Event | None = None):
        self.event = event if event is not None else threading.Event()
        self._previous: dict[int, Any] = {}

    def install(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass

    def _handle(self, signum, frame) -> None:
        self.event.set()

    def uninstall(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
        self._previous.clear()

    def is_set(self) -> bool:
        return self.event.is_set()

    def wait(self, timeout: float) -> bool:
        return self.event.wait(timeout)


# ----------------------------------------------------------------------
# Job specs and the filesystem queue
# ----------------------------------------------------------------------
@dataclass
class Job:
    """One claimed ``(scheme, seed)`` cell, as read from its job spec.

    ``scenario`` is the full scenario dict — resolved at claim time from
    the store's ``scenarios/<hash>.json`` registry for format-2 specs, or
    taken verbatim from legacy format-1 specs that embedded it — so a
    worker needs nothing but the shared store to run the cell; ``worker``
    is the claiming worker's label (set by :meth:`JobQueue.claim`).
    """

    path: Path
    lock_path: Path
    scenario: dict
    scenario_hash: str
    scheme: str
    seed: int
    resume: bool
    checkpoint_every: int | None
    lease_seconds: float
    worker: str | None = None

    @property
    def cell(self) -> tuple[str, int]:
        return (self.scheme, self.seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Job({self.scheme!r}, seed={self.seed}, "
            f"hash={self.scenario_hash[:12]}…, worker={self.worker!r})"
        )


class JobQueue:
    """The shared-filesystem job queue inside an experiment store.

    Every operation is a plain file operation under
    ``<store>/jobs/<scenario-hash>/`` — no sockets, no daemons — so any
    process that can see the store can enqueue, claim, steal and complete
    cells.  See the module docstring for the lock protocol.
    """

    def __init__(self, store: "ExperimentStore | str | Path"):
        from .store import ExperimentStore

        self.store = ExperimentStore.coerce(store)
        self._claim_passes = 0

    # -- paths ----------------------------------------------------------
    def jobs_dir(self, scenario_hash: str) -> Path:
        return self.store.root / "jobs" / scenario_hash

    def job_path(self, scenario_hash: str, scheme: str, seed: int) -> Path:
        return self.jobs_dir(scenario_hash) / f"{scheme}-seed{int(seed)}.json"

    @staticmethod
    def lock_path_for(job_path: Path) -> Path:
        return job_path.with_suffix(".lock")

    # -- enqueue --------------------------------------------------------
    def enqueue(
        self,
        scenario: "Scenario",
        cells: Sequence[tuple[str, int]],
        *,
        resume: bool = False,
        checkpoint_every: int | None = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ) -> list[Path]:
        """Write one job spec per cell; returns the paths actually written.

        Registers the scenario in the store first — that single
        ``scenarios/<hash>.json`` is the sweep's one copy of the spec;
        job specs reference it by hash — then skips cells whose manifest
        already exists and cells already queued, so re-enqueueing a
        partially-finished plan is idempotent.
        """
        from .store import _write_json

        h = self.store.register_scenario(scenario)
        written: list[Path] = []
        for scheme, seed in cells:
            if self.store.has_cell(h, scheme, seed):
                continue
            path = self.job_path(h, scheme, seed)
            if path.exists():
                continue
            _write_json(
                path,
                {
                    "format": JOB_FORMAT,
                    "scenario_hash": h,
                    "scheme": str(scheme),
                    "seed": int(seed),
                    "resume": bool(resume),
                    "checkpoint_every": (
                        None if checkpoint_every is None else int(checkpoint_every)
                    ),
                    "lease_seconds": float(lease_seconds),
                },
            )
            written.append(path)
        return written

    # -- inspection -----------------------------------------------------
    def _job_paths(self) -> list[Path]:
        root = self.store.root / "jobs"
        if not root.is_dir():
            return []
        out: list[Path] = []
        for hash_dir in sorted(p for p in root.iterdir() if p.is_dir()):
            out.extend(sorted(hash_dir.glob("*.json")))
        return out

    def pending(self) -> list[tuple[str, str, int]]:
        """Queued ``(hash, scheme, seed)`` cells (claimed or not)."""
        out = []
        for path in self._job_paths():
            data = self._read_job(path)
            if data is not None:
                out.append(
                    (str(data["scenario_hash"]), str(data["scheme"]), int(data["seed"]))
                )
        return out

    def unclaimed(self) -> list[Path]:
        """Job specs not currently covered by a live (non-stale) lock."""
        out = []
        for path in self._job_paths():
            lock = self.lock_path_for(path)
            if not lock.exists() or self._is_stale(lock):
                out.append(path)
        return out

    # -- claiming (work-stealing) ---------------------------------------
    def claim(self, worker_id: str | None = None) -> Job | None:
        """Claim the first available cell, or ``None`` when none is.

        Scans job specs in a per-worker, per-pass shuffled order (seeded
        from the worker label and a pass counter — deterministic for a
        given worker, different across workers), so a fleet of workers
        arriving at a freshly-enqueued plan fans out across the queue
        instead of all contending for the lexicographically-first lock.
        A cell is available when its lock does not exist (never claimed,
        or released) or exists but has outlived its lease (the previous
        worker died — the lock is atomically renamed aside and
        re-created, i.e. the cell is *stolen*).  Cells whose manifest
        already landed are garbage collected on the way.

        Raises :class:`~repro.api.store.StoreMismatchError` when a job
        spec addresses a scenario this store has never registered — the
        signature of a worker pointed at the wrong ``--store`` (or of job
        files copied between stores).
        """
        from .store import StoreMismatchError

        label = _worker_label(worker_id)
        self._claim_passes += 1
        paths = self._job_paths()
        # str seeding is stable (unlike hash(), which is salted per run).
        random.Random(f"{label}:{self._claim_passes}").shuffle(paths)
        known_hashes: set[str] = set()  # scenario_path.exists() memoised
        for path in paths:
            data = self._read_job(path)
            if data is None:
                continue
            h = str(data["scenario_hash"])
            scheme, seed = str(data["scheme"]), int(data["seed"])
            if h not in known_hashes:
                if self.store.scenario_path(h).exists():
                    known_hashes.add(h)
                elif "scenario" not in data:
                    # A format-2 spec is meaningless without its registered
                    # scenario file — the job was copied away from the
                    # store it was enqueued into.
                    raise StoreMismatchError(
                        f"job {path.name} references scenario {h[:12]}… by "
                        f"hash but store {self.store.root} has no "
                        f"scenarios/{h[:12]}….json; hash-referenced job "
                        "specs only run against the store they were "
                        "enqueued into — this worker is pointed at a "
                        "foreign store, check --store"
                    )
                else:
                    # Only now pay for loading the specs — purely to name
                    # the stored scenarios in the error (an empty registry
                    # means a fresh store: nothing to mismatch against).
                    stored = self.store.scenarios()
                    if stored:
                        listing = ", ".join(
                            f"{k[:12]}… ({v.get('name', '?')})"
                            for k, v in stored.items()
                        )
                        raise StoreMismatchError(
                            f"job {path.name} addresses scenario {h[:12]}…, "
                            f"which store {self.store.root} has never "
                            f"registered (stored: {listing}); this worker is "
                            "pointed at a foreign store — check --store"
                        )
                    known_hashes.add(h)
            if self.store.has_cell(h, scheme, seed):
                # Another worker finished it but died before cleaning up.
                self._remove(path)
                self._remove(self.lock_path_for(path))
                continue
            lock = self.lock_path_for(path)
            lease = float(data.get("lease_seconds", DEFAULT_LEASE_SECONDS))
            if self._acquire(lock, label, lease):
                if "scenario" in data:  # legacy format-1: embedded spec
                    spec = dict(data["scenario"])
                else:
                    spec = self.store.load_scenario(h).to_dict()
                return Job(
                    path=path,
                    lock_path=lock,
                    scenario=spec,
                    scenario_hash=h,
                    scheme=scheme,
                    seed=seed,
                    resume=bool(data.get("resume", False)),
                    checkpoint_every=data.get("checkpoint_every"),
                    lease_seconds=lease,
                    worker=label,
                )
        return None

    def _acquire(self, lock: Path, label: str, lease_seconds: float) -> bool:
        """Try to own ``lock``; steals it first if its lease expired."""
        payload = self._lock_payload(label, lease_seconds)
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if not self._is_stale(lock) or not self._steal(lock):
                return False
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        return True

    def _steal(self, lock: Path) -> bool:
        """Remove an expired lock race-safely; ``True`` for the one winner.

        Takeover renames the lock aside first — ``os.rename`` succeeds
        for exactly one stealer — so a cell is never reclaimed twice; the
        loser simply moves on (someone else owns the steal).
        """
        aside = lock.with_name(f"{lock.name}.stale-{uuid.uuid4().hex[:8]}")
        try:
            os.rename(lock, aside)
        except FileNotFoundError:
            return False
        self._remove(aside)
        return True

    @staticmethod
    def _lock_payload(label: str, lease_seconds: float) -> str:
        now = _now()
        return json.dumps(
            {
                "worker": label,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "claimed_at": now,
                "heartbeat": now,
                "lease_seconds": float(lease_seconds),
            },
            sort_keys=True,
        )

    def _is_stale(self, lock: Path) -> bool:
        data = self._read_lock(lock)
        if data is None:
            # Unreadable: either a racing heartbeat replace (momentary)
            # or a worker killed between creating the lock and writing
            # its payload.  Fall back to file age under the default
            # lease so a payload-less lock cannot wedge its cell forever.
            try:
                mtime = lock.stat().st_mtime
            except OSError:
                return False  # vanished under us: nothing to steal
            return _now() > mtime + DEFAULT_LEASE_SECONDS
        lease = float(data.get("lease_seconds", DEFAULT_LEASE_SECONDS))
        return _now() > float(data.get("heartbeat", 0.0)) + lease

    # -- lease maintenance ---------------------------------------------
    def heartbeat(self, job: Job) -> bool:
        """Renew ``job``'s lease; ``False`` means the cell was stolen.

        A worker that misses its lease (a long GC pause, a suspended
        laptop) may find another worker's label in the lock — it must
        then abandon the cell: the thief owns it now, and the store's
        atomic, deterministic manifest writes make the duplicate rounds
        already run harmless.
        """
        current = self._read_lock(job.lock_path)
        if current is None or current.get("worker") != job.worker:
            return False
        current["heartbeat"] = _now()
        tmp = job.lock_path.with_name(job.lock_path.name + ".tmp")
        tmp.write_text(json.dumps(current, sort_keys=True))
        os.replace(tmp, job.lock_path)
        return True

    def release(self, job: Job) -> None:
        """Give the cell back (job spec stays queued for other workers)."""
        current = self._read_lock(job.lock_path)
        if current is not None and current.get("worker") == job.worker:
            self._remove(job.lock_path)

    def complete(self, job: Job) -> None:
        """Retire a finished cell: drop its job spec, then its lock."""
        self._remove(job.path)
        self._remove(job.lock_path)

    def reclaim_stale(self) -> list[Path]:
        """Re-queue every lease-expired claim; returns the reclaimed locks.

        Workers steal lazily (at claim time); the coordinator calls this
        each poll so that a dead worker's cells become claimable even
        when every surviving worker is busy elsewhere.  Locks whose cell
        already has a manifest are retired outright.
        """
        reclaimed: list[Path] = []
        root = self.store.root / "jobs"
        if not root.is_dir():
            return reclaimed
        for hash_dir in sorted(p for p in root.iterdir() if p.is_dir()):
            for lock in sorted(hash_dir.glob("*.lock")):
                if not lock.with_suffix(".json").exists():
                    self._remove(lock)
                    continue
                if self._is_stale(lock) and self._steal(lock):
                    reclaimed.append(lock)
            # Garbage-collect debris of killed workers: orphaned
            # heartbeat temp files and steal-aside files older than the
            # default lease (younger ones may be a live replace mid-race).
            for junk in sorted(hash_dir.glob("*.lock.tmp")) + sorted(
                hash_dir.glob("*.lock.stale-*")
            ):
                try:
                    if _now() > junk.stat().st_mtime + DEFAULT_LEASE_SECONDS:
                        self._remove(junk)
                except OSError:
                    pass
        return reclaimed

    # -- small helpers --------------------------------------------------
    @staticmethod
    def _read_job(path: Path) -> dict | None:
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None  # removed or mid-write by a racing worker

    @staticmethod
    def _read_lock(path: Path) -> dict | None:
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    @staticmethod
    def _remove(path: Path) -> None:
        try:
            path.unlink()
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobQueue({str(self.store.root)!r})"


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------
def run_worker(
    store: "ExperimentStore | str | Path | None" = None,
    *,
    coordinator: str | None = None,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    max_cells: int | None = None,
    exit_when_idle: bool = False,
    worker_id: str | None = None,
    crash_after_claim: bool = False,
    stop_event: threading.Event | None = None,
    stop_after_rounds: int | None = None,
) -> int:
    """Claim and run queued cells; returns the number of cells completed.

    The library form of ``python -m repro worker``.  Two claim paths
    share one loop:

    * **filesystem** (``store=DIR``, the default): scan the store's job
      directory and claim cells with lock files, stealing lease-expired
      ones — any process on the shared filesystem participates.  Idle
      scans back off exponentially with per-worker jitter (capped at
      ``poll_interval``) so a fleet that drains the queue does not
      re-scan in lockstep.
    * **service** (``coordinator=URL``): register with the event-driven
      coordinator (:mod:`repro.api.coordinator`) and long-poll it for
      pushed work — no directory scans, and the worker stays warm between
      sweeps.  When the coordinator becomes unreachable the worker *falls
      back* to filesystem claims against the same store (the coordinator
      mirrors every job there) and periodically tries to re-attach.

    Either way each cell runs through the ordinary engine session path
    with a heartbeat per round, lands its content-addressed manifest, and
    retires its job.  One engine (one equilibrium-solver cache) is shared
    across all cells this worker runs.

    The worker shuts down gracefully: SIGTERM/SIGINT set a stop flag
    checked between claims and between rounds — a stopping worker
    checkpoints its in-flight cell (when the job asked for
    ``checkpoint_every``) and releases its claim, so killed fleets never
    strand leases until expiry.

    Parameters
    ----------
    store:
        The shared experiment store.  Optional in service mode (the
        coordinator advertises its store), mandatory otherwise.
    coordinator:
        Coordinator base URL (``http://host:port``) for service mode.
    poll_interval:
        Cap on the idle backoff between filesystem queue scans, and the
        re-attach probe interval while falling back.
    max_cells:
        Stop after completing this many cells (``None`` = unbounded) —
        the batch-cluster-friendly lifetime bound.
    exit_when_idle:
        Return instead of waiting when nothing is claimable (used by
        coordinator-spawned workers and one-shot scripts).
    worker_id:
        Stable label for locks and registration; default host-pid-nonce.
    crash_after_claim:
        Testing/chaos hook: claim one cell, then return *without running
        or releasing it* — exactly what a worker killed mid-cell leaves
        behind (a claimed job whose lock will outlive its lease).
    stop_event:
        External stop flag (tests, embedding callers); SIGTERM/SIGINT
        set the same event when running in a main thread.
    stop_after_rounds:
        Testing/chaos hook: trip the stop flag after this many rounds of
        the first claimed cell — deterministically exercises the
        graceful mid-cell shutdown path (checkpoint + release).
    """
    from .engine import FMoreEngine
    from .store import ExperimentStore

    label = _worker_label(worker_id)
    stop = _StopFlag(stop_event)
    stop.install()
    link = None
    try:
        if coordinator is not None:
            from .coordinator import ServiceLink

            link = ServiceLink(
                coordinator, label, poll_interval=poll_interval
            )
            if store is None:
                store = link.attach(required=True)
            else:
                link.attach(required=False)
        if store is None:
            raise ValueError(
                "run_worker needs a store (or a reachable coordinator "
                "that advertises one); pass store=DIR / --store DIR"
            )
        store = ExperimentStore.coerce(store)
        queue = JobQueue(store)
        if link is not None:
            link.bind(queue)
        engine = FMoreEngine()
        backoff_rng = random.Random(f"idle:{label}")
        completed = 0
        idle_passes = 0
        while not stop.is_set() and (max_cells is None or completed < max_cells):
            job, waited = _claim_next(queue, link, label, stop)
            if job is None:
                if exit_when_idle:
                    break
                if not waited:
                    idle_passes += 1
                    stop.wait(idle_backoff(idle_passes, poll_interval, backoff_rng))
                continue
            idle_passes = 0
            if crash_after_claim:
                return completed
            if _run_job(
                engine,
                store,
                queue,
                job,
                link=link,
                stop=stop,
                stop_after_rounds=stop_after_rounds,
            ):
                completed += 1
        return completed
    finally:
        if link is not None:
            link.close()
        stop.uninstall()


def _claim_next(
    queue: JobQueue, link, label: str, stop: _StopFlag
) -> tuple[Job | None, bool]:
    """One claim attempt via the coordinator link or the filesystem.

    Returns ``(job, waited)`` — ``waited`` is ``True`` when the attempt
    already blocked (a service long-poll), so the caller must not add its
    own idle backoff on top.
    """
    if link is not None and not link.attached and not stop.is_set():
        link.maybe_reattach()
    if link is not None and link.attached:
        job = link.claim()
        if job is not None or link.attached:
            return job, True
        # The coordinator vanished mid-claim: fall through to the
        # filesystem path this very pass (jobs are mirrored there).
    return queue.claim(label), False


def _run_job(
    engine,
    store: "ExperimentStore",
    queue: JobQueue,
    job: Job,
    *,
    link=None,
    stop: _StopFlag | None = None,
    stop_after_rounds: int | None = None,
) -> bool:
    """Run one claimed cell to completion; ``True`` when its manifest landed.

    With ``job.resume`` the cell continues from its store checkpoint (a
    previous worker's partial progress) — bitwise-identical to a fresh
    run by the checkpoint contract; otherwise stolen cells restart from
    round zero, which is merely slower, never different.  A lost lease
    aborts the cell mid-run (another worker owns it now); a graceful stop
    (SIGTERM/SIGINT) checkpoints the cell when the job asked for
    ``checkpoint_every``, then releases the claim; any other failure
    releases the claim so the cell is immediately re-queued.

    ``link`` (a :class:`repro.api.coordinator.ServiceLink`) routes
    heartbeats and completion through the coordinator — streaming one
    round-completion event per round — and transparently falls back to
    the filesystem lock protocol when the coordinator is unreachable.
    """
    from .scenario import Scenario

    scenario = Scenario.from_dict(job.scenario)
    linked = link is not None and link.owns(job)
    heartbeat = link.heartbeat if linked else None
    complete = link.complete if linked else queue.complete
    release = link.release if linked else queue.release
    if store.has_cell(job.scenario_hash, job.scheme, job.seed):
        complete(job)
        return False
    session = engine.session(scenario, job.scheme, job.seed)
    if job.resume:
        checkpoint = store.load_checkpoint(job.scenario_hash, job.scheme, job.seed)
        if checkpoint is not None:
            session.restore(checkpoint)
    try:
        advanced = 0
        while session.rounds_remaining > 0:
            next(session)
            advanced += 1
            if stop_after_rounds is not None and advanced >= stop_after_rounds:
                if stop is not None:
                    stop.event.set()
            alive = (
                heartbeat(job, advanced) if heartbeat is not None
                else queue.heartbeat(job)
            )
            if not alive:
                return False  # stolen: the thief owns the cell now
            if stop is not None and stop.is_set() and session.rounds_remaining > 0:
                # Graceful shutdown mid-cell: persist the progress when
                # the job checkpoints, then hand the claim straight back.
                if job.checkpoint_every:
                    store.save_checkpoint(session.snapshot())
                release(job)
                return False
            if (
                job.checkpoint_every
                and session.rounds_remaining > 0
                and advanced % int(job.checkpoint_every) == 0
            ):
                store.save_checkpoint(session.snapshot())
    except BaseException:
        release(job)
        raise
    store.save_history(scenario, job.scheme, job.seed, session.history)
    store.clear_checkpoint(job.scenario_hash, job.scheme, job.seed)
    complete(job)
    return True


# ----------------------------------------------------------------------
# The coordinator: a registry-registered executor
# ----------------------------------------------------------------------
@EXECUTORS.register("distributed")
class DistributedExecutor(Executor):
    """Coordinate cells through a shared store instead of running them.

    Unlike the pool executors this one never calls the work function:
    it enqueues job specs, optionally spawns ``max_workers`` local worker
    processes (``python -m repro worker --store DIR --exit-when-idle``),
    and polls the store until every cell's manifest exists — re-queueing
    lease-expired claims and respawning crashed local workers along the
    way.  ``max_workers=0`` spawns nothing: the coordinator only queues
    and waits, and *external* workers (other machines on the shared
    filesystem, a SLURM array) do the running.

    Scenario spec::

        {"executor": "distributed", "max_workers": 4,
         "lease_seconds": 300.0, "poll_interval": 1.0}
    """

    in_process = False
    #: Engine capability flag: this executor schedules whole plans through
    #: an ExperimentStore (``execute_plan``) rather than mapping a
    #: function over cells.
    needs_store = True

    def __init__(
        self,
        max_workers: int | None = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ):
        if max_workers is not None and int(max_workers) == 0:
            # Coordinate-only: rely entirely on external workers.
            self.max_workers = 0
        else:
            super().__init__(max_workers)
        lease_seconds = float(lease_seconds)
        poll_interval = float(poll_interval)
        if lease_seconds < 0.0:
            raise ValueError("lease_seconds must be >= 0")
        if poll_interval <= 0.0:
            raise ValueError("poll_interval must be > 0")
        self.lease_seconds = lease_seconds
        self.poll_interval = poll_interval

    # The Executor ABC's map contract cannot express a coordinator (the
    # work function never crosses the process/machine boundary).
    def map(self, fn, items):
        raise RuntimeError(
            "the distributed executor does not map functions over cells; "
            "run it through FMoreEngine.run(scenario, store=...) so the "
            "coordinator can schedule whole plans via execute_plan"
        )

    # -- the coordinator loop -------------------------------------------
    def execute_plan(
        self,
        scenario: "Scenario",
        cells: Sequence[tuple[str, int]],
        store: "ExperimentStore",
        *,
        resume: bool = False,
        checkpoint_every: int | None = None,
        force: bool = False,
    ):
        """Queue ``cells``, wait for their manifests, load the histories.

        Returns histories aligned with ``cells`` (the engine's positional
        contract).  With ``force`` the cells' existing manifests are
        dropped first, so "manifest exists" is again synonymous with
        "recomputed".  Raises ``RuntimeError`` when spawned local workers
        keep dying (beyond ``max(3, 2 * workers)`` non-zero exits).
        """
        from .store import ExperimentStore

        store = ExperimentStore.coerce(store)
        queue = JobQueue(store)
        # Hash once: the store API accepts the hash string everywhere, and
        # re-deriving it (a full canonical-JSON dump + SHA-256) per cell
        # per poll would dominate an idle coordinator's loop.
        h = store.register_scenario(scenario)
        if force:
            for scheme, seed in cells:
                path = store.manifest_path(h, scheme, seed)
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
        queue.enqueue(
            scenario,
            cells,
            resume=resume,
            checkpoint_every=checkpoint_every,
            lease_seconds=self.lease_seconds,
        )
        n_local = 0 if self.max_workers == 0 else self.worker_count(len(cells))
        workers = [self._spawn_worker(store) for _ in range(n_local)]
        failures = 0
        max_failures = max(3, 2 * n_local)
        hinted = False
        idle_polls = 0
        done_before = len(cells) - len(store.missing_cells(h, cells))
        try:
            while True:
                done = len(cells) - len(store.missing_cells(h, cells))
                if done == len(cells):
                    break
                if done > done_before:
                    # Cells are still landing: worker deaths so far were
                    # absorbed by the lease/re-queue machinery.  Reset the
                    # failure budget so a long sweep on flaky nodes is not
                    # aborted by a lifetime body count while progressing.
                    done_before = done
                    failures = 0
                queue.reclaim_stale()
                if n_local:
                    alive = []
                    for proc in workers:
                        code = proc.poll()
                        if code is None:
                            alive.append(proc)
                        elif code != 0:
                            failures += 1
                            if failures > max_failures:
                                raise RuntimeError(
                                    f"distributed workers keep failing (last "
                                    f"exit code {code}, {failures} failures); "
                                    "see the worker stderr above"
                                )
                    workers = alive
                    # Respawn only when claimable work is actually waiting
                    # (idle exits while one worker finishes the tail cell
                    # are normal and should not trigger churn).
                    if len(workers) < n_local and queue.unclaimed():
                        workers.append(self._spawn_worker(store))
                else:
                    idle_polls += 1
                    if not hinted and idle_polls * self.poll_interval > 30.0:
                        hinted = True
                        print(
                            f"[distributed] waiting for external workers on "
                            f"{store.root} — start some with: python -m repro "
                            f"worker --store {store.root}",
                            file=sys.stderr,
                        )
                time.sleep(self.poll_interval)
        finally:
            for proc in workers:
                proc.terminate()
            for proc in workers:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover - safety
                    proc.kill()
        return [store.load_history(h, s, d) for s, d in cells]

    def _spawn_worker(self, store: "ExperimentStore") -> subprocess.Popen:
        """Start one local worker subprocess pointed at the store.

        The repo's ``src`` directory is prepended to the child's
        ``PYTHONPATH`` so spawning works from a source checkout without an
        installed package.
        """
        src_dir = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not existing else os.pathsep.join([src_dir, existing])
        )
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--store",
            str(store.root),
            "--exit-when-idle",
            "--poll-interval",
            str(self.poll_interval),
        ]
        return subprocess.Popen(cmd, env=env)


# ----------------------------------------------------------------------
# Batch-cluster job emission (SLURM-style, coordinator-free)
# ----------------------------------------------------------------------
def emit_job_scripts(scenario: "Scenario", directory: str | Path) -> list[Path]:
    """Write per-cell batch scripts for ``scenario`` under ``directory``.

    Emits ``scenario.json``, one ``jobs/cell-<scheme>-seed<seed>.sh`` per
    cell of the plan, a ``submit_array.sh`` SLURM array wrapper, and a
    ``README.md``.  Every cell script is self-contained: it runs its one
    cell as a plain serial ``python -m repro run`` against the shared
    store named by ``$STORE`` — the content address excludes the run
    plan, so all cells land under one scenario hash and the finished
    sweep assembles with ``python -m repro report --store $STORE`` (or an
    ordinary full-plan ``run``, which loads every manifest instead of
    recomputing).  Returns the written paths.
    """
    from .store import scenario_hash

    directory = Path(directory)
    jobs_dir = directory / "jobs"
    jobs_dir.mkdir(parents=True, exist_ok=True)
    h = scenario_hash(scenario)
    written: list[Path] = []

    spec_path = directory / "scenario.json"
    spec_path.write_text(scenario.to_json() + "\n")
    written.append(spec_path)

    safe_name = "".join(
        ch if ch.isalnum() or ch in "-_" else "-" for ch in scenario.name
    )
    cells = [
        (scheme, seed) for seed in scenario.seeds for scheme in scenario.schemes
    ]
    serial_spec = '\'execution={"executor":"serial","max_workers":null}\''
    scripts: list[str] = []
    for scheme, seed in cells:
        cell = f"{scheme}-seed{seed}"
        script = jobs_dir / f"cell-{cell}.sh"
        script.write_text(
            "#!/usr/bin/env bash\n"
            f"#SBATCH --job-name=fmore-{safe_name}-{cell}\n"
            "#SBATCH --output=fmore-%x-%j.out\n"
            f"# One ({scheme}, seed {seed}) cell of scenario "
            f"{scenario.name!r} (hash {h[:12]}…).\n"
            "# Usage: STORE=/shared/store bash "
            f"jobs/cell-{cell}.sh\n"
            "set -euo pipefail\n"
            ': "${STORE:?set STORE to the shared experiment-store directory}"\n'
            'SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"\n'
            "exec python -m repro run "
            '--scenario "$SCRIPT_DIR/../scenario.json" --store "$STORE" \\\n'
            f"    --set schemes={scheme} --set seeds={seed} \\\n"
            f"    --set {serial_spec}\n"
        )
        _make_executable(script)
        scripts.append(f"jobs/{script.name}")
        written.append(script)

    array = directory / "submit_array.sh"
    listing = "\n".join(f'  "{s}"' for s in scripts)
    array.write_text(
        "#!/usr/bin/env bash\n"
        f"#SBATCH --job-name=fmore-{safe_name}\n"
        f"#SBATCH --array=0-{len(scripts) - 1}\n"
        "#SBATCH --output=fmore-%x-%A_%a.out\n"
        f"# SLURM array over the {len(scripts)} (scheme, seed) cells of "
        f"scenario {scenario.name!r}.\n"
        "# Usage: STORE=/shared/store sbatch submit_array.sh\n"
        "set -euo pipefail\n"
        ': "${STORE:?set STORE to the shared experiment-store directory}"\n'
        "export STORE\n"
        'SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"\n'
        "CELLS=(\n"
        f"{listing}\n"
        ")\n"
        'exec bash "$SCRIPT_DIR/${CELLS[$SLURM_ARRAY_TASK_ID]}"\n'
    )
    _make_executable(array)
    written.append(array)

    readme = directory / "README.md"
    readme.write_text(
        f"# Batch jobs for scenario `{scenario.name}`\n\n"
        f"Scenario hash: `{h}`\n\n"
        f"{len(scripts)} cell scripts under `jobs/` — one per\n"
        "`(scheme, seed)` cell of the plan. Each runs its cell serially\n"
        "against the shared experiment store named by `$STORE`; the\n"
        "manifest address excludes the run plan, so every cell lands\n"
        "under the scenario hash above.\n\n"
        "```bash\n"
        "# SLURM array (one task per cell):\n"
        "STORE=/shared/store sbatch submit_array.sh\n\n"
        "# Any other scheduler / plain shells — cells are independent:\n"
        "STORE=/shared/store bash " + scripts[0] + "\n\n"
        "# Afterwards, assemble the sweep from any machine:\n"
        "python -m repro report --store /shared/store\n"
        "python -m repro run --scenario scenario.json --store /shared/store\n"
        "```\n\n"
        "Re-running a cell script is idempotent (completed cells load\n"
        "from their manifests). See docs/deployment.md in the repository\n"
        "for the full cookbook, including resume and `--force` semantics.\n"
    )
    written.append(readme)
    return written


def _make_executable(path: Path) -> None:
    mode = path.stat().st_mode
    path.chmod(mode | stat.S_IXUSR | stat.S_IXGRP | stat.S_IXOTH)
