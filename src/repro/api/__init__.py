"""Declarative public API: Scenario specs and the FMoreEngine façade.

The stable, registry-driven surface for running FMore experiments::

    from repro.api import FMoreEngine, Scenario

    scenario = Scenario.from_preset("smoke", "mnist_o", seeds=(0, 1, 2))
    result = FMoreEngine().run(scenario)
    for scheme, stats in result.averaged().items():
        print(scheme, stats["accuracy"].mean[-1])

A :class:`Scenario` is a frozen, JSON-round-trippable description of an
entire experiment — including its per-round policy pipeline
(``policies`` spec: selection overrides with psi rank schedules,
guidance alpha retuning, delivery auditing with blacklists, node churn;
see :mod:`repro.core.policies`).  :class:`FMoreEngine` assembles
components from the :mod:`repro.core.registry` tables, caches the
equilibrium solver per advertised game, and collects all bids per round
through the vectorised ``EquilibriumSolver.bid_batch`` path.  Long runs
can be driven round by round: ``engine.session(scenario, scheme, seed)``
returns a :class:`Session` yielding structured :class:`RoundEvent`
values (``run`` is a consumer of sessions, bitwise-identical).

Results are durable: ``engine.run(scenario, store="runs/")`` writes every
``(scheme, seed)`` cell as a content-addressed manifest in an
:class:`ExperimentStore` and skips cells already on disk; sessions
checkpoint (``session.snapshot()``) and resume
(``engine.resume(checkpoint)``) bitwise-identically; and
``result.metrics()`` returns a :class:`MetricsFrame` of seed-averaged
training and policy trajectories (see :mod:`repro.api.store` and
:mod:`repro.api.metrics`).

Sweeps also scale past one machine: the ``"distributed"`` executor
(:mod:`repro.api.distributed`) turns the store into a shared job bus —
the coordinator enqueues per-cell job specs, ``python -m repro worker``
processes on any machine sharing the filesystem claim them with
lease-guarded lock files (work-stealing, crash re-queue), and the
assembled ``RunResult`` is bitwise-identical to a serial run.  The
``"service"`` executor (:mod:`repro.api.coordinator`) layers an
event-driven tier on the same protocol: an asyncio coordinator service
owns the queue in memory (mirrored to the store for durability and
mixed fleets) and *pushes* cells to warm workers over long-poll instead
of every worker polling the filesystem.  For batch clusters without a
resident coordinator, ``emit_job_scripts`` (CLI: ``python -m repro
scenario --emit-jobs DIR``) writes SLURM-style per-cell scripts
speaking the same store protocol.

See ``docs/ARCHITECTURE.md`` for the layer map, ``docs/deployment.md``
for the distributed cookbook, and ``docs/scenario_reference.md`` for
every registered spec name (regenerable via ``python -m repro registry
--markdown``).
"""

from .engine import (
    Federation,
    FMoreEngine,
    RoundEvent,
    RunResult,
    Session,
    build_agents,
    build_federation,
    build_selection,
    build_solver,
    make_session,
    run_scheme,
)
from .coordinator import (
    CoordinatorError,
    CoordinatorHandle,
    CoordinatorService,
    ServiceExecutor,
    ServiceLink,
    WorkerClient,
    start_coordinator,
)
from .distributed import (
    DistributedExecutor,
    Job,
    JobQueue,
    emit_job_scripts,
    idle_backoff,
    run_worker,
)
from .executor import (
    EXECUTORS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from .metrics import MetricsFrame, build_metrics_frame
from .scenario import SCHEME_NAMES, VARIANT_NAMES, Scenario
from .store import (
    Checkpoint,
    ExperimentStore,
    IncompleteRunError,
    StoreError,
    StoreMismatchError,
    scenario_hash,
)

__all__ = [
    "Scenario",
    "SCHEME_NAMES",
    "VARIANT_NAMES",
    "FMoreEngine",
    "RunResult",
    "RoundEvent",
    "Session",
    "Federation",
    "build_federation",
    "build_solver",
    "build_agents",
    "build_selection",
    "make_session",
    "run_scheme",
    "EXECUTORS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "DistributedExecutor",
    "ServiceExecutor",
    "CoordinatorService",
    "CoordinatorHandle",
    "CoordinatorError",
    "ServiceLink",
    "WorkerClient",
    "start_coordinator",
    "JobQueue",
    "Job",
    "run_worker",
    "emit_job_scripts",
    "idle_backoff",
    "ExperimentStore",
    "Checkpoint",
    "StoreError",
    "StoreMismatchError",
    "IncompleteRunError",
    "scenario_hash",
    "MetricsFrame",
    "build_metrics_frame",
]
