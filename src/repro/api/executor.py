"""Pluggable sweep executors: how ``(scheme, seed)`` cells get scheduled.

The cells of a :class:`~repro.api.scenario.Scenario` plan are
embarrassingly parallel — every cell derives its randomness from named,
per-cell seed streams (:func:`repro.sim.rng.rng_from`), so the histories a
cell produces do not depend on *where* or *in which order* it runs.  This
module turns that property into a registry-registered ``Executor`` family:

* ``serial``  — the plain in-order loop (the default; zero overhead).
* ``thread``  — a :class:`~concurrent.futures.ThreadPoolExecutor`.  The
  numerical kernels hold the GIL, so this mainly helps scenarios whose
  cost is dominated by NumPy calls that release it; it shares the engine's
  solver cache and federations.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.  Each
  worker process rebuilds its cells' federations from the same seed
  streams and keeps its own per-process solver cache, so results are
  bitwise-identical to ``serial`` while multi-seed sweeps scale across
  cores.  Work submitted to it must be picklable (the engine submits a
  module-level function plus the frozen scenario).
* ``distributed`` — a coordinator that schedules cells across *machines*
  through a shared :class:`~repro.api.store.ExperimentStore` (job specs
  claimed by work-stealing workers; see :mod:`repro.api.distributed`).
  It sets :attr:`Executor.needs_store` and is driven through
  ``execute_plan`` rather than :meth:`Executor.map`.

A scenario chooses its executor declaratively via the ``execution`` spec
(``{"executor": "process", "max_workers": 4}``), which the CLI exposes as
``run --parallel N``; programmatic callers can also instantiate executors
directly or register new ones (import the table via ``repro.api``, which
guarantees the built-in members are registered — the bare
``repro.core.registry.EXECUTORS`` table is only populated once this
module has been imported)::

    from repro.api import EXECUTORS, Executor

    @EXECUTORS.register("my_pool")
    class MyPool(Executor):
        def map(self, fn, items): ...
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from ..core.registry import EXECUTORS

__all__ = [
    "EXECUTORS",
    "IN_PROCESS_POOL_NAMES",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
]

#: Executors usable as plain map-a-function pools (no store coordination):
#: the cell-level sweeps' in-round pools and the within-round
#: ``local_training`` fan-out both restrict their spec to these names.
#: (``process`` is in the list even though it leaves the calling process —
#: "in-process pool" means *driven* in-process via :meth:`Executor.map`,
#: as opposed to the store-coordinated ``distributed``/``service`` pair.)
IN_PROCESS_POOL_NAMES = ("serial", "thread", "process")


class Executor(ABC):
    """Maps a work function over cells, preserving input order.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrent workers (``None`` = one per CPU).  The
        effective pool never exceeds the number of submitted items.

    Attributes
    ----------
    in_process:
        ``True`` when cells run inside the calling process and may share
        in-memory state (solver caches, federations).  ``False`` for the
        process pool, whose work function must be picklable and rebuilds
        shared state per worker.
    needs_store:
        ``True`` for executors that coordinate whole plans through a
        shared :class:`~repro.api.store.ExperimentStore` instead of
        mapping a function over cells.  The engine then requires a store
        and calls ``execute_plan(scenario, cells, store, ...)`` instead
        of :meth:`map` (see
        :class:`repro.api.distributed.DistributedExecutor`).
    """

    in_process = True
    needs_store = False

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None:
            max_workers = int(max_workers)
            if max_workers < 1:
                raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def worker_count(self, n_items: int) -> int:
        """The pool size actually used for ``n_items`` cells."""
        limit = self.max_workers if self.max_workers is not None else os.cpu_count() or 1
        return max(1, min(int(n_items), limit))

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """``[fn(item) for item in items]``, possibly concurrently.

        Results are returned in input order regardless of completion
        order — callers rely on positional alignment with their cells.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_workers={self.max_workers})"


@EXECUTORS.register("serial")
class SerialExecutor(Executor):
    """The in-order loop every other executor must agree with bitwise."""

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        return [fn(item) for item in items]


@EXECUTORS.register("thread")
class ThreadExecutor(Executor):
    """Cells on a thread pool, sharing the caller's solver cache."""

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        work: Sequence[Any] = list(items)
        if len(work) <= 1:
            return [fn(item) for item in work]
        with ThreadPoolExecutor(max_workers=self.worker_count(len(work))) as pool:
            return list(pool.map(fn, work))


@EXECUTORS.register("process")
class ProcessExecutor(Executor):
    """Cells on a process pool; ``fn`` and ``items`` must be picklable.

    Even a single cell goes through the pool: running it inline would
    leak worker-side state (per-process caches) into the caller and make
    "runs out of process" executor-dependent.
    """

    in_process = False

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        work: Sequence[Any] = list(items)
        if not work:
            return []
        with ProcessPoolExecutor(max_workers=self.worker_count(len(work))) as pool:
            return list(pool.map(fn, work))
