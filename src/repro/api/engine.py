"""The :class:`FMoreEngine` façade: scenario in, training histories out.

This module is the real assembly path of the simulator (the legacy
builders in :mod:`repro.sim.experiment` are thin shims over it).  From a
:class:`~repro.api.scenario.Scenario` it builds

* the **federation** — synthetic dataset generator, heterogeneous non-IID
  clients, held-out test set shared across schemes,
* the **auction environment** — every component created from the
  :mod:`repro.core.registry` tables named by the scenario's specs, with
  the :class:`~repro.core.equilibrium.EquilibriumSolver` *cached per
  advertised game* ``(s, c, F, N, K)`` so parameter sweeps and multi-seed
  runs reuse one grid solve,
* the **schemes** — RandFL / FixFL / FMore / psi-FMore wired into
  :class:`~repro.fl.trainer.FederatedTrainer` instances sharing initial
  global weights,

and runs every ``(scheme, seed)`` cell of the scenario's plan, returning
a :class:`RunResult`.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.auction import MultiDimensionalProcurementAuction
from ..core.equilibrium import EquilibriumSolver
from ..core.mechanism import FMoreMechanism
from ..core.policies import PolicyAction, build_policy_pipeline
from ..core.registry import (
    COST_MODELS,
    EXECUTORS,
    SCORING_RULES,
    THETA_DISTRIBUTIONS,
    WINNER_SELECTIONS,
)
from ..core.valuation import PrivateValueModel
from ..fl.client import FLClient
from ..fl.datasets import DataGenerator, make_generator
from ..fl.models import build_model
from ..fl.partition import ClientData, heterogeneous_specs, materialize_clients
from ..fl.selection import (
    AuctionSelection,
    FixedSelection,
    RandomSelection,
    SelectionStrategy,
)
from ..fl.server import FedAvgServer
from ..fl.trainer import FederatedTrainer, RoundRecord, RoundTimer, TrainingHistory
from ..mec.cluster import (
    ClusterNodeSpec,
    SimulatedCluster,
    build_cluster_specs,
    cluster_quality_extractor,
)
from ..mec.node import EdgeNode
from ..mec.resources import ResourceProfile, UniformAvailabilityDynamics
from ..sim.rng import rng_from
from .executor import Executor, SerialExecutor
from .scenario import SCHEME_NAMES, Scenario

__all__ = [
    "Federation",
    "RunResult",
    "RoundEvent",
    "Session",
    "FMoreEngine",
    "build_federation",
    "build_solver",
    "build_agents",
    "build_selection",
    "make_session",
    "run_scheme",
    "SAMPLES_PER_QUALITY_UNIT",
]

SAMPLES_PER_QUALITY_UNIT = 1000.0  # q1 is data size in kilosamples

_AUCTION_SCHEMES = ("FMore", "PsiFMore")


@dataclass
class Federation:
    """Everything schemes must share for a fair comparison.

    For ``variant="cluster"`` scenarios the federation additionally owns
    the simulated testbed hardware: per-node machine specs and the
    :class:`~repro.mec.cluster.SimulatedCluster` wall-clock model (used as
    the run's :class:`~repro.fl.trainer.RoundTimer` unless a caller
    supplies one).
    """

    generator: DataGenerator
    clients_data: list[ClientData]
    test_x: np.ndarray
    test_y: np.ndarray
    thetas: np.ndarray
    initial_weights: list[np.ndarray] = field(default_factory=list)
    cluster_specs: list[ClusterNodeSpec] | None = None
    cluster: SimulatedCluster | None = None

    @property
    def n_clients(self) -> int:
        return len(self.clients_data)


def _stream_names(scenario: Scenario) -> dict[str, str]:
    """Named seed streams per variant.

    The cluster labels reproduce the ones the legacy
    ``sim.cluster_experiment`` assembly used, so engine-driven testbed
    runs are bitwise-identical to historical results.
    """
    if scenario.variant == "cluster":
        return {
            "data": f"cluster-data-{scenario.name}",
            "theta": f"cluster-theta-{scenario.name}",
            "hw": f"cluster-hw-{scenario.name}",
            "model": "cluster-model",
            "fixfl": "cluster-fixfl",
            "train": "cluster-train-{scheme}",
            "policy": "cluster-policy-{scheme}",
        }
    return {
        "data": f"data-{scenario.name}",
        "theta": f"theta-{scenario.name}",
        "model": "model-init",
        "fixfl": "fixfl",
        "train": "train-{scheme}",
        "policy": "policy-{scheme}",
    }


# ----------------------------------------------------------------------
# Assembly: scenario -> live objects (all components via the registries)
# ----------------------------------------------------------------------
def build_federation(scenario: Scenario, seed: int) -> Federation:
    """Materialise clients, test set and private types for one seed.

    The federation depends on ``(scenario, seed)`` only — schemes run on
    identical data and identical theta draws, as the paper's comparisons
    require.
    """
    names = _stream_names(scenario)
    data_rng = rng_from(seed, names["data"])
    theta_rng = rng_from(seed, names["theta"])
    generator = make_generator(
        scenario.dataset, seed=scenario.data_seed, image_size=scenario.image_size
    )
    specs = heterogeneous_specs(
        scenario.n_clients,
        generator.n_classes,
        data_rng,
        size_range=scenario.size_range,
        min_classes=scenario.min_classes,
        max_classes=scenario.max_classes,
    )
    clients_data = materialize_clients(generator, specs, data_rng)
    test_x, test_y = generator.test_set(scenario.test_per_class, data_rng)
    distribution = THETA_DISTRIBUTIONS.create(scenario.theta)
    thetas = distribution.sample(theta_rng, scenario.n_clients)
    federation = Federation(
        generator, clients_data, test_x, test_y, np.asarray(thetas)
    )
    if scenario.variant == "cluster":
        hw_rng = rng_from(seed, names["hw"])
        federation.cluster_specs = build_cluster_specs(
            [c.size for c in clients_data],
            hw_rng,
            category_proportions=[c.category_proportion for c in clients_data],
            core_choices=scenario.core_choices,
            bandwidth_range_mbps=scenario.bandwidth_range_mbps,
        )
        federation.cluster = SimulatedCluster(federation.cluster_specs)
    return federation


def solver_bounds(scenario: Scenario) -> list[list[float]]:
    """Per-dimension quality bounds of the scenario's game.

    Simulation (Section V-A): data size in kilosamples and category
    proportion.  Cluster (Section V-C): every dimension of the normalised
    (compute, bandwidth, data) triple lives in the unit interval.
    """
    if scenario.variant == "cluster":
        rule = SCORING_RULES.create(scenario.scoring)
        return [[0.0, 1.0]] * rule.n_dimensions
    hi_q1 = scenario.size_range[1] / SAMPLES_PER_QUALITY_UNIT
    return [[0.01, hi_q1], [0.05, 1.0]]


def build_solver(
    scenario: Scenario,
    n_clients: int | None = None,
    k_winners: int | None = None,
) -> EquilibriumSolver:
    """The common-knowledge equilibrium solver of the advertised game.

    Every component — scoring rule ``s``, cost family ``c``, type prior
    ``F`` — is created from its registry spec; the population ``(N, K)``
    defaults to the scenario's federation shape.
    """
    rule = SCORING_RULES.create(scenario.scoring)
    cost = COST_MODELS.create(scenario.cost)
    model = PrivateValueModel(
        THETA_DISTRIBUTIONS.create(scenario.theta),
        n_nodes=n_clients if n_clients is not None else scenario.n_clients,
        k_winners=k_winners if k_winners is not None else scenario.k_winners,
    )
    return EquilibriumSolver(
        rule,
        cost,
        model,
        solver_bounds(scenario),
        win_model=scenario.win_model,
        payment_method=scenario.payment_method,
        grid_size=scenario.grid_size,
    )


def build_agents(
    scenario: Scenario,
    federation: Federation,
    solver: EquilibriumSolver,
) -> list[EdgeNode]:
    """One bidding agent per client, capacity = its actual resources.

    Simulation agents are capped by their local data; cluster agents by
    their machine's (cores, bandwidth, data) triple, normalised by the
    scenario's hardware maxima.
    """
    if scenario.variant == "cluster":
        if federation.cluster_specs is None:
            raise ValueError(
                "cluster scenario needs a cluster federation; build it with "
                "build_federation(scenario, seed)"
            )
        if solver.quality_rule.n_dimensions != 3:
            raise ValueError(
                "cluster scenarios score the 3-D (compute, bandwidth, data) "
                f"triple; scoring spec has {solver.quality_rule.n_dimensions} "
                "dimensions"
            )
        extractor = cluster_quality_extractor(
            max_cores=max(scenario.core_choices),
            max_bandwidth_mbps=scenario.bandwidth_range_mbps[1],
            max_data_size=scenario.size_range[1],
        )
        return [
            EdgeNode(
                node_id=spec.node_id,
                theta=float(theta),
                solver=solver,
                profile=spec.profile,
                dynamics=UniformAvailabilityDynamics(
                    scenario.availability_min_fraction
                ),
                quality_extractor=extractor,
                theta_jitter=scenario.theta_jitter,
            )
            for spec, theta in zip(federation.cluster_specs, federation.thetas)
        ]
    agents: list[EdgeNode] = []
    for data, theta in zip(federation.clients_data, federation.thetas):
        profile = ResourceProfile(
            data_size=data.size,
            category_proportion=max(data.category_proportion, 0.05),
        )
        agents.append(
            EdgeNode(
                node_id=data.client_id,
                theta=float(theta),
                solver=solver,
                profile=profile,
                dynamics=UniformAvailabilityDynamics(scenario.availability_min_fraction),
                theta_jitter=scenario.theta_jitter,
            )
        )
    return agents


def _quality_to_samples(quality: np.ndarray) -> int:
    return int(round(quality[0] * SAMPLES_PER_QUALITY_UNIT))


@dataclass(frozen=True)
class _ClusterQualityToSamples:
    """Declared data dimension (index 2) scaled back to raw sample counts."""

    max_data_size: int

    def __call__(self, quality: np.ndarray) -> int:
        return int(round(quality[2] * self.max_data_size))


def build_selection(
    scenario: Scenario,
    scheme: str,
    federation: Federation,
    seed: int,
    solver: EquilibriumSolver | None = None,
) -> SelectionStrategy:
    """Construct the selection strategy for a scheme name."""
    client_ids = [c.client_id for c in federation.clients_data]
    names = _stream_names(scenario)
    if scheme == "RandFL":
        return RandomSelection(client_ids, scenario.k_winners)
    if scheme == "FixFL":
        return FixedSelection(
            client_ids, scenario.k_winners, rng_from(seed, names["fixfl"])
        )
    if scheme in _AUCTION_SCHEMES:
        if solver is None:
            solver = build_solver(scenario)
        agents = build_agents(scenario, federation, solver)
        if scheme == "PsiFMore":
            psi = scenario.psi if scenario.psi is not None else 0.8
            policy = WINNER_SELECTIONS.create({"name": "psi", "psi": psi})
        else:
            policy = WINNER_SELECTIONS.create("top_k")
        auction = MultiDimensionalProcurementAuction(
            solver.quality_rule,
            scenario.k_winners,
            payment_rule=scenario.payment_rule,
            selection=policy,
        )
        # The scheme's round-policy pipeline, built fresh per cell (the
        # policies are stateful: strike counters, active sets, alpha
        # trajectories).  Policy randomness comes from its own named
        # stream, so a policy-free pipeline leaves every historical
        # stream untouched (bitwise-identical histories).
        pipeline = build_policy_pipeline(scenario.policies_for(scheme))
        policy_rng = (
            rng_from(seed, names["policy"].format(scheme=scheme))
            if pipeline
            else None
        )
        mechanism = FMoreMechanism(auction, policies=pipeline, policy_rng=policy_rng)
        if scenario.variant == "cluster":
            quality_to_samples = _ClusterQualityToSamples(scenario.size_range[1])
        else:
            quality_to_samples = _quality_to_samples
        strategy = AuctionSelection(mechanism, agents, quality_to_samples)
        strategy.name = scheme
        return strategy
    raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEME_NAMES}")


def _build_global_model(scenario: Scenario, federation: Federation, seed: int):
    vocab = None
    if scenario.dataset == "hpnews":
        vocab = federation.generator.spec.vocab_size  # type: ignore[attr-defined]
    return build_model(
        scenario.dataset,
        federation.generator.input_shape,
        federation.generator.n_classes,
        rng_from(seed, _stream_names(scenario)["model"]),
        width=scenario.model_width,
        lr=scenario.lr,
        vocab_size=vocab,
    )


@dataclass
class RoundEvent:
    """One round of a streaming session, as a structured event.

    The fields surface what observers of a long run care about — bids
    collected, the winner set and its payments, model quality, and the
    policy actions (bans, alpha updates, churn) filed this round — while
    ``record`` keeps the full :class:`~repro.fl.trainer.RoundRecord` as
    the source of truth, so replaying a stream of events reconstructs the
    exact :class:`~repro.fl.trainer.TrainingHistory` a batch run returns.
    """

    scheme: str
    seed: int
    round_index: int
    n_bids: int
    winner_ids: list[int]
    payments: dict[int, float]
    total_payment: float
    accuracy: float
    loss: float
    actions: list[PolicyAction]
    record: RoundRecord


class Session:
    """A lazily-evaluated ``(scheme, seed)`` cell: iterate to train.

    Each ``next()`` runs exactly one protocol round and yields its
    :class:`RoundEvent`; ``history`` accumulates the rounds run so far, so
    long runs can be observed, checkpointed (snapshot
    ``trainer.server.model.get_weights()`` between events) and
    early-stopped (just stop iterating — the partial ``history`` is
    valid).  :meth:`run` drains the remaining rounds and returns the full
    history; ``FMoreEngine.run`` consumes sessions exactly this way, so a
    drained session is bitwise-identical to a batch run.
    """

    def __init__(
        self, scenario: Scenario, scheme: str, seed: int, trainer: FederatedTrainer
    ):
        self.scenario = scenario
        self.scheme = scheme
        self.seed = seed
        self.trainer = trainer
        self.history = TrainingHistory(scheme=trainer.selection.name)

    @property
    def rounds_run(self) -> int:
        return len(self.history.records)

    @property
    def rounds_remaining(self) -> int:
        return self.scenario.n_rounds - self.rounds_run

    def __iter__(self) -> "Session":
        return self

    def __next__(self) -> RoundEvent:
        if self.rounds_remaining <= 0:
            raise StopIteration
        record = self.trainer.run_round(self.rounds_run + 1)
        self.history.records.append(record)
        return RoundEvent(
            scheme=self.scheme,
            seed=self.seed,
            round_index=record.round_index,
            n_bids=len(record.all_scores),
            winner_ids=list(record.winner_ids),
            payments=dict(record.payments),
            total_payment=record.total_payment,
            accuracy=record.accuracy,
            loss=record.loss,
            actions=list(record.policy_actions),
            record=record,
        )

    def run(self) -> TrainingHistory:
        """Drain the remaining rounds; returns the complete history."""
        for _ in self:
            pass
        return self.history

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(scheme={self.scheme!r}, seed={self.seed}, "
            f"rounds={self.rounds_run}/{self.scenario.n_rounds})"
        )


def make_session(
    scenario: Scenario,
    scheme: str,
    seed: int,
    federation: Federation | None = None,
    timer: RoundTimer | None = None,
    solver: EquilibriumSolver | None = None,
) -> Session:
    """Assemble one ``(scheme, seed)`` cell as a streaming :class:`Session`.

    All schemes for a given ``(scenario, seed)`` share the federation and
    the initial global weights; only training randomness differs per
    scheme.  Cluster federations bring their own wall-clock model: when no
    ``timer`` is supplied, the federation's
    :class:`~repro.mec.cluster.SimulatedCluster` times the rounds.
    """
    if federation is None:
        federation = build_federation(scenario, seed)
    if timer is None and federation.cluster is not None:
        timer = federation.cluster
    global_model = _build_global_model(scenario, federation, seed)
    if federation.initial_weights:
        global_model.set_weights(federation.initial_weights)
    else:
        federation.initial_weights = global_model.get_weights()
    server = FedAvgServer(global_model)
    clients = [
        FLClient(
            data,
            local_epochs=scenario.local_epochs,
            batch_size=scenario.batch_size,
            max_batches_per_round=scenario.max_batches_per_round,
        )
        for data in federation.clients_data
    ]
    selection = build_selection(scenario, scheme, federation, seed, solver=solver)
    trainer = FederatedTrainer(
        server,
        clients,
        selection,
        federation.test_x,
        federation.test_y,
        rng_from(seed, _stream_names(scenario)["train"].format(scheme=scheme)),
        timer=timer,
    )
    return Session(scenario, scheme, seed, trainer)


def run_scheme(
    scenario: Scenario,
    scheme: str,
    seed: int,
    federation: Federation | None = None,
    timer: RoundTimer | None = None,
    solver: EquilibriumSolver | None = None,
) -> TrainingHistory:
    """Run one scheme for ``scenario.n_rounds`` rounds; returns its history.

    This is :func:`make_session` drained to completion — the batch surface
    is a consumer of the streaming one, so both are identical by
    construction.
    """
    return make_session(
        scenario, scheme, seed, federation=federation, timer=timer, solver=solver
    ).run()


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class RunResult:
    """Histories of every ``(scheme, seed)`` cell of a scenario's plan."""

    scenario: Scenario
    histories: dict[str, list[TrainingHistory]]

    @property
    def schemes(self) -> tuple[str, ...]:
        return self.scenario.schemes

    @property
    def seeds(self) -> tuple[int, ...]:
        return self.scenario.seeds

    def history(self, scheme: str, seed: int | None = None) -> TrainingHistory:
        """One scheme's history for ``seed`` (default: the first seed)."""
        seed = self.seeds[0] if seed is None else seed
        return self.histories[scheme][self.seeds.index(seed)]

    def comparison(self, seed: int | None = None) -> dict[str, TrainingHistory]:
        """The legacy ``run_comparison`` shape: one history per scheme."""
        return {scheme: self.history(scheme, seed) for scheme in self.schemes}

    def averaged(self) -> dict[str, dict[str, Any]]:
        """Seed-averaged accuracy/loss/time series per scheme."""
        from ..sim.runner import average_histories

        return {s: average_histories(h) for s, h in self.histories.items()}


# ----------------------------------------------------------------------
# The façade
# ----------------------------------------------------------------------
class FMoreEngine:
    """Runs scenarios, caching equilibrium solvers per advertised game.

    The cache key is the full common knowledge of the game —
    ``(s, c, F, N, K)`` plus quality bounds, winning kernel, payment
    backend and grid size — so a multi-seed run, a scheme comparison or a
    sweep over *non-game* parameters builds the strategy tables exactly
    once.  Construction is cheap; share one engine across related runs to
    share its cache.

    Parameters
    ----------
    timer:
        Optional :class:`~repro.fl.trainer.RoundTimer` forwarded to every
        trainer (the MEC cluster's wall-clock model).
    """

    def __init__(self, timer: RoundTimer | None = None):
        self.timer = timer
        self._solvers: dict[tuple, EquilibriumSolver] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # -- solver cache ---------------------------------------------------
    def solver_for(
        self,
        scenario: Scenario,
        n_clients: int | None = None,
        k_winners: int | None = None,
    ) -> EquilibriumSolver:
        """The (cached) equilibrium solver of the scenario's game."""
        key = self._game_key(scenario, n_clients, k_winners)
        solver = self._solvers.get(key)
        if solver is None:
            self.cache_misses += 1
            solver = build_solver(scenario, n_clients=n_clients, k_winners=k_winners)
            self._solvers[key] = solver
        else:
            self.cache_hits += 1
        return solver

    @staticmethod
    def _game_key(
        scenario: Scenario, n_clients: int | None, k_winners: int | None
    ) -> tuple:
        return (
            _freeze(scenario.scoring),
            _freeze(scenario.cost),
            _freeze(scenario.theta),
            n_clients if n_clients is not None else scenario.n_clients,
            k_winners if k_winners is not None else scenario.k_winners,
            _freeze(solver_bounds(scenario)),
            scenario.win_model,
            scenario.payment_method,
            scenario.grid_size,
        )

    # -- running --------------------------------------------------------
    def session(
        self,
        scenario: Scenario,
        scheme: str,
        seed: int,
        federation: Federation | None = None,
    ) -> Session:
        """A streaming :class:`Session` for one ``(scheme, seed)`` cell.

        Iterating the session runs one round per ``next()`` and yields
        structured :class:`RoundEvent` values (bids collected, winners,
        payments, accuracy, policy actions), so long runs can be observed,
        checkpointed and early-stopped.  Draining it (``session.run()``)
        returns the exact :class:`~repro.fl.trainer.TrainingHistory` that
        :meth:`run_scheme` produces — the batch path is a consumer of this
        one.
        """
        solver = (
            self.solver_for(scenario) if scheme in _AUCTION_SCHEMES else None
        )
        return make_session(
            scenario,
            scheme,
            seed,
            federation=federation,
            timer=self.timer,
            solver=solver,
        )

    def run_scheme(
        self,
        scenario: Scenario,
        scheme: str,
        seed: int,
        federation: Federation | None = None,
    ) -> TrainingHistory:
        """One ``(scheme, seed)`` cell, using the cached solver."""
        return self.session(scenario, scheme, seed, federation=federation).run()

    def run(self, scenario: Scenario) -> RunResult:
        """Run every ``(scheme, seed)`` cell of the scenario's plan.

        The cells fan out through the executor named by the scenario's
        ``execution`` spec (``serial`` by default).  Every cell derives
        its randomness from named per-cell seed streams, so all executors
        return bitwise-identical histories:

        * in-process executors (``serial``, ``thread``) share this
          engine's solver cache and one federation per seed (dropped as
          soon as its last scheme finishes, to keep the serial memory
          profile);
        * the ``process`` executor ships ``(scenario, scheme, seed)`` to
          worker processes, each of which rebuilds federations from the
          same streams and keeps a per-process solver cache (the engine's
          ``timer``, if any, must then be picklable).
        """
        executor: Executor = EXECUTORS.create(
            scenario.execution["executor"],
            max_workers=scenario.execution["max_workers"],
        )
        cells = [
            (scheme, seed) for seed in scenario.seeds for scheme in scenario.schemes
        ]
        if executor.in_process:
            # Under a concurrent in-process executor the scheme-independent
            # initial weights must be settled before cells race for them;
            # the serial loop keeps the legacy lazy fill (first cell pays).
            eager_weights = not isinstance(executor, SerialExecutor)
            results = executor.map(
                self._cell_runner(scenario, eager_weights=eager_weights), cells
            )
        else:
            results = executor.map(
                functools.partial(_run_cell, scenario, self.timer), cells
            )
        histories: dict[str, list[TrainingHistory]] = {
            scheme: [] for scheme in scenario.schemes
        }
        for (scheme, _), history in zip(cells, results):
            histories[scheme].append(history)
        return RunResult(scenario, histories)

    def _cell_runner(
        self, scenario: Scenario, eager_weights: bool = False
    ) -> Callable[[tuple[str, int]], TrainingHistory]:
        """The in-process cell function: shared solvers, pooled federations.

        Federations are built lazily under a lock — once per seed however
        many threads run its cells — and evicted when the seed's last
        scheme completes.  With ``eager_weights`` the scheme-independent
        initial weights are settled at federation build time (so
        concurrent cells never race to fill them); without it, the first
        cell populates them as the legacy serial loop did.
        """
        needs_solver = any(s in _AUCTION_SCHEMES for s in scenario.schemes)
        lock = threading.Lock()
        # seed -> (federation, solver); one solver_for call per seed, like
        # the serial loop always made (the engine cache dedupes the build).
        pooled: dict[int, tuple[Federation, EquilibriumSolver | None]] = {}
        remaining = {seed: len(scenario.schemes) for seed in scenario.seeds}

        def run_cell(cell: tuple[str, int]) -> TrainingHistory:
            scheme, seed = cell
            with lock:
                entry = pooled.get(seed)
                if entry is None:
                    federation = build_federation(scenario, seed)
                    if eager_weights:
                        model = _build_global_model(scenario, federation, seed)
                        federation.initial_weights = model.get_weights()
                    solver = self.solver_for(scenario) if needs_solver else None
                    entry = pooled[seed] = (federation, solver)
                federation, solver = entry
            try:
                return run_scheme(
                    scenario,
                    scheme,
                    seed,
                    federation=federation,
                    timer=self.timer,
                    solver=solver,
                )
            finally:
                with lock:
                    remaining[seed] -= 1
                    if remaining[seed] == 0:
                        pooled.pop(seed, None)

        return run_cell


def _freeze(value: Any) -> Any:
    """Recursively hashable view of a JSON-ish value (dicts sort by key)."""
    if isinstance(value, dict):
        return tuple((k, _freeze(v)) for k, v in sorted(value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


# ----------------------------------------------------------------------
# Process-pool entry point
# ----------------------------------------------------------------------
# One engine per worker process: cells a worker handles share its solver
# cache (the game key is value-based, so re-pickled scenarios still hit).
_WORKER_ENGINE: FMoreEngine | None = None


def _run_cell(
    scenario: Scenario, timer: RoundTimer | None, cell: tuple[str, int]
) -> TrainingHistory:
    """Run one ``(scheme, seed)`` cell in the current (worker) process.

    Rebuilds the cell's federation from its named seed streams, so the
    returned history is bitwise-identical to the serial path no matter
    which worker runs it.
    """
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None:
        _WORKER_ENGINE = FMoreEngine()
    scheme, seed = cell
    solver = (
        _WORKER_ENGINE.solver_for(scenario) if scheme in _AUCTION_SCHEMES else None
    )
    return run_scheme(
        scenario,
        scheme,
        seed,
        federation=build_federation(scenario, seed),
        timer=timer,
        solver=solver,
    )
