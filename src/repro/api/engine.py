"""The :class:`FMoreEngine` façade: scenario in, training histories out.

This module is the assembly path of the simulator.  From a
:class:`~repro.api.scenario.Scenario` it builds

* the **federation** — synthetic dataset generator, heterogeneous non-IID
  clients, held-out test set shared across schemes,
* the **auction environment** — every component created from the
  :mod:`repro.core.registry` tables named by the scenario's specs, with
  the :class:`~repro.core.equilibrium.EquilibriumSolver` *cached per
  advertised game* ``(s, c, F, N, K)`` so parameter sweeps and multi-seed
  runs reuse one grid solve,
* the **schemes** — RandFL / FixFL / FMore / psi-FMore wired into
  :class:`~repro.fl.trainer.FederatedTrainer` instances sharing initial
  global weights,

and runs every ``(scheme, seed)`` cell of the scenario's plan, returning
a :class:`RunResult`.
"""

from __future__ import annotations

import copy
import functools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.auction import MultiDimensionalProcurementAuction
from ..core.equilibrium import EquilibriumSolver
from ..core.hierarchy import (
    HierarchicalMechanism,
    ShardedPopulation,
    build_population,
)
from ..core.mechanism import FMoreMechanism
from ..core.policies import PolicyAction, build_policy_pipeline
from ..core.registry import (
    COST_MODELS,
    EXECUTORS,
    SCORING_RULES,
    THETA_DISTRIBUTIONS,
    WINNER_SELECTIONS,
)
from ..core.valuation import PrivateValueModel
from ..fl.client import FLClient
from ..fl.datasets import DataGenerator, make_generator
from ..fl.models import build_model
from ..fl.partition import ClientData, heterogeneous_specs, materialize_clients
from ..fl.selection import (
    AuctionSelection,
    FixedSelection,
    RandomSelection,
    SelectionStrategy,
)
from ..fl.server import FedAvgServer
from ..fl.trainer import FederatedTrainer, RoundRecord, RoundTimer, TrainingHistory
from ..mec.cluster import (
    ClusterNodeSpec,
    SimulatedCluster,
    build_cluster_specs,
    cluster_quality_extractor,
)
from ..mec.node import EdgeNode
from ..mec.resources import ResourceProfile, UniformAvailabilityDynamics
from ..sim.rng import rng_from, rng_state, set_rng_state
from ..strategic.policies import build_bid_policies
from .executor import Executor, SerialExecutor
from .scenario import SCHEME_NAMES, Scenario
from .store import (
    Checkpoint,
    ExperimentStore,
    IncompleteRunError,
    StoreError,
    scenario_hash,
)

__all__ = [
    "Federation",
    "RunResult",
    "RoundEvent",
    "Session",
    "FMoreEngine",
    "build_federation",
    "build_solver",
    "build_agents",
    "build_selection",
    "make_session",
    "run_scheme",
    "SAMPLES_PER_QUALITY_UNIT",
]

SAMPLES_PER_QUALITY_UNIT = 1000.0  # q1 is data size in kilosamples

_AUCTION_SCHEMES = ("FMore", "PsiFMore")


@dataclass
class Federation:
    """Everything schemes must share for a fair comparison.

    For ``variant="cluster"`` scenarios the federation additionally owns
    the simulated testbed hardware: per-node machine specs and the
    :class:`~repro.mec.cluster.SimulatedCluster` wall-clock model (used as
    the run's :class:`~repro.fl.trainer.RoundTimer` unless a caller
    supplies one).

    For ``variant="hierarchical"`` scenarios ``clients_data`` is the
    bounded FL client *pool* (``clusters["fl_pool"]`` entries, not
    ``n_clients``) and ``population`` carries the full sharded bidder
    population as arrays; winners train the pool client at
    ``node_id % pool_size``.
    """

    generator: DataGenerator
    clients_data: list[ClientData]
    test_x: np.ndarray
    test_y: np.ndarray
    thetas: np.ndarray
    initial_weights: list[np.ndarray] = field(default_factory=list)
    cluster_specs: list[ClusterNodeSpec] | None = None
    cluster: SimulatedCluster | None = None
    population: ShardedPopulation | None = None

    @property
    def n_clients(self) -> int:
        return len(self.clients_data)


def _stream_names(scenario: Scenario) -> dict[str, str]:
    """Named seed streams per variant.

    The cluster labels reproduce the ones the legacy
    ``sim.cluster_experiment`` assembly used, so engine-driven testbed
    runs are bitwise-identical to historical results.
    """
    if scenario.variant == "cluster":
        return {
            "data": f"cluster-data-{scenario.name}",
            "theta": f"cluster-theta-{scenario.name}",
            "hw": f"cluster-hw-{scenario.name}",
            "model": "cluster-model",
            "fixfl": "cluster-fixfl",
            "train": "cluster-train-{scheme}",
            "policy": "cluster-policy-{scheme}",
            "bidding": "cluster-bidding-{scheme}",
        }
    return {
        "data": f"data-{scenario.name}",
        "theta": f"theta-{scenario.name}",
        "model": "model-init",
        "fixfl": "fixfl",
        "train": "train-{scheme}",
        "policy": "policy-{scheme}",
        "bidding": "bidding-{scheme}",
    }


# ----------------------------------------------------------------------
# Assembly: scenario -> live objects (all components via the registries)
# ----------------------------------------------------------------------
def build_federation(scenario: Scenario, seed: int) -> Federation:
    """Materialise clients, test set and private types for one seed.

    The federation depends on ``(scenario, seed)`` only — schemes run on
    identical data and identical theta draws, as the paper's comparisons
    require.
    """
    names = _stream_names(scenario)
    data_rng = rng_from(seed, names["data"])
    theta_rng = rng_from(seed, names["theta"])
    generator = make_generator(
        scenario.dataset, seed=scenario.data_seed, image_size=scenario.image_size
    )
    # Hierarchical scenarios decouple the bidder population (arrays, up to
    # 10^6 entries) from the FL clients that actually train — only the
    # bounded pool is materialised as real datasets.
    n_materialized = (
        scenario.clusters["fl_pool"]
        if scenario.variant == "hierarchical"
        else scenario.n_clients
    )
    specs = heterogeneous_specs(
        n_materialized,
        generator.n_classes,
        data_rng,
        size_range=scenario.size_range,
        min_classes=scenario.min_classes,
        max_classes=scenario.max_classes,
    )
    clients_data = materialize_clients(generator, specs, data_rng)
    test_x, test_y = generator.test_set(scenario.test_per_class, data_rng)
    distribution = THETA_DISTRIBUTIONS.create(scenario.theta)
    thetas = distribution.sample(theta_rng, scenario.n_clients)
    federation = Federation(
        generator, clients_data, test_x, test_y, np.asarray(thetas)
    )
    if scenario.variant == "hierarchical":
        federation.population = build_population(
            scenario.n_clients,
            federation.thetas,
            scenario.size_range,
            scenario.clusters,
            rng_from(seed, f"hier-pop-{scenario.name}"),
            rng_from(
                scenario.clusters["assignment_seed"],
                f"hier-clusters-{scenario.name}",
            ),
            category_floor=max(
                scenario.min_classes / generator.n_classes, 0.05
            ),
            availability_min_fraction=scenario.availability_min_fraction,
            theta_jitter=scenario.theta_jitter,
            theta_support=(distribution.lo, distribution.hi),
            samples_per_quality_unit=SAMPLES_PER_QUALITY_UNIT,
        )
    if scenario.variant == "cluster":
        hw_rng = rng_from(seed, names["hw"])
        federation.cluster_specs = build_cluster_specs(
            [c.size for c in clients_data],
            hw_rng,
            category_proportions=[c.category_proportion for c in clients_data],
            core_choices=scenario.core_choices,
            bandwidth_range_mbps=scenario.bandwidth_range_mbps,
        )
        federation.cluster = SimulatedCluster(federation.cluster_specs)
    return federation


def solver_bounds(scenario: Scenario) -> list[list[float]]:
    """Per-dimension quality bounds of the scenario's game.

    Simulation (Section V-A): data size in kilosamples and category
    proportion.  Cluster (Section V-C): every dimension of the normalised
    (compute, bandwidth, data) triple lives in the unit interval.
    """
    if scenario.variant == "cluster":
        rule = SCORING_RULES.create(scenario.scoring)
        return [[0.0, 1.0]] * rule.n_dimensions
    hi_q1 = scenario.size_range[1] / SAMPLES_PER_QUALITY_UNIT
    return [[0.01, hi_q1], [0.05, 1.0]]


def build_solver(
    scenario: Scenario,
    n_clients: int | None = None,
    k_winners: int | None = None,
) -> EquilibriumSolver:
    """The common-knowledge equilibrium solver of the advertised game.

    Every component — scoring rule ``s``, cost family ``c``, type prior
    ``F`` — is created from its registry spec; the population ``(N, K)``
    defaults to the scenario's federation shape.
    """
    rule = SCORING_RULES.create(scenario.scoring)
    cost = COST_MODELS.create(scenario.cost)
    model = PrivateValueModel(
        THETA_DISTRIBUTIONS.create(scenario.theta),
        n_nodes=n_clients if n_clients is not None else scenario.n_clients,
        k_winners=k_winners if k_winners is not None else scenario.k_winners,
    )
    return EquilibriumSolver(
        rule,
        cost,
        model,
        solver_bounds(scenario),
        win_model=scenario.win_model,
        payment_method=scenario.payment_method,
        grid_size=scenario.grid_size,
    )


def build_agents(
    scenario: Scenario,
    federation: Federation,
    solver: EquilibriumSolver,
) -> list[EdgeNode]:
    """One bidding agent per client, capacity = its actual resources.

    Simulation agents are capped by their local data; cluster agents by
    their machine's (cores, bandwidth, data) triple, normalised by the
    scenario's hardware maxima.
    """
    if scenario.variant == "cluster":
        if federation.cluster_specs is None:
            raise ValueError(
                "cluster scenario needs a cluster federation; build it with "
                "build_federation(scenario, seed)"
            )
        if solver.quality_rule.n_dimensions != 3:
            raise ValueError(
                "cluster scenarios score the 3-D (compute, bandwidth, data) "
                f"triple; scoring spec has {solver.quality_rule.n_dimensions} "
                "dimensions"
            )
        extractor = cluster_quality_extractor(
            max_cores=max(scenario.core_choices),
            max_bandwidth_mbps=scenario.bandwidth_range_mbps[1],
            max_data_size=scenario.size_range[1],
        )
        return [
            EdgeNode(
                node_id=spec.node_id,
                theta=float(theta),
                solver=solver,
                profile=spec.profile,
                dynamics=UniformAvailabilityDynamics(
                    scenario.availability_min_fraction
                ),
                quality_extractor=extractor,
                theta_jitter=scenario.theta_jitter,
            )
            for spec, theta in zip(federation.cluster_specs, federation.thetas)
        ]
    agents: list[EdgeNode] = []
    for data, theta in zip(federation.clients_data, federation.thetas):
        profile = ResourceProfile(
            data_size=data.size,
            category_proportion=max(data.category_proportion, 0.05),
        )
        agents.append(
            EdgeNode(
                node_id=data.client_id,
                theta=float(theta),
                solver=solver,
                profile=profile,
                dynamics=UniformAvailabilityDynamics(scenario.availability_min_fraction),
                theta_jitter=scenario.theta_jitter,
            )
        )
    return agents


def _quality_to_samples(quality: np.ndarray) -> int:
    return int(round(quality[0] * SAMPLES_PER_QUALITY_UNIT))


@dataclass(frozen=True)
class _ClusterQualityToSamples:
    """Declared data dimension (index 2) scaled back to raw sample counts."""

    max_data_size: int

    def __call__(self, quality: np.ndarray) -> int:
        return int(round(quality[2] * self.max_data_size))


def build_selection(
    scenario: Scenario,
    scheme: str,
    federation: Federation,
    seed: int,
    solver: EquilibriumSolver | None = None,
) -> SelectionStrategy:
    """Construct the selection strategy for a scheme name."""
    client_ids = [c.client_id for c in federation.clients_data]
    names = _stream_names(scenario)
    if scheme == "RandFL":
        return RandomSelection(client_ids, scenario.k_winners)
    if scheme == "FixFL":
        return FixedSelection(
            client_ids, scenario.k_winners, rng_from(seed, names["fixfl"])
        )
    if scheme in _AUCTION_SCHEMES:
        if solver is None:
            solver = build_solver(scenario)
        if scenario.variant == "hierarchical":
            return _hierarchical_selection(scenario, scheme, federation, solver)
        agents = build_agents(scenario, federation, solver)
        if scheme == "PsiFMore":
            psi = scenario.psi if scenario.psi is not None else 0.8
            policy = WINNER_SELECTIONS.create({"name": "psi", "psi": psi})
        else:
            policy = WINNER_SELECTIONS.create("top_k")
        auction = MultiDimensionalProcurementAuction(
            solver.quality_rule,
            scenario.k_winners,
            payment_rule=scenario.payment_rule,
            selection=policy,
        )
        # The scheme's round-policy pipeline, built fresh per cell (the
        # policies are stateful: strike counters, active sets, alpha
        # trajectories).  Policy randomness comes from its own named
        # stream, so a policy-free pipeline leaves every historical
        # stream untouched (bitwise-identical histories).
        pipeline = build_policy_pipeline(scenario.policies_for(scheme))
        policy_rng = (
            rng_from(seed, names["policy"].format(scheme=scheme))
            if pipeline
            else None
        )
        # The strategic slice, if any.  Like the round-policy pipeline,
        # its randomness rides a dedicated named stream, so all-truthful
        # scenarios leave every historical stream untouched.
        bid_policies = build_bid_policies(
            scenario.bidding_for(scheme), [a.node_id for a in agents]
        )
        bidding_rng = (
            rng_from(seed, names["bidding"].format(scheme=scheme))
            if bid_policies
            else None
        )
        mechanism = FMoreMechanism(
            auction,
            policies=pipeline,
            policy_rng=policy_rng,
            bid_policies=bid_policies,
            bidding_rng=bidding_rng,
        )
        if scenario.variant == "cluster":
            quality_to_samples = _ClusterQualityToSamples(scenario.size_range[1])
        else:
            quality_to_samples = _quality_to_samples
        strategy = AuctionSelection(mechanism, agents, quality_to_samples)
        strategy.name = scheme
        return strategy
    raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEME_NAMES}")


def _hierarchical_selection(
    scenario: Scenario,
    scheme: str,
    federation: Federation,
    solver: EquilibriumSolver,
) -> SelectionStrategy:
    """The two-tier auction strategy of a ``variant="hierarchical"`` cell.

    The top-tier auction competes cluster heads for ``k_clusters`` slots
    (top-K or psi admission, per the scheme); every cluster's local game
    is a :meth:`~repro.core.equilibrium.EquilibriumSolver.with_population`
    clone of the shared population solver, built inside the mechanism per
    distinct cluster size.  The intra-round fan-out executor comes from
    the ``clusters`` spec and is independent of the scenario's
    ``execution`` spec (which schedules whole cells).
    """
    if federation.population is None:
        raise ValueError(
            "hierarchical scenario needs a sharded population; build the "
            "federation with build_federation(scenario, seed)"
        )
    clusters = scenario.clusters
    if scheme == "PsiFMore":
        psi = scenario.psi if scenario.psi is not None else 0.8
        policy = WINNER_SELECTIONS.create({"name": "psi", "psi": psi})
    else:
        policy = WINNER_SELECTIONS.create("top_k")
    auction = MultiDimensionalProcurementAuction(
        solver.quality_rule,
        clusters["k_clusters"],
        payment_rule=scenario.payment_rule,
        selection=policy,
        ranking="top_k",
    )
    executor = None
    if clusters["executor"] != "serial":
        executor = EXECUTORS.create(
            clusters["executor"], max_workers=clusters["max_workers"]
        )
    mechanism = HierarchicalMechanism(
        auction,
        federation.population,
        solver,
        k_local=clusters["k_local"],
        executor=executor,
    )
    strategy = AuctionSelection(mechanism, (), _quality_to_samples)
    strategy.name = scheme
    return strategy


class _PooledClients(dict):
    """Winner node ids resolved onto the bounded FL client pool.

    A hierarchical round's winners are population node ids (0..N-1); the
    federation only materialises ``fl_pool`` real clients, so a missing id
    maps onto the pool by ``node_id % pool_size``.  Plain pool-sized
    scenarios hit the dict directly and behave exactly like the list the
    trainer historically received.
    """

    def __init__(self, clients: list[FLClient]):
        super().__init__((c.client_id, c) for c in clients)
        self._pool_ids = sorted(self)

    def __missing__(self, node_id: int) -> FLClient:
        return self[self._pool_ids[int(node_id) % len(self._pool_ids)]]


def _build_global_model(scenario: Scenario, federation: Federation, seed: int):
    vocab = None
    if scenario.dataset == "hpnews":
        vocab = federation.generator.spec.vocab_size  # type: ignore[attr-defined]
    return build_model(
        scenario.dataset,
        federation.generator.input_shape,
        federation.generator.n_classes,
        rng_from(seed, _stream_names(scenario)["model"]),
        width=scenario.model_width,
        lr=scenario.lr,
        vocab_size=vocab,
    )


@dataclass
class RoundEvent:
    """One round of a streaming session, as a structured event.

    The fields surface what observers of a long run care about — bids
    collected, the winner set and its payments, model quality, and the
    policy actions (bans, alpha updates, churn) filed this round — while
    ``record`` keeps the full :class:`~repro.fl.trainer.RoundRecord` as
    the source of truth, so replaying a stream of events reconstructs the
    exact :class:`~repro.fl.trainer.TrainingHistory` a batch run returns.
    """

    scheme: str
    seed: int
    round_index: int
    n_bids: int
    winner_ids: list[int]
    payments: dict[int, float]
    total_payment: float
    accuracy: float
    loss: float
    actions: list[PolicyAction]
    record: RoundRecord


class Session:
    """A lazily-evaluated ``(scheme, seed)`` cell: iterate to train.

    Each ``next()`` runs exactly one protocol round and yields its
    :class:`RoundEvent`; ``history`` accumulates the rounds run so far, so
    long runs can be observed, checkpointed (snapshot
    ``trainer.server.model.get_weights()`` between events) and
    early-stopped (just stop iterating — the partial ``history`` is
    valid).  :meth:`run` drains the remaining rounds and returns the full
    history; ``FMoreEngine.run`` consumes sessions exactly this way, so a
    drained session is bitwise-identical to a batch run.

    Checkpointing: :meth:`snapshot` captures everything the cell needs to
    continue exactly (weights, records, RNG stream positions, policy
    state); :meth:`restore` installs a snapshot into a fresh session, and
    ``FMoreEngine.resume(checkpoint)`` wraps both.  Distributed workers
    (:mod:`repro.api.distributed`) drive cells through this same
    interface, which is why a stolen or resumed cell's manifest is
    byte-identical to an uninterrupted one.

    >>> session = engine.session(scenario, "FMore", seed=0)  # doctest: +SKIP
    >>> for event in session:                                # doctest: +SKIP
    ...     if event.accuracy > 0.8:
    ...         break
    """

    def __init__(
        self, scenario: Scenario, scheme: str, seed: int, trainer: FederatedTrainer
    ):
        self.scenario = scenario
        self.scheme = scheme
        self.seed = seed
        self.trainer = trainer
        self.history = TrainingHistory(scheme=trainer.selection.name)

    @property
    def rounds_run(self) -> int:
        return len(self.history.records)

    @property
    def rounds_remaining(self) -> int:
        return self.scenario.n_rounds - self.rounds_run

    def __iter__(self) -> "Session":
        return self

    def __next__(self) -> RoundEvent:
        if self.rounds_remaining <= 0:
            raise StopIteration
        record = self.trainer.run_round(self.rounds_run + 1)
        self.history.records.append(record)
        return RoundEvent(
            scheme=self.scheme,
            seed=self.seed,
            round_index=record.round_index,
            n_bids=len(record.all_scores),
            winner_ids=list(record.winner_ids),
            payments=dict(record.payments),
            total_payment=record.total_payment,
            accuracy=record.accuracy,
            loss=record.loss,
            actions=list(record.policy_actions),
            record=record,
        )

    def run(self) -> TrainingHistory:
        """Drain the remaining rounds; returns the complete history."""
        for _ in self:
            pass
        return self.history

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> Checkpoint:
        """Everything needed to continue this cell bitwise-identically.

        Captured between rounds: the global model's weights, the rounds
        run so far, the exact position of the training RNG stream, and —
        for auction schemes with a policy pipeline — the policy stream's
        position plus every policy's
        :meth:`~repro.core.policies.RoundPolicy.state_dict`.  A fresh
        session restored from the snapshot (:meth:`restore`) produces the
        same remaining rounds the uninterrupted session would have.
        """
        policy_rng_state = None
        policy_states: list[dict] = []
        bidding_rng_state = None
        bid_policy_states: list[dict] = []
        selection = self.trainer.selection
        if isinstance(selection, AuctionSelection):
            mechanism = selection.mechanism
            policy_states = [p.state_dict() for p in mechanism.policies]
            if mechanism.policy_rng is not None:
                policy_rng_state = rng_state(mechanism.policy_rng)
            bid_policy_states = [
                {"label": p.label, "name": p.name, "state": p.state_dict()}
                for p in mechanism.bid_policy_seq
            ]
            if mechanism.bidding_rng is not None:
                bidding_rng_state = rng_state(mechanism.bidding_rng)
        return Checkpoint(
            scenario=self.scenario.to_dict(),
            scenario_hash=scenario_hash(self.scenario),
            scheme=self.scheme,
            seed=self.seed,
            round_index=self.rounds_run,
            records=copy.deepcopy(self.history.records),
            weights=self.trainer.server.model.get_weights(),
            rng_state=rng_state(self.trainer.rng),
            policy_rng_state=policy_rng_state,
            policy_states=policy_states,
            bidding_rng_state=bidding_rng_state,
            bid_policy_states=bid_policy_states,
        )

    def restore(self, checkpoint: Checkpoint) -> "Session":
        """Install a :meth:`snapshot` into this (fresh) session.

        The session must address the same cell: scenario hash, scheme and
        seed are all verified.  Returns ``self`` so
        ``engine.resume(checkpoint)`` reads naturally.
        """
        if self.rounds_run:
            raise ValueError(
                f"restore needs a fresh session; this one already ran "
                f"{self.rounds_run} round(s)"
            )
        own_hash = scenario_hash(self.scenario)
        if checkpoint.scenario_hash != own_hash:
            raise StoreError(
                f"checkpoint was taken under scenario "
                f"{checkpoint.scenario_hash[:12]}…, but this session runs "
                f"{own_hash[:12]}… ({self.scenario.name!r}); resuming it "
                "would not reproduce the original run"
            )
        if (checkpoint.scheme, checkpoint.seed) != (self.scheme, self.seed):
            raise StoreError(
                f"checkpoint addresses cell ({checkpoint.scheme}, seed "
                f"{checkpoint.seed}), not ({self.scheme}, seed {self.seed})"
            )
        if checkpoint.round_index != len(checkpoint.records):
            raise StoreError(
                f"corrupt checkpoint: round_index {checkpoint.round_index} "
                f"but {len(checkpoint.records)} records"
            )
        if checkpoint.round_index > self.scenario.n_rounds:
            raise StoreError(
                f"checkpoint is at round {checkpoint.round_index} but the "
                f"scenario only runs {self.scenario.n_rounds}"
            )
        self.history.records = copy.deepcopy(checkpoint.records)
        self.trainer.server.model.set_weights(checkpoint.weights)
        set_rng_state(self.trainer.rng, checkpoint.rng_state)
        selection = self.trainer.selection
        if isinstance(selection, AuctionSelection):
            mechanism = selection.mechanism
            if len(checkpoint.policy_states) != len(mechanism.policies):
                raise StoreError(
                    f"checkpoint carries {len(checkpoint.policy_states)} "
                    f"policy states but the pipeline has "
                    f"{len(mechanism.policies)} stage(s)"
                )
            for policy, state in zip(mechanism.policies, checkpoint.policy_states):
                policy.load_state(state)
            if checkpoint.policy_rng_state is not None:
                if mechanism.policy_rng is None:  # pragma: no cover - guard
                    raise StoreError(
                        "checkpoint has a policy RNG state but this session "
                        "runs without a policy stream"
                    )
                set_rng_state(mechanism.policy_rng, checkpoint.policy_rng_state)
            seq = mechanism.bid_policy_seq
            if len(checkpoint.bid_policy_states) != len(seq):
                raise StoreError(
                    f"checkpoint carries {len(checkpoint.bid_policy_states)} "
                    f"bid-policy states but this session runs {len(seq)} "
                    "strategic group(s)"
                )
            for policy, entry in zip(seq, checkpoint.bid_policy_states):
                if (entry.get("label"), entry.get("name")) != (
                    policy.label,
                    policy.name,
                ):
                    raise StoreError(
                        f"checkpoint bid-policy state for "
                        f"({entry.get('name')!r}, label {entry.get('label')!r}) "
                        f"does not match this session's "
                        f"({policy.name!r}, label {policy.label!r})"
                    )
                policy.load_state(entry.get("state", {}))
            if checkpoint.bidding_rng_state is not None:
                if mechanism.bidding_rng is None:  # pragma: no cover - guard
                    raise StoreError(
                        "checkpoint has a bidding RNG state but this session "
                        "runs without a strategic slice"
                    )
                set_rng_state(mechanism.bidding_rng, checkpoint.bidding_rng_state)
        elif checkpoint.policy_states or checkpoint.bid_policy_states:
            raise StoreError(
                f"checkpoint carries policy state but scheme "
                f"{self.scheme!r} runs no policy pipeline"
            )
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(scheme={self.scheme!r}, seed={self.seed}, "
            f"rounds={self.rounds_run}/{self.scenario.n_rounds})"
        )


def make_session(
    scenario: Scenario,
    scheme: str,
    seed: int,
    federation: Federation | None = None,
    timer: RoundTimer | None = None,
    solver: EquilibriumSolver | None = None,
) -> Session:
    """Assemble one ``(scheme, seed)`` cell as a streaming :class:`Session`.

    All schemes for a given ``(scenario, seed)`` share the federation and
    the initial global weights; only training randomness differs per
    scheme.  Cluster federations bring their own wall-clock model: when no
    ``timer`` is supplied, the federation's
    :class:`~repro.mec.cluster.SimulatedCluster` times the rounds.
    """
    if federation is None:
        federation = build_federation(scenario, seed)
    if timer is None and federation.cluster is not None:
        timer = federation.cluster
    global_model = _build_global_model(scenario, federation, seed)
    if federation.initial_weights:
        global_model.set_weights(federation.initial_weights)
    else:
        federation.initial_weights = global_model.get_weights()
    server = FedAvgServer(global_model)
    clients = [
        FLClient(
            data,
            local_epochs=scenario.local_epochs,
            batch_size=scenario.batch_size,
            max_batches_per_round=scenario.max_batches_per_round,
        )
        for data in federation.clients_data
    ]
    if scenario.variant == "hierarchical":
        clients = _PooledClients(clients)
    selection = build_selection(scenario, scheme, federation, seed, solver=solver)
    local_training = scenario.execution.get("local_training")
    local_executor = None
    if local_training is not None:
        local_executor = EXECUTORS.create(
            local_training["executor"], max_workers=local_training["max_workers"]
        )
    trainer = FederatedTrainer(
        server,
        clients,
        selection,
        federation.test_x,
        federation.test_y,
        rng_from(seed, _stream_names(scenario)["train"].format(scheme=scheme)),
        timer=timer,
        local_executor=local_executor,
    )
    return Session(scenario, scheme, seed, trainer)


def run_scheme(
    scenario: Scenario,
    scheme: str,
    seed: int,
    federation: Federation | None = None,
    timer: RoundTimer | None = None,
    solver: EquilibriumSolver | None = None,
) -> TrainingHistory:
    """Run one scheme for ``scenario.n_rounds`` rounds; returns its history.

    This is :func:`make_session` drained to completion — the batch surface
    is a consumer of the streaming one, so both are identical by
    construction.
    """
    return make_session(
        scenario, scheme, seed, federation=federation, timer=timer, solver=solver
    ).run()


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class RunResult:
    """Histories of every ``(scheme, seed)`` cell of a scenario's plan."""

    scenario: Scenario
    histories: dict[str, list[TrainingHistory]]

    @property
    def schemes(self) -> tuple[str, ...]:
        return self.scenario.schemes

    @property
    def seeds(self) -> tuple[int, ...]:
        return self.scenario.seeds

    def history(self, scheme: str, seed: int | None = None) -> TrainingHistory:
        """One scheme's history for ``seed`` (default: the first seed)."""
        seed = self.seeds[0] if seed is None else seed
        return self.histories[scheme][self.seeds.index(seed)]

    def comparison(self, seed: int | None = None) -> dict[str, TrainingHistory]:
        """The legacy ``run_comparison`` shape: one history per scheme."""
        return {scheme: self.history(scheme, seed) for scheme in self.schemes}

    def averaged(self) -> dict[str, dict[str, Any]]:
        """Seed-averaged accuracy/loss/time series per scheme."""
        from ..sim.runner import average_histories

        return {s: average_histories(h) for s, h in self.histories.items()}

    def metrics(self) -> "Any":
        """The seed-averaged :class:`~repro.api.metrics.MetricsFrame`.

        One row per ``(scheme, round)``: accuracy/loss/time/payment means
        plus the policy trajectory (cumulative bans, violation and churn
        counts, guidance alpha paths) — with ``to_csv`` / ``to_json``.
        """
        from .metrics import build_metrics_frame

        return build_metrics_frame(self)

    # -- durable storage -------------------------------------------------
    def save(self, store: ExperimentStore | str) -> ExperimentStore:
        """Write every cell's manifest to ``store``; returns the store."""
        store = ExperimentStore.coerce(store)
        for scheme, histories in self.histories.items():
            for seed, history in zip(self.seeds, histories):
                store.save_history(self.scenario, scheme, seed, history)
        return store

    @classmethod
    def load(
        cls, store: ExperimentStore | str, scenario: Scenario
    ) -> "RunResult":
        """Rebuild a result from stored manifests (the plan must be complete).

        Raises :class:`~repro.api.store.StoreError` listing the missing
        ``(scheme, seed)`` cells when the store does not cover the
        scenario's full plan.
        """
        store = ExperimentStore.coerce(store)
        missing = [
            (scheme, seed)
            for seed in scenario.seeds
            for scheme in scenario.schemes
            if not store.has_cell(scenario, scheme, seed)
        ]
        if missing:
            names = ", ".join(f"{s}/seed{d}" for s, d in missing)
            raise StoreError(
                f"store {store.root} is missing {len(missing)} cell(s) of "
                f"scenario {scenario_hash(scenario)[:12]}… "
                f"({scenario.name!r}): {names}"
            )
        histories = {
            scheme: [
                store.load_history(scenario, scheme, seed)
                for seed in scenario.seeds
            ]
            for scheme in scenario.schemes
        }
        return cls(scenario, histories)


# ----------------------------------------------------------------------
# The façade
# ----------------------------------------------------------------------
class FMoreEngine:
    """Runs scenarios, caching equilibrium solvers per advertised game.

    The façade over the whole assembly path: :meth:`run` executes every
    ``(scheme, seed)`` cell of a scenario's plan (durably and
    incrementally when given a ``store``), :meth:`session` streams a
    single cell round by round as :class:`RoundEvent` values, and
    :meth:`resume` continues a :class:`~repro.api.store.Checkpoint`
    bitwise-identically.  The solver cache key is the full common
    knowledge of the game — ``(s, c, F, N, K)`` plus quality bounds,
    winning kernel, payment backend and grid size — so a multi-seed run,
    a scheme comparison or a sweep over *non-game* parameters builds the
    strategy tables exactly once.  Construction is cheap; share one
    engine across related runs to share its cache.

    >>> engine = FMoreEngine()                                  # doctest: +SKIP
    >>> result = engine.run(Scenario.from_preset("smoke", "mnist_o"))  # doctest: +SKIP
    >>> result.history("FMore").final_accuracy                  # doctest: +SKIP
    0.62

    Parameters
    ----------
    timer:
        Optional :class:`~repro.fl.trainer.RoundTimer` forwarded to every
        trainer (the MEC cluster's wall-clock model).  Must be picklable
        for the ``process`` executor; the ``distributed`` executor
        rejects it (remote workers cannot share a live object — cluster
        scenarios time themselves through their federation instead).
    """

    def __init__(self, timer: RoundTimer | None = None):
        self.timer = timer
        self._solvers: dict[tuple, EquilibriumSolver] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # -- solver cache ---------------------------------------------------
    def solver_for(
        self,
        scenario: Scenario,
        n_clients: int | None = None,
        k_winners: int | None = None,
    ) -> EquilibriumSolver:
        """The (cached) equilibrium solver of the scenario's game."""
        key = self._game_key(scenario, n_clients, k_winners)
        solver = self._solvers.get(key)
        if solver is None:
            self.cache_misses += 1
            solver = build_solver(scenario, n_clients=n_clients, k_winners=k_winners)
            self._solvers[key] = solver
        else:
            self.cache_hits += 1
        return solver

    @staticmethod
    def _game_key(
        scenario: Scenario, n_clients: int | None, k_winners: int | None
    ) -> tuple:
        return (
            _freeze(scenario.scoring),
            _freeze(scenario.cost),
            _freeze(scenario.theta),
            n_clients if n_clients is not None else scenario.n_clients,
            k_winners if k_winners is not None else scenario.k_winners,
            _freeze(solver_bounds(scenario)),
            scenario.win_model,
            scenario.payment_method,
            scenario.grid_size,
        )

    # -- running --------------------------------------------------------
    def session(
        self,
        scenario: Scenario,
        scheme: str,
        seed: int,
        federation: Federation | None = None,
    ) -> Session:
        """A streaming :class:`Session` for one ``(scheme, seed)`` cell.

        Iterating the session runs one round per ``next()`` and yields
        structured :class:`RoundEvent` values (bids collected, winners,
        payments, accuracy, policy actions), so long runs can be observed,
        checkpointed and early-stopped.  Draining it (``session.run()``)
        returns the exact :class:`~repro.fl.trainer.TrainingHistory` that
        :meth:`run_scheme` produces — the batch path is a consumer of this
        one.
        """
        solver = (
            self.solver_for(scenario) if scheme in _AUCTION_SCHEMES else None
        )
        return make_session(
            scenario,
            scheme,
            seed,
            federation=federation,
            timer=self.timer,
            solver=solver,
        )

    def run_scheme(
        self,
        scenario: Scenario,
        scheme: str,
        seed: int,
        federation: Federation | None = None,
    ) -> TrainingHistory:
        """One ``(scheme, seed)`` cell, using the cached solver."""
        return self.session(scenario, scheme, seed, federation=federation).run()

    def run(
        self,
        scenario: Scenario,
        *,
        store: ExperimentStore | str | None = None,
        force: bool = False,
        resume: bool = False,
        checkpoint_every: int | None = None,
        stop_after: int | None = None,
    ) -> RunResult:
        """Run every ``(scheme, seed)`` cell of the scenario's plan.

        The cells fan out through the executor named by the scenario's
        ``execution`` spec (``serial`` by default).  Every cell derives
        its randomness from named per-cell seed streams, so all executors
        return bitwise-identical histories:

        * in-process executors (``serial``, ``thread``) share this
          engine's solver cache and one federation per seed (dropped as
          soon as its last scheme finishes, to keep the serial memory
          profile);
        * the ``process`` executor ships ``(scenario, scheme, seed)`` to
          worker processes, each of which rebuilds federations from the
          same streams and keeps a per-process solver cache (the engine's
          ``timer``, if any, must then be picklable);
        * the ``distributed`` executor turns the store into a job bus:
          pending cells are enqueued as job specs under
          ``<store>/jobs/``, ``python -m repro worker`` processes — local
          (spawned when ``max_workers`` > 0) or on any machine sharing
          the store's filesystem — claim them with lease-guarded lock
          files, and this call polls until every manifest lands (see
          :mod:`repro.api.distributed`; a ``store`` is then mandatory
          and ``stop_after`` is unsupported);
        * the ``service`` executor submits the plan to the event-driven
          coordinator service (:mod:`repro.api.coordinator`) — a running
          one named by the spec's ``coordinator_url``, or an embedded
          coordinator thread on an ephemeral port — which *pushes* cells
          to warm workers over long-poll while mirroring every job to
          the same ``<store>/jobs/`` bus (the ``distributed`` executor's
          store rules apply, and the two fleets interoperate).

        With a ``store`` (an :class:`~repro.api.store.ExperimentStore` or
        its root path) the run becomes durable and incremental: cells
        whose manifests already exist are loaded instead of re-run
        (unless ``force``), completed cells are written as
        content-addressed manifests, and — with ``checkpoint_every=N`` —
        an in-flight cell checkpoints its session every N rounds, so a
        crash loses at most N rounds.  ``resume=True`` first verifies the
        store belongs to this scenario (raising
        :class:`~repro.api.store.StoreMismatchError` otherwise) and picks
        up any checkpointed cells exactly where they stopped —
        bitwise-identical to an uninterrupted run.  ``stop_after=N``
        bounds the rounds each cell advances *in this process* (a
        controlled interruption: remaining cells are checkpointed and an
        :class:`~repro.api.store.IncompleteRunError` is raised).
        """
        store = ExperimentStore.coerce(store)
        if checkpoint_every is not None and int(checkpoint_every) < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if stop_after is not None and int(stop_after) < 1:
            raise ValueError("stop_after must be >= 1")
        if store is None and (resume or checkpoint_every or stop_after):
            raise ValueError(
                "resume/checkpoint_every/stop_after need a store to "
                "read/write checkpoints; pass store=... (CLI: --store DIR)"
            )
        if resume:
            store.require_scenario(scenario)
        exec_spec = dict(scenario.execution)
        # The within-round training pool is built per session inside
        # make_session, not here: the cell-level executor only takes the
        # plan-level knobs.
        exec_spec.pop("local_training", None)
        executor: Executor = EXECUTORS.create(exec_spec.pop("executor"), **exec_spec)
        if executor.needs_store:
            # Store-coordinated executors (repro.api.distributed) schedule
            # whole plans across machines; the store is their job and
            # results bus, so it is mandatory, and per-process round
            # budgets / live timers cannot cross the machine boundary.
            if store is None:
                raise ValueError(
                    f"the {scenario.execution['executor']!r} executor "
                    "coordinates cells through a shared experiment store; "
                    "pass store=... (CLI: --store DIR)"
                )
            if stop_after is not None:
                raise ValueError(
                    "stop_after bounds rounds run *in this process* and is "
                    "not supported by store-coordinated executors; bound "
                    "worker lifetimes with `repro worker --max-cells` instead"
                )
            if self.timer is not None:
                raise ValueError(
                    "a store-coordinated run cannot ship the engine's timer "
                    "to remote workers; cluster scenarios time themselves "
                    "through their federation's SimulatedCluster"
                )
        cells = [
            (scheme, seed) for seed in scenario.seeds for scheme in scenario.schemes
        ]
        loaded: dict[tuple[str, int], TrainingHistory] = {}
        if store is not None and not force:
            for cell in cells:
                if store.has_cell(scenario, *cell):
                    loaded[cell] = store.load_history(scenario, *cell)
        pending = [cell for cell in cells if cell not in loaded]
        results: list[TrainingHistory | None] = []
        if pending:
            if executor.needs_store:
                results = executor.execute_plan(
                    scenario,
                    pending,
                    store,
                    resume=resume,
                    checkpoint_every=checkpoint_every,
                    force=force,
                )
            elif executor.in_process:
                # Under a concurrent in-process executor the scheme-independent
                # initial weights must be settled before cells race for them;
                # the serial loop keeps the legacy lazy fill (first cell pays).
                eager_weights = not isinstance(executor, SerialExecutor)
                results = executor.map(
                    self._cell_runner(
                        scenario,
                        pending,
                        eager_weights=eager_weights,
                        store=store,
                        resume=resume,
                        checkpoint_every=checkpoint_every,
                        stop_after=stop_after,
                    ),
                    pending,
                )
            else:
                results = executor.map(
                    functools.partial(
                        _run_cell,
                        scenario,
                        self.timer,
                        None if store is None else str(store.root),
                        resume,
                        checkpoint_every,
                        stop_after,
                    ),
                    pending,
                )
        incomplete = [
            cell for cell, history in zip(pending, results) if history is None
        ]
        if incomplete:
            raise IncompleteRunError(incomplete, store.root)
        finished = dict(zip(pending, results))
        histories: dict[str, list[TrainingHistory]] = {
            scheme: [] for scheme in scenario.schemes
        }
        for cell in cells:
            scheme, _ = cell
            histories[scheme].append(
                loaded[cell] if cell in loaded else finished[cell]
            )
        return RunResult(scenario, histories)

    def resume(self, checkpoint: Checkpoint) -> Session:
        """A :class:`Session` continuing exactly where ``checkpoint`` stopped.

        The checkpoint carries its full scenario spec, so this is
        self-contained: the cell is reassembled from the same named seed
        streams, then model weights, completed rounds, RNG positions and
        policy state are restored.  Draining the returned session yields a
        history bitwise-identical to the uninterrupted run's.
        """
        scenario = Scenario.from_dict(checkpoint.scenario)
        actual = scenario_hash(scenario)
        if actual != checkpoint.scenario_hash:
            raise StoreError(
                f"checkpoint's embedded scenario hashes to {actual[:12]}… "
                f"but it claims {checkpoint.scenario_hash[:12]}…; the "
                "checkpoint is corrupt"
            )
        session = self.session(scenario, checkpoint.scheme, checkpoint.seed)
        return session.restore(checkpoint)

    def _cell_runner(
        self,
        scenario: Scenario,
        cells: list[tuple[str, int]],
        eager_weights: bool = False,
        store: ExperimentStore | None = None,
        resume: bool = False,
        checkpoint_every: int | None = None,
        stop_after: int | None = None,
    ) -> Callable[[tuple[str, int]], TrainingHistory | None]:
        """The in-process cell function: shared solvers, pooled federations.

        Federations are built lazily under a lock — once per seed however
        many threads run its cells — and evicted when the seed's last
        scheme completes (``cells`` is the pending set, so store-cached
        cells never pin a federation).  With ``eager_weights`` the
        scheme-independent initial weights are settled at federation build
        time (so concurrent cells never race to fill them); without it,
        the first cell populates them as the legacy serial loop did.
        """
        needs_solver = any(s in _AUCTION_SCHEMES for s, _ in cells)
        lock = threading.Lock()
        # seed -> (federation, solver); one solver_for call per seed, like
        # the serial loop always made (the engine cache dedupes the build).
        pooled: dict[int, tuple[Federation, EquilibriumSolver | None]] = {}
        remaining: dict[int, int] = {}
        for _, seed in cells:
            remaining[seed] = remaining.get(seed, 0) + 1

        def run_cell(cell: tuple[str, int]) -> TrainingHistory | None:
            scheme, seed = cell
            with lock:
                entry = pooled.get(seed)
                if entry is None:
                    federation = build_federation(scenario, seed)
                    if eager_weights:
                        model = _build_global_model(scenario, federation, seed)
                        federation.initial_weights = model.get_weights()
                    solver = self.solver_for(scenario) if needs_solver else None
                    entry = pooled[seed] = (federation, solver)
                federation, solver = entry
            try:
                session = make_session(
                    scenario,
                    scheme,
                    seed,
                    federation=federation,
                    timer=self.timer,
                    solver=solver,
                )
                return _drive_session(
                    session,
                    store=store,
                    resume=resume,
                    checkpoint_every=checkpoint_every,
                    stop_after=stop_after,
                )
            finally:
                with lock:
                    remaining[seed] -= 1
                    if remaining[seed] == 0:
                        pooled.pop(seed, None)

        return run_cell


def _freeze(value: Any) -> Any:
    """Recursively hashable view of a JSON-ish value (dicts sort by key)."""
    if isinstance(value, dict):
        return tuple((k, _freeze(v)) for k, v in sorted(value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


# ----------------------------------------------------------------------
# Session driving (shared by the in-process and process-pool cell paths)
# ----------------------------------------------------------------------
def _drive_session(
    session: Session,
    store: ExperimentStore | None = None,
    resume: bool = False,
    checkpoint_every: int | None = None,
    stop_after: int | None = None,
) -> TrainingHistory | None:
    """Advance one cell's session, checkpointing/persisting via ``store``.

    Returns the complete history, or ``None`` when ``stop_after`` halted
    the cell early (its checkpoint is then durable in the store).  With a
    store, a finished cell writes its manifest and drops its checkpoint —
    the manifest is the cell's durable, content-addressed result.
    """
    scenario, scheme, seed = session.scenario, session.scheme, session.seed
    if store is not None and resume:
        checkpoint = store.load_checkpoint(scenario, scheme, seed)
        if checkpoint is not None:
            session.restore(checkpoint)
    budget = None if stop_after is None else int(stop_after)
    advanced = 0
    while session.rounds_remaining > 0:
        if budget is not None and advanced >= budget:
            store.save_checkpoint(session.snapshot())
            return None
        next(session)
        advanced += 1
        if (
            store is not None
            and checkpoint_every
            and session.rounds_remaining > 0
            and advanced % int(checkpoint_every) == 0
        ):
            store.save_checkpoint(session.snapshot())
    if store is not None:
        store.save_history(scenario, scheme, seed, session.history)
        store.clear_checkpoint(scenario, scheme, seed)
    return session.history


# ----------------------------------------------------------------------
# Process-pool entry point
# ----------------------------------------------------------------------
# One engine per worker process: cells a worker handles share its solver
# cache (the game key is value-based, so re-pickled scenarios still hit).
_WORKER_ENGINE: FMoreEngine | None = None


def _run_cell(
    scenario: Scenario,
    timer: RoundTimer | None,
    store_root: str | None,
    resume: bool,
    checkpoint_every: int | None,
    stop_after: int | None,
    cell: tuple[str, int],
) -> TrainingHistory | None:
    """Run one ``(scheme, seed)`` cell in the current (worker) process.

    Rebuilds the cell's federation from its named seed streams, so the
    returned history is bitwise-identical to the serial path no matter
    which worker runs it.  The store rides across the process boundary as
    its root path (checkpoints and manifests are plain files, so every
    worker may write its own cells concurrently).
    """
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None:
        _WORKER_ENGINE = FMoreEngine()
    scheme, seed = cell
    solver = (
        _WORKER_ENGINE.solver_for(scenario) if scheme in _AUCTION_SCHEMES else None
    )
    session = make_session(
        scenario,
        scheme,
        seed,
        federation=build_federation(scenario, seed),
        timer=timer,
        solver=solver,
    )
    return _drive_session(
        session,
        store=None if store_root is None else ExperimentStore(store_root),
        resume=resume,
        checkpoint_every=checkpoint_every,
        stop_after=stop_after,
    )
