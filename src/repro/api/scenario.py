"""Declarative experiment specs: the :class:`Scenario` dataclass.

A :class:`Scenario` describes an *entire* experiment — dataset, federation
shape, auction environment, schemes, seeds — as one frozen, validated,
JSON-round-trippable value.  The auction components (scoring rule, cost
model, type prior) are named registry specs (see
:mod:`repro.core.registry`), so the same six-step protocol runs with any
registered component mix without touching assembly code:

>>> s = Scenario.from_preset("smoke", "mnist_o")
>>> s2 = Scenario.from_json(s.to_json())
>>> s2 == s
True

Scenarios are consumed by :class:`repro.api.FMoreEngine` and by the CLI
(``python -m repro run --scenario file.json --set key=value``).  The
legacy :class:`repro.sim.config.ExperimentConfig` bridges both ways via
:meth:`Scenario.from_config` / :meth:`Scenario.to_config`.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from ..core.policies import (
    PIPELINE_STAGES,
    alphas_applicable,
    build_policy_pipeline,
)
from ..core.registry import (
    BID_POLICIES,
    COST_MODELS,
    MARGIN_METHODS,
    PAYMENT_RULES,
    SCORING_RULES,
    THETA_DISTRIBUTIONS,
)
from ..strategic import policies as _strategic  # noqa: F401 - registers bid policies
from . import coordinator as _coordinator  # noqa: F401 - registers "service"
from . import distributed as _distributed  # noqa: F401 - registers "distributed"
from .executor import EXECUTORS  # noqa: F401 - import registers the executors
from .executor import IN_PROCESS_POOL_NAMES

__all__ = ["Scenario", "SCHEME_NAMES", "VARIANT_NAMES"]

SCHEME_NAMES = ("FMore", "RandFL", "FixFL", "PsiFMore")

#: Environment families the engine can assemble: the paper's Section V-A/B
#: simulation game, the Section V-C simulated-cluster testbed, and the
#: two-tier sharded auction for MEC-scale populations (N up to ~10^6).
VARIANT_NAMES = ("simulation", "cluster", "hierarchical")

_WIN_MODELS = ("paper", "exact")

_EXECUTION_KEYS = (
    "executor",
    "max_workers",
    "lease_seconds",
    "poll_interval",
    "coordinator_url",
    "local_training",
)

# Keys of the optional ``execution.local_training`` sub-spec: the
# within-round pool that fans one round's K winner trainings out (the CLI's
# ``run --local-parallel N``).  Restricted to the plain map-style pools —
# store-coordinated executors cannot run inside a round.
_LOCAL_TRAINING_KEYS = ("executor", "max_workers")

# Defaults filled into a "distributed" / "service" execution spec at
# canonicalisation (kept in repro.api.distributed so the executors and
# the spec agree).
_DISTRIBUTED_DEFAULTS = {
    "lease_seconds": _distributed.DEFAULT_LEASE_SECONDS,
    "poll_interval": _distributed.DEFAULT_POLL_INTERVAL,
}

# Executors coordinating whole plans through a shared store; they accept
# the lease/poll knobs and max_workers=0 (coordinate-only).
_STORE_EXECUTORS = ("distributed", "service")

# Fields deserialised back into tuples (JSON only has lists).
_TUPLE_FIELDS = ("size_range", "schemes", "seeds", "core_choices", "bandwidth_range_mbps")
_SPEC_FIELDS = {
    "scoring": SCORING_RULES,
    "cost": COST_MODELS,
    "theta": THETA_DISTRIBUTIONS,
}

# Dict-valued fields that accept dotted override paths ("scoring.scale").
_DICT_FIELDS = ("scoring", "cost", "theta", "execution", "policies", "bidding", "clusters")

# Keys of the variant="hierarchical" `clusters` spec.  `count` is
# required; the rest are defaulted at canonicalisation so the spec
# round-trips explicitly through JSON (the `execution` pattern).
_CLUSTERS_KEYS = (
    "count",
    "k_clusters",
    "k_local",
    "size_dist",
    "theta_skew",
    "capacity_skew",
    "assignment_seed",
    "executor",
    "max_workers",
    "fl_pool",
)

_CLUSTER_SIZE_DISTS = ("uniform", "lognormal")

#: Schemes the two-tier mechanism knows how to run (both tiers are
#: score-ranked auctions; RandFL/FixFL have no per-cluster analogue).
_HIERARCHICAL_SCHEMES = ("FMore", "PsiFMore")

#: Bound on how many FL clients a hierarchical federation materialises;
#: auction winners map onto this pool modulo its size, so training cost
#: stays flat while the *bidder* population scales to 10^5-10^6.
DEFAULT_FL_POOL = 256

_POLICY_SPEC_KEYS = PIPELINE_STAGES + ("per_scheme",)

_BIDDING_SPEC_KEYS = ("mix", "per_scheme")


def _default_scoring() -> dict:
    return {"name": "multiplicative", "n_dimensions": 2, "scale": 25.0}


def _default_cost() -> dict:
    return {"name": "linear", "betas": (4.0, 2.0)}


def _default_theta() -> dict:
    return {"name": "uniform", "lo": 0.1, "hi": 1.0}


def _default_execution() -> dict:
    return {"executor": "serial", "max_workers": None}


@dataclass(frozen=True)
class Scenario:
    """One fully-specified experiment (dataset + federation + auction + plan).

    A frozen, validated, JSON-round-trippable value: build one with
    :meth:`from_preset` / :meth:`from_dict` / the constructor, derive
    variants with :meth:`with_` / :meth:`with_overrides` (CLI-style
    ``key=value`` pairs, dotted paths reaching inside spec mappings), and
    hand it to :class:`~repro.api.engine.FMoreEngine`.  Invalid field
    combinations fail at construction, never rounds into a run.

    The fields fall into six groups (defaults mirror the paper's Section
    V-A setup):

    * **environment** — ``name`` (feeds the named seed streams),
      ``dataset``, ``variant`` (``"simulation"`` or the Section V-C
      ``"cluster"`` testbed);
    * **federation shape** — ``n_clients``, ``k_winners``, data sizing
      and non-IID-ness, ``data_seed``;
    * **training** — ``n_rounds``, ``local_epochs``, ``batch_size``,
      ``lr``, model shape;
    * **auction environment** — the registry specs ``scoring`` /
      ``cost`` / ``theta`` plus ``payment_rule`` / ``payment_method`` /
      ``win_model`` / ``grid_size`` (see docs/scenario_reference.md for
      every registered name);
    * **run plan** — ``schemes``, ``seeds``, and ``execution`` (which
      executor fans the ``(scheme, seed)`` cells out, including the
      store-coordinated ``"distributed"`` backend; an optional
      ``local_training`` sub-spec additionally fans each round's K winner
      trainings over a serial/thread/process pool);
    * **round policies** — the ``policies`` pipeline spec with optional
      ``per_scheme`` overrides.

    >>> s = Scenario.from_preset("smoke", "mnist_o", seeds=(0, 1))
    >>> Scenario.from_json(s.to_json()) == s
    True
    >>> s.with_overrides(["scoring.scale=30", "seeds=0,1,2"]).n_rounds == s.n_rounds
    True
    """

    name: str = "default"
    dataset: str = "mnist_o"
    # -- environment family ----------------------------------------------
    # "simulation" scores (data size, category diversity) as in Section
    # V-A/B; "cluster" recreates the Section V-C testbed: heterogeneous
    # machines (cores, bandwidth) on a SimulatedCluster wall-clock model,
    # scored on the 3-D (compute, bandwidth, data) triple.
    variant: str = "simulation"
    # -- federation shape ------------------------------------------------
    n_clients: int = 100
    k_winners: int = 20
    test_per_class: int = 50
    size_range: tuple[int, int] = (200, 5000)
    min_classes: int = 1
    max_classes: int | None = None
    availability_min_fraction: float = 0.35
    theta_jitter: float = 0.2
    data_seed: int = 7
    # -- training --------------------------------------------------------
    n_rounds: int = 20
    local_epochs: int = 1
    batch_size: int = 32
    max_batches_per_round: int | None = None
    lr: float = 0.08
    model_width: float = 0.25
    image_size: int | None = None
    # -- auction environment (registry specs) ----------------------------
    scoring: dict = field(default_factory=_default_scoring)
    cost: dict = field(default_factory=_default_cost)
    theta: dict = field(default_factory=_default_theta)
    payment_rule: str = "first_score"
    win_model: str = "paper"
    payment_method: str = "euler"
    psi: float | None = None
    grid_size: int = 257
    # -- cluster hardware (variant="cluster" only) ------------------------
    core_choices: tuple[int, ...] = (1, 2, 4, 8)
    bandwidth_range_mbps: tuple[float, float] = (50.0, 1000.0)
    # -- run plan ---------------------------------------------------------
    schemes: tuple[str, ...] = ("FMore", "RandFL", "FixFL")
    seeds: tuple[int, ...] = (0,)
    # How the (scheme, seed) cells execute: a registry spec naming an
    # executor from repro.api.executor plus its worker bound.  The
    # "distributed" executor (repro.api.distributed) additionally takes
    # lease_seconds/poll_interval and allows max_workers=0
    # (coordinate-only: external `python -m repro worker` processes run
    # the cells through a shared experiment store).  The optional
    # "local_training" sub-spec ({"executor": serial|thread|process,
    # "max_workers": N}) switches each round's K winner trainings onto a
    # within-round pool with per-winner derived RNG streams — results are
    # byte-identical across the three pool types, but NOT to the legacy
    # shared-stream schedule run without the sub-spec, so its presence is
    # part of the scenario's content hash.
    execution: dict = field(default_factory=_default_execution)
    # Round-policy pipeline spec: {stage: params} over the registered
    # stages (selection/guidance/audit_blacklist/churn, see
    # repro.core.policies), plus an optional "per_scheme" mapping of
    # scheme-name -> stage overrides (a null stage disables the base
    # policy for that scheme).  Policies apply to the auction-driven
    # schemes (FMore/PsiFMore); empty means the classic protocol.
    policies: dict = field(default_factory=dict)
    # Strategic-bidder mix: {"mix": [{"name": <BID_POLICIES name>,
    # "fraction": f, "label": ..., **params}, ...]} plus an optional
    # "per_scheme" mapping (a null entry reverts a scheme to all-truthful).
    # Fractions are claimed from the front of the node order; the
    # remainder bids truthfully through the untouched batched hot path.
    # Empty (the default) is all-truthful and is *omitted* from to_dict()
    # so pre-existing scenario hashes and manifests stay byte-identical.
    bidding: dict = field(default_factory=dict)
    # Two-tier sharding spec (variant="hierarchical" only): the bidder
    # population is partitioned into `count` edge clusters (size law,
    # per-cluster theta/capacity skew, seeded assignment), each cluster
    # runs a local FMore auction for `k_local` winners, and a top-level
    # auction among the cluster heads admits `k_clusters` clusters to the
    # global round.  `executor`/`max_workers` pick the in-process
    # EXECUTORS member that fans the per-cluster auctions out within one
    # round; `fl_pool` bounds how many FL clients are materialised.
    # Empty (the default, required for flat variants) is *omitted* from
    # to_dict() so pre-existing scenario hashes stay byte-identical.
    clusters: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        # Normalise JSON-ish inputs (lists, or scalars from CLI --set
        # overrides like `seeds=0` / `schemes=FMore`) into canonical tuples.
        schemes = (self.schemes,) if isinstance(self.schemes, str) else self.schemes
        seeds = (self.seeds,) if isinstance(self.seeds, int) else self.seeds
        object.__setattr__(self, "size_range", tuple(int(v) for v in self.size_range))
        object.__setattr__(self, "schemes", tuple(str(s) for s in schemes))
        object.__setattr__(self, "seeds", tuple(int(s) for s in seeds))
        object.__setattr__(
            self, "core_choices", tuple(int(c) for c in self.core_choices)
        )
        object.__setattr__(
            self,
            "bandwidth_range_mbps",
            tuple(float(v) for v in self.bandwidth_range_mbps),
        )
        if self.variant not in VARIANT_NAMES:
            raise ValueError(
                f"unknown variant {self.variant!r}; choose from {VARIANT_NAMES}"
            )
        if not self.core_choices or any(c < 1 for c in self.core_choices):
            raise ValueError("core_choices must be a non-empty tuple of cores >= 1")
        if len(self.bandwidth_range_mbps) != 2 or not (
            0.0 < self.bandwidth_range_mbps[0] <= self.bandwidth_range_mbps[1]
        ):
            raise ValueError("bandwidth_range_mbps must satisfy 0 < lo <= hi")
        if not isinstance(self.execution, Mapping):
            raise TypeError("execution must be a spec mapping")
        execution = {str(k): v for k, v in self.execution.items()}
        unknown_exec = sorted(set(execution) - set(_EXECUTION_KEYS))
        if unknown_exec:
            raise ValueError(
                f"unknown execution keys {unknown_exec}; allowed: {_EXECUTION_KEYS}"
            )
        executor = execution.get("executor", "serial")
        if not isinstance(executor, str) or executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; "
                f"choose from {list(EXECUTORS.names())}"
            )
        max_workers = execution.get("max_workers")
        if max_workers is not None:
            max_workers = int(max_workers)
            if max_workers < 1 and not (
                max_workers == 0 and executor in _STORE_EXECUTORS
            ):
                raise ValueError(
                    "execution max_workers must be >= 1 (0 is allowed only "
                    "for the 'distributed'/'service' executors, meaning "
                    "coordinate-only: external workers do the running)"
                )
        canonical_execution = {"executor": executor, "max_workers": max_workers}
        lease = execution.get("lease_seconds")
        poll = execution.get("poll_interval")
        coordinator_url = execution.get("coordinator_url")
        if executor in _STORE_EXECUTORS:
            # Store-coordination knobs, defaulted at canonicalisation so
            # the spec round-trips explicitly through JSON.
            lease = _DISTRIBUTED_DEFAULTS["lease_seconds"] if lease is None else float(lease)
            poll = _DISTRIBUTED_DEFAULTS["poll_interval"] if poll is None else float(poll)
            if lease < 0.0:
                raise ValueError("execution lease_seconds must be >= 0")
            if poll <= 0.0:
                raise ValueError("execution poll_interval must be > 0")
            canonical_execution["lease_seconds"] = lease
            canonical_execution["poll_interval"] = poll
        elif lease is not None or poll is not None:
            raise ValueError(
                "execution keys lease_seconds/poll_interval only apply to "
                "the 'distributed'/'service' executors"
            )
        if executor == "service":
            # The event-driven coordinator's address; None means an
            # embedded coordinator on an ephemeral port for this run.
            if coordinator_url is not None:
                coordinator_url = str(coordinator_url)
                if not coordinator_url.startswith(("http://", "https://")):
                    raise ValueError(
                        "execution coordinator_url must be an http(s):// URL"
                    )
            canonical_execution["coordinator_url"] = coordinator_url
        elif coordinator_url is not None:
            raise ValueError(
                "execution key coordinator_url only applies to the "
                "'service' executor"
            )
        local_training = execution.get("local_training")
        if local_training is not None:
            if not isinstance(local_training, Mapping):
                raise TypeError("execution local_training must be a spec mapping")
            local_training = {str(k): v for k, v in local_training.items()}
            unknown_local = sorted(set(local_training) - set(_LOCAL_TRAINING_KEYS))
            if unknown_local:
                raise ValueError(
                    f"unknown local_training keys {unknown_local}; "
                    f"allowed: {_LOCAL_TRAINING_KEYS}"
                )
            local_exec = local_training.get("executor", "thread")
            if not isinstance(local_exec, str) or local_exec not in IN_PROCESS_POOL_NAMES:
                raise ValueError(
                    f"local_training executor must be one of "
                    f"{list(IN_PROCESS_POOL_NAMES)} (store-coordinated executors "
                    f"cannot run within-round training), got {local_exec!r}"
                )
            local_workers = local_training.get("max_workers")
            if local_workers is not None:
                local_workers = int(local_workers)
                if local_workers < 1:
                    raise ValueError("local_training max_workers must be >= 1")
            canonical_execution["local_training"] = {
                "executor": local_exec,
                "max_workers": local_workers,
            }
        object.__setattr__(self, "execution", canonical_execution)
        if self.n_clients < 2:
            raise ValueError("n_clients must be >= 2")
        if not (1 <= self.k_winners <= self.n_clients):
            raise ValueError("need 1 <= k_winners <= n_clients")
        if self.n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        lo, hi = self.size_range
        if not (0 < lo <= hi):
            raise ValueError("size_range must satisfy 0 < lo <= hi")
        if not self.schemes:
            raise ValueError("schemes must be non-empty")
        for scheme in self.schemes:
            if scheme not in SCHEME_NAMES:
                raise ValueError(
                    f"unknown scheme {scheme!r}; choose from {SCHEME_NAMES}"
                )
        if len(set(self.schemes)) != len(self.schemes):
            raise ValueError("schemes must be unique")
        if not self.seeds:
            raise ValueError("seeds must be non-empty")
        for spec_name, registry in _SPEC_FIELDS.items():
            spec = getattr(self, spec_name)
            if not isinstance(spec, Mapping):
                raise TypeError(f"{spec_name} must be a spec mapping")
            spec = {str(k): _detuple(v) for k, v in spec.items()}
            object.__setattr__(self, spec_name, spec)
            name = spec.get("name")
            if not isinstance(name, str) or name not in registry:
                raise ValueError(
                    f"{spec_name} spec names unknown {registry.kind} {name!r}; "
                    f"choose from {list(registry.names())}"
                )
        if self.payment_rule not in PAYMENT_RULES:
            raise ValueError(
                f"unknown payment rule {self.payment_rule!r}; "
                f"choose from {list(PAYMENT_RULES.names())}"
            )
        if self.win_model not in _WIN_MODELS:
            raise ValueError(f"win_model must be one of {_WIN_MODELS}")
        if self.payment_method not in MARGIN_METHODS:
            raise ValueError(
                f"unknown payment method {self.payment_method!r}; "
                f"choose from {list(MARGIN_METHODS.names())}"
            )
        if self.psi is not None and not (0.0 < self.psi <= 1.0):
            raise ValueError("psi must lie in (0, 1]")
        if self.grid_size < 16:
            raise ValueError("grid_size must be at least 16")
        object.__setattr__(self, "policies", self._validated_policies())
        object.__setattr__(self, "bidding", self._validated_bidding())
        object.__setattr__(self, "clusters", self._validated_clusters())

    def _validated_policies(self) -> dict:
        """Canonicalise and validate the round-policy spec.

        Structure checks are done here; parameter checks are delegated to
        the policy constructors themselves (every stage of every effective
        per-scheme pipeline is instantiated once and discarded), so a bad
        ``psi0`` or ``defect_fraction`` fails at Scenario construction,
        not rounds later inside a run.
        """
        if not isinstance(self.policies, Mapping):
            raise TypeError("policies must be a spec mapping")
        spec = {str(k): _detuple(v) for k, v in self.policies.items()}
        unknown = sorted(set(spec) - set(_POLICY_SPEC_KEYS))
        if unknown:
            raise ValueError(
                f"unknown policies keys {unknown}; allowed: {list(_POLICY_SPEC_KEYS)}"
            )
        for stage in PIPELINE_STAGES:
            if stage in spec and not isinstance(spec[stage], Mapping):
                raise TypeError(
                    f"policies[{stage!r}] must be a parameter mapping; "
                    f"got {type(spec[stage]).__name__}"
                )
        per_scheme = spec.get("per_scheme", {})
        if not isinstance(per_scheme, Mapping):
            raise TypeError("policies['per_scheme'] must map scheme names to specs")
        for scheme, overrides in per_scheme.items():
            if scheme not in SCHEME_NAMES:
                raise ValueError(
                    f"per_scheme policies name unknown scheme {scheme!r}; "
                    f"choose from {SCHEME_NAMES}"
                )
            if not isinstance(overrides, Mapping):
                raise TypeError(
                    f"per_scheme policies for {scheme!r} must be a mapping"
                )
            bad = sorted(set(map(str, overrides)) - set(PIPELINE_STAGES))
            if bad:
                raise ValueError(
                    f"per_scheme policies for {scheme!r} use unknown stages "
                    f"{bad}; choose from {list(PIPELINE_STAGES)} "
                    "(a null stage disables the base policy)"
                )
        canonical = _jsonish(spec)
        probe = Scenario._merge_policies  # staticmethod, usable pre-freeze
        for scheme in sorted(set(self.schemes) | set(map(str, per_scheme))):
            merged = probe(canonical, scheme)
            build_policy_pipeline(merged)
            if merged.get("guidance") is not None:
                self._check_guidance_steers_scoring(merged["guidance"])
        return canonical

    def _check_guidance_steers_scoring(self, spec: Mapping[str, Any]) -> None:
        """Fail fast when a guidance stage cannot do what it promises.

        The retuned exponents must match the scoring rule's
        dimensionality, and — unless the stage opts into record-only mode
        with ``apply: false`` — the rule must actually interpret weights
        (additive / cobb_douglas); a guidance experiment against the
        default multiplicative rule would otherwise run as a silent no-op.
        """
        rule = SCORING_RULES.create(self.scoring)
        target = spec.get("target_mix", ())
        if len(target) != rule.n_dimensions:
            raise ValueError(
                f"guidance target_mix has {len(target)} dimensions but the "
                f"{self.scoring.get('name')!r} scoring rule scores "
                f"{rule.n_dimensions}"
            )
        if spec.get("apply", True) and not alphas_applicable(rule):
            raise ValueError(
                f"guidance cannot steer the {self.scoring.get('name')!r} "
                "scoring rule (its value ignores per-dimension weights); "
                "use a weight-interpreting scoring spec ('additive', "
                "'cobb_douglas', 'perfect_complementary'), or set "
                '"apply": false for a record-only guidance experiment'
            )

    @staticmethod
    def _merge_policies(spec: Mapping[str, Any], scheme: str) -> dict:
        base = {k: v for k, v in spec.items() if k != "per_scheme"}
        overrides = spec.get("per_scheme", {}).get(scheme, {})
        return {**base, **{str(k): v for k, v in overrides.items()}}

    def policies_for(self, scheme: str) -> dict:
        """The effective ``{stage: params}`` pipeline spec for one scheme.

        Per-scheme overrides win over the base stages; a ``null`` override
        disables the base stage for that scheme.  The result feeds
        :func:`repro.core.policies.build_policy_pipeline` (a copy — safe
        to mutate).
        """
        return copy.deepcopy(self._merge_policies(self.policies, scheme))

    def _validated_bidding(self) -> dict:
        """Canonicalise and validate the strategic-bidder spec.

        Mirrors :meth:`_validated_policies`: structure checks here,
        parameter checks delegated to the policy constructors (every mix
        entry is probe-instantiated through ``BID_POLICIES.create`` and
        discarded), so a bad ``markup`` fails at Scenario construction.
        """
        if not isinstance(self.bidding, Mapping):
            raise TypeError("bidding must be a spec mapping")
        spec = {str(k): _detuple(v) for k, v in self.bidding.items()}
        unknown = sorted(set(spec) - set(_BIDDING_SPEC_KEYS))
        if unknown:
            raise ValueError(
                f"unknown bidding keys {unknown}; allowed: {list(_BIDDING_SPEC_KEYS)}"
            )
        if "mix" in spec:
            self._check_bidding_mix(spec["mix"], where="bidding['mix']")
        per_scheme = spec.get("per_scheme", {})
        if not isinstance(per_scheme, Mapping):
            raise TypeError("bidding['per_scheme'] must map scheme names to specs")
        for scheme, override in per_scheme.items():
            if scheme not in SCHEME_NAMES:
                raise ValueError(
                    f"per_scheme bidding names unknown scheme {scheme!r}; "
                    f"choose from {SCHEME_NAMES}"
                )
            if override is None:
                continue  # null reverts the scheme to all-truthful
            if not isinstance(override, Mapping) or set(map(str, override)) - {"mix"}:
                raise TypeError(
                    f"per_scheme bidding for {scheme!r} must be null or a "
                    '{"mix": [...]} mapping'
                )
            self._check_bidding_mix(
                override.get("mix", []),
                where=f"bidding per_scheme[{scheme!r}]['mix']",
            )
        return _jsonish(spec)

    @staticmethod
    def _check_bidding_mix(mix: Any, where: str) -> None:
        if not isinstance(mix, list):
            raise TypeError(f"{where} must be a list of policy entries")
        total = 0.0
        labels: set[str] = set()
        for entry in mix:
            if not isinstance(entry, Mapping):
                raise TypeError(f"{where} entries must be mappings")
            entry = {str(k): v for k, v in entry.items()}
            name = entry.get("name")
            if not isinstance(name, str) or name not in BID_POLICIES:
                raise ValueError(
                    f"{where} entry names unknown bid policy {name!r}; "
                    f"choose from {list(BID_POLICIES.names())}"
                )
            fraction = entry.get("fraction")
            try:
                fraction = float(fraction)
            except (TypeError, ValueError):
                raise ValueError(
                    f"{where} entry for {name!r} needs a numeric 'fraction'"
                ) from None
            if not (0.0 < fraction <= 1.0):
                raise ValueError(
                    f"{where} fraction for {name!r} must lie in (0, 1]"
                )
            total += fraction
            label = entry.get("label")
            label = name if label is None else str(label)
            if label == "truthful" and name != "truthful":
                raise ValueError(
                    f"{where} label 'truthful' is reserved for the "
                    "untouched remainder group"
                )
            if label in labels:
                raise ValueError(f"{where} has duplicate label {label!r}")
            labels.add(label)
            params = {
                k: v for k, v in entry.items() if k not in ("fraction", "label")
            }
            BID_POLICIES.create(params)  # probe: bad params fail here
        if total > 1.0 + 1e-9:
            raise ValueError(f"{where} fractions sum to {total}; must be <= 1")

    def bidding_for(self, scheme: str) -> list[dict]:
        """The effective strategic mix for one scheme (a copy).

        A ``per_scheme`` entry replaces the base mix wholesale (``null``
        reverts the scheme to all-truthful); the result feeds
        :func:`repro.strategic.policies.build_bid_policies`.
        """
        per_scheme = self.bidding.get("per_scheme", {})
        if scheme in per_scheme:
            override = per_scheme[scheme]
            mix = [] if override is None else override.get("mix", [])
        else:
            mix = self.bidding.get("mix", [])
        return copy.deepcopy(mix)

    def _validated_clusters(self) -> dict:
        """Canonicalise and validate the two-tier sharding spec.

        Mirrors the ``execution`` canonicalisation: `count` is required,
        everything else is defaulted *explicitly* here so the spec
        round-trips through JSON with no implicit state.  The spec is
        rejected outright on flat variants, and the hierarchical variant
        is rejected without it — the coupling is two-way so a stray
        ``clusters`` key can never silently change what a run means.
        """
        if not isinstance(self.clusters, Mapping):
            raise TypeError("clusters must be a spec mapping")
        spec = {str(k): _detuple(v) for k, v in self.clusters.items()}
        if self.variant != "hierarchical":
            if spec:
                raise ValueError(
                    "the clusters spec only applies to variant='hierarchical' "
                    f"(got variant={self.variant!r})"
                )
            return {}
        # -- hierarchical cross-field constraints --------------------------
        bad_schemes = sorted(set(self.schemes) - set(_HIERARCHICAL_SCHEMES))
        if bad_schemes:
            raise ValueError(
                f"variant='hierarchical' cannot run schemes {bad_schemes}; "
                f"choose from {_HIERARCHICAL_SCHEMES}"
            )
        if self.payment_rule != "first_score":
            raise ValueError(
                "variant='hierarchical' requires payment_rule='first_score' "
                "(second-score pricing needs the best rejected bid, which "
                "the top-K local winner determination does not rank)"
            )
        if self.bidding:
            raise ValueError(
                "variant='hierarchical' does not support a bidding spec: "
                "the sharded population bids through the vectorised "
                "equilibrium path, not per-agent policies"
            )
        if self.policies:
            raise ValueError(
                "variant='hierarchical' does not support round policies: "
                "the two-tier mechanism records its own cluster_round "
                "actions instead of running the per-agent pipeline"
            )
        unknown = sorted(set(spec) - set(_CLUSTERS_KEYS))
        if unknown:
            raise ValueError(
                f"unknown clusters keys {unknown}; allowed: {list(_CLUSTERS_KEYS)}"
            )
        if "count" not in spec:
            raise ValueError("variant='hierarchical' needs clusters={'count': C, ...}")
        count = int(spec["count"])
        if not (1 <= count <= self.n_clients):
            raise ValueError("clusters count must satisfy 1 <= count <= n_clients")
        k_clusters = spec.get("k_clusters")
        k_clusters = max(1, count // 2) if k_clusters is None else int(k_clusters)
        if not (1 <= k_clusters <= count):
            raise ValueError("clusters k_clusters must satisfy 1 <= k_clusters <= count")
        k_local = spec.get("k_local")
        if k_local is None:
            # Default so the selected clusters contribute ~k_winners
            # trainers to the global round.
            k_local = max(1, -(-self.k_winners // k_clusters))
        k_local = int(k_local)
        if k_local < 1:
            raise ValueError("clusters k_local must be >= 1")
        size_dist = str(spec.get("size_dist", "uniform"))
        if size_dist not in _CLUSTER_SIZE_DISTS:
            raise ValueError(
                f"unknown clusters size_dist {size_dist!r}; "
                f"choose from {_CLUSTER_SIZE_DISTS}"
            )
        theta_skew = float(spec.get("theta_skew", 0.0))
        capacity_skew = float(spec.get("capacity_skew", 0.0))
        if theta_skew < 0.0 or capacity_skew < 0.0:
            raise ValueError("clusters theta_skew/capacity_skew must be >= 0")
        executor = str(spec.get("executor", "serial"))
        if executor not in EXECUTORS or executor == "distributed":
            choices = sorted(set(EXECUTORS.names()) - {"distributed"})
            raise ValueError(
                f"clusters executor {executor!r} must be an in-round pool, "
                f"one of {choices} (the 'distributed' backend schedules "
                "whole cells, not intra-round cluster auctions)"
            )
        max_workers = spec.get("max_workers")
        if max_workers is not None:
            max_workers = int(max_workers)
            if max_workers < 1:
                raise ValueError("clusters max_workers must be >= 1")
        fl_pool = spec.get("fl_pool")
        fl_pool = min(self.n_clients, DEFAULT_FL_POOL) if fl_pool is None else int(fl_pool)
        if fl_pool < 1:
            raise ValueError("clusters fl_pool must be >= 1")
        return {
            "count": count,
            "k_clusters": k_clusters,
            "k_local": k_local,
            "size_dist": size_dist,
            "theta_skew": theta_skew,
            "capacity_skew": capacity_skew,
            "assignment_seed": int(spec.get("assignment_seed", 0)),
            "executor": executor,
            "max_workers": max_workers,
            "fl_pool": min(fl_pool, self.n_clients),
        }

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_(self, **changes: Any) -> "Scenario":
        """A modified copy (``dataclasses.replace`` with a shorter name)."""
        return replace(self, **changes)

    def with_overrides(self, pairs: Mapping[str, str] | list[str]) -> "Scenario":
        """Apply CLI-style ``key=value`` overrides (values parsed as JSON
        first, then as comma-separated lists, then as bare strings).

        Dotted keys reach inside the dict-valued spec fields —
        ``scoring.scale=30``, ``execution.max_workers=4``,
        ``policies.selection.psi0=0.9`` — creating intermediate mappings
        as needed.  Unknown keys (top-level or dotted roots) fail fast
        with the list of valid override paths rather than leaking an
        opaque constructor error.
        """
        if not isinstance(pairs, Mapping):
            parsed: dict[str, str] = {}
            for item in pairs:
                key, sep, value = str(item).partition("=")
                if not sep:
                    raise ValueError(f"override {item!r} is not KEY=VALUE")
                parsed[key.strip()] = value
            pairs = parsed
        known = {f.name for f in fields(self)}
        changes: dict[str, Any] = {}
        for key, raw in pairs.items():
            root, dot, rest = key.partition(".")
            if root not in known:
                raise ValueError(
                    f"unknown scenario override {key!r}; valid paths are the "
                    f"scenario fields {sorted(known)} and dotted spec keys "
                    f"inside {list(_DICT_FIELDS)} (e.g. 'scoring.scale', "
                    "'execution.max_workers', 'policies.selection.psi0')"
                )
            if not dot:
                changes[key] = _parse_override(raw)
                continue
            if root not in _DICT_FIELDS:
                raise ValueError(
                    f"scenario field {root!r} does not support dotted "
                    f"overrides like {key!r}; only the spec mappings "
                    f"{list(_DICT_FIELDS)} do"
                )
            target = changes.get(root)
            if not isinstance(target, dict):
                target = copy.deepcopy(dict(getattr(self, root)))
                changes[root] = target
            node = target
            parts = rest.split(".")
            for part in parts[:-1]:
                child = node.get(part)
                if not isinstance(child, dict):
                    child = {}
                    node[part] = child
                node = child
            node[parts[-1]] = _parse_override(raw)
        return self.with_(**changes)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A plain JSON-able dict (tuples become lists)."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in ("bidding", "clusters") and not value:
                # All-truthful / flat is the implicit default; omitting
                # the empty spec keeps pre-existing scenario hashes (and
                # store manifests) intact.
                continue
            if isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, dict):
                # Spec values are already JSON-canonical (__post_init__);
                # deep-copy so callers cannot mutate the frozen scenario
                # through nested specs (policies nests per-scheme dicts).
                value = copy.deepcopy(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown scenario fields {unknown}")
        kwargs = dict(data)
        for key in _TUPLE_FIELDS:
            if key in kwargs and kwargs[key] is not None:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Bridges to the legacy config surface
    # ------------------------------------------------------------------
    @classmethod
    def from_preset(
        cls,
        scale: str,
        dataset: str | None = None,
        schemes: tuple[str, ...] | None = None,
        seeds: tuple[int, ...] = (0,),
        **overrides: Any,
    ) -> "Scenario":
        """A named preset scenario.

        ``smoke``/``bench``/``paper`` bridge the legacy scale presets over
        ``dataset`` (default ``mnist_o``); ``cluster_cifar10`` is the
        Section V-C testbed — it trains CIFAR-10 and its default plan
        compares FMore vs RandFL as Figs 12-13 do, so asking it for a
        different dataset raises rather than being silently ignored.
        Unknown preset names raise with the full preset list.
        """
        from ..sim.config import PRESET_NAMES, preset

        if scale == "cluster_cifar10":
            from ..sim.cluster_experiment import ClusterConfig

            if dataset not in (None, "cifar10"):
                raise ValueError(
                    f"preset 'cluster_cifar10' trains cifar10, not {dataset!r}"
                )
            scenario = cls.from_cluster_config(
                ClusterConfig(),
                schemes=("FMore", "RandFL") if schemes is None else schemes,
                seeds=seeds,
            )
        elif scale in PRESET_NAMES:
            scenario = cls.from_config(
                preset(scale, dataset if dataset is not None else "mnist_o"),
                schemes=("FMore", "RandFL", "FixFL") if schemes is None else schemes,
                seeds=seeds,
            )
        else:
            raise ValueError(
                f"unknown preset {scale!r}; "
                f"choose from {[*PRESET_NAMES, 'cluster_cifar10']}"
            )
        return scenario.with_(**overrides) if overrides else scenario

    @classmethod
    def from_cluster_config(
        cls,
        cfg,
        schemes: tuple[str, ...] = ("FMore", "RandFL"),
        seeds: tuple[int, ...] = (0,),
    ) -> "Scenario":
        """Lift a :class:`~repro.sim.cluster_experiment.ClusterConfig`.

        The resulting ``variant="cluster"`` scenario reproduces the legacy
        ``run_cluster_comparison`` assembly exactly (same named seed
        streams, same additive 3-D game, same ``quadrature`` payment
        backend the hand-built solver defaulted to), so the engine path is
        bitwise-compatible with the historical testbed runs.
        """
        return cls(
            name=cfg.name,
            dataset=cfg.dataset,
            variant="cluster",
            n_clients=cfg.n_nodes,
            k_winners=cfg.k_winners,
            test_per_class=cfg.test_per_class,
            size_range=cfg.size_range,
            min_classes=cfg.min_classes,
            max_classes=cfg.max_classes,
            availability_min_fraction=cfg.availability_min_fraction,
            theta_jitter=0.0,
            data_seed=cfg.data_seed,
            n_rounds=cfg.n_rounds,
            local_epochs=cfg.local_epochs,
            batch_size=cfg.batch_size,
            lr=cfg.lr,
            model_width=cfg.model_width,
            scoring={"name": "additive", "weights": list(cfg.score_weights)},
            cost={"name": "linear", "betas": list(cfg.cost_betas)},
            theta={"name": "uniform", "lo": cfg.theta_lo, "hi": cfg.theta_hi},
            payment_method="quadrature",
            grid_size=cfg.grid_size,
            core_choices=cfg.core_choices,
            bandwidth_range_mbps=cfg.bandwidth_range_mbps,
            schemes=tuple(schemes),
            seeds=tuple(seeds),
        )

    @classmethod
    def from_config(
        cls,
        cfg,
        schemes: tuple[str, ...] = ("FMore", "RandFL", "FixFL"),
        seeds: tuple[int, ...] = (0,),
    ) -> "Scenario":
        """Lift an :class:`~repro.sim.config.ExperimentConfig` to a Scenario."""
        ac = cfg.auction
        return cls(
            name=cfg.name,
            dataset=cfg.dataset,
            n_clients=cfg.n_clients,
            k_winners=cfg.k_winners,
            test_per_class=cfg.test_per_class,
            size_range=cfg.size_range,
            min_classes=cfg.min_classes,
            max_classes=cfg.max_classes,
            availability_min_fraction=cfg.availability_min_fraction,
            theta_jitter=cfg.theta_jitter,
            data_seed=cfg.data_seed,
            n_rounds=cfg.n_rounds,
            local_epochs=cfg.local_epochs,
            batch_size=cfg.batch_size,
            max_batches_per_round=cfg.max_batches_per_round,
            lr=cfg.lr,
            model_width=cfg.model_width,
            image_size=cfg.image_size,
            scoring={"name": "multiplicative", "n_dimensions": 2, "scale": ac.score_scale},
            cost={"name": "linear", "betas": list(ac.cost_betas)},
            theta={"name": "uniform", "lo": ac.theta_lo, "hi": ac.theta_hi},
            payment_rule=ac.payment_rule,
            win_model=ac.win_model,
            payment_method=ac.payment_method,
            psi=ac.psi,
            grid_size=ac.grid_size,
            schemes=tuple(schemes),
            seeds=tuple(seeds),
        )

    def to_config(self):
        """Project back to an :class:`~repro.sim.config.ExperimentConfig`.

        Only the paper's canonical component families (multiplicative
        score, linear cost, uniform types) fit the legacy config; other
        registry specs raise — run those through the engine directly.
        """
        from ..sim.config import AuctionConfig, ExperimentConfig

        if self.variant != "simulation":
            raise ValueError(
                f"cannot express variant {self.variant!r} as an "
                "ExperimentConfig; use FMoreEngine"
            )
        for spec_name, expected in (("scoring", "multiplicative"), ("cost", "linear"), ("theta", "uniform")):
            spec = getattr(self, spec_name)
            if spec.get("name") != expected:
                raise ValueError(
                    f"cannot express {spec_name} spec {spec!r} as an "
                    f"ExperimentConfig (needs {expected!r}); use FMoreEngine"
                )
        auction = AuctionConfig(
            theta_lo=float(self.theta["lo"]),
            theta_hi=float(self.theta["hi"]),
            score_scale=float(self.scoring.get("scale", 25.0)),
            cost_betas=tuple(float(b) for b in self.cost["betas"]),
            payment_rule=self.payment_rule,
            win_model=self.win_model,
            payment_method=self.payment_method,
            psi=self.psi,
            grid_size=self.grid_size,
        )
        return ExperimentConfig(
            name=self.name,
            dataset=self.dataset,
            n_clients=self.n_clients,
            k_winners=self.k_winners,
            n_rounds=self.n_rounds,
            local_epochs=self.local_epochs,
            batch_size=self.batch_size,
            max_batches_per_round=self.max_batches_per_round,
            lr=self.lr,
            model_width=self.model_width,
            image_size=self.image_size,
            test_per_class=self.test_per_class,
            size_range=self.size_range,
            min_classes=self.min_classes,
            max_classes=self.max_classes,
            availability_min_fraction=self.availability_min_fraction,
            theta_jitter=self.theta_jitter,
            data_seed=self.data_seed,
            auction=auction,
        )


def _detuple(value: Any) -> Any:
    """Canonicalise spec values: tuples -> lists (JSON equivalence)."""
    if isinstance(value, tuple):
        return [_detuple(v) for v in value]
    if isinstance(value, list):
        return [_detuple(v) for v in value]
    return value


def _jsonish(value: Any) -> Any:
    """Deep JSON-canonical copy: tuples -> lists, mapping keys -> str."""
    if isinstance(value, Mapping):
        return {str(k): _jsonish(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonish(v) for v in value]
    return value


def _parse_override(raw: Any) -> Any:
    """Best-effort parse of a CLI override value."""
    if not isinstance(raw, str):
        return raw
    text = raw.strip()
    try:
        return json.loads(text)
    except (json.JSONDecodeError, ValueError):
        pass
    if "," in text:
        return [_parse_override(part) for part in text.split(",") if part.strip()]
    lowered = text.lower()
    if lowered in ("none", "null"):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    return text
