"""Analytics: equilibrium sweeps (Figs 8-10, Thms 2-3), convergence
summaries, and the empirical IC/IR incentive report."""

from .convergence import (
    HeadlineMetrics,
    SchemeSummary,
    headline_metrics,
    summarize_schemes,
)
from .equilibrium_analysis import (
    ScoreTrackingSelection,
    WinnerStats,
    expected_profit_vs_k,
    expected_profit_vs_n,
    payment_score_sweep_k,
    payment_score_sweep_n,
    score_histogram,
    selection_rank_proportions,
    winner_stats,
)
from .incentive_report import (
    DEFAULT_DEVIATIONS,
    IncentiveReport,
    IncentiveRow,
    run_incentive_sweep,
)
from .theory_report import TheoremCheck, report, verify_all

__all__ = [
    "expected_profit_vs_n",
    "expected_profit_vs_k",
    "WinnerStats",
    "winner_stats",
    "payment_score_sweep_n",
    "payment_score_sweep_k",
    "score_histogram",
    "ScoreTrackingSelection",
    "selection_rank_proportions",
    "SchemeSummary",
    "summarize_schemes",
    "HeadlineMetrics",
    "headline_metrics",
    "TheoremCheck",
    "verify_all",
    "report",
    "DEFAULT_DEVIATIONS",
    "IncentiveRow",
    "IncentiveReport",
    "run_incentive_sweep",
]
