"""Empirical IC/IR report: is truthful bidding actually optimal here?

The paper *proves* incentive compatibility and individual rationality of
the equilibrium strategy (Theorems 1-3); this module measures both on the
running system.  For every registered deviation policy it runs the base
scenario with a small *deviant* fraction of the population bidding that
policy (everyone else truthful), through the experiment store so repeated
sweeps are incremental, and compares the deviants' realized per-node
payoff against a **truthful control run of the same node block** — a
labelled ``truthful`` mix over the identical nodes, seeds, and opponent
behaviour, so the comparison is exactly Theorem 1's unilateral-deviation
thought experiment (comparing against the truthful *remainder* instead
would bias the gap by whatever type draws the deviant block happened to
get):

* **IC gap** — mean deviant payoff minus the same block's mean truthful
  payoff.  A negative (or ~zero) gap on every policy is the empirical
  face of Theorem 1: no unilateral deviation profits.
* **IR floor** — the minimum realized payoff of any *winning* deviant
  bid.  With IR-enforcing policies this stays ≥ 0; policies that bid
  below cost (negative markups, unconstrained external agents) can and
  do go negative — which is the point of measuring it.

The entry points are :func:`run_incentive_sweep` (store-driven sweep →
:class:`IncentiveReport`) and the CLI ``python -m repro report
--incentives [--assert-ic]``; the CI ``incentive-smoke`` job runs a
scaled-down sweep and fails when truthful is not weakly optimal for the
paper's scheme.

Two empirical caveats the sweep surfaces (both reproducible with the
CLI):

* Theorem 1 is a *unilateral*-deviation statement about the Bayesian
  game the solver prices — IC only holds empirically when the simulated
  population matches that model (``theta_jitter=0``,
  ``availability_min_fraction=1``, capacity caps slack at the optimum,
  a small deviating fraction).  Coalitions of deviants, or a type
  distribution the solver never saw, profit happily.
* Under ``win_model="paper"`` (Eq. 9, the published formula — not a
  true probability for ``K >= 3``) the tabulated margin is *below* the
  exact-order-statistic best response, and flat overbidding beats the
  "equilibrium" ask.  With ``win_model="exact"`` truthful is weakly
  optimal against every deviation in the menu; the CI gate pins that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

__all__ = [
    "DEFAULT_DEVIATIONS",
    "IncentiveRow",
    "IncentiveReport",
    "run_incentive_sweep",
]

#: The default deviation menu: one spec per registered non-degenerate
#: policy family, parameterised to *try* to profit (overbid, underbid,
#: adapt).  ``truthful``/``external`` are excluded — the former is the
#: baseline itself, the latter has no autonomous behaviour.
DEFAULT_DEVIATIONS: tuple[dict, ...] = (
    {"name": "fixed_markup", "markup": 0.15},
    {"name": "fixed_markup", "markup": -0.1, "label": "fixed_markup_under"},
    {"name": "random_jitter", "payment_scale": 0.1},
    {"name": "regret_matching"},
    {"name": "adaptive_heuristic"},
)

_IC_TOLERANCE = 1e-9


@dataclass
class IncentiveRow:
    """One ``(scheme, policy)`` cell of the report."""

    scheme: str
    policy: str
    fraction: float
    #: Mean per-node payoff of the deviating block.
    deviant_payoff: float
    #: Mean per-node payoff of the *same* block in the truthful control run.
    truthful_payoff: float
    min_deviant_payoff: float

    @property
    def ic_gap(self) -> float:
        """Deviant minus truthful mean payoff (< 0: deviation loses)."""
        return self.deviant_payoff - self.truthful_payoff

    @property
    def ic_holds(self) -> bool:
        """Truthful weakly optimal against this deviation."""
        return self.ic_gap <= _IC_TOLERANCE

    @property
    def ir_holds(self) -> bool:
        """No winning deviant bid realized a negative payoff."""
        return self.min_deviant_payoff >= -_IC_TOLERANCE


@dataclass
class IncentiveReport:
    """The full sweep: one :class:`IncentiveRow` per ``(scheme, policy)``."""

    scenario_name: str
    fraction: float
    rows: list[IncentiveRow] = field(default_factory=list)

    @property
    def ic_holds(self) -> bool:
        """Truthful weakly optimal against *every* swept deviation."""
        return all(row.ic_holds for row in self.rows)

    def failures(self) -> list[IncentiveRow]:
        return [row for row in self.rows if not row.ic_holds]

    def to_markdown(self) -> str:
        """The report as a GitHub-flavoured markdown table."""
        lines = [
            f"# Incentive report — scenario `{self.scenario_name}`",
            "",
            f"Deviant fraction: {self.fraction:g} of the population; payoffs "
            "are per-node means over all rounds and seeds.  The truthful "
            "column is the *same node block* bidding truthfully (control "
            "run) — the unilateral-deviation comparison of Theorem 1.",
            "",
            "| scheme | policy | deviant payoff | truthful payoff | IC gap | IC | IR |",
            "|---|---|---:|---:|---:|:-:|:-:|",
        ]
        for r in self.rows:
            lines.append(
                f"| {r.scheme} | {r.policy} | {r.deviant_payoff:.6f} "
                f"| {r.truthful_payoff:.6f} | {r.ic_gap:+.6f} "
                f"| {'yes' if r.ic_holds else '**NO**'} "
                f"| {'yes' if r.ir_holds else 'no'} |"
            )
        verdict = (
            "Truthful bidding is weakly payoff-optimal against every swept "
            "deviation (empirical IC holds)."
            if self.ic_holds
            else "**Empirical IC violated** — some deviation out-earned the "
            "truthful group; see the IC column."
        )
        lines += ["", verdict, ""]
        return "\n".join(lines)

    def to_csv(self, path: str | Path | None = None) -> str:
        header = (
            "scheme,policy,fraction,deviant_payoff,truthful_payoff,"
            "ic_gap,ic_holds,ir_holds"
        )
        lines = [header]
        for r in self.rows:
            lines.append(
                f"{r.scheme},{r.policy},{r.fraction:g},{r.deviant_payoff!r},"
                f"{r.truthful_payoff!r},{r.ic_gap!r},{r.ic_holds},{r.ir_holds}"
            )
        text = "\n".join(lines) + "\n"
        if path is not None:
            Path(path).write_text(text)
        return text


def run_incentive_sweep(
    scenario,
    store=None,
    deviations: Sequence[dict] = DEFAULT_DEVIATIONS,
    fraction: float = 0.2,
    engine=None,
    log=None,
    learned_episodes: int = 0,
    learner: str | dict = "q_table",
    learned_seed: int = 0,
) -> IncentiveReport:
    """Sweep deviation policies against ``scenario``; measure IC and IR.

    For each deviation spec and each *auction* scheme of the scenario's
    plan, the base scenario is re-run with ``fraction`` of the population
    assigned the deviation (``label="deviant"``) and the rest truthful.
    The truthful side of the comparison is a **control run** assigning
    the *same* node block a labelled ``truthful`` policy — identical
    bids to the plain hot path, but reported as a group — so IC gaps
    compare the same nodes under the same seeds and the same opponents,
    deviating vs not.  The scenario ``name`` is kept throughout, so every
    variant shares the base run's federations and type draws.  With a
    ``store`` each variant lands as ordinary manifests (repeat sweeps
    are incremental); payoffs come from the ``payoff_deviant_*``
    metrics columns.

    With ``learned_episodes > 0`` the sweep also trains the named
    ``BID_LEARNERS`` entry (:mod:`repro.strategic.learn`) for that many
    episodes per scheme — an *adaptive* adversary optimised against this
    exact population, deployed greedily through the ``learned`` bid
    policy and reported as the ``learned_deviation`` row.  Training is
    seed-deterministic (``learned_seed``); with a ``store`` the trainer
    checkpoints under its pseudo-cell and the policy artifact lands
    under ``<store>/learners/``, so repeat sweeps resume instead of
    retraining and the deviation run's manifests keep their addresses.
    """
    from ..api.engine import FMoreEngine
    from ..api.store import ExperimentStore

    if engine is None:
        engine = FMoreEngine()
    store = ExperimentStore.coerce(store)
    schemes = tuple(
        s for s in scenario.schemes if s in ("FMore", "PsiFMore")
    ) or ("FMore",)
    report = IncentiveReport(scenario_name=scenario.name, fraction=float(fraction))

    # Control: the deviant block bids truthfully (identity shading, same
    # bids as the untouched hot path) but reports as a payoff group.
    control_mix = [
        {"name": "truthful", "fraction": float(fraction), "label": "deviant"}
    ]
    control = scenario.with_(schemes=schemes, bidding={"mix": control_mix})
    if log is not None:
        log(f"running truthful control block over schemes {schemes}")
    control_frame = engine.run(control, store=store).metrics()
    baseline: dict[str, float] = {}
    for scheme in schemes:
        try:
            column = control_frame.filter(scheme=scheme).column(
                "payoff_deviant_mean"
            )
        except KeyError:
            column = []
        vals = [v for v in column if v is not None]
        if not vals:
            raise ValueError(
                f"truthful control block produced no payoff columns for "
                f"scheme {scheme!r} — the fraction rounds to zero nodes?"
            )
        baseline[scheme] = sum(vals) / len(vals)

    for spec in deviations:
        spec = dict(spec)
        label = str(spec.pop("label", spec["name"]))
        mix_entry = {**spec, "fraction": float(fraction), "label": "deviant"}
        variant = scenario.with_(
            schemes=schemes, bidding={"mix": [mix_entry]}
        )
        if log is not None:
            log(f"running deviation {label!r} over schemes {schemes}")
        result = engine.run(variant, store=store)
        frame = result.metrics()
        for scheme in schemes:
            sub = frame.filter(scheme=scheme)
            deviant = [v for v in sub.column("payoff_deviant_mean") if v is not None]
            mins = [v for v in sub.column("payoff_deviant_min") if v is not None]
            if not deviant:
                raise ValueError(
                    f"deviation {label!r} produced no payoff columns for "
                    f"scheme {scheme!r} — the strategic slice never bid"
                )
            report.rows.append(
                IncentiveRow(
                    scheme=scheme,
                    policy=label,
                    fraction=float(fraction),
                    deviant_payoff=sum(deviant) / len(deviant),
                    truthful_payoff=baseline[scheme],
                    min_deviant_payoff=min(mins) if mins else 0.0,
                )
            )

    if learned_episodes:
        _append_learned_rows(
            report,
            scenario,
            schemes,
            baseline,
            store=store,
            engine=engine,
            fraction=float(fraction),
            episodes=int(learned_episodes),
            learner=learner,
            learned_seed=int(learned_seed),
            log=log,
        )
    return report


def _append_learned_rows(
    report: IncentiveReport,
    scenario,
    schemes: Sequence[str],
    baseline: dict[str, float],
    store,
    engine,
    fraction: float,
    episodes: int,
    learner: str | dict,
    learned_seed: int,
    log,
) -> None:
    """Train the adaptive adversary per scheme and measure its deviation.

    The learner trains against the base (all-truthful) population of the
    *same cell* the deviation then runs in (``env_seed`` = the plan's
    first seed), is frozen into a policy artifact, and deployed greedily
    on the deviant block.  Artifacts live under ``<store>/learners/``
    (or a temporary directory for store-less sweeps); the mix entry pins
    the artifact digest, so a changed training outcome changes the
    variant's content address instead of silently reusing stale
    manifests.
    """
    import tempfile

    from ..api.store import scenario_hash
    from ..strategic.learn import BidLearnerTrainer

    env_seed = int(scenario.seeds[0]) if scenario.seeds else 0
    tmp = None
    if store is not None:
        artifact_root = store.root / "learners" / scenario_hash(scenario)
    else:
        tmp = tempfile.TemporaryDirectory()
        artifact_root = Path(tmp.name)
    try:
        for scheme in schemes:
            trainer = BidLearnerTrainer(
                scenario,
                learner,
                scheme=scheme,
                env_seed=env_seed,
                train_seed=learned_seed,
                store=store,
                engine=engine,
            )
            if log is not None:
                log(
                    f"training learned adversary ({trainer.learner.name}, "
                    f"{episodes} episodes) against scheme {scheme!r}"
                )
            trainer.train(episodes, resume=store is not None)
            artifact = artifact_root / (
                f"{scheme}-{trainer.cell_scheme}-seed{learned_seed}.json"
            )
            digest = trainer.save_artifact(artifact)
            mix_entry = {
                "name": "learned",
                "artifact": str(artifact),
                "digest": digest,
                "fraction": fraction,
                "label": "deviant",
            }
            variant = scenario.with_(
                schemes=(scheme,), bidding={"mix": [mix_entry]}
            )
            if log is not None:
                log(f"running deviation 'learned_deviation' over scheme {scheme!r}")
            frame = engine.run(variant, store=store).metrics()
            sub = frame.filter(scheme=scheme)
            deviant = [
                v for v in sub.column("payoff_deviant_mean") if v is not None
            ]
            mins = [
                v for v in sub.column("payoff_deviant_min") if v is not None
            ]
            if not deviant:
                raise ValueError(
                    f"learned deviation produced no payoff columns for "
                    f"scheme {scheme!r} — the strategic slice never bid"
                )
            report.rows.append(
                IncentiveRow(
                    scheme=scheme,
                    policy="learned_deviation",
                    fraction=fraction,
                    deviant_payoff=sum(deviant) / len(deviant),
                    truthful_payoff=baseline[scheme],
                    min_deviant_payoff=min(mins) if mins else 0.0,
                )
            )
    finally:
        if tmp is not None:
            tmp.cleanup()
