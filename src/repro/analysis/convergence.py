"""Convergence summaries: the paper's headline comparisons.

Turns per-scheme :class:`~repro.fl.trainer.TrainingHistory` objects into the
numbers Section V quotes: rounds-to-target-accuracy, percentage round
reduction vs RandFL (paper: 51.3% average), relative accuracy improvement
(paper: +28% for LSTM; +44.9% real-world) and time reduction (38.4%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fl.metrics import (
    accuracy_improvement,
    round_reduction,
    rounds_to_accuracy,
    speedup_percent,
    time_to_accuracy,
)
from ..fl.trainer import TrainingHistory

__all__ = ["SchemeSummary", "summarize_schemes", "headline_metrics", "HeadlineMetrics"]


@dataclass(frozen=True)
class SchemeSummary:
    """One scheme's end-of-run metrics."""

    scheme: str
    final_accuracy: float
    final_loss: float
    rounds_to_target: int | None
    total_payment: float
    total_seconds: float


def summarize_schemes(
    histories: dict[str, TrainingHistory], target_accuracy: float
) -> list[SchemeSummary]:
    """Tabulate every scheme's outcome at a common accuracy target."""
    out: list[SchemeSummary] = []
    for scheme, h in histories.items():
        out.append(
            SchemeSummary(
                scheme=scheme,
                final_accuracy=h.final_accuracy,
                final_loss=h.losses[-1] if h.records else float("nan"),
                rounds_to_target=h.rounds_to(target_accuracy),
                total_payment=h.total_payment,
                total_seconds=h.cumulative_seconds[-1] if h.records else 0.0,
            )
        )
    return out


@dataclass(frozen=True)
class HeadlineMetrics:
    """FMore-vs-RandFL numbers in the paper's units."""

    round_reduction_pct: float | None
    accuracy_improvement_pct: float
    time_reduction_pct: float | None
    fmore_final_accuracy: float
    baseline_final_accuracy: float


def headline_metrics(
    histories: dict[str, TrainingHistory],
    target_accuracy: float,
    scheme: str = "FMore",
    baseline: str = "RandFL",
) -> HeadlineMetrics:
    """Compute the paper's headline quantities from one comparison run."""
    if scheme not in histories or baseline not in histories:
        raise KeyError(f"need both {scheme!r} and {baseline!r} histories")
    h_scheme = histories[scheme]
    h_base = histories[baseline]
    rr = round_reduction(
        rounds_to_accuracy(h_base.accuracies, target_accuracy),
        rounds_to_accuracy(h_scheme.accuracies, target_accuracy),
    )
    tr = None
    if any(r.round_seconds > 0 for r in h_scheme.records):
        tr = speedup_percent(
            time_to_accuracy(h_base.accuracies, h_base.cumulative_seconds, target_accuracy),
            time_to_accuracy(h_scheme.accuracies, h_scheme.cumulative_seconds, target_accuracy),
        )
    return HeadlineMetrics(
        round_reduction_pct=rr,
        accuracy_improvement_pct=accuracy_improvement(
            h_base.final_accuracy, h_scheme.final_accuracy
        ),
        time_reduction_pct=tr,
        fmore_final_accuracy=h_scheme.final_accuracy,
        baseline_final_accuracy=h_base.final_accuracy,
    )
