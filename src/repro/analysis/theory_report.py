"""Programmatic verification of every theoretical result in the paper.

``verify_all(...)`` checks, numerically, on a configurable environment:

* Che Thm 1   — equilibrium quality depends on theta only (not on N, K),
* Che Thm 2   — K=1 payment matches the type-space closed form,
* Prop 1      — K=2 payment matches the N-2-exponent closed form,
* Thm 1       — payment backends (Euler / RK4 / quadrature) agree,
* Thm 2       — expected profit decreasing in N,
* Thm 3       — expected profit increasing in K,
* Prop 2      — identical types: psi does not change win rates,
* Prop 3      — quality choice independent of payment (dominance argument),
* Prop 4      — Cobb-Douglas mix ratio law and budget exhaustion,
* Thm 4       — score-sorted top-K maximises social surplus,
* Thm 5       — under-declared quality never scores better (IC),
* IR          — equilibrium margins are non-negative everywhere.

Each check yields a :class:`TheoremCheck`; ``report(...)`` renders them as
a table.  The test suite asserts every check passes; the
``examples/theory_verification.py`` script prints the report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.auction import MultiDimensionalProcurementAuction
from ..core.bids import Bid
from ..core.costs import QuadraticCost
from ..core.equilibrium import EquilibriumSolver
from ..core.guidance import optimal_quality_mix, quality_ratio
from ..core.properties import check_incentive_compatibility, pareto_gap
from ..core.psi import PsiSelection
from ..core.scoring import AdditiveScore
from ..core.valuation import PrivateValueModel, UniformTheta
from ..sim.reporting import ascii_table

__all__ = ["TheoremCheck", "verify_all", "report"]


@dataclass(frozen=True)
class TheoremCheck:
    """Outcome of one numerical verification."""

    name: str
    passed: bool
    detail: str


def _default_solver(n=12, k=3, grid=257) -> EquilibriumSolver:
    return EquilibriumSolver(
        AdditiveScore([0.5, 0.5]),
        QuadraticCost([1.0, 1.0]),
        PrivateValueModel(UniformTheta(0.1, 1.0), n_nodes=n, k_winners=k),
        [[0.0, 10.0], [0.0, 1.0]],
        grid_size=grid,
    )


def verify_all(seed: int = 0, thetas=(0.15, 0.3, 0.5, 0.7, 0.9)) -> list[TheoremCheck]:
    rng = np.random.default_rng(seed)
    solver = _default_solver()
    checks: list[TheoremCheck] = []

    # Che Theorem 1: quality invariant to (N, K).
    errs = []
    for theta in thetas:
        q_base = solver.optimal_quality(theta)
        for variant in (solver.with_population(n_nodes=40), solver.with_population(k_winners=6)):
            errs.append(float(np.max(np.abs(variant.optimal_quality(theta) - q_base))))
    checks.append(
        TheoremCheck("Che Thm 1: qs(theta) independent of N,K", max(errs) < 1e-12,
                     f"max deviation {max(errs):.2e}")
    )

    # Che Theorem 2 (K=1) and Proposition 1 (K=2): closed-form payments.
    for k, name in ((1, "Che Thm 2 (K=1 closed form)"), (2, "Prop 1 (K=2 closed form)")):
        s = _default_solver(n=10, k=k, grid=513)
        rel = max(
            abs(s.payment(t) - s.payment_che_closed_form(t))
            / max(s.payment_che_closed_form(t), 1e-12)
            for t in thetas
        )
        checks.append(TheoremCheck(name, rel < 5e-3, f"max rel err {rel:.2e}"))

    # Theorem 1: numerical backends agree.
    rel = max(
        abs(solver.payment(t, method="euler") - solver.payment(t, method="quadrature"))
        / max(solver.payment(t, method="quadrature"), 1e-12)
        for t in thetas
    )
    checks.append(TheoremCheck("Thm 1: Euler == quadrature payment", rel < 1e-2,
                               f"max rel err {rel:.2e}"))

    # Theorem 2: profit decreasing in N.
    profits_n = [solver.with_population(n_nodes=n).expected_profit(0.3) for n in (6, 12, 24, 48)]
    mono_n = all(a >= b - 1e-12 for a, b in zip(profits_n, profits_n[1:]))
    checks.append(TheoremCheck("Thm 2: profit decreasing in N", mono_n,
                               f"profits {['%.4f' % p for p in profits_n]}"))

    # Theorem 3: profit increasing in K.
    profits_k = [solver.with_population(k_winners=k).expected_profit(0.5) for k in (1, 3, 6, 10)]
    mono_k = all(b >= a - 1e-12 for a, b in zip(profits_k, profits_k[1:]))
    checks.append(TheoremCheck("Thm 3: profit increasing in K", mono_k,
                               f"profits {['%.4f' % p for p in profits_k]}"))

    # Proposition 2: identical types -> psi-independent win rates (~K/N).
    n, k, trials = 6, 2, 800
    rates = {}
    for psi in (0.4, 1.0):
        counts = np.zeros(n)
        for t in range(trials):
            trial_rng = np.random.default_rng(1000 + t)
            bids = [Bid(i, np.array([1.0, 1.0]), 0.3) for i in range(n)]
            auction = MultiDimensionalProcurementAuction(
                solver.quality_rule, k, selection=PsiSelection(psi)
            )
            for w in auction.run(bids, trial_rng).winner_ids:
                counts[w] += 1
        rates[psi] = counts / trials
    dev = max(float(np.max(np.abs(r - k / n))) for r in rates.values())
    checks.append(TheoremCheck("Prop 2: psi-neutral win rates at identical theta",
                               dev < 0.07, f"max |rate - K/N| = {dev:.3f}"))

    # Proposition 3: joint (q, p) deviations never beat Thm-1 quality choice.
    worst_gap = 0.0
    for theta in thetas:
        u_star = solver.max_score(theta)
        for _ in range(40):
            q_dev = rng.uniform(solver.quality_bounds[:, 0], solver.quality_bounds[:, 1])
            u_dev = solver.quality_rule.value(q_dev) - solver.cost.cost(q_dev, theta)
            worst_gap = max(worst_gap, u_dev - u_star)
    checks.append(TheoremCheck("Prop 3: quality choice maximises s - c", worst_gap < 1e-6,
                               f"max score-surplus gap {worst_gap:.2e}"))

    # Proposition 4: ratio law + budget exhaustion.
    mix = optimal_quality_mix([0.5, 0.3, 0.2], [0.2, 0.3, 0.5], theta=0.5, budget=10.0)
    ratio_err = abs(
        mix.quality[0] / mix.quality[1]
        - quality_ratio(mix.alphas[0], mix.alphas[1], mix.betas[0], mix.betas[1])
    )
    budget_err = abs(0.5 * float(np.dot(mix.betas, mix.quality)) - 10.0)
    checks.append(TheoremCheck("Prop 4: Cobb-Douglas mix ratio law",
                               ratio_err < 1e-9 and budget_err < 1e-9,
                               f"ratio err {ratio_err:.1e}, budget err {budget_err:.1e}"))

    # Theorem 4: Pareto efficiency of score sorting.
    pop_thetas = solver.model.distribution.sample(rng, solver.model.n_nodes)
    bids = [Bid(i, *solver.bid(float(t))) for i, t in enumerate(np.asarray(pop_thetas))]
    auction = MultiDimensionalProcurementAuction(solver.quality_rule, solver.model.k_winners)
    outcome = auction.run(bids, rng)
    gap = pareto_gap(
        [w.quality for w in outcome.winners],
        [float(pop_thetas[w.node_id]) for w in outcome.winners],
        np.asarray(pop_thetas, dtype=float),
        solver.quality_rule,
        solver.cost,
        solver.quality_bounds,
        solver.model.k_winners,
    )
    checks.append(TheoremCheck("Thm 4: Pareto efficiency (surplus gap ~ 0)",
                               abs(gap) < 1e-3, f"surplus gap {gap:.2e}"))

    # Theorem 5: incentive compatibility.
    violation = None
    for theta in thetas:
        violation = violation or check_incentive_compatibility(solver, theta, rng, 64)
    checks.append(TheoremCheck("Thm 5: incentive compatibility", violation is None,
                               "no profitable under-declaration found"
                               if violation is None else f"violation at theta={violation.theta}"))

    # Individual rationality across the type space.
    margins = [solver.margin(float(t)) for t in np.linspace(0.1, 1.0, 25)]
    checks.append(TheoremCheck("IR: equilibrium margin >= 0 on support",
                               min(margins) >= -1e-9, f"min margin {min(margins):.2e}"))
    return checks


def report(checks: list[TheoremCheck]) -> str:
    """Render verification results as a table."""
    rows = [(c.name, "PASS" if c.passed else "FAIL", c.detail) for c in checks]
    return ascii_table(["result", "status", "detail"], rows,
                       title="theoretical results, verified numerically")
