"""Equilibrium analytics behind Figs 8-10 and Theorems 2-3.

* Theorem 2: a node's expected profit decreases in the population size N.
* Theorem 3: it increases in the number of winners K.
* Fig 9b / 10b: the average winner payment ``p`` and winner score as
  functions of N and K (Monte-Carlo over type draws at equilibrium).
* Fig 8: distribution of the equilibrium scores of the nodes each scheme
  ends up selecting (FMore picks the top of the distribution, RandFL
  samples it uniformly, FixFL freezes one draw).

The sweeps reuse one solver's quality tables via
:meth:`~repro.core.equilibrium.EquilibriumSolver.with_population`, so a
full N-sweep costs one table build plus cheap kernel re-evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.equilibrium import EquilibriumSolver
from ..fl.selection import SelectionResult, SelectionStrategy
from ..fl.trainer import TrainingHistory

__all__ = [
    "expected_profit_vs_n",
    "expected_profit_vs_k",
    "WinnerStats",
    "winner_stats",
    "payment_score_sweep_n",
    "payment_score_sweep_k",
    "score_histogram",
    "ScoreTrackingSelection",
    "selection_rank_proportions",
]


def expected_profit_vs_n(
    solver: EquilibriumSolver, theta: float, n_values: Sequence[int]
) -> list[float]:
    """Equilibrium expected profit of a type-``theta`` node for each N."""
    out: list[float] = []
    for n in n_values:
        s = solver.with_population(n_nodes=int(n))
        out.append(s.expected_profit(theta))
    return out


def expected_profit_vs_k(
    solver: EquilibriumSolver, theta: float, k_values: Sequence[int]
) -> list[float]:
    """Equilibrium expected profit of a type-``theta`` node for each K."""
    out: list[float] = []
    for k in k_values:
        s = solver.with_population(k_winners=int(k))
        out.append(s.expected_profit(theta))
    return out


@dataclass(frozen=True)
class WinnerStats:
    """Average over draws of the winners' asked payment and score."""

    mean_payment: float
    mean_score: float


def winner_stats(
    solver: EquilibriumSolver,
    rng: np.random.Generator,
    n_draws: int = 200,
) -> WinnerStats:
    """Monte-Carlo winner payment/score for the solver's (N, K).

    Each draw samples N types from the prior, prices every node's
    equilibrium bid, sorts by score and averages the top-K payments and
    scores — the quantities Figs 9b and 10b plot.
    """
    n = solver.model.n_nodes
    k = solver.model.k_winners
    payments_acc = 0.0
    scores_acc = 0.0
    for _ in range(n_draws):
        thetas = np.asarray(solver.model.distribution.sample(rng, n), dtype=float)
        payments = np.empty(n)
        scores = np.empty(n)
        for i, theta in enumerate(thetas):
            u = solver.max_score(float(theta))
            margin = solver.margin_at_score(u)
            q = solver.optimal_quality(float(theta))
            payments[i] = solver.cost.cost(q, float(theta)) + margin
            scores[i] = u - margin
        top = np.argsort(scores)[::-1][:k]
        payments_acc += float(payments[top].mean())
        scores_acc += float(scores[top].mean())
    return WinnerStats(payments_acc / n_draws, scores_acc / n_draws)


def payment_score_sweep_n(
    solver: EquilibriumSolver,
    n_values: Sequence[int],
    rng: np.random.Generator,
    n_draws: int = 200,
) -> list[tuple[int, WinnerStats]]:
    """Winner payment & score as N varies (Fig 9b)."""
    return [
        (int(n), winner_stats(solver.with_population(n_nodes=int(n)), rng, n_draws))
        for n in n_values
    ]


def payment_score_sweep_k(
    solver: EquilibriumSolver,
    k_values: Sequence[int],
    rng: np.random.Generator,
    n_draws: int = 200,
) -> list[tuple[int, WinnerStats]]:
    """Winner payment & score as K varies (Fig 10b)."""
    return [
        (int(k), winner_stats(solver.with_population(k_winners=int(k)), rng, n_draws))
        for k in k_values
    ]


def score_histogram(
    scores: Sequence[float], bins: int = 10, value_range: tuple[float, float] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram as (bin edges, proportion-in-bin %) — Fig 8's y axis."""
    arr = np.asarray(list(scores), dtype=float)
    if arr.size == 0:
        edges = np.linspace(0.0, 1.0, bins + 1)
        return edges, np.zeros(bins)
    counts, edges = np.histogram(arr, bins=bins, range=value_range)
    return edges, 100.0 * counts / arr.size


class ScoreTrackingSelection(SelectionStrategy):
    """Wrap a non-auction scheme to record hypothetical equilibrium scores.

    RandFL and FixFL never collect bids, but Fig 8 compares the equilibrium
    score of the nodes *they would have selected* against FMore's winners.
    This decorator asks every agent for its bid each round, scores it, then
    delegates the actual selection to the wrapped strategy.
    """

    def __init__(self, base: SelectionStrategy, agents, auction):
        self.base = base
        self.agents = list(agents)
        self.auction = auction
        self.name = base.name
        self.tracked_scores: list[dict[int, float]] = []
        self.tracked_all_scores: list[list[float]] = []

    def select(self, round_index: int, rng: np.random.Generator) -> SelectionResult:
        scores: dict[int, float] = {}
        for agent in self.agents:
            bid = agent.make_bid(round_index, rng)
            if bid is not None:
                scores[agent.node_id] = self.auction.score_bid(bid)
        result = self.base.select(round_index, rng)
        picked = {
            wid: scores[wid] for wid in result.winner_ids if wid in scores
        }
        self.tracked_scores.append(picked)
        self.tracked_all_scores.append(list(scores.values()))
        result.scores = picked
        return result


def selection_rank_proportions(
    history: TrainingHistory, rank_cutoffs: Sequence[int] = (10, 20, 30)
) -> dict[int, float]:
    """Mean number of winners per round ranked inside each cutoff (Fig 11b).

    For psi-FMore, small psi lets low-rank nodes win; the paper reports how
    many selected nodes fall within the top-10/20/30 scores as psi varies.
    """
    out: dict[int, float] = {}
    rounds = [r for r in history.records if r.winner_ranks]
    if not rounds:
        return {int(c): 0.0 for c in rank_cutoffs}
    for cutoff in rank_cutoffs:
        per_round = [
            sum(1 for rank in r.winner_ranks.values() if rank < cutoff)
            for r in rounds
        ]
        out[int(cutoff)] = float(np.mean(per_round))
    return out
