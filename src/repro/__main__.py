"""Command-line entry point: reproduce figures without pytest.

Usage::

    python -m repro list                 # what can be reproduced
    python -m repro theory               # verify all theorems (Section IV)
    python -m repro compare mnist_o      # Fig 4-7 style comparison
    python -m repro compare mnist_o --schemes FMore,PsiFMore,RandFL
    python -m repro cluster              # Fig 12-13 style cluster run
    python -m repro sweep-n              # Fig 9b payment/score vs N
    python -m repro sweep-k              # Fig 10b payment/score vs K
    python -m repro run --scenario exp.json          # declarative run
    python -m repro run --preset smoke --set seeds=0,1,2 --set n_rounds=5
    python -m repro run --preset bench --set seeds=0,1,2 --parallel 4
    python -m repro run --preset cluster_cifar10     # Fig 12-13 via the engine
    python -m repro scenario --preset bench > exp.json   # emit a spec

    # Durable runs: content-addressed manifests + checkpoint/resume.
    python -m repro run --preset bench --store runs/ --checkpoint-every 5
    python -m repro run --preset bench --store runs/ --resume   # pick up a crash
    python -m repro run --preset bench --store runs/ --set seeds=0,1,2,3,4
    #   ^ completed (scheme, seed) cells are loaded, only new ones compute
    python -m repro report --store runs/             # scheme comparison tables
    python -m repro report --store runs/ --csv metrics.csv   # metrics frame

    # Strategic bidders: empirical IC/IR sweep (repro.strategic).
    python -m repro run --preset smoke \
        --set 'bidding={"mix":[{"name":"fixed_markup","fraction":0.2,"markup":0.1}]}'
    python -m repro report --incentives --preset smoke --store runs/
    python -m repro report --incentives --preset paper --assert-ic  # CI gate
    #   ^ also trains the adaptive adversary (--learned-episodes, default 8)
    #     and gates the resulting "learned_deviation" row

    # Learned bidders: train an RL policy over the auction gym
    # (repro.strategic.learn), checkpointed through the store.
    python -m repro train-bidder --preset smoke --store runs/ \
        --learner q_table --episodes 60 --artifact policy.json --curve curve.csv
    python -m repro train-bidder --preset smoke --store runs/ --resume \
        --episodes 120                      # continue bitwise from the store
    python -m repro train-bidder --preset smoke --eval-episodes 4 \
        --assert-improves                   # exit 1 unless it beats the jitter baseline
    python -m repro run --preset smoke \
        --set 'bidding={"mix":[{"name":"learned","artifact":"policy.json","fraction":0.2}]}'

    # Distributed sweeps: cells fan out over a shared store (docs/deployment.md).
    python -m repro run --preset bench --set seeds=0,1,2,3 \
        --executor distributed --parallel 4 --store runs/   # spawn 4 local workers
    python -m repro worker --store runs/             # worker on any machine
    python -m repro scenario --preset bench --emit-jobs jobs/  # SLURM-style scripts

    # Event-driven coordination: push-based sweeps over the same store.
    python -m repro coordinator --store runs/ --port 7464    # the service
    python -m repro worker --coordinator http://HOST:7464    # warm worker
    python -m repro run --preset bench --set seeds=0,1,2,3 --store runs/ \
        --executor service --coordinator http://HOST:7464    # submit a sweep

    # Registry reference: every scenario-addressable component spec.
    python -m repro registry                         # plain summary
    python -m repro registry --markdown              # docs/scenario_reference.md

    # Round-policy pipeline: per-round behaviors as --policy stage=spec.
    python -m repro run --preset smoke \
        --policy 'selection={"name":"per_node_psi","schedule":"geometric","psi0":0.9,"decay":0.95}'
    python -m repro run --preset smoke --policy 'churn={"departure_prob":0.1}' \
        --policy 'audit_blacklist={"defect_fraction":0.2,"shortfall":0.5}'
    python -m repro compare mnist_o --schemes FMore,PsiFMore \
        --policy 'PsiFMore.selection={"name":"psi","psi":0.6}'   # per-scheme

The ``run`` command consumes :class:`repro.api.Scenario` JSON files (see
``scenario`` to generate one) and drives the :class:`repro.api.FMoreEngine`
façade; ``--set key=value`` overrides any scenario field.  Multi-seed
sweeps fan their ``(scheme, seed)`` cells out through the scenario's
``execution`` spec: ``--parallel N`` runs them on an N-worker process pool
and ``--executor serial|thread|process`` picks the pool type (results are
bitwise-identical either way).  ``--local-parallel N`` additionally fans
each round's K winner trainings over a within-round thread pool (serial/
thread/process agree bitwise with each other), and ``--nn-backend NAME``
swaps the neural-network hot kernels onto a registered ``NN_BACKENDS``
array backend.  The pytest benches in ``benchmarks/``
remain the canonical reproduction (they record paper-vs-measured blocks);
this CLI is the quick interactive path.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

COMMANDS = (
    "list",
    "theory",
    "compare",
    "cluster",
    "sweep-n",
    "sweep-k",
    "run",
    "scenario",
    "report",
    "train-bidder",
    "worker",
    "coordinator",
    "registry",
)

# Exit status of an intentionally-interrupted `run --stop-after N`: the
# cells are checkpointed, not failed (shells read 3 as "try again with
# --resume"; distinct from argparse's 2 and error's 1).
EXIT_INCOMPLETE = 3

DEFAULT_SCHEMES = ("FMore", "RandFL", "FixFL")


def _parse_schemes(raw: str | None, default: tuple[str, ...] = DEFAULT_SCHEMES):
    from .api import SCHEME_NAMES

    if raw is None:
        return default
    schemes = tuple(s.strip() for s in raw.split(",") if s.strip())
    for s in schemes:
        if s not in SCHEME_NAMES:
            raise SystemExit(f"unknown scheme {s!r}; choose from {SCHEME_NAMES}")
    if not schemes:
        raise SystemExit("--schemes must name at least one scheme")
    return schemes


def _cmd_list() -> int:
    print(__doc__)
    print("datasets for `compare`/`run`: mnist_o, mnist_f, cifar10, hpnews")
    return 0


def _cmd_theory() -> int:
    from .analysis import report, verify_all

    checks = verify_all(seed=0)
    print(report(checks))
    return 0 if all(c.passed for c in checks) else 1


def _policy_overrides(policy_args: list[str]) -> list[str]:
    """Translate ``--policy stage=spec`` items into dotted --set paths.

    A stage key prefixed with a scheme name (``PsiFMore.selection=...``)
    lands under ``policies.per_scheme`` — that is how ``compare`` pits two
    pipelines of the same scheme family against each other in one run.
    """
    from .api import SCHEME_NAMES

    overrides = []
    for item in policy_args:
        key, sep, value = str(item).partition("=")
        if not sep:
            raise SystemExit(f"error: --policy {item!r} is not STAGE=SPEC")
        key = key.strip()
        root = key.split(".", 1)[0]
        path = f"policies.per_scheme.{key}" if root in SCHEME_NAMES else f"policies.{key}"
        overrides.append(f"{path}={value}")
    return overrides


def _cmd_compare(
    dataset: str,
    seed: int,
    rounds: int | None,
    schemes_raw: str | None,
    policy_args: list[str] | None = None,
) -> int:
    from .analysis import summarize_schemes
    from .api import FMoreEngine, Scenario
    from .sim import preset
    from .sim.reporting import ascii_table, series_table

    schemes = _parse_schemes(schemes_raw)
    cfg = preset("bench", dataset)
    if rounds is not None:
        cfg = cfg.with_(n_rounds=rounds)
    scenario = Scenario.from_config(cfg, schemes=schemes, seeds=(seed,))
    if policy_args:
        try:
            scenario = scenario.with_overrides(_policy_overrides(policy_args))
        except (ValueError, TypeError) as exc:
            raise SystemExit(f"error: {exc}")
    results = FMoreEngine().run(scenario).comparison()
    print(
        series_table(
            f"accuracy per round ({dataset})",
            "round",
            list(range(1, cfg.n_rounds + 1)),
            {s: [round(a, 3) for a in h.accuracies] for s, h in results.items()},
        )
    )
    rows = [
        (s.scheme, round(s.final_accuracy, 3), s.rounds_to_target, round(s.total_payment, 3))
        for s in summarize_schemes(results, target_accuracy=0.5)
    ]
    print()
    print(ascii_table(["scheme", "final acc", "rounds to 50%", "payment"], rows))
    return 0


def _load_scenario(args) -> "object":
    import json

    from .api import Scenario

    try:
        if args.scenario is not None:
            scenario = Scenario.from_json(Path(args.scenario).read_text())
        else:
            scenario = Scenario.from_preset(args.preset, args.dataset)
        if args.schemes is not None:
            scenario = scenario.with_(schemes=_parse_schemes(args.schemes))
        if args.rounds is not None:
            scenario = scenario.with_(n_rounds=args.rounds)
        if args.overrides:
            scenario = scenario.with_overrides(args.overrides)
        if args.policies:
            scenario = scenario.with_overrides(_policy_overrides(args.policies))
        store_executors = ("distributed", "service")
        if (
            args.executor is not None
            or args.parallel is not None
            or args.coordinator is not None
        ):
            execution = dict(scenario.execution)
            if args.executor is not None:
                execution["executor"] = args.executor
            if args.coordinator is not None:
                # --coordinator URL implies the service executor.
                if args.executor not in (None, "service"):
                    raise SystemExit(
                        "error: --coordinator only applies to "
                        "--executor service"
                    )
                execution["executor"] = "service"
                execution["coordinator_url"] = args.coordinator
            if args.parallel is not None:
                execution["max_workers"] = args.parallel
                if (
                    args.executor is None
                    and execution["executor"] not in store_executors
                ):
                    execution["executor"] = "process"
            if execution["executor"] not in store_executors:
                # The store-coordination knobs (filled in by
                # canonicalisation) must not survive a switch to a pool
                # executor — Scenario validation rejects them there.
                execution.pop("lease_seconds", None)
                execution.pop("poll_interval", None)
            if execution["executor"] != "service":
                execution.pop("coordinator_url", None)
            scenario = scenario.with_(execution=execution)
        if getattr(args, "local_parallel", None) is not None:
            execution = dict(scenario.execution)
            local_training = dict(execution.get("local_training") or {})
            local_training.setdefault("executor", "thread")
            local_training["max_workers"] = args.local_parallel
            execution["local_training"] = local_training
            scenario = scenario.with_(execution=execution)
    except (ValueError, TypeError, json.JSONDecodeError, OSError) as exc:
        raise SystemExit(f"error: {exc}")
    return scenario


def _cmd_scenario(args) -> int:
    """Emit the (validated) scenario JSON — or batch job scripts — for it."""
    scenario = _load_scenario(args)
    if args.emit_jobs is not None:
        from .api import emit_job_scripts

        written = emit_job_scripts(scenario, args.emit_jobs)
        n_cells = len(scenario.schemes) * len(scenario.seeds)
        print(
            f"wrote {len(written)} file(s) for {n_cells} (scheme, seed) "
            f"cell(s) under {args.emit_jobs}:"
        )
        for path in written:
            print(f"  {path}")
        print(
            "\nsubmit with: STORE=/shared/store sbatch "
            f"{Path(args.emit_jobs) / 'submit_array.sh'}"
        )
        return 0
    print(scenario.to_json())
    return 0


def _cmd_worker(args) -> int:
    """Claim and run queued cells — filesystem polling or coordinator push."""
    from .api import CoordinatorError, StoreMismatchError, run_worker

    if args.store is None and args.coordinator is None:
        raise SystemExit(
            "error: worker needs --store DIR (the shared store) and/or "
            "--coordinator URL (the push service)"
        )
    label = args.worker_id
    try:
        completed = run_worker(
            args.store,
            coordinator=args.coordinator,
            poll_interval=args.poll_interval,
            max_cells=args.max_cells,
            exit_when_idle=args.exit_when_idle,
            worker_id=label,
        )
    except (StoreMismatchError, CoordinatorError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("\nworker interrupted; claimed cells will be re-queued by lease")
        return 1
    print(f"worker{f' {label}' if label else ''}: completed {completed} cell(s)")
    return 0


def _cmd_coordinator(args) -> int:
    """Run the event-driven coordination service until SIGTERM/SIGINT."""
    import asyncio

    from .api import CoordinatorService

    if args.store is None:
        raise SystemExit("error: coordinator needs --store DIR (the shared store)")
    service = CoordinatorService(
        args.store,
        host=args.host,
        port=args.port,
        poll_interval=args.poll_interval,
    )

    async def _serve() -> None:
        task = asyncio.ensure_future(
            service.serve(install_signal_handlers=True)
        )
        while not service.ready.is_set() and not task.done():
            await asyncio.sleep(0.01)  # let serve() bind before announcing
        if service.ready.is_set() and service.error is None:
            print(
                f"coordinator: {service.url} over store {args.store} "
                "(SIGTERM/SIGINT or POST /shutdown to stop)",
                flush=True,
            )
        await task

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    print("coordinator: stopped (queue state persists in the store mirror)")
    return 0


def _cmd_registry(args) -> int:
    """Print the registered-component reference (see docs/scenario_reference.md)."""
    from .api.reference import registry_reference_markdown, registry_summary

    if args.markdown:
        print(registry_reference_markdown(), end="")
    else:
        print(registry_summary())
    return 0


def _cmd_run(args) -> int:
    from .api import FMoreEngine, IncompleteRunError, StoreMismatchError
    from .sim.reporting import ascii_table, series_table

    scenario = _load_scenario(args)
    engine = FMoreEngine()
    try:
        result = engine.run(
            scenario,
            store=args.store,
            force=args.force,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            stop_after=args.stop_after,
        )
    except StoreMismatchError as exc:
        raise SystemExit(f"error: {exc}")
    except IncompleteRunError as exc:
        print(exc)
        return EXIT_INCOMPLETE
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    multi_seed = len(scenario.seeds) > 1
    rounds = list(range(1, scenario.n_rounds + 1))
    if multi_seed:
        stats = result.averaged()
        series = {s: [round(float(a), 3) for a in st["accuracy"].mean] for s, st in stats.items()}
        title = f"mean accuracy per round ({scenario.name}, {len(scenario.seeds)} seeds)"
    else:
        series = {
            s: [round(a, 3) for a in result.history(s).accuracies]
            for s in scenario.schemes
        }
        title = f"accuracy per round ({scenario.name})"
    print(series_table(title, "round", rounds, series))
    rows = []
    for scheme in scenario.schemes:
        finals = [h.final_accuracy for h in result.histories[scheme]]
        payments = [h.total_payment for h in result.histories[scheme]]
        rows.append(
            (scheme, round(float(np.mean(finals)), 4), round(float(np.mean(payments)), 3))
        )
    print()
    print(ascii_table(["scheme", "final acc", "payment"], rows))
    executor = scenario.execution["executor"]
    workers = scenario.execution["max_workers"]
    if executor in ("process", "distributed", "service"):
        # Solver builds happen inside the worker processes (one cache
        # each); the parent engine's counters would misleadingly read 0.
        print(
            f"\nsolver cache: per-worker [{executor} executor"
            + (f", {workers} workers]" if workers else "]")
        )
    else:
        note = "" if executor == "serial" else f" [{executor} executor]"
        print(
            f"\nsolver cache: {engine.cache_misses} build(s), "
            f"{engine.cache_hits} reuse(s) across {len(scenario.seeds)} seed(s)"
            + note
        )
    if args.store is not None:
        from .api import scenario_hash

        print(
            f"store: manifests under {args.store} "
            f"(scenario {scenario_hash(scenario)[:12]}…)"
        )
    return 0


def _cmd_train_bidder(args) -> int:
    """Train a ``BID_LEARNERS`` policy over the auction gym."""
    from .api.store import ExperimentStore, StoreError
    from .strategic.learn import (
        BidLearnerTrainer,
        curve_to_csv,
        evaluate,
        greedy_controller,
        jitter_controller,
    )

    scenario = _load_scenario(args)
    if args.episodes < 0:
        raise SystemExit("error: --episodes must be >= 0")
    store = None
    if args.store is not None:
        try:
            store = ExperimentStore(
                args.store,
                keep_last_n=args.keep_last,
                keep_every_k=args.keep_every,
            )
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
    try:
        trainer = BidLearnerTrainer(
            scenario,
            args.learner,
            scheme=args.train_scheme,
            env_seed=args.seed,
            node_id=args.node_id,
            train_seed=args.train_seed,
            store=store,
            checkpoint_every=args.checkpoint_every,
        )
        resumed_from = trainer.resume() if args.resume else 0
        curve = trainer.train(args.episodes)
    except (StoreError, ValueError, TypeError, KeyError) as exc:
        raise SystemExit(f"error: {exc}")
    played = trainer.episodes_done - resumed_from
    tail = curve[-min(5, len(curve)) :]
    tail_mean = (
        sum(row["payoff"] for row in tail) / len(tail) if tail else 0.0
    )
    # The env resolves the default node on its first reset; a pure-resume
    # run never resets, so fall back to the requested id ("first").
    node = trainer.env.node_id
    if node is None:
        node = trainer.node_id if trainer.node_id is not None else "first"
    print(
        f"trained {trainer.learner.name} on cell ({args.train_scheme}, "
        f"seed {args.seed}, node {node}): "
        f"{played} episode(s) this run, {trainer.episodes_done} total"
        + (f" (resumed at {resumed_from})" if resumed_from else "")
    )
    if curve:
        print(f"mean payoff over the last {len(tail)} episode(s): {tail_mean:.6f}")
    if store is not None:
        print(
            f"store: checkpoints under {args.store} "
            f"(cell {trainer.cell_scheme}-seed{trainer.train_seed}, "
            f"retained episodes {store.checkpoint_rounds(scenario, trainer.cell_scheme, trainer.train_seed)})"
        )
    if args.artifact is not None:
        digest = trainer.save_artifact(args.artifact)
        print(f"wrote policy artifact {args.artifact} (sha256 {digest[:12]}…)")
    if args.curve is not None:
        curve_to_csv(curve, args.curve)
        print(f"wrote {len(curve)} training-curve rows to {args.curve}")
    if args.eval_episodes:
        common = dict(
            scheme=args.train_scheme,
            seed=args.seed,
            node_id=args.node_id,
            episodes=args.eval_episodes,
            engine=trainer.env.engine,
        )
        learned = evaluate(
            scenario, greedy_controller(trainer.learner), **common
        )
        jitter = evaluate(
            scenario, jitter_controller(seed=args.train_seed), **common
        )
        learned_mean = sum(learned) / len(learned)
        jitter_mean = sum(jitter) / len(jitter)
        print(
            f"evaluation over {args.eval_episodes} episode(s): learned "
            f"{learned_mean:.6f} vs random_jitter {jitter_mean:.6f} per episode"
        )
        if args.assert_improves and learned_mean <= jitter_mean:
            print(
                "IMPROVEMENT ASSERTION FAILED: the learned policy did not "
                "out-earn the random_jitter baseline"
            )
            return 1
    return 0


def _cmd_report_incentives(args) -> int:
    """Run the IC/IR deviation sweep and render its table."""
    from .analysis import run_incentive_sweep

    scenario = _load_scenario(args)
    if not (0.0 < args.deviant_fraction < 1.0):
        raise SystemExit("error: --deviant-fraction must lie in (0, 1)")
    if args.learned_episodes < 0:
        raise SystemExit("error: --learned-episodes must be >= 0")
    try:
        report = run_incentive_sweep(
            scenario,
            store=args.store,
            fraction=args.deviant_fraction,
            log=lambda msg: print(f"  {msg}", file=sys.stderr),
            learned_episodes=args.learned_episodes,
            learner=args.learner,
            learned_seed=args.train_seed,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    print(report.to_markdown())
    if args.csv is not None:
        report.to_csv(args.csv)
        print(f"wrote {len(report.rows)} report rows to {args.csv}")
    if args.assert_ic and not report.ic_holds:
        bad = ", ".join(
            f"{r.policy}@{r.scheme} (gap {r.ic_gap:+.6f})"
            for r in report.failures()
        )
        print(f"IC ASSERTION FAILED: deviations out-earned truthful: {bad}")
        return 1
    return 0


def _cmd_report(args) -> int:
    """Render scheme-comparison tables from an experiment store."""
    from .api import RunResult, Scenario, scenario_hash
    from .api.store import ExperimentStore
    from .sim.reporting import ascii_table

    if args.incentives:
        return _cmd_report_incentives(args)
    if args.store is None:
        raise SystemExit("error: report needs --store DIR")
    store = ExperimentStore(args.store)
    stored = store.scenarios()
    if args.scenario is not None:
        try:
            wanted = Scenario.from_json(Path(args.scenario).read_text())
        except (ValueError, OSError) as exc:
            raise SystemExit(f"error: {exc}")
        h = scenario_hash(wanted)
        if h not in stored:
            listing = ", ".join(
                f"{k[:12]}… ({v.get('name', '?')})" for k, v in stored.items()
            ) or "none"
            raise SystemExit(
                f"error: scenario {h[:12]}… ({wanted.name!r}) has no runs in "
                f"{args.store}; stored: {listing}"
            )
        stored = {h: stored[h]}
    if not stored:
        raise SystemExit(f"error: no runs stored under {args.store}")
    if args.csv is not None and len(stored) > 1:
        raise SystemExit(
            "error: --csv needs a single scenario; narrow the report with "
            "--scenario FILE"
        )
    print(f"experiment store: {args.store}")
    for h in stored:
        scenario = store.load_scenario(h)
        cells = [(s, d) for (_, s, d) in store.cells(h)]
        found_schemes = sorted(
            {s for s, _ in cells},
            key=lambda s: (
                scenario.schemes.index(s) if s in scenario.schemes else 99
            ),
        )
        seeds_of = {
            s: sorted(d for sc, d in cells if sc == s) for s in found_schemes
        }
        print(
            f"\nscenario {scenario.name!r} ({h[:12]}…): "
            f"{len(cells)} stored cell(s), {scenario.n_rounds} rounds"
        )
        rows = []
        loaded = {}
        for scheme in found_schemes:
            seeds = seeds_of[scheme]
            histories = [store.load_history(h, scheme, d) for d in seeds]
            loaded[scheme] = dict(zip(seeds, histories))
            finals = [hist.final_accuracy for hist in histories]
            payments = [hist.total_payment for hist in histories]
            mean_curve = np.mean([hist.accuracies for hist in histories], axis=0)
            reached = [
                i + 1 for i, a in enumerate(mean_curve) if a >= args.target
            ]
            bans = [
                sum(
                    1
                    for r in hist.records
                    for a in r.policy_actions
                    if a.kind == "ban"
                )
                for hist in histories
            ]
            rows.append(
                (
                    scheme,
                    len(seeds),
                    round(float(np.mean(finals)), 4),
                    reached[0] if reached else None,
                    round(float(np.mean(payments)), 3),
                    round(float(np.mean(bans)), 2),
                )
            )
        print(
            ascii_table(
                [
                    "scheme",
                    "seeds",
                    "final acc",
                    f"rounds to {args.target:.0%}",
                    "payment",
                    "bans",
                ],
                rows,
            )
        )
        if args.csv is not None:
            # The metrics frame needs a rectangular plan: every scheme must
            # cover the same seed set.
            seed_sets = {frozenset(v) for v in seeds_of.values()}
            if len(seed_sets) != 1:
                raise SystemExit(
                    "error: --csv needs a complete (scheme x seed) grid; "
                    f"stored seeds differ per scheme: {dict(seeds_of)}"
                )
            plan = scenario.with_(
                schemes=tuple(found_schemes),
                seeds=tuple(sorted(seed_sets.pop())),
            )
            frame = RunResult(
                plan,
                {
                    scheme: [loaded[scheme][seed] for seed in plan.seeds]
                    for scheme in plan.schemes
                },
            ).metrics()
            frame.to_csv(args.csv)
            print(f"\nwrote {len(frame)} metric rows to {args.csv}")
    return 0


def _cmd_cluster(seed: int) -> int:
    from .api import FMoreEngine, Scenario
    from .sim.reporting import series_table

    scenario = Scenario.from_preset(
        "cluster_cifar10",
        seeds=(seed,),
        n_rounds=10, size_range=(150, 900), test_per_class=25, model_width=0.18,
    )
    results = FMoreEngine().run(scenario).comparison()
    rounds = list(range(1, scenario.n_rounds + 1))
    print(
        series_table(
            "cluster accuracy per round", "round", rounds,
            {s: [round(a, 3) for a in h.accuracies] for s, h in results.items()},
        )
    )
    print()
    print(
        series_table(
            "cumulative simulated seconds", "round", rounds,
            {s: [round(t, 1) for t in h.cumulative_seconds] for s, h in results.items()},
        )
    )
    return 0


def _cmd_sweep(axis: str, seed: int) -> int:
    from .analysis import payment_score_sweep_k, payment_score_sweep_n
    from .api import Scenario, build_solver
    from .sim.reporting import series_table
    from .sim.rng import rng_from

    solver = build_solver(
        Scenario.from_preset("bench", "mnist_o"), n_clients=100, k_winners=20
    )
    rng = rng_from(seed, f"cli-{axis}")
    if axis == "n":
        rows = payment_score_sweep_n(solver, (50, 80, 110, 140, 170, 200), rng, 120)
        index_name = "N"
    else:
        rows = payment_score_sweep_k(solver, (5, 10, 15, 20, 25, 30, 35), rng, 120)
        index_name = "K"
    print(
        series_table(
            f"winner payment and score vs {index_name}",
            index_name,
            [v for v, _ in rows],
            {
                "payment": [round(ws.mean_payment, 3) for _, ws in rows],
                "score": [round(ws.mean_score, 3) for _, ws in rows],
            },
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument("command", choices=COMMANDS)
    # None = "not given": presets that imply a dataset (cluster_cifar10)
    # reject an explicit conflicting one instead of silently ignoring it.
    parser.add_argument("dataset", nargs="?", default=None)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument(
        "--schemes",
        default=None,
        help="comma-separated scheme names (FMore,RandFL,FixFL,PsiFMore)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        help="Scenario JSON file for `run`/`scenario` (see Scenario.to_json)",
    )
    parser.add_argument(
        "--preset",
        default="bench",
        help="preset used by `run`/`scenario` when no --scenario file is given",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        dest="overrides",
        metavar="KEY=VALUE",
        help="override a scenario field (repeatable), e.g. --set seeds=0,1,2 "
        "or dotted spec paths like --set scoring.scale=30",
    )
    parser.add_argument(
        "--policy",
        action="append",
        default=[],
        dest="policies",
        metavar="STAGE=SPEC",
        help="install a round policy (repeatable), e.g. "
        '--policy \'churn={"departure_prob":0.1}\'; prefix the stage with a '
        "scheme name (PsiFMore.selection=...) for a per-scheme override",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="run the (scheme, seed) cells on an N-worker process pool "
        "(shorthand for an execution spec; results match serial bitwise)",
    )
    parser.add_argument(
        "--executor",
        default=None,
        choices=("serial", "thread", "process", "distributed", "service"),
        help="executor family for `run` (default: the scenario's execution "
        "spec); `distributed` coordinates cells through --store and needs "
        "workers (spawned via --parallel N, or external `repro worker`s); "
        "`service` pushes cells through the event-driven coordinator "
        "(--coordinator URL, or an embedded one when omitted)",
    )
    parser.add_argument(
        "--local-parallel",
        type=int,
        default=None,
        metavar="N",
        help="additionally fan each round's K winner trainings over an "
        "N-worker thread pool (execution.local_training spec; serial, "
        "thread and process pools match each other bitwise, but switching "
        "the spec on changes results versus the legacy sequential "
        "schedule); combine with --set "
        "execution.local_training.executor=process for a process pool",
    )
    parser.add_argument(
        "--nn-backend",
        default=None,
        metavar="NAME",
        help="array backend for the neural-network hot kernels "
        "(NN_BACKENDS registry: 'numpy' is the bitwise reference; 'numba' "
        "needs the optional numba dependency)",
    )
    parser.add_argument(
        "--coordinator",
        default=None,
        metavar="URL",
        help="coordinator base URL (http://host:port): `run` submits the "
        "sweep to it (implies --executor service); `worker` long-polls it "
        "for pushed cells instead of scanning --store",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="with `coordinator`: interface to bind (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="P",
        help="with `coordinator`: TCP port to bind (default 0 = ephemeral, "
        "printed at startup)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="experiment store: `run` writes content-addressed manifests "
        "there and skips (scheme, seed) cells already completed; `report` "
        "reads it",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume checkpointed cells from --store (bitwise-identical to "
        "an uninterrupted run); fails fast if the store belongs to a "
        "different scenario",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="recompute cells even when their manifests exist in --store",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="with --store: checkpoint each in-flight cell every N rounds "
        "(a crash then loses at most N rounds)",
    )
    parser.add_argument(
        "--stop-after",
        type=int,
        default=None,
        metavar="N",
        help="advance each cell at most N rounds this process, checkpoint "
        f"and exit {EXIT_INCOMPLETE} (controlled interruption for "
        "time-sliced jobs; continue with --resume)",
    )
    parser.add_argument(
        "--target",
        type=float,
        default=0.5,
        metavar="ACC",
        help="accuracy threshold for `report`'s rounds-to-target column "
        "(default 0.5)",
    )
    parser.add_argument(
        "--csv",
        default=None,
        metavar="FILE",
        help="with `report`: also write the scenario's per-round metrics "
        "frame (seed-averaged accuracy/time/policy trajectories) as CSV",
    )
    parser.add_argument(
        "--incentives",
        action="store_true",
        help="with `report`: run the strategic-bidder IC/IR sweep over the "
        "scenario (--scenario/--preset) instead of reading stored tables; "
        "--store makes repeat sweeps incremental, --csv exports the rows",
    )
    parser.add_argument(
        "--assert-ic",
        action="store_true",
        help="with `report --incentives`: exit 1 unless truthful bidding is "
        "weakly payoff-optimal against every swept deviation (CI gate)",
    )
    parser.add_argument(
        "--deviant-fraction",
        type=float,
        default=0.2,
        metavar="F",
        help="with `report --incentives`: population fraction assigned each "
        "deviation policy (default 0.2)",
    )
    parser.add_argument(
        "--learner",
        default="q_table",
        choices=("q_table", "pg_mlp"),
        help="with `train-bidder` / `report --incentives`: the BID_LEARNERS "
        "entry to train (default q_table)",
    )
    parser.add_argument(
        "--episodes",
        type=int,
        default=60,
        metavar="E",
        help="with `train-bidder`: total episodes to reach (default 60; "
        "with --resume only the remainder is played)",
    )
    parser.add_argument(
        "--train-seed",
        type=int,
        default=0,
        metavar="S",
        help="with `train-bidder` / `report --incentives`: seed of the "
        "learner's exploration stream (default 0; independent of the env "
        "cell seed --seed)",
    )
    parser.add_argument(
        "--train-scheme",
        default="FMore",
        metavar="SCHEME",
        help="with `train-bidder`: the auction scheme the learner plays "
        "(default FMore)",
    )
    parser.add_argument(
        "--node-id",
        type=int,
        default=None,
        metavar="ID",
        help="with `train-bidder`: the controlled node (default: the "
        "federation's first node)",
    )
    parser.add_argument(
        "--artifact",
        default=None,
        metavar="FILE",
        help="with `train-bidder`: write the trained policy artifact there "
        "(deployable via the `learned` bidding mix entry)",
    )
    parser.add_argument(
        "--curve",
        default=None,
        metavar="FILE",
        help="with `train-bidder`: write the training curve as CSV "
        "(episode,payoff,wins,steps)",
    )
    parser.add_argument(
        "--eval-episodes",
        type=int,
        default=0,
        metavar="E",
        help="with `train-bidder`: evaluate the greedy learned policy and "
        "the random_jitter baseline over E replay episodes each",
    )
    parser.add_argument(
        "--assert-improves",
        action="store_true",
        help="with `train-bidder --eval-episodes`: exit 1 unless the learned "
        "policy's mean payoff beats the random_jitter baseline (CI gate)",
    )
    parser.add_argument(
        "--keep-last",
        type=int,
        default=3,
        metavar="N",
        help="with `train-bidder --store`: checkpoint retention — keep the "
        "last N episode checkpoints (default 3)",
    )
    parser.add_argument(
        "--keep-every",
        type=int,
        default=None,
        metavar="K",
        help="with `train-bidder --store`: additionally retain every K-th "
        "episode checkpoint",
    )
    parser.add_argument(
        "--learned-episodes",
        type=int,
        default=8,
        metavar="E",
        help="with `report --incentives`: train the adaptive adversary for "
        "E episodes per scheme and add the learned_deviation row "
        "(default 8; 0 disables)",
    )
    parser.add_argument(
        "--emit-jobs",
        default=None,
        metavar="DIR",
        help="with `scenario`: write SLURM-style per-cell job scripts plus "
        "an array wrapper under DIR instead of printing the spec "
        "(each script runs one (scheme, seed) cell against $STORE)",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="with `worker`/`coordinator`: idle-scan backoff cap / janitor "
        "tick (default 1.0)",
    )
    parser.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="with `worker`: exit after completing N cells (lifetime bound "
        "for time-sliced batch jobs)",
    )
    parser.add_argument(
        "--exit-when-idle",
        action="store_true",
        help="with `worker`: exit when no cell is claimable instead of "
        "polling for new jobs",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="with `worker`: stable label for this worker's lock files "
        "(default: host-pid-nonce)",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="with `registry`: emit the full markdown reference page "
        "(the committed docs/scenario_reference.md)",
    )
    args = parser.parse_args(argv)

    if args.nn_backend is not None:
        # Process-wide: every Sequential built afterwards routes its hot
        # kernels through the selected NN_BACKENDS entry.
        from .fl.nn.backends import BackendUnavailableError, set_backend

        try:
            set_backend(args.nn_backend)
        except (KeyError, BackendUnavailableError) as exc:
            raise SystemExit(f"error: {exc}")

    if args.command == "list":
        return _cmd_list()
    if args.command == "theory":
        return _cmd_theory()
    if args.command == "compare":
        return _cmd_compare(
            args.dataset or "mnist_o",
            args.seed,
            args.rounds,
            args.schemes,
            policy_args=args.policies,
        )
    if args.command == "cluster":
        return _cmd_cluster(args.seed)
    if args.command == "sweep-n":
        return _cmd_sweep("n", args.seed)
    if args.command == "sweep-k":
        return _cmd_sweep("k", args.seed)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "train-bidder":
        return _cmd_train_bidder(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "coordinator":
        return _cmd_coordinator(args)
    if args.command == "registry":
        return _cmd_registry(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
