"""Command-line entry point: reproduce figures without pytest.

Usage::

    python -m repro list                 # what can be reproduced
    python -m repro theory               # verify all theorems (Section IV)
    python -m repro compare mnist_o      # Fig 4-7 style comparison
    python -m repro cluster              # Fig 12-13 style cluster run
    python -m repro sweep-n              # Fig 9b payment/score vs N
    python -m repro sweep-k              # Fig 10b payment/score vs K

The pytest benches in ``benchmarks/`` remain the canonical reproduction
(they record paper-vs-measured blocks); this CLI is the quick interactive
path.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

COMMANDS = ("list", "theory", "compare", "cluster", "sweep-n", "sweep-k")


def _cmd_list() -> int:
    print(__doc__)
    print("datasets for `compare`: mnist_o, mnist_f, cifar10, hpnews")
    return 0


def _cmd_theory() -> int:
    from .analysis import report, verify_all

    checks = verify_all(seed=0)
    print(report(checks))
    return 0 if all(c.passed for c in checks) else 1


def _cmd_compare(dataset: str, seed: int, rounds: int | None) -> int:
    from .analysis import summarize_schemes
    from .sim import preset, run_comparison
    from .sim.reporting import ascii_table, series_table

    cfg = preset("bench", dataset)
    if rounds is not None:
        cfg = cfg.with_(n_rounds=rounds)
    results = run_comparison(cfg, ("FMore", "RandFL", "FixFL"), seed=seed)
    print(
        series_table(
            f"accuracy per round ({dataset})",
            "round",
            list(range(1, cfg.n_rounds + 1)),
            {s: [round(a, 3) for a in h.accuracies] for s, h in results.items()},
        )
    )
    rows = [
        (s.scheme, round(s.final_accuracy, 3), s.rounds_to_target, round(s.total_payment, 3))
        for s in summarize_schemes(results, target_accuracy=0.5)
    ]
    print()
    print(ascii_table(["scheme", "final acc", "rounds to 50%", "payment"], rows))
    return 0


def _cmd_cluster(seed: int) -> int:
    from .sim.cluster_experiment import ClusterConfig, run_cluster_comparison
    from .sim.reporting import series_table

    cfg = ClusterConfig(
        n_nodes=31, k_winners=8, n_rounds=10, size_range=(150, 900),
        test_per_class=25, model_width=0.18,
    )
    results = run_cluster_comparison(cfg, ("FMore", "RandFL"), seed=seed)
    rounds = list(range(1, cfg.n_rounds + 1))
    print(
        series_table(
            "cluster accuracy per round", "round", rounds,
            {s: [round(a, 3) for a in h.accuracies] for s, h in results.items()},
        )
    )
    print()
    print(
        series_table(
            "cumulative simulated seconds", "round", rounds,
            {s: [round(t, 1) for t in h.cumulative_seconds] for s, h in results.items()},
        )
    )
    return 0


def _cmd_sweep(axis: str, seed: int) -> int:
    from .analysis import payment_score_sweep_k, payment_score_sweep_n
    from .sim import build_solver, preset
    from .sim.reporting import series_table
    from .sim.rng import rng_from

    solver = build_solver(preset("bench", "mnist_o"), n_clients=100, k_winners=20)
    rng = rng_from(seed, f"cli-{axis}")
    if axis == "n":
        rows = payment_score_sweep_n(solver, (50, 80, 110, 140, 170, 200), rng, 120)
        index_name = "N"
    else:
        rows = payment_score_sweep_k(solver, (5, 10, 15, 20, 25, 30, 35), rng, 120)
        index_name = "K"
    print(
        series_table(
            f"winner payment and score vs {index_name}",
            index_name,
            [v for v, _ in rows],
            {
                "payment": [round(ws.mean_payment, 3) for _, ws in rows],
                "score": [round(ws.mean_score, 3) for _, ws in rows],
            },
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument("command", choices=COMMANDS)
    parser.add_argument("dataset", nargs="?", default="mnist_o")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--rounds", type=int, default=None)
    args = parser.parse_args(argv)

    if args.command == "list":
        return _cmd_list()
    if args.command == "theory":
        return _cmd_theory()
    if args.command == "compare":
        return _cmd_compare(args.dataset, args.seed, args.rounds)
    if args.command == "cluster":
        return _cmd_cluster(args.seed)
    if args.command == "sweep-n":
        return _cmd_sweep("n", args.seed)
    if args.command == "sweep-k":
        return _cmd_sweep("k", args.seed)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
