"""Two-tier hierarchical auctions: spec, sharding, determinism, resume.

The contracts under test (the hierarchical-variant ISSUE acceptance):

* the ``clusters`` spec canonicalises once and round-trips through JSON
  with no implicit state, and flat scenarios are untouched — their
  content hashes are pinned to the values main produced before the
  variant existed;
* the cluster partition is a seeded experiment constant — it depends on
  ``assignment_seed`` alone, never on the run seed;
* one hierarchical round is bitwise-identical under the serial, thread
  and process in-round executors (every RNG draw happens in the caller),
  and the executor is therefore a plan knob outside the scenario hash;
* checkpoint/resume mid-hierarchical-run restores bitwise, including
  through a store round-trip with byte-identical manifests;
* the argpartition rankings (``top_k_order`` / ``descending_order``)
  equal the historical full ``sorted()`` order bitwise, ties included,
  and the auction's ``ranking="top_k"`` fast path picks the same winners
  as the full sort.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro.api import (
    ExperimentStore,
    FMoreEngine,
    IncompleteRunError,
    Scenario,
    scenario_hash,
)
from repro.core.auction import (
    MultiDimensionalProcurementAuction,
    descending_order,
    top_k_order,
)
from repro.core.bids import Bid
from repro.core.hierarchy import assign_clusters, build_population
from repro.core.scoring import AdditiveScore
from repro.sim.rng import rng_from

# The values scenario_hash() produced on main before the hierarchical
# variant landed.  A drift here means flat manifests written by earlier
# runs are no longer addressable — the one thing this PR must not do.
FLAT_HASH_PINS = {
    "smoke": "eeeae5bdcfafe01203f030d891b26a3129fe0a6a6cb85c577fc4cca00f39ae0e",
    "paper": "f8d0aecbdcea401204f5cce71b31ff40b2a8413f8d61fdaff30367885ddff12f",
}

CLUSTERS = {
    "count": 8,
    "k_clusters": 4,
    "k_local": 2,
    "size_dist": "lognormal",
    "theta_skew": 0.05,
    "capacity_skew": 0.2,
}


def _hier_scenario(**overrides):
    """A hierarchical smoke game small enough to train in-tests."""
    defaults = dict(
        name="hier-test",
        variant="hierarchical",
        n_clients=48,
        k_winners=6,
        n_rounds=2,
        test_per_class=8,
        size_range=(60, 240),
        grid_size=17,
        clusters=CLUSTERS,
    )
    return Scenario.from_preset(
        "smoke",
        "mnist_o",
        schemes=("FMore",),
        seeds=(0,),
        **{**defaults, **overrides},
    )


@pytest.fixture(scope="module")
def hier_reference():
    scenario = _hier_scenario()
    return scenario, FMoreEngine().run(scenario)


# ----------------------------------------------------------------------
# The clusters spec
# ----------------------------------------------------------------------
class TestClustersSpec:
    def test_canonical_spec_round_trips_through_json(self):
        scenario = _hier_scenario()
        # Canonicalisation filled every defaulted key explicitly.
        assert scenario.clusters["assignment_seed"] == 0
        assert scenario.clusters["executor"] == "serial"
        assert scenario.clusters["fl_pool"] == 48
        restored = Scenario.from_dict(scenario.to_dict())
        assert restored.clusters == scenario.clusters
        assert restored == scenario
        assert scenario_hash(restored) == scenario_hash(scenario)

    def test_flat_scenarios_carry_no_clusters_key(self):
        flat = Scenario.from_preset("smoke", "mnist_o")
        assert flat.clusters == {}
        assert "clusters" not in flat.to_dict()

    def test_flat_hashes_pinned_to_main(self):
        smoke = Scenario.from_preset("smoke", "mnist_o")
        paper = Scenario.from_preset(
            "paper", "mnist_o", schemes=("FMore", "RandFL"), seeds=(0,)
        )
        assert scenario_hash(smoke) == FLAT_HASH_PINS["smoke"]
        assert scenario_hash(paper) == FLAT_HASH_PINS["paper"]

    def test_clusters_spec_rejected_on_flat_variants(self):
        with pytest.raises(ValueError, match="variant='hierarchical'"):
            Scenario.from_preset("smoke", "mnist_o", clusters={"count": 4})

    def test_hierarchical_needs_count(self):
        with pytest.raises(ValueError, match="count"):
            _hier_scenario(clusters={})

    def test_round_policies_rejected(self):
        with pytest.raises(ValueError, match="round policies"):
            _hier_scenario(policies={"churn": {"departure_prob": 0.1}})

    def test_second_score_rejected(self):
        with pytest.raises(ValueError, match="first_score"):
            _hier_scenario(payment_rule="second_score")

    def test_distributed_is_not_an_in_round_executor(self):
        with pytest.raises(ValueError, match="in-round pool"):
            _hier_scenario(clusters={**CLUSTERS, "executor": "distributed"})

    def test_in_round_executor_is_plan_not_content(self):
        """Serial/thread/process fan-out shares one content address."""
        serial = _hier_scenario()
        threaded = _hier_scenario(
            clusters={**CLUSTERS, "executor": "thread", "max_workers": 2}
        )
        assert scenario_hash(threaded) == scenario_hash(serial)


# ----------------------------------------------------------------------
# Seeded cluster assignment
# ----------------------------------------------------------------------
class TestClusterAssignment:
    def _population(self, assignment_seed=0, pop_seed=0):
        spec = _hier_scenario(
            clusters={**CLUSTERS, "assignment_seed": assignment_seed}
        ).clusters
        n = 400
        return build_population(
            n,
            np.linspace(0.1, 1.0, n),
            (60, 240),
            spec,
            rng_from(pop_seed, "hier-pop-test"),
            rng_from(spec["assignment_seed"], "hier-clusters-test"),
            category_floor=0.1,
            availability_min_fraction=0.6,
            theta_jitter=0.02,
            theta_support=(0.1, 1.0),
        )

    def test_partition_depends_on_assignment_seed_alone(self):
        a = self._population(assignment_seed=0, pop_seed=0)
        b = self._population(assignment_seed=0, pop_seed=7)
        c = self._population(assignment_seed=5, pop_seed=0)
        assert np.array_equal(a.cluster_ids, b.cluster_ids)
        assert not np.array_equal(a.cluster_ids, c.cluster_ids)

    def test_assignment_is_deterministic(self):
        ids1 = assign_clusters(1000, 10, "lognormal", rng_from(3, "part"))
        ids2 = assign_clusters(1000, 10, "lognormal", rng_from(3, "part"))
        assert np.array_equal(ids1, ids2)

    def test_members_partition_the_population(self):
        pop = self._population()
        assert int(pop.cluster_sizes.sum()) == pop.n_nodes
        gathered = np.sort(np.concatenate(pop.members))
        assert np.array_equal(gathered, np.arange(pop.n_nodes))
        for cid, idx in enumerate(pop.members):
            assert np.all(pop.cluster_ids[idx] == cid)

    def test_skews_stay_inside_the_supports(self):
        pop = self._population()
        assert np.all((pop.thetas >= 0.1) & (pop.thetas <= 1.0))
        assert np.all((pop.data_sizes >= 60) & (pop.data_sizes <= 240))


# ----------------------------------------------------------------------
# Executor-independent rounds
# ----------------------------------------------------------------------
class TestExecutorDeterminism:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_fanout_bitwise_equals_serial(self, executor, hier_reference):
        scenario, reference = hier_reference
        plan = scenario.with_(
            clusters={**CLUSTERS, "executor": executor, "max_workers": 2}
        )
        result = FMoreEngine().run(plan)
        assert result.histories == reference.histories

    def test_cluster_round_actions_and_metrics_columns(self, hier_reference):
        _, reference = hier_reference
        history = reference.history("FMore")
        for record in history.records:
            kinds = [a.kind for a in record.policy_actions]
            assert kinds == ["cluster_round"]
            payload = record.policy_actions[0].payload
            assert len(payload["selected"]) <= CLUSTERS["k_clusters"]
            assert payload["n_local_winners"] >= len(payload["selected"])
        frame = reference.metrics()
        assert "cluster_selected_mean" in frame.columns
        selected = frame.filter(scheme="FMore").column("cluster_selected_mean")
        assert all(1 <= v <= CLUSTERS["k_clusters"] for v in selected)


# ----------------------------------------------------------------------
# Checkpoint/resume mid-hierarchical-run
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_snapshot_restores_bitwise(self, hier_reference):
        scenario, reference = hier_reference
        session = FMoreEngine().session(scenario, "FMore", 0)
        next(session)
        checkpoint = session.snapshot()
        assert checkpoint.round_index == 1
        resumed = FMoreEngine().resume(checkpoint).run()
        assert resumed == reference.history("FMore")

    def test_store_resume_manifests_byte_identical(
        self, tmp_path, hier_reference
    ):
        scenario, reference = hier_reference
        root = tmp_path / "store"
        with pytest.raises(IncompleteRunError):
            FMoreEngine().run(
                scenario, store=root, checkpoint_every=1, stop_after=1
            )
        resumed = FMoreEngine().run(scenario, store=root, resume=True)
        assert resumed.histories == reference.histories
        pristine = reference.save(ExperimentStore(tmp_path / "pristine"))
        store = ExperimentStore(root)
        a = store.manifest_path(scenario, "FMore", 0).read_bytes()
        b = pristine.manifest_path(scenario, "FMore", 0).read_bytes()
        assert a == b
        assert store.load_checkpoint(scenario, "FMore", 0) is None


# ----------------------------------------------------------------------
# Argpartition rankings (the flat hot path's satellite)
# ----------------------------------------------------------------------
def _reference_order(scores, tiebreak):
    """The historical full sort: descending score, ascending tie-break."""
    return sorted(range(len(scores)), key=lambda i: (-scores[i], tiebreak[i]))


class TestPartialRanking:
    @pytest.mark.parametrize("trial", range(5))
    def test_descending_order_matches_sorted(self, trial):
        rng = np.random.default_rng(trial)
        scores = rng.normal(size=200)
        tiebreak = rng.random(200)
        assert descending_order(scores, tiebreak).tolist() == _reference_order(
            scores, tiebreak
        )

    @pytest.mark.parametrize("k", [1, 7, 50, 199, 200, 300])
    def test_top_k_order_is_the_full_sorts_head(self, k):
        rng = np.random.default_rng(99)
        # Integer scores force heavy boundary ties, the hard case for the
        # argpartition cut.
        scores = rng.integers(0, 10, size=200).astype(float)
        tiebreak = rng.random(200)
        expected = _reference_order(scores, tiebreak)[: min(k, 200)]
        assert top_k_order(scores, tiebreak, k).tolist() == expected

    def test_all_tied_scores(self):
        scores = np.zeros(50)
        tiebreak = np.random.default_rng(1).random(50)
        expected = _reference_order(scores, tiebreak)[:5]
        assert top_k_order(scores, tiebreak, 5).tolist() == expected

    @pytest.mark.parametrize("trial", range(3))
    def test_auction_top_k_ranking_equals_full(self, trial):
        rng = np.random.default_rng(100 + trial)
        bids = [
            Bid(i, rng.uniform(0.0, 5.0, 2), float(rng.uniform(0.0, 3.0)))
            for i in range(60)
        ]
        rule = AdditiveScore([0.5, 0.5])
        full = MultiDimensionalProcurementAuction(rule, 8, ranking="full")
        fast = MultiDimensionalProcurementAuction(rule, 8, ranking="top_k")
        out_full = full.run(bids, rng_from(trial, "rank-tie"))
        out_fast = fast.run(bids, rng_from(trial, "rank-tie"))
        assert out_fast.winner_ids == out_full.winner_ids
        assert [w.charged_payment for w in out_fast.winners] == [
            w.charged_payment for w in out_full.winners
        ]
        # The fast path's scored_bids is the full order's head.
        assert [sb.bid.node_id for sb in out_fast.scored_bids] == [
            sb.bid.node_id for sb in out_full.scored_bids[:8]
        ]
