"""Unit tests for the FMoreMechanism protocol layer and its accounting."""

import numpy as np
import pytest

from repro.core.auction import MultiDimensionalProcurementAuction
from repro.core.bids import Bid
from repro.core.mechanism import (
    BID_ASK_BYTES_PER_NODE,
    FLOAT_BYTES,
    FMoreMechanism,
)
from repro.core.scoring import AdditiveScore


class StubAgent:
    """Deterministic test agent with optional abstention."""

    def __init__(self, node_id, quality, payment, abstain=False):
        self.node_id = node_id
        self._bid = Bid(node_id, np.asarray(quality, dtype=float), payment)
        self.abstain = abstain

    def make_bid(self, round_index, rng):
        return None if self.abstain else self._bid


@pytest.fixture
def mechanism():
    auction = MultiDimensionalProcurementAuction(AdditiveScore([0.5, 0.5]), 2)
    return FMoreMechanism(auction)


class TestRunRound:
    def test_winners_selected(self, mechanism, rng):
        agents = [
            StubAgent(0, [4.0, 4.0], 0.5),
            StubAgent(1, [2.0, 2.0], 0.1),
            StubAgent(2, [1.0, 1.0], 0.0),
        ]
        record = mechanism.run_round(agents, 1, rng)
        assert record.outcome.winner_ids == [0, 1]
        assert record.accounting.n_bids == 3

    def test_abstention_recorded(self, mechanism, rng):
        agents = [
            StubAgent(0, [4.0, 4.0], 0.5),
            StubAgent(1, [2.0, 2.0], 0.1, abstain=True),
        ]
        record = mechanism.run_round(agents, 1, rng)
        assert record.abstained == [1]
        assert record.accounting.n_bids == 1

    def test_byte_accounting(self, mechanism, rng):
        agents = [StubAgent(i, [1.0, 1.0], 0.1) for i in range(4)]
        record = mechanism.run_round(agents, 1, rng)
        acc = record.accounting
        assert acc.downlink_bytes == 4 * BID_ASK_BYTES_PER_NODE
        assert acc.uplink_bytes == 4 * FLOAT_BYTES * 3  # m=2 qualities + payment
        assert acc.total_bytes == acc.downlink_bytes + acc.uplink_bytes

    def test_history_accumulates(self, mechanism, rng):
        agents = [StubAgent(i, [1.0, 1.0], 0.1) for i in range(3)]
        mechanism.run_round(agents, 1, rng)
        mechanism.run_round(agents, 2, rng)
        assert len(mechanism.history) == 2
        assert mechanism.total_payments == pytest.approx(0.4)  # 2 winners x 0.1 x 2 rounds

    def test_communication_linear_in_n(self, rng):
        """Section III-A: total auction traffic is linear in N."""
        totals = []
        for n in (10, 20, 40):
            auction = MultiDimensionalProcurementAuction(AdditiveScore([0.5, 0.5]), 2)
            mech = FMoreMechanism(auction)
            agents = [StubAgent(i, [1.0, 1.0], 0.1) for i in range(n)]
            mech.run_round(agents, 1, rng)
            totals.append(mech.total_auction_bytes)
        assert totals[1] == pytest.approx(2 * totals[0])
        assert totals[2] == pytest.approx(4 * totals[0])

    def test_overhead_negligible_vs_model_traffic(self, mechanism, rng):
        """Lightweightness: bid traffic is tiny next to model parameters."""
        agents = [StubAgent(i, [1.0, 1.0], 0.1) for i in range(100)]
        for t in range(5):
            mechanism.run_round(agents, t, rng)
        # A small CNN has ~10^5 float64 parameters -> ~1 MB per transfer.
        ratio = mechanism.overhead_relative_to_model(model_bytes=800_000)
        assert ratio < 0.01

    def test_empty_agent_list(self, mechanism, rng):
        record = mechanism.run_round([], 1, rng)
        assert record.outcome.winners == []
        assert record.accounting.n_asked == 0


class TestOverheadGuards:
    """Degenerate histories must not divide by a zero model traffic."""

    def test_empty_history_is_zero(self, mechanism):
        assert mechanism.overhead_relative_to_model(800_000) == 0.0

    def test_zero_winner_history_with_traffic_is_inf(self, mechanism, rng):
        agents = [StubAgent(i, [1.0, 1.0], 0.1, abstain=True) for i in range(5)]
        mechanism.run_round(agents, 1, rng)
        assert mechanism.total_auction_bytes > 0  # the ask still went out
        assert mechanism.overhead_relative_to_model(800_000) == float("inf")

    def test_no_traffic_at_all_is_zero(self, mechanism, rng):
        mechanism.run_round([], 1, rng)  # a round happened, nothing moved
        assert mechanism.total_auction_bytes == 0
        assert mechanism.overhead_relative_to_model(800_000) == 0.0

    def test_zero_model_bytes_with_traffic_is_inf(self, mechanism, rng):
        agents = [StubAgent(i, [1.0, 1.0], 0.1) for i in range(3)]
        mechanism.run_round(agents, 1, rng)
        assert mechanism.overhead_relative_to_model(0) == float("inf")
