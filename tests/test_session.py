"""Streaming session API: event structure + session-vs-batch equivalence.

The contract under test: ``engine.session(scenario, scheme, seed)`` yields
one :class:`~repro.api.RoundEvent` per protocol round, and replaying the
stream reconstructs the *exact* :class:`~repro.fl.trainer.TrainingHistory`
that the batch surface (``engine.run`` / ``run_scheme``) produces — under
the serial and the process executor alike.  The paper-default simulation
game and the Section V-C cluster testbed are both pinned (shrunk to test
size; the presets' component mix and seed streams are unchanged).
"""

from __future__ import annotations

import pytest

from repro.api import (
    FMoreEngine,
    RoundEvent,
    Scenario,
    build_federation,
)
from repro.fl.trainer import TrainingHistory


def _paper_default_scenario(**overrides):
    """The paper preset's component mix at test scale."""
    return Scenario.from_preset(
        "paper",
        "mnist_o",
        schemes=("FMore", "RandFL"),
        seeds=(0,),
        n_clients=10,
        k_winners=3,
        n_rounds=3,
        test_per_class=10,
        size_range=(60, 300),
        grid_size=33,
        model_width=0.12,
        image_size=14,
        batch_size=16,
        **overrides,
    )


def _cluster_scenario(**overrides):
    return Scenario.from_preset(
        "cluster_cifar10",
        seeds=(0,),
        n_clients=8,
        k_winners=3,
        n_rounds=2,
        test_per_class=8,
        size_range=(60, 240),
        model_width=0.15,
        grid_size=17,
        **overrides,
    )


def _replay_histories(scenario) -> dict[str, list[TrainingHistory]]:
    """Drive every cell through the streaming surface, event by event.

    Mirrors the serial engine loop's sharing contract: one federation per
    seed, shared across that seed's schemes.
    """
    engine = FMoreEngine()
    histories: dict[str, list[TrainingHistory]] = {s: [] for s in scenario.schemes}
    for seed in scenario.seeds:
        federation = build_federation(scenario, seed)
        for scheme in scenario.schemes:
            session = engine.session(scenario, scheme, seed, federation=federation)
            events = list(session)
            assert len(events) == scenario.n_rounds
            for i, event in enumerate(events):
                assert isinstance(event, RoundEvent)
                assert event.round_index == i + 1
                assert event.scheme == scheme and event.seed == seed
            replayed = TrainingHistory(
                scheme=session.history.scheme,
                records=[e.record for e in events],
            )
            assert replayed == session.history
            histories[scheme].append(replayed)
    return histories


@pytest.fixture(scope="module")
def paper_replay():
    """Event-by-event replay of the paper-default plan (executor-free)."""
    return _replay_histories(_paper_default_scenario())


@pytest.fixture(scope="module")
def cluster_replay():
    return _replay_histories(_cluster_scenario())


class TestSessionEquivalence:
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_paper_default_stream_matches_batch(self, executor, paper_replay):
        scenario = _paper_default_scenario(
            execution={"executor": executor, "max_workers": 2}
        )
        batch = FMoreEngine().run(scenario)
        assert paper_replay == batch.histories

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_cluster_cifar10_stream_matches_batch(self, executor, cluster_replay):
        scenario = _cluster_scenario(
            execution={"executor": executor, "max_workers": 2}
        )
        batch = FMoreEngine().run(scenario)
        assert cluster_replay == batch.histories

    def test_run_scheme_is_a_drained_session(self, paper_replay):
        engine = FMoreEngine()
        direct = engine.run_scheme(_paper_default_scenario(), "FMore", 0)
        assert [direct] == paper_replay["FMore"]


class TestSessionSurface:
    def test_early_stop_yields_valid_prefix(self):
        scenario = _paper_default_scenario()
        engine = FMoreEngine()
        full = engine.run_scheme(scenario, "FMore", 0)
        session = engine.session(scenario, "FMore", 0)
        events = [next(session), next(session)]
        assert session.rounds_run == 2
        assert session.rounds_remaining == scenario.n_rounds - 2
        assert session.history.records == full.records[:2]
        assert events[0].record == full.records[0]

    def test_exhausted_session_stops(self):
        scenario = _paper_default_scenario()
        session = FMoreEngine().session(scenario, "RandFL", 0)
        session.run()
        with pytest.raises(StopIteration):
            next(session)
        # Draining again is a no-op on a complete history.
        assert len(session.run().records) == scenario.n_rounds

    def test_events_surface_auction_metadata(self):
        scenario = _paper_default_scenario()
        session = FMoreEngine().session(scenario, "FMore", 0)
        event = next(session)
        assert event.n_bids > 0
        assert event.winner_ids == event.record.winner_ids
        assert event.payments and set(event.payments) == set(event.winner_ids)
        assert event.total_payment == pytest.approx(sum(event.payments.values()))
        assert event.actions == []  # default pipeline files no actions

    def test_checkpointable_weights_between_events(self):
        scenario = _paper_default_scenario()
        session = FMoreEngine().session(scenario, "FMore", 0)
        next(session)
        snapshot = session.trainer.server.model.get_weights()
        assert snapshot and all(w is not None for w in snapshot)
