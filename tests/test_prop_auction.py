"""Property-based tests (hypothesis) for auction invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.auction import MultiDimensionalProcurementAuction
from repro.core.bids import Bid
from repro.core.psi import PsiSelection
from repro.core.scoring import AdditiveScore

finite_quality = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
finite_payment = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


@st.composite
def bid_lists(draw, min_size=1, max_size=20):
    n = draw(st.integers(min_size, max_size))
    bids = []
    for i in range(n):
        q = np.array([draw(finite_quality), draw(finite_quality)])
        bids.append(Bid(i, q, draw(finite_payment)))
    return bids


@given(bids=bid_lists(), k=st.integers(1, 6), seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_winner_count_and_uniqueness(bids, k, seed):
    auction = MultiDimensionalProcurementAuction(AdditiveScore([0.5, 0.5]), k)
    out = auction.run(bids, np.random.default_rng(seed))
    assert len(out.winners) == min(k, len(bids))
    assert len(set(out.winner_ids)) == len(out.winners)


@given(bids=bid_lists(min_size=2), k=st.integers(1, 5), seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_winners_have_best_scores(bids, k, seed):
    """Top-K selection: no loser may outscore any winner."""
    auction = MultiDimensionalProcurementAuction(AdditiveScore([0.5, 0.5]), k)
    out = auction.run(bids, np.random.default_rng(seed))
    winner_set = set(out.winner_ids)
    winner_scores = [w.score for w in out.winners]
    loser_scores = [sb.score for sb in out.scored_bids if sb.node_id not in winner_set]
    if winner_scores and loser_scores:
        assert min(winner_scores) >= max(loser_scores) - 1e-9


@given(bids=bid_lists(min_size=2), seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_scores_sorted_descending(bids, seed):
    auction = MultiDimensionalProcurementAuction(AdditiveScore([0.3, 0.7]), 3)
    out = auction.run(bids, np.random.default_rng(seed))
    scores = out.scores
    assert np.all(np.diff(scores) <= 1e-9)


@given(bids=bid_lists(min_size=3), k=st.integers(1, 4), seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_second_score_dominates_first_score_payments(bids, k, seed):
    first = MultiDimensionalProcurementAuction(AdditiveScore([0.5, 0.5]), k)
    second = MultiDimensionalProcurementAuction(
        AdditiveScore([0.5, 0.5]), k, payment_rule="second_score"
    )
    out1 = first.run(list(bids), np.random.default_rng(seed))
    out2 = second.run(list(bids), np.random.default_rng(seed))
    assert out2.total_payment >= out1.total_payment - 1e-9


@given(
    bids=bid_lists(min_size=4, max_size=15),
    psi=st.floats(0.1, 1.0, exclude_min=False),
    k=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_psi_selection_always_fills(bids, psi, k, seed):
    auction = MultiDimensionalProcurementAuction(
        AdditiveScore([0.5, 0.5]), k, selection=PsiSelection(psi)
    )
    out = auction.run(bids, np.random.default_rng(seed))
    assert len(out.winners) == min(k, len(bids))


@given(bids=bid_lists(min_size=1), seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_first_score_charged_equals_asked(bids, seed):
    auction = MultiDimensionalProcurementAuction(AdditiveScore([0.5, 0.5]), 3)
    out = auction.run(bids, np.random.default_rng(seed))
    for w in out.winners:
        assert w.charged_payment == w.asked_payment
