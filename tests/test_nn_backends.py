"""The NN_BACKENDS array-backend family: registry, selection, agreement.

The ``numpy`` backend is the bitwise reference — its kernels are the exact
code historically inlined in the layers.  Any other registered backend
(currently the optional ``numba``) must agree with the reference to 1e-10
on every hot kernel, forward and backward; those cross-backend tests skip
when the backend's dependency is absent rather than fail.
"""

import numpy as np
import pytest

from repro.core.registry import NN_BACKENDS
from repro.fl.nn.backends import (
    ArrayBackend,
    BackendUnavailableError,
    NumpyBackend,
    available_backend_names,
    backend_available,
    get_backend,
    numpy_col2im,
    numpy_im2col,
    set_backend,
    use_backend,
)


class TestRegistry:
    def test_both_backends_registered(self):
        assert set(NN_BACKENDS.names()) >= {"numpy", "numba"}

    def test_numpy_always_available(self):
        assert backend_available("numpy")
        assert "numpy" in available_backend_names()

    def test_available_names_subset_of_registered(self):
        assert set(available_backend_names()) <= set(NN_BACKENDS.names())

    def test_default_backend_is_numpy(self):
        assert isinstance(get_backend(), NumpyBackend)
        assert get_backend().name == "numpy"


class TestSelection:
    def test_set_backend_by_name_and_instance(self):
        previous = get_backend()
        try:
            chosen = set_backend("numpy")
            assert isinstance(chosen, NumpyBackend)
            assert get_backend() is chosen
            explicit = NumpyBackend()
            assert set_backend(explicit) is explicit
            assert get_backend() is explicit
        finally:
            set_backend(previous)

    def test_set_backend_rejects_unknown_name(self):
        with pytest.raises(KeyError):
            set_backend("tensorflow")

    def test_set_backend_rejects_non_backend(self):
        with pytest.raises(TypeError):
            set_backend(42)

    def test_use_backend_restores_previous(self):
        before = get_backend()
        with use_backend("numpy") as inner:
            assert get_backend() is inner
            assert inner is not before
        assert get_backend() is before

    def test_use_backend_restores_on_error(self):
        before = get_backend()
        with pytest.raises(RuntimeError):
            with use_backend("numpy"):
                raise RuntimeError("boom")
        assert get_backend() is before

    def test_unavailable_numba_raises_cleanly(self):
        if backend_available("numba"):
            pytest.skip("numba installed; the unavailable path cannot trigger")
        with pytest.raises(BackendUnavailableError):
            set_backend("numba")
        # A failed set leaves the active backend untouched.
        assert isinstance(get_backend(), ArrayBackend)


class TestNumpyReference:
    """The numpy backend must be bitwise-identical to the reference kernels."""

    def test_matmul_is_numpy_matmul(self, rng):
        a = rng.standard_normal((5, 7))
        b = rng.standard_normal((7, 3))
        np.testing.assert_array_equal(NumpyBackend().matmul(a, b), a @ b)

    def test_im2col_matches_reference(self, rng):
        x = rng.standard_normal((2, 6, 6, 3))
        got, got_hw = NumpyBackend().im2col(x, 3, 3, 1, 0)
        want, want_hw = numpy_im2col(x, 3, 3, 1, 0)
        assert got_hw == want_hw
        np.testing.assert_array_equal(got, want)

    def test_col2im_matches_reference(self, rng):
        x_shape = (2, 6, 6, 3)
        cols = rng.standard_normal((2 * 4 * 4, 3 * 3 * 3))
        got = NumpyBackend().col2im(cols, x_shape, 3, 3, 1, 0, 4, 4)
        want = numpy_col2im(cols, x_shape, 3, 3, 1, 0, 4, 4)
        np.testing.assert_array_equal(got, want)

    def test_col2im_inverts_im2col_for_disjoint_windows(self, rng):
        # Stride == kernel: windows tile the input exactly once, so
        # scatter-add restores the original array.
        x = rng.standard_normal((2, 6, 6, 2))
        cols, (oh, ow) = numpy_im2col(x, 2, 2, 2, 0)
        back = numpy_col2im(cols, x.shape, 2, 2, 2, 0, oh, ow)
        np.testing.assert_array_equal(back, x)

    def test_lstm_step_shapes_and_gate_ranges(self, rng):
        n, d, h = 4, 5, 3
        x_t = rng.standard_normal((n, d))
        h_prev = rng.standard_normal((n, h))
        c_prev = rng.standard_normal((n, h))
        wx = rng.standard_normal((d, 4 * h))
        wh = rng.standard_normal((h, 4 * h))
        b = rng.standard_normal(4 * h)
        h_next, c_next, i, f, g, o, tanh_c = NumpyBackend().lstm_step(
            x_t, h_prev, c_prev, wx, wh, b
        )
        for arr in (h_next, c_next, i, f, g, o, tanh_c):
            assert arr.shape == (n, h)
        for gate in (i, f, o):
            assert np.all((gate > 0.0) & (gate < 1.0))
        np.testing.assert_array_equal(c_next, f * c_prev + i * g)
        np.testing.assert_array_equal(h_next, o * np.tanh(c_next))


def _kernel_inputs(rng):
    n, d, h = 4, 5, 3
    return {
        "a": rng.standard_normal((6, 9)),
        "b": rng.standard_normal((9, 4)),
        "x_img": rng.standard_normal((2, 7, 7, 3)),
        "cols": rng.standard_normal((2 * 5 * 5, 3 * 3 * 3)),
        "x_t": rng.standard_normal((n, d)),
        "h_prev": rng.standard_normal((n, h)),
        "c_prev": rng.standard_normal((n, h)),
        "wx": rng.standard_normal((d, 4 * h)),
        "wh": rng.standard_normal((h, 4 * h)),
        "bias": rng.standard_normal(4 * h),
    }


class TestCrossBackendAgreement:
    """Every available non-reference backend agrees with numpy to 1e-10."""

    @pytest.fixture
    def backends(self, nn_backend):
        return NumpyBackend(), NN_BACKENDS.create(nn_backend)

    def test_matmul_agreement(self, rng, backends):
        ref, other = backends
        inp = _kernel_inputs(rng)
        np.testing.assert_allclose(
            other.matmul(inp["a"], inp["b"]),
            ref.matmul(inp["a"], inp["b"]),
            rtol=0.0,
            atol=1e-10,
        )

    def test_im2col_agreement(self, rng, backends):
        ref, other = backends
        x = _kernel_inputs(rng)["x_img"]
        got, got_hw = other.im2col(x, 3, 3, 1, 1)
        want, want_hw = ref.im2col(x, 3, 3, 1, 1)
        assert got_hw == want_hw
        np.testing.assert_allclose(got, want, rtol=0.0, atol=1e-10)

    def test_col2im_agreement(self, rng, backends):
        ref, other = backends
        cols = _kernel_inputs(rng)["cols"]
        x_shape = (2, 7, 7, 3)
        np.testing.assert_allclose(
            other.col2im(cols, x_shape, 3, 3, 1, 0, 5, 5),
            ref.col2im(cols, x_shape, 3, 3, 1, 0, 5, 5),
            rtol=0.0,
            atol=1e-10,
        )

    def test_lstm_step_agreement(self, rng, backends):
        ref, other = backends
        inp = _kernel_inputs(rng)
        args = (
            inp["x_t"], inp["h_prev"], inp["c_prev"],
            inp["wx"], inp["wh"], inp["bias"],
        )
        for got, want in zip(other.lstm_step(*args), ref.lstm_step(*args)):
            np.testing.assert_allclose(got, want, rtol=0.0, atol=1e-10)

    def test_forward_backward_agreement_through_model(self, rng, nn_backend):
        """A full CNN forward/backward pass agrees across backends."""
        from repro.fl.models import build_model
        from repro.sim.rng import rng_from

        x = rng.standard_normal((8, 8, 8, 1))
        y = rng.integers(0, 10, size=8)

        def run():
            model = build_model("mnist_o", (8, 8, 1), 10, rng_from(3, "agree"), width=0.25)
            loss = model.fit(x, y, epochs=1, batch_size=4, shuffle_rng=rng_from(3, "fit"))
            return loss, model.get_weights()

        with use_backend("numpy"):
            ref_loss, ref_weights = run()
        with use_backend(nn_backend):
            got_loss, got_weights = run()
        assert got_loss == pytest.approx(ref_loss, abs=1e-10)
        for got, want in zip(got_weights, ref_weights):
            np.testing.assert_allclose(got, want, rtol=0.0, atol=1e-10)
