"""Property-based tests for dataset generation and partitioning invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.guidance import alphas_for_target_mix, optimal_quality_mix
from repro.fl.datasets import make_generator
from repro.fl.partition import dirichlet_specs, heterogeneous_specs

_GEN = make_generator("mnist_o", seed=0)
_TXT = make_generator("hpnews", seed=0)


@given(
    counts=st.dictionaries(
        st.integers(0, 9), st.integers(1, 12), min_size=1, max_size=5
    ),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=30, deadline=None)
def test_sample_mixed_conserves_counts(counts, seed):
    """No sample lost or duplicated across class blocks."""
    x, y = _GEN.sample_mixed(counts, np.random.default_rng(seed))
    assert x.shape[0] == sum(counts.values())
    hist = np.bincount(y, minlength=10)
    for cls, n in counts.items():
        assert hist[cls] == n


@given(seed=st.integers(0, 2**16), cls=st.integers(0, 9), n=st.integers(1, 20))
@settings(max_examples=30, deadline=None)
def test_image_samples_finite(seed, cls, n):
    x = _GEN.sample(cls, n, np.random.default_rng(seed))
    assert np.all(np.isfinite(x))
    assert x.shape == (n, *_GEN.input_shape)


@given(seed=st.integers(0, 2**16), cls=st.integers(0, 9), n=st.integers(1, 20))
@settings(max_examples=30, deadline=None)
def test_text_tokens_valid(seed, cls, n):
    x = _TXT.sample(cls, n, np.random.default_rng(seed))
    assert x.min() >= 0 and x.max() < _TXT.spec.vocab_size


@given(
    n_clients=st.integers(1, 30),
    seed=st.integers(0, 2**16),
    min_c=st.integers(1, 5),
    extra_c=st.integers(0, 5),
)
@settings(max_examples=30, deadline=None)
def test_heterogeneous_specs_class_bounds(n_clients, seed, min_c, extra_c):
    rng = np.random.default_rng(seed)
    max_c = min(min_c + extra_c, 10)
    specs = heterogeneous_specs(
        n_clients, 10, rng, size_range=(20, 200), min_classes=min_c, max_classes=max_c
    )
    assert len(specs) == n_clients
    for s in specs:
        assert min_c <= s.n_classes_present <= max_c
        assert all(v >= 1 for v in s.class_counts.values())


@given(
    n_clients=st.integers(1, 30),
    alpha=st.floats(0.05, 10.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=30, deadline=None)
def test_dirichlet_specs_never_empty(n_clients, alpha, seed):
    rng = np.random.default_rng(seed)
    specs = dirichlet_specs(n_clients, 10, rng, alpha=alpha, size_range=(5, 50))
    assert all(s.size >= 1 for s in specs)


@given(
    alphas=st.lists(st.floats(0.05, 5.0), min_size=2, max_size=5),
    betas=st.lists(st.floats(0.05, 5.0), min_size=2, max_size=5),
    theta=st.floats(0.1, 2.0),
    budget=st.floats(0.5, 100.0),
)
@settings(max_examples=50, deadline=None)
def test_prop4_budget_always_exhausted(alphas, betas, theta, budget):
    m = min(len(alphas), len(betas))
    res = optimal_quality_mix(alphas[:m], betas[:m], theta, budget)
    spend = res.theta * float(np.dot(res.betas, res.quality))
    np.testing.assert_allclose(spend, budget, rtol=1e-9)


@given(
    target=st.lists(st.floats(0.1, 10.0), min_size=2, max_size=4),
    betas=st.lists(st.floats(0.1, 5.0), min_size=2, max_size=4),
    theta=st.floats(0.1, 2.0),
    budget=st.floats(1.0, 50.0),
)
@settings(max_examples=50, deadline=None)
def test_prop4_inverse_recovers_mix_direction(target, betas, theta, budget):
    """alphas_for_target_mix then optimal_quality_mix returns a scaled target."""
    m = min(len(target), len(betas))
    t = np.asarray(target[:m])
    alphas = alphas_for_target_mix(t, betas[:m])
    achieved = optimal_quality_mix(alphas, betas[:m], theta, budget).quality
    ratio = achieved / t
    np.testing.assert_allclose(ratio, ratio[0], rtol=1e-9)
