"""Unit tests for the payment-margin ODE backends (paper Eqs. 12-14)."""

import numpy as np
import pytest

from repro.core.odesolvers import (
    MARGIN_BACKENDS,
    euler_margin,
    quadrature_margin,
    rk4_margin,
)


def _power_kernel(u, exponent):
    """g(u) = (u / u_max)^exponent — analytic margin u/(exponent+1)."""
    return (u / u[-1]) ** exponent


class TestQuadratureMargin:
    def test_constant_kernel(self):
        # g = 1 -> margin(u) = u - u0.
        u = np.linspace(0.0, 2.0, 201)
        m = quadrature_margin(u, np.ones_like(u))
        np.testing.assert_allclose(m, u, atol=1e-12)

    def test_power_kernel_analytic(self):
        # Int_0^u x^e dx / u^e = u / (e + 1).  Trapezoid error dominates at
        # the tiny-u end of the grid, hence the absolute-tolerance floor.
        u = np.linspace(0.0, 1.0, 2001)
        for e in (1, 3, 9):
            m = quadrature_margin(u, _power_kernel(u, e))
            np.testing.assert_allclose(m[1:], u[1:] / (e + 1), rtol=1e-3, atol=2e-4)

    def test_zero_prefix_gives_zero_margin(self):
        u = np.linspace(0.0, 1.0, 101)
        g = np.where(u < 0.5, 0.0, 1.0)
        m = quadrature_margin(u, g)
        assert np.all(m[u < 0.5] == 0.0)
        # Above the dead zone the margin accumulates from 0.5 on.
        assert m[-1] == pytest.approx(0.5, abs=0.01)


class TestBackendAgreement:
    @pytest.mark.parametrize("exponent", [1, 4, 9])
    def test_three_backends_agree(self, exponent):
        u = np.linspace(0.0, 1.0, 801)
        g = _power_kernel(u, exponent)
        ref = quadrature_margin(u, g)
        np.testing.assert_allclose(euler_margin(u, g)[1:], ref[1:], rtol=0.02, atol=1e-3)
        np.testing.assert_allclose(rk4_margin(u, g)[1:], ref[1:], rtol=0.02, atol=1e-3)

    def test_rk4_more_accurate_than_euler_on_coarse_grid(self):
        u = np.linspace(0.01, 1.0, 21)
        g = _power_kernel(u, 5)
        analytic = u / 6.0
        err_euler = np.abs(euler_margin(u, g) - analytic)[5:].max()
        err_rk4 = np.abs(rk4_margin(u, g) - analytic)[5:].max()
        assert err_rk4 <= err_euler


class TestValidation:
    def test_rejects_decreasing_grid(self):
        with pytest.raises(ValueError):
            quadrature_margin(np.array([1.0, 0.5]), np.array([1.0, 1.0]))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            euler_margin(np.array([0.0, 1.0]), np.array([1.0]))

    def test_rejects_negative_kernel(self):
        with pytest.raises(ValueError):
            rk4_margin(np.array([0.0, 1.0]), np.array([1.0, -0.5]))

    def test_registry_contains_all(self):
        assert set(MARGIN_BACKENDS) == {"quadrature", "euler", "rk4"}

    def test_margins_nonnegative(self):
        u = np.linspace(0.0, 1.0, 101)
        g = _power_kernel(u, 2)
        for backend in MARGIN_BACKENDS.values():
            assert np.all(backend(u, g) >= 0.0)
