"""Unit tests for Proposition 4: aggregator resource-mix guidance."""

import numpy as np
import pytest

from repro.core.guidance import (
    alphas_for_target_mix,
    optimal_quality_mix,
    quality_ratio,
    solve_mix_numerically,
)


class TestOptimalQualityMix:
    def test_ratio_property(self):
        # q*_i / q*_j = (alpha_i / alpha_j) * (beta_j / beta_i).
        res = optimal_quality_mix([0.5, 0.3, 0.2], [0.2, 0.3, 0.5], theta=0.5, budget=10.0)
        q = res.quality
        for i in range(3):
            for j in range(3):
                expected = quality_ratio(
                    res.alphas[i], res.alphas[j], res.betas[i], res.betas[j]
                )
                assert q[i] / q[j] == pytest.approx(expected)

    def test_budget_exhausted(self):
        res = optimal_quality_mix([0.6, 0.4], [0.5, 0.5], theta=0.4, budget=8.0)
        spend = res.theta * float(np.dot(res.betas, res.quality))
        assert spend == pytest.approx(8.0)

    def test_expenditure_shares_equal_alphas(self):
        # Cobb-Douglas classic: budget share of good i equals alpha_i.
        res = optimal_quality_mix([0.7, 0.2, 0.1], [0.3, 0.3, 0.4], theta=0.6, budget=5.0)
        np.testing.assert_allclose(res.spend_shares, res.alphas, rtol=1e-12)

    def test_matches_numerical_lagrangian(self):
        alphas, betas = [0.5, 0.3, 0.2], [0.2, 0.3, 0.5]
        res = optimal_quality_mix(alphas, betas, theta=0.5, budget=10.0)
        numeric = solve_mix_numerically(res.alphas, res.betas, 0.5, 10.0)
        np.testing.assert_allclose(res.quality, numeric, rtol=5e-3)

    def test_normalises_inputs(self):
        res = optimal_quality_mix([5.0, 3.0, 2.0], [2.0, 3.0, 5.0], theta=0.5, budget=10.0)
        assert res.alphas.sum() == pytest.approx(1.0)
        assert res.betas.sum() == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            optimal_quality_mix([0.5, 0.0], [0.5, 0.5], 0.5, 1.0)
        with pytest.raises(ValueError):
            optimal_quality_mix([0.5, 0.5], [0.5, 0.5], -0.5, 1.0)
        with pytest.raises(ValueError):
            optimal_quality_mix([0.5, 0.5], [0.5, 0.5], 0.5, 0.0)


class TestInverseProblem:
    def test_roundtrip(self):
        # Choose alphas for a target mix, then verify the mix comes back.
        betas = [0.25, 0.35, 0.40]
        target = np.array([4.0, 2.0, 1.0])
        alphas = alphas_for_target_mix(target, betas)
        res = optimal_quality_mix(alphas, betas, theta=0.5, budget=7.0)
        ratio = res.quality / target
        np.testing.assert_allclose(ratio, ratio[0] * np.ones(3), rtol=1e-9)

    def test_alphas_normalised(self):
        alphas = alphas_for_target_mix([1.0, 2.0], [0.5, 0.5])
        assert alphas.sum() == pytest.approx(1.0)

    def test_rejects_zero_target(self):
        with pytest.raises(ValueError):
            alphas_for_target_mix([0.0, 1.0], [0.5, 0.5])


class TestQualityRatio:
    def test_symmetry(self):
        r = quality_ratio(0.4, 0.2, 0.3, 0.7)
        r_inv = quality_ratio(0.2, 0.4, 0.7, 0.3)
        assert r * r_inv == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            quality_ratio(0.0, 1.0, 1.0, 1.0)
