"""The durable experiment store: manifests, cell reuse, metrics frames.

Pins the tentpole contracts of :mod:`repro.api.store` and
:mod:`repro.api.metrics`:

* ``scenario_hash`` addresses everything a cell's result depends on and
  nothing it doesn't (the run plan and executor are excluded, so growing
  a sweep keeps hitting stored cells);
* ``RunResult.save(store)`` / ``RunResult.load(store, scenario)``
  round-trip exactly (``averaged()`` and ``metrics()`` agree);
* re-running against a store computes only the missing ``(scheme, seed)``
  cells unless ``force=True``;
* ``--resume`` against a store written by a *different* scenario fails
  fast, listing the stored hashes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.__main__ import EXIT_INCOMPLETE, main
from repro.api import (
    ExperimentStore,
    FMoreEngine,
    MetricsFrame,
    RunResult,
    Scenario,
    StoreError,
    StoreMismatchError,
    scenario_hash,
)
from repro.api import engine as engine_module

POLICIES = {
    "audit_blacklist": {
        "defect_fraction": 0.3,
        "shortfall": 0.5,
        "strikes_to_ban": 1,
    },
    "churn": {"departure_prob": 0.25, "arrival_prob": 0.6},
}


def _scenario(**overrides) -> Scenario:
    return Scenario.from_preset(
        "smoke",
        "mnist_o",
        schemes=("FMore", "RandFL"),
        seeds=(0,),
        n_clients=8,
        k_winners=3,
        n_rounds=3,
        test_per_class=6,
        size_range=(30, 90),
        grid_size=17,
        policies=POLICIES,
        **overrides,
    )


@pytest.fixture(scope="module")
def scenario():
    return _scenario()


@pytest.fixture(scope="module")
def result(scenario):
    return FMoreEngine().run(scenario)


class TestScenarioHash:
    def test_plan_and_executor_do_not_change_the_address(self, scenario):
        h = scenario_hash(scenario)
        assert h == scenario_hash(scenario.with_(seeds=(0, 1, 2)))
        assert h == scenario_hash(scenario.with_(schemes=("RandFL",)))
        assert h == scenario_hash(
            scenario.with_(execution={"executor": "process", "max_workers": 4})
        )

    def test_cell_shaping_fields_do_change_it(self, scenario):
        h = scenario_hash(scenario)
        assert h != scenario_hash(scenario.with_(n_rounds=4))
        assert h != scenario_hash(scenario.with_(k_winners=2))
        assert h != scenario_hash(scenario.with_(policies={}))
        assert h != scenario_hash(
            scenario.with_(scoring={**scenario.scoring, "scale": 30.0})
        )

    def test_stable_across_json_round_trip(self, scenario):
        assert scenario_hash(scenario) == scenario_hash(
            Scenario.from_json(scenario.to_json())
        )


class TestManifests:
    def test_history_round_trips_exactly(self, tmp_path, scenario, result):
        store = ExperimentStore(tmp_path)
        history = result.history("FMore")
        store.save_history(scenario, "FMore", 0, history)
        loaded = store.load_history(scenario, "FMore", 0)
        assert loaded == history
        # Policy actions survive the trip (the FMore cell files some).
        assert any(r.policy_actions for r in loaded.records)

    def test_run_result_save_load(self, tmp_path, scenario, result):
        store = result.save(ExperimentStore(tmp_path))
        loaded = RunResult.load(store, scenario)
        assert loaded.histories == result.histories
        for scheme, stats in loaded.averaged().items():
            np.testing.assert_array_equal(
                stats["accuracy"].mean, result.averaged()[scheme]["accuracy"].mean
            )
        assert loaded.metrics() == result.metrics()

    def test_load_lists_missing_cells(self, tmp_path, scenario, result):
        store = ExperimentStore(tmp_path)
        store.save_history(scenario, "FMore", 0, result.history("FMore"))
        with pytest.raises(StoreError, match="RandFL/seed0"):
            RunResult.load(store, scenario)

    def test_cells_enumeration(self, tmp_path, scenario, result):
        store = result.save(ExperimentStore(tmp_path))
        h = scenario_hash(scenario)
        assert store.cells(scenario) == [(h, "FMore", 0), (h, "RandFL", 0)]


class TestCellReuse:
    def _counting_engine(self, monkeypatch):
        """An engine whose session builds are observable."""
        built: list[tuple[str, int]] = []
        original = engine_module.make_session

        def counting(scenario, scheme, seed, **kwargs):
            built.append((scheme, seed))
            return original(scenario, scheme, seed, **kwargs)

        monkeypatch.setattr(engine_module, "make_session", counting)
        return FMoreEngine(), built

    def test_second_run_computes_nothing(self, tmp_path, monkeypatch, scenario):
        engine, built = self._counting_engine(monkeypatch)
        first = engine.run(scenario, store=tmp_path)
        assert sorted(built) == [("FMore", 0), ("RandFL", 0)]
        built.clear()
        second = engine.run(scenario, store=tmp_path)
        assert built == []
        assert second.histories == first.histories

    def test_growing_the_sweep_reuses_completed_cells(
        self, tmp_path, monkeypatch, scenario
    ):
        engine, built = self._counting_engine(monkeypatch)
        engine.run(scenario, store=tmp_path)
        built.clear()
        grown = engine.run(scenario.with_(seeds=(0, 1)), store=tmp_path)
        # Seed 0 came from the store; only seed 1's cells were computed.
        assert sorted(built) == [("FMore", 1), ("RandFL", 1)]
        assert grown.history("FMore", 0).records
        assert len(grown.histories["FMore"]) == 2

    def test_force_recomputes(self, tmp_path, monkeypatch, scenario):
        engine, built = self._counting_engine(monkeypatch)
        engine.run(scenario, store=tmp_path)
        built.clear()
        engine.run(scenario, store=tmp_path, force=True)
        assert sorted(built) == [("FMore", 0), ("RandFL", 0)]


class TestMismatchFailFast:
    def test_resume_against_foreign_store_raises(self, tmp_path, scenario, result):
        result.save(ExperimentStore(tmp_path))
        other = scenario.with_(n_rounds=5)
        with pytest.raises(StoreMismatchError) as excinfo:
            FMoreEngine().run(other, store=tmp_path, resume=True)
        message = str(excinfo.value)
        assert scenario_hash(scenario)[:12] in message  # the stored hash
        assert scenario_hash(other)[:12] in message     # the requested hash

    def test_resume_against_empty_store_is_fine(self, tmp_path, scenario):
        # Nothing stored -> nothing to mismatch; the run starts fresh.
        run = FMoreEngine().run(scenario, store=tmp_path / "new", resume=True)
        assert len(run.histories["FMore"]) == 1

    def test_resume_without_store_rejected(self, scenario):
        with pytest.raises(ValueError, match="store"):
            FMoreEngine().run(scenario, resume=True)


class TestMetricsFrame:
    def test_columns_and_policy_trajectories(self, result):
        frame = result.metrics()
        assert len(frame) == 2 * 3  # (scheme, round) rows
        assert frame.column("scheme")[:3] == ["FMore"] * 3
        bans = frame.filter(scheme="FMore").column("bans_total_mean")
        assert bans == sorted(bans)  # cumulative
        expected_bans = sum(
            1
            for record in result.history("FMore").records
            for action in record.policy_actions
            if action.kind == "ban"
        )
        assert bans[-1] == pytest.approx(expected_bans)
        # RandFL runs no pipeline: its policy columns are flat zero.
        assert set(frame.filter(scheme="RandFL").column("bans_total_mean")) == {0.0}

    def test_accuracy_matches_averaged(self, result):
        frame = result.metrics()
        acc = frame.filter(scheme="FMore").column("accuracy_mean")
        np.testing.assert_allclose(
            acc, result.averaged()["FMore"]["accuracy"].mean
        )

    def test_csv_and_json_round_trip(self, result, tmp_path):
        frame = result.metrics()
        text = frame.to_csv(tmp_path / "m.csv")
        assert (tmp_path / "m.csv").read_text() == text
        assert text.splitlines()[0].startswith("scheme,round,accuracy_mean")
        assert len(text.splitlines()) == len(frame) + 1
        assert MetricsFrame.from_json(frame.to_json()) == frame

    def test_unknown_column_lists_choices(self, result):
        with pytest.raises(KeyError, match="accuracy_mean"):
            result.metrics().column("nope")

    def test_alpha_columns_appear_with_guidance(self):
        scenario = _scenario().with_(
            schemes=("FMore",),
            scoring={"name": "additive", "weights": [0.6, 0.4]},
            policies={"guidance": {"target_mix": [2.0, 1.0], "every": 1}},
        )
        frame = FMoreEngine().run(scenario).metrics()
        assert "alpha0" in frame.columns and "alpha1" in frame.columns
        final_alphas = frame.rows[-1][-2:]
        assert all(isinstance(a, float) for a in final_alphas)


class TestCLI:
    ARGS = [
        "--preset",
        "smoke",
        "--set",
        "n_clients=8",
        "--set",
        "k_winners=3",
        "--set",
        "n_rounds=3",
        "--set",
        "test_per_class=6",
        "--set",
        "size_range=30,90",
        "--set",
        "grid_size=17",
        "--set",
        "schemes=FMore,RandFL",
    ]

    def test_run_store_stop_resume_report(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(
            ["run", *self.ARGS, "--store", store, "--checkpoint-every", "1",
             "--stop-after", "1"]
        )
        assert code == EXIT_INCOMPLETE
        assert "--resume" in capsys.readouterr().out
        assert main(["run", *self.ARGS, "--store", store, "--resume"]) == 0
        assert "store: manifests under" in capsys.readouterr().out
        csv_path = tmp_path / "metrics.csv"
        assert main(["report", "--store", store, "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "FMore" in out and "RandFL" in out
        assert csv_path.read_text().startswith("scheme,round,accuracy_mean")

    def test_resume_against_wrong_store_exits_with_hashes(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run", *self.ARGS, "--store", store]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="different scenario spec"):
            main(
                ["run", *self.ARGS, "--set", "n_rounds=2", "--store", store,
                 "--resume"]
            )

    def test_report_without_runs_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no runs stored"):
            main(["report", "--store", str(tmp_path / "empty")])
