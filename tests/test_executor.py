"""Tests for the executor subsystem and the engine's cell fan-out.

The contract the sweep layer rests on: every executor — serial, thread,
process — returns bitwise-identical ``RunResult`` histories for the same
scenario, because each ``(scheme, seed)`` cell derives its randomness from
named per-cell seed streams and nothing else.
"""

import numpy as np
import pytest

from repro.__main__ import main
from repro.api import (
    EXECUTORS,
    Executor,
    FMoreEngine,
    ProcessExecutor,
    Scenario,
    SerialExecutor,
    ThreadExecutor,
)


class TestExecutorRegistry:
    def test_registered_names(self):
        assert {"serial", "thread", "process"} <= set(EXECUTORS.names())

    def test_create_from_spec(self):
        executor = EXECUTORS.create({"name": "process", "max_workers": 3})
        assert isinstance(executor, ProcessExecutor)
        assert executor.max_workers == 3
        assert not executor.in_process

    def test_worker_count_bounded_by_items(self):
        assert ThreadExecutor(max_workers=8).worker_count(2) == 2
        assert ThreadExecutor(max_workers=2).worker_count(8) == 2
        assert SerialExecutor().worker_count(0) == 1

    def test_invalid_max_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            ThreadExecutor(max_workers=0)

    def test_map_preserves_order(self):
        for executor in (SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)):
            assert executor.map(abs, [-3, -1, -2]) == [3, 1, 2]

    def test_is_abstract(self):
        with pytest.raises(TypeError):
            Executor()


class TestExecutionSpec:
    def test_default_is_serial(self):
        assert Scenario().execution == {"executor": "serial", "max_workers": None}

    def test_canonicalised_and_round_tripped(self):
        scenario = Scenario(execution={"executor": "process", "max_workers": 2})
        assert scenario.execution == {"executor": "process", "max_workers": 2}
        again = Scenario.from_json(scenario.to_json())
        assert again == scenario
        assert again.execution == scenario.execution

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            Scenario(execution={"executor": "gpu_farm"})

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown execution keys"):
            Scenario(execution={"executor": "serial", "pool": 4})

    def test_bad_max_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            Scenario(execution={"executor": "thread", "max_workers": 0})

    def test_cli_parallel_sets_process_spec(self, capsys):
        assert main(["scenario", "--preset", "smoke", "--parallel", "2"]) == 0
        out = capsys.readouterr().out
        import json

        spec = json.loads(out)
        assert spec["execution"] == {"executor": "process", "max_workers": 2}

    def test_cli_executor_flag(self, capsys):
        assert main(["scenario", "--preset", "smoke", "--executor", "thread"]) == 0
        import json

        spec = json.loads(capsys.readouterr().out)
        assert spec["execution"]["executor"] == "thread"


@pytest.fixture(scope="module")
def plan():
    return Scenario.from_preset(
        "smoke",
        "mnist_o",
        schemes=("FMore", "RandFL", "FixFL"),
        seeds=(0, 1),
        n_rounds=2,
    )


@pytest.fixture(scope="module")
def serial_result(plan):
    return FMoreEngine().run(plan)


class TestExecutorDeterminism:
    """Acceptance: process/thread histories == serial, bitwise."""

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_identical_to_serial(self, plan, serial_result, executor):
        scenario = plan.with_(
            execution={"executor": executor, "max_workers": 2}
        )
        result = FMoreEngine().run(scenario)
        assert set(result.histories) == set(serial_result.histories)
        for scheme, histories in result.histories.items():
            reference = serial_result.histories[scheme]
            assert len(histories) == len(reference) == len(plan.seeds)
            for mine, ref in zip(histories, reference):
                assert mine.scheme == ref.scheme
                assert mine.records == ref.records

    def test_seed_order_preserved(self, plan, serial_result):
        # histories[scheme][i] must correspond to seeds[i].
        scenario = plan.with_(
            schemes=("RandFL",), execution={"executor": "process", "max_workers": 2}
        )
        result = FMoreEngine().run(scenario)
        for i, seed in enumerate(scenario.seeds):
            assert (
                result.histories["RandFL"][i].records
                == serial_result.histories["RandFL"][i].records
            )
            assert result.history("RandFL", seed) is result.histories["RandFL"][i]

    def test_run_seeds_passthrough(self, plan, serial_result):
        from repro.sim import preset
        from repro.sim.runner import run_seeds

        cfg = preset("smoke", "mnist_o").with_(n_rounds=2)
        grouped = run_seeds(
            cfg,
            ("FMore", "RandFL", "FixFL"),
            (0, 1),
            executor="thread",
            max_workers=2,
        )
        for scheme, histories in grouped.items():
            for mine, ref in zip(histories, serial_result.histories[scheme]):
                assert mine.records == ref.records

    def test_cluster_scenario_parallel_matches_serial(self):
        scenario = Scenario.from_preset(
            "cluster_cifar10",
            seeds=(0, 1),
            n_clients=6,
            k_winners=2,
            n_rounds=1,
            size_range=(30, 80),
            test_per_class=4,
            model_width=0.12,
            grid_size=65,
        )
        serial = FMoreEngine().run(scenario)
        parallel = FMoreEngine().run(
            scenario.with_(execution={"executor": "process", "max_workers": 2})
        )
        for scheme in scenario.schemes:
            for mine, ref in zip(
                parallel.histories[scheme], serial.histories[scheme]
            ):
                assert mine.records == ref.records
                assert mine.cumulative_seconds == ref.cumulative_seconds


class TestEngineCacheWithExecutors:
    def test_thread_executor_still_one_grid_build(self, plan):
        engine = FMoreEngine()
        engine.run(
            plan.with_(
                schemes=("FMore",),
                seeds=(0, 1, 2),
                n_rounds=1,
                execution={"executor": "thread", "max_workers": 2},
            )
        )
        assert engine.cache_misses == 1
        assert engine.cache_hits == 2
