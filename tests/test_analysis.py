"""Tests for the analysis layer: sweeps, histograms, summaries."""

import numpy as np
import pytest

from repro.analysis import (
    expected_profit_vs_k,
    expected_profit_vs_n,
    headline_metrics,
    payment_score_sweep_k,
    payment_score_sweep_n,
    score_histogram,
    selection_rank_proportions,
    summarize_schemes,
    winner_stats,
)
from repro.fl.trainer import RoundRecord, TrainingHistory


class TestProfitSweeps:
    def test_theorem2_decreasing_in_n(self, additive_quadratic_solver):
        profits = expected_profit_vs_n(additive_quadratic_solver, 0.3, [5, 10, 20, 40])
        assert all(a >= b - 1e-12 for a, b in zip(profits, profits[1:]))

    def test_theorem3_increasing_in_k(self, additive_quadratic_solver):
        profits = expected_profit_vs_k(additive_quadratic_solver, 0.5, [1, 2, 4, 8])
        assert all(b >= a - 1e-12 for a, b in zip(profits, profits[1:]))


class TestWinnerSweeps:
    def test_payment_decreases_with_n(self, multiplicative_solver, rng):
        rows = payment_score_sweep_n(multiplicative_solver, [15, 30, 60], rng, n_draws=40)
        payments = [ws.mean_payment for _, ws in rows]
        assert payments[0] > payments[-1]

    def test_score_increases_with_n(self, multiplicative_solver, rng):
        rows = payment_score_sweep_n(multiplicative_solver, [15, 30, 60], rng, n_draws=40)
        scores = [ws.mean_score for _, ws in rows]
        assert scores[-1] > scores[0]

    def test_payment_increases_with_k(self, multiplicative_solver, rng):
        rows = payment_score_sweep_k(multiplicative_solver, [2, 6, 12], rng, n_draws=40)
        payments = [ws.mean_payment for _, ws in rows]
        assert payments[-1] > payments[0]

    def test_score_decreases_with_k(self, multiplicative_solver, rng):
        rows = payment_score_sweep_k(multiplicative_solver, [2, 6, 12], rng, n_draws=40)
        scores = [ws.mean_score for _, ws in rows]
        assert scores[0] > scores[-1]

    def test_winner_stats_deterministic_given_rng(self, multiplicative_solver):
        a = winner_stats(multiplicative_solver, np.random.default_rng(3), n_draws=20)
        b = winner_stats(multiplicative_solver, np.random.default_rng(3), n_draws=20)
        assert a.mean_payment == b.mean_payment


class TestScoreHistogram:
    def test_proportions_sum_to_100(self):
        edges, props = score_histogram([1.0, 2.0, 3.0, 4.0], bins=4)
        assert props.sum() == pytest.approx(100.0)

    def test_empty_scores(self):
        edges, props = score_histogram([], bins=5)
        assert props.sum() == 0.0


def _history_with_ranks(scheme, rank_lists):
    h = TrainingHistory(scheme)
    for i, ranks in enumerate(rank_lists, start=1):
        h.records.append(
            RoundRecord(
                i, 0.5, 0.5, list(ranks), 0.0,
                winner_ranks={wid: r for wid, r in zip(ranks, ranks)},
            )
        )
    return h


class TestRankProportions:
    def test_counts_within_cutoffs(self):
        h = _history_with_ranks("PsiFMore", [[0, 5, 15], [1, 25, 29]])
        props = selection_rank_proportions(h, rank_cutoffs=(10, 20, 30))
        assert props[10] == pytest.approx(1.5)   # (2 + 1) / 2
        assert props[20] == pytest.approx(2.0)   # (3 + 1) / 2  -> 15<20; 25,29 not
        assert props[30] == pytest.approx(3.0)

    def test_empty_history(self):
        h = TrainingHistory("X")
        props = selection_rank_proportions(h)
        assert props == {10: 0.0, 20: 0.0, 30: 0.0}


def _history(scheme, accs, seconds=1.0, payment=0.0):
    h = TrainingHistory(scheme)
    for i, a in enumerate(accs, start=1):
        h.records.append(
            RoundRecord(i, a, 1 - a, [0], payment, round_seconds=seconds)
        )
    return h


class TestSummaries:
    def test_summarize(self):
        hs = {
            "FMore": _history("FMore", [0.5, 0.9], payment=1.0),
            "RandFL": _history("RandFL", [0.3, 0.6]),
        }
        rows = summarize_schemes(hs, target_accuracy=0.6)
        by_scheme = {r.scheme: r for r in rows}
        assert by_scheme["FMore"].rounds_to_target == 2
        assert by_scheme["FMore"].total_payment == 2.0
        assert by_scheme["RandFL"].final_accuracy == 0.6

    def test_headline(self):
        hs = {
            "FMore": _history("FMore", [0.5, 0.8, 0.9, 0.9]),
            "RandFL": _history("RandFL", [0.2, 0.4, 0.6, 0.7]),
        }
        m = headline_metrics(hs, target_accuracy=0.6)
        assert m.round_reduction_pct == pytest.approx(100.0 * (3 - 2) / 3)
        assert m.accuracy_improvement_pct == pytest.approx(100 * (0.9 - 0.7) / 0.7)
        assert m.time_reduction_pct is not None

    def test_headline_missing_scheme(self):
        with pytest.raises(KeyError):
            headline_metrics({"FMore": _history("FMore", [0.5])}, 0.5)
