"""Tests for losses and optimizers of the numpy NN substrate."""

import numpy as np
import pytest

from repro.fl.nn.losses import MeanSquaredError, SoftmaxCrossEntropy
from repro.fl.nn.optimizers import SGD, Adam


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        targets = np.array([0, 1])
        assert loss.value(logits, targets) < 1e-6

    def test_uniform_prediction_log_k(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 10))
        targets = np.array([0, 3, 5, 9])
        assert loss.value(logits, targets) == pytest.approx(np.log(10.0))

    def test_gradient_is_probs_minus_onehot(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[1.0, 2.0, 0.5]])
        targets = np.array([1])
        probs = SoftmaxCrossEntropy.probabilities(logits)
        grad = loss.gradient(logits, targets)
        expected = probs.copy()
        expected[0, 1] -= 1.0
        np.testing.assert_allclose(grad, expected)

    def test_gradient_finite_difference(self):
        rng = np.random.default_rng(0)
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((3, 5))
        targets = np.array([0, 2, 4])
        grad = loss.gradient(logits, targets)
        eps = 1e-6
        for i in range(3):
            for j in range(5):
                lp, lm = logits.copy(), logits.copy()
                lp[i, j] += eps
                lm[i, j] -= eps
                num = (loss.value(lp, targets) - loss.value(lm, targets)) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, abs=1e-7)

    def test_numerical_stability_large_logits(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[1e4, -1e4]])
        assert np.isfinite(loss.value(logits, np.array([0])))

    def test_probabilities_sum_to_one(self):
        rng = np.random.default_rng(1)
        probs = SoftmaxCrossEntropy.probabilities(rng.standard_normal((6, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6))


class TestMeanSquaredError:
    def test_value(self):
        loss = MeanSquaredError()
        assert loss.value(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]])) == pytest.approx(2.5)

    def test_gradient_finite_difference(self):
        rng = np.random.default_rng(2)
        loss = MeanSquaredError()
        pred = rng.standard_normal((2, 3))
        target = rng.standard_normal((2, 3))
        grad = loss.gradient(pred, target)
        eps = 1e-6
        for i in range(2):
            for j in range(3):
                pp, pm = pred.copy(), pred.copy()
                pp[i, j] += eps
                pm[i, j] -= eps
                num = (loss.value(pp, target) - loss.value(pm, target)) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, abs=1e-7)


class TestSGD:
    def test_plain_step(self):
        opt = SGD(lr=0.1)
        p = [np.array([1.0, 2.0])]
        g = [np.array([1.0, -1.0])]
        opt.step(p, g)
        np.testing.assert_allclose(p[0], [0.9, 2.1])

    def test_momentum_accumulates(self):
        opt = SGD(lr=0.1, momentum=0.9)
        p = [np.array([0.0])]
        g = [np.array([1.0])]
        opt.step(p, g)  # v = 1, p = -0.1
        opt.step(p, g)  # v = 1.9, p = -0.29
        np.testing.assert_allclose(p[0], [-0.29])

    def test_reset_clears_velocity(self):
        opt = SGD(lr=0.1, momentum=0.9)
        p = [np.array([0.0])]
        opt.step(p, [np.array([1.0])])
        opt.reset()
        opt.step(p, [np.array([1.0])])
        # After reset the second step is a fresh v=1 step of -0.1.
        np.testing.assert_allclose(p[0], [-0.2])

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)

    def test_minimises_quadratic(self):
        opt = SGD(lr=0.1, momentum=0.5)
        p = [np.array([5.0])]
        for _ in range(100):
            opt.step(p, [2.0 * p[0]])
        assert abs(p[0][0]) < 1e-3


class TestAdam:
    def test_minimises_quadratic(self):
        opt = Adam(lr=0.1)
        p = [np.array([5.0])]
        for _ in range(300):
            opt.step(p, [2.0 * p[0]])
        assert abs(p[0][0]) < 1e-2

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, |first step| ~= lr regardless of grad scale.
        opt = Adam(lr=0.01)
        p = [np.array([0.0])]
        opt.step(p, [np.array([1e-4])])
        assert abs(p[0][0]) == pytest.approx(0.01, rel=1e-3)

    def test_reset(self):
        opt = Adam(lr=0.1)
        p = [np.array([1.0])]
        opt.step(p, [np.array([1.0])])
        opt.reset()
        assert opt._m is None and opt._t == 0
